"""Unit tests for schedule vectors and hyperplanes (Lemma 4.3)."""

import pytest

from repro.retiming import (
    ROW_SCHEDULE,
    doall_hyperplane,
    hyperplane_for_schedule,
    schedule_vector_for,
)
from repro.vectors import IVec, is_strict_schedule_vector


class TestScheduleVector:
    def test_row_schedule_constant(self):
        assert ROW_SCHEDULE == IVec(1, 0)

    def test_figure14_schedule(self):
        """The retimed Figure-14 vector set must give s=(5,1)."""
        deps = [
            IVec(0, 5), IVec(0, 0), IVec(0, 2), IVec(0, 1),
            IVec(1, 0), IVec(1, -4), IVec(1, 3),
        ]
        assert schedule_vector_for(deps) == IVec(5, 1)

    def test_all_zero_first_coordinates(self):
        """Lemma 4.3 case 1: all (0,k) with k>0 gives s=(0,1)."""
        assert schedule_vector_for([IVec(0, 1), IVec(0, 7)]) == IVec(0, 1)

    def test_zero_vectors_ignored(self):
        assert schedule_vector_for([IVec(0, 0), IVec(0, 3)]) == IVec(0, 1)

    def test_empty_set_row_schedule(self):
        assert schedule_vector_for([]) == ROW_SCHEDULE
        assert schedule_vector_for([IVec(0, 0)]) == ROW_SCHEDULE

    def test_result_is_always_strict(self):
        deps = [IVec(2, -7), IVec(1, 3), IVec(0, 2)]
        s = schedule_vector_for(deps)
        assert is_strict_schedule_vector(s, deps)

    def test_floor_division_semantics(self):
        """(2,-5) needs s0 >= ceil(5/2) = 3: floor(5/2)+1."""
        s = schedule_vector_for([IVec(2, -5)])
        assert s == IVec(3, 1)
        assert s.dot(IVec(2, -5)) == 1

    def test_negative_s0_allowed(self):
        """All-positive second coordinates can give a negative skew."""
        s = schedule_vector_for([IVec(1, 3)])
        assert s.dot(IVec(1, 3)) > 0

    def test_negative_vector_rejected(self):
        with pytest.raises(ValueError):
            schedule_vector_for([IVec(0, -1)])

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            schedule_vector_for([IVec(1, 2, 3)])


class TestHyperplane:
    def test_perpendicular(self):
        for s in (IVec(5, 1), IVec(1, 0), IVec(0, 1)):
            h = hyperplane_for_schedule(s)
            assert s.dot(h) == 0

    def test_figure16_hyperplane(self):
        assert hyperplane_for_schedule(IVec(5, 1)) == IVec(1, -5)

    def test_doall_hyperplane_convenience(self):
        deps = [IVec(1, -4), IVec(0, 1)]
        s, h = doall_hyperplane(deps)
        assert s.dot(h) == 0
        assert is_strict_schedule_vector(s, deps)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            hyperplane_for_schedule(IVec(1, 2, 3))
