"""SARIF 2.1.0 output: structural conformance of the emitted log."""

import json
import pathlib

import pytest

from repro.lint import (
    SARIF_VERSION,
    all_rules,
    lint_source,
    render_sarif,
    rule_codes,
    sarif_log,
)

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures" / "lint"


@pytest.fixture(scope="module")
def fp_result():
    path = FIXTURES / "lf201.loop"
    return lint_source(path.read_text(), path="lf201.loop")


@pytest.fixture(scope="module")
def log(fp_result):
    return sarif_log(fp_result)


class TestLogShape:
    def test_top_level(self, log):
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(log["runs"]) == 1

    def test_driver_lists_every_rule(self, log):
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        ids = [r["id"] for r in driver["rules"]]
        assert ids == rule_codes()
        for descriptor in driver["rules"]:
            assert descriptor["shortDescription"]["text"]
            assert descriptor["helpUri"].endswith(f"#{descriptor['id'].lower()}")
            assert descriptor["defaultConfiguration"]["level"] in {
                "note",
                "warning",
                "error",
            }

    def test_artifact_records_the_path(self, log):
        assert log["runs"][0]["artifacts"] == [
            {"location": {"uri": "lf201.loop"}}
        ]


class TestResults:
    def test_one_result_per_diagnostic(self, fp_result, log):
        results = log["runs"][0]["results"]
        assert len(results) == len(fp_result.diagnostics)

    def test_rule_index_points_into_rules(self, log):
        run = log["runs"][0]
        ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        for res in run["results"]:
            assert ids[res["ruleIndex"]] == res["ruleId"]

    def test_fusion_preventing_result_has_line_and_column(self, log):
        """The acceptance criterion: LF201 with a physical location."""
        results = [r for r in log["runs"][0]["results"] if r["ruleId"] == "LF201"]
        assert results
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 9  # b[i][j] = a[i][j+1]
        assert region["startColumn"] == 15
        assert results[0]["level"] == "warning"
        assert "fusion-preventing" in results[0]["message"]["text"]

    def test_hint_becomes_markdown_fix(self, log):
        results = [r for r in log["runs"][0]["results"] if r["ruleId"] == "LF201"]
        assert "**Fix:**" in results[0]["message"]["markdown"]

    def test_severity_mapping_info_is_note(self, log):
        levels = {r["ruleId"]: r["level"] for r in log["runs"][0]["results"]}
        assert levels["LF301"] == "note"

    def test_spanless_diagnostics_default_to_1_1(self):
        from repro.gallery import figure14_mldg
        from repro.lint import lint_mldg

        log14 = sarif_log(lint_mldg(figure14_mldg()))
        for res in log14["runs"][0]["results"]:
            region = res["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1 and region["startColumn"] >= 1


class TestRendering:
    def test_render_sarif_round_trips(self, fp_result):
        text = render_sarif(fp_result)
        assert json.loads(text) == sarif_log(fp_result)

    def test_uri_override(self, fp_result):
        log = sarif_log(fp_result, uri="src/program.loop")
        run = log["runs"][0]
        assert run["artifacts"][0]["location"]["uri"] == "src/program.loop"
        for res in run["results"]:
            loc = res["locations"][0]["physicalLocation"]["artifactLocation"]
            assert loc["uri"] == "src/program.loop"

    def test_levels_cover_all_severities(self):
        assert {r.severity.sarif_level for r in all_rules()} == {
            "note",
            "warning",
            "error",
        }
