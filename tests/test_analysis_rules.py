"""Analysis-layer lint integration: the LF4xx rules through the shared
registry/suppression/SARIF machinery, and LF103's semantic upgrade."""

import json
import pathlib

from repro.lint import Severity, get_rule, lint_source, render_sarif, rule_codes

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures" / "lint"


def lint_fixture(name):
    path = FIXTURES / name
    return lint_source(path.read_text(), path=name)


class TestRegistryIntegration:
    def test_lf4xx_registered_in_analysis_layer(self):
        for code in ("LF401", "LF402", "LF403"):
            r = get_rule(code)
            assert r.layer == "analysis"
            assert code in rule_codes()

    def test_severities(self):
        assert get_rule("LF401").severity is Severity.WARNING
        assert get_rule("LF402").severity is Severity.WARNING
        assert get_rule("LF403").severity is Severity.INFO


class TestSuppression:
    def test_inline_suppression_silences_lf401(self):
        src = (
            "do i = 0, 4\n"
            "  doall j = 0, 4\n"
            "    a[i][j] = x[i][j]\n"
            "  end\n"
            "  doall j = 0, 4\n"
            "    b[i][j] = a[i-7][j] + a[i][j]  ! lint: disable=LF401\n"
            "  end\n"
            "end\n"
        )
        result = lint_source(src)
        assert "LF401" not in result.codes
        assert "LF301" in result.codes  # other codes unaffected

    def test_file_wide_suppression_covers_analysis_codes(self):
        src = (
            "! lint: disable=LF301, LF403\n"
            "do i = 0, 4\n"
            "  doall j = 0, 4\n"
            "    a[i][j] = x[i][j]\n"
            "  end\n"
            "  doall j = 0, 4\n"
            "    b[i][j] = a[i][j-1]\n"
            "  end\n"
            "end\n"
        )
        assert lint_source(src).diagnostics == []


class TestSarif:
    def test_driver_rules_table_has_stable_lf4xx_entries(self):
        log = json.loads(render_sarif(lint_fixture("lf401.loop")))
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        assert ids == rule_codes()  # stable, sorted indices
        by_id = {r["id"]: r for r in rules}
        for code in ("LF401", "LF402", "LF403"):
            assert by_id[code]["helpUri"].endswith(f"#{code.lower()}")

    def test_result_rule_indices_resolve(self):
        log = json.loads(render_sarif(lint_fixture("lf402.loop")))
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        results = log["runs"][0]["results"]
        assert {r["ruleId"] for r in results} >= {"LF401", "LF402"}
        for res in results:
            assert rules[res["ruleIndex"]]["id"] == res["ruleId"]


class TestLf403Scope:
    def test_message_carries_inferred_interval(self):
        result = lint_fixture("lf403.loop")
        (hit,) = result.by_code("LF403")
        assert "a[0, 4][-1, 3]" in hit.message
        assert "dim 1" in hit.message

    def test_symbolic_bounds_stay_silent(self):
        # the same halo read over symbolic bounds is the model's accepted
        # idiom (every recurrence reads the halo at the boundary)
        src = (
            "do i = 0, n\n"
            "  doall j = 0, m\n"
            "    a[i][j] = x[i][j]\n"
            "  end\n"
            "  doall j = 0, m\n"
            "    b[i][j] = a[i][j-1]\n"
            "  end\n"
            "end\n"
        )
        assert "LF403" not in lint_source(src).codes


class TestLf103Upgrade:
    def test_must_race_carries_witness_pair(self):
        src = (
            "do i = 0, 4\n"
            "  doall j = 0, 4\n"
            "    a[i][j] = a[i][j-1]\n"
            "  end\n"
            "end\n"
        )
        result = lint_source(src)
        (hit,) = result.by_code("LF103")
        assert hit.severity is Severity.ERROR
        assert "must-race witness: iterations (0, 0) and (0, 1)" in hit.message
        assert result.exit_code == 2

    def test_provably_absent_race_downgrades_to_warning(self):
        # inner offset 5 over j in [0, 2]: syntactically a race, semantically
        # unrealisable -- Banerjee proves it away and the severity drops
        src = (
            "do i = 0, 4\n"
            "  doall j = 0, 2\n"
            "    a[i][j] = a[i][j-5]\n"
            "  end\n"
            "end\n"
        )
        result = lint_source(src)
        (hit,) = result.by_code("LF103")
        assert hit.severity is Severity.WARNING
        assert "may-race downgraded: provably absent" in hit.message
        assert "banerjee" in hit.message
        assert result.exit_code == 1  # no longer a hard error

    def test_symbolic_domain_race_stays_an_error(self):
        src = (
            "do i = 0, n\n"
            "  doall j = 0, m\n"
            "    a[i][j] = a[i][j-1]\n"
            "  end\n"
            "end\n"
        )
        result = lint_source(src)
        (hit,) = result.by_code("LF103")
        assert hit.severity is Severity.ERROR
