"""Unit tests for the end-to-end verification layer."""

import pytest

from repro.codegen import apply_fusion
from repro.fusion import Strategy, fuse
from repro.gallery.common import iir2d_code
from repro.gallery.paper import figure2_code
from repro.graph import random_legal_mldg
from repro.loopir import parse_program, program_from_mldg
from repro.depend import extract_mldg
from repro.verify import (
    check_equivalence,
    runtime_doall_violations,
    verify_fusion_result,
)


@pytest.fixture
def fig2_nest():
    return parse_program(figure2_code())


class TestCheckEquivalence:
    def test_figure2_alg4(self, fig2_nest):
        g = extract_mldg(fig2_nest)
        res = fuse(g)
        fused = apply_fusion(fig2_nest, res.retiming, mldg=g)
        rep = check_equivalence(fig2_nest, fused, mode="doall")
        assert rep.equivalent
        assert rep.max_abs_difference == 0.0

    def test_report_records_failure_magnitude(self, fig2_nest):
        from repro.gallery.paper import figure2_expected_llofra_retiming

        fused = apply_fusion(fig2_nest, figure2_expected_llofra_retiming())
        rep = check_equivalence(fig2_nest, fused, mode="doall", order_seed=99)
        assert not rep.equivalent
        assert rep.max_abs_difference > 0.0


class TestVerifyFusionResult:
    def test_figure2_all_modes(self, fig2_nest):
        g = extract_mldg(fig2_nest)
        reports = verify_fusion_result(fig2_nest, fuse(g))
        assert reports and all(r.equivalent for r in reports)
        assert {r.mode for r in reports} == {"serial", "doall"}

    def test_iir2d_all_modes(self):
        nest = parse_program(iir2d_code())
        g = extract_mldg(nest)
        reports = verify_fusion_result(nest, fuse(g))
        assert all(r.equivalent for r in reports)

    def test_hyperplane_mode_used_for_forced_hyperplane(self, fig2_nest):
        g = extract_mldg(fig2_nest)
        res = fuse(g, strategy=Strategy.HYPERPLANE)
        reports = verify_fusion_result(fig2_nest, res)
        assert {r.mode for r in reports} == {"serial", "hyperplane"}
        assert all(r.equivalent for r in reports)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_programs_end_to_end(self, seed):
        """The full pipeline on random graphs: synthesise -> fuse -> verify."""
        g = random_legal_mldg(6, seed=seed)
        nest = program_from_mldg(g)
        res = fuse(extract_mldg(nest))
        reports = verify_fusion_result(nest, res, sizes=[(7, 6)], seeds=[seed])
        assert all(r.equivalent for r in reports), [r.mode for r in reports]


class TestRuntimeDoall:
    def test_alg4_fusion_has_no_violations(self, fig2_nest):
        g = extract_mldg(fig2_nest)
        res = fuse(g)
        fused = apply_fusion(fig2_nest, res.retiming, mldg=g)
        assert runtime_doall_violations(fused, 8, 8) == []

    def test_llofra_fusion_has_violations(self, fig2_nest):
        from repro.gallery.paper import figure2_expected_llofra_retiming

        fused = apply_fusion(fig2_nest, figure2_expected_llofra_retiming())
        violations = runtime_doall_violations(fused, 8, 8)
        assert violations  # Figure 7: rows are serialised

    def test_graph_doall_implies_runtime_doall(self):
        """Property 4.1 (graph level) is sound against the instance scan.

        (The converse can fail on small grids: a surviving (0, k) vector
        with |k| larger than m has no same-row instance pair to conflict.)
        """
        from repro.retiming import is_doall_after_fusion

        for seed in range(6):
            g = random_legal_mldg(5, seed=seed)
            nest = program_from_mldg(g)
            res = fuse(extract_mldg(nest))
            fused = apply_fusion(nest, res.retiming)
            if is_doall_after_fusion(res.retimed):
                assert runtime_doall_violations(fused, 16, 16) == [], f"seed {seed}"

    def test_violation_limit(self, fig2_nest):
        from repro.gallery.paper import figure2_expected_llofra_retiming

        fused = apply_fusion(fig2_nest, figure2_expected_llofra_retiming())
        assert len(runtime_doall_violations(fused, 8, 8, limit=3)) == 3
