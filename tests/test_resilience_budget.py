"""Resource budgets: the Budget object, the hardened Bellman-Ford, and the
budget threading through solvers, fusion strategies and the pipeline.

Covers the adversarial cases the relaxation-count guard exists for: a chain
whose edge order fights propagation (needs ~n-1 rounds), a fast-stabilizing
graph (early exit, tiny round count, negative cycles still caught), and
exhaustion surfacing as :class:`BudgetExceededError` rather than a hang or a
partial answer.
"""

import time

import pytest

from repro.constraints import InfeasibleSystemError, ScalarConstraintSystem
from repro.constraints.bellman_ford import scalar_bellman_ford
from repro.constraints.vector_bellman_ford import vector_bellman_ford
from repro.fusion import fuse
from repro.gallery import figure2_mldg
from repro.pipeline import fuse_program
from repro.resilience import Budget, BudgetExceededError
from repro.vectors import ExtVec


def _adversarial_chain(n):
    """Chain s -> x0 -> ... -> x_{n-1} with edges listed against propagation.

    Each relaxation round improves only one more node, so full convergence
    needs ~n rounds -- the worst case the round cap defends against.
    """
    nodes = ["s"] + [f"x{i}" for i in range(n)]
    edges = [(f"x{i - 1}" if i else "s", f"x{i}", -1) for i in range(n)]
    edges.reverse()
    return nodes, edges, "s"


class TestBudgetObject:
    def test_defaults_are_unlimited(self):
        b = Budget()
        b.start()
        b.check_deadline("anywhere")
        b.check_graph(10**6, 10**6, "huge graph")
        b.check_rounds(10**9, "many rounds")
        assert b.remaining_ms() is None
        assert not b.deadline_exceeded()

    def test_start_is_idempotent(self):
        b = Budget(deadline_ms=1000.0)
        assert b.start() is b
        t0 = b.elapsed_ms()
        time.sleep(0.01)
        b.start()  # must NOT reset the clock
        assert b.elapsed_ms() > t0

    def test_deadline_expires(self):
        b = Budget(deadline_ms=0.0).start()
        assert b.deadline_exceeded()
        with pytest.raises(BudgetExceededError) as exc:
            b.check_deadline("unit test")
        assert exc.value.resource == "deadline-ms"
        assert "unit test" in str(exc.value)

    def test_graph_caps(self):
        b = Budget(max_nodes=3, max_edges=5).start()
        b.check_graph(3, 5, "at the cap")
        with pytest.raises(BudgetExceededError) as exc:
            b.check_graph(4, 0, "too many nodes")
        assert exc.value.resource == "nodes"
        assert exc.value.limit == 3 and exc.value.used == 4
        with pytest.raises(BudgetExceededError) as exc:
            b.check_graph(0, 6, "too many edges")
        assert exc.value.resource == "edges"

    def test_to_dict_is_json_shaped(self):
        d = Budget(deadline_ms=5.0, max_nodes=2).start().to_dict()
        assert set(d) == {
            "deadlineMs",
            "maxNodes",
            "maxEdges",
            "maxRelaxationRounds",
            "elapsedMs",
        }
        assert d["deadlineMs"] == 5.0 and d["maxNodes"] == 2
        assert d["maxEdges"] is None


class TestBellmanFordGuard:
    def test_adversarial_chain_converges_without_cap(self):
        nodes, edges, src = _adversarial_chain(50)
        result = scalar_bellman_ford(nodes, edges, src)
        assert result.feasible
        assert result.dist["x49"] == -50

    def test_adversarial_chain_needs_full_rounds_classically(self):
        # the round-based reference still exhibits the worst case the cap
        # defends against: edge order fights propagation, one node per round
        nodes, edges, src = _adversarial_chain(50)
        result = scalar_bellman_ford(nodes, edges, src, algorithm="rounds")
        assert result.feasible
        assert result.dist["x49"] == -50
        assert result.rounds >= 49

    def test_worklist_immune_to_adversarial_edge_order(self):
        # the SLF worklist follows propagation order, not edge-list order,
        # so the same chain converges in O(1) rounds' worth of pops
        nodes, edges, src = _adversarial_chain(50)
        result = scalar_bellman_ford(nodes, edges, src)
        assert result.feasible
        assert result.rounds <= 3

    def test_adversarial_chain_trips_round_cap(self):
        nodes, edges, src = _adversarial_chain(50)
        with pytest.raises(BudgetExceededError) as exc:
            scalar_bellman_ford(nodes, edges, src, max_rounds=3, algorithm="rounds")
        assert exc.value.resource == "relaxation-rounds"
        assert exc.value.limit == 3

    def test_zero_cap_refuses_work_on_both_algorithms(self):
        # a cap of 0 must trip before any relaxation regardless of algorithm
        nodes, edges, src = _adversarial_chain(10)
        for algorithm in ("slf", "rounds"):
            with pytest.raises(BudgetExceededError) as exc:
                scalar_bellman_ford(
                    nodes, edges, src, max_rounds=0, algorithm=algorithm
                )
            assert exc.value.resource == "relaxation-rounds"

    def test_budget_cap_equivalent_to_max_rounds(self):
        nodes, edges, src = _adversarial_chain(50)
        with pytest.raises(BudgetExceededError):
            scalar_bellman_ford(
                nodes,
                edges,
                src,
                budget=Budget(max_relaxation_rounds=3),
                algorithm="rounds",
            )

    def test_fast_graph_stabilizes_early(self):
        # favourable edge order: propagation completes in one round
        nodes = ["s"] + [f"x{i}" for i in range(50)]
        edges = [(f"x{i - 1}" if i else "s", f"x{i}", -1) for i in range(50)]
        result = scalar_bellman_ford(nodes, edges, "s")
        assert result.feasible
        assert result.rounds <= 2  # early exit, nowhere near the |V|-1 bound

    def test_early_exit_still_catches_negative_cycle(self):
        # a 2-cycle of total weight -1 never stabilizes, so the certificate
        # scan must still run and report it
        nodes = ["s", "a", "b"]
        edges = [("s", "a", 0), ("a", "b", -1), ("b", "a", 0)]
        result = scalar_bellman_ford(nodes, edges, "s")
        assert not result.feasible
        assert set(result.negative_cycle) >= {"a", "b"}

    def test_single_node_negative_self_loop(self):
        # regression: zero relaxation rounds must not skip the cycle scan
        result = scalar_bellman_ford(["a"], [("a", "a", -1)], "a")
        assert not result.feasible

    def test_vector_solver_respects_cap(self):
        n = 30
        nodes = ["s"] + [f"x{i}" for i in range(n)]
        w = ExtVec((0, -1))
        edges = [(f"x{i - 1}" if i else "s", f"x{i}", w) for i in range(n)]
        edges.reverse()
        ok = vector_bellman_ford(nodes, edges, "s", dim=2, algorithm="rounds")
        assert ok.feasible and ok.rounds >= n - 1
        fast = vector_bellman_ford(nodes, edges, "s", dim=2)
        assert fast.feasible and fast.dist == ok.dist
        with pytest.raises(BudgetExceededError):
            vector_bellman_ford(
                nodes, edges, "s", dim=2, max_rounds=2, algorithm="rounds"
            )
        with pytest.raises(BudgetExceededError):
            vector_bellman_ford(nodes, edges, "s", dim=2, max_rounds=0)


class TestBudgetThreading:
    def test_scalar_system_solve_accepts_budget(self):
        s = ScalarConstraintSystem(["a", "b"])
        s.add_leq("a", "b", 3)
        assert s.solve(budget=Budget())["b"] <= 3

    def test_infeasible_system_still_reports_cycle_under_budget(self):
        s = ScalarConstraintSystem(["a", "b"])
        s.add_leq("a", "b", -2)
        s.add_leq("b", "a", 1)
        with pytest.raises(InfeasibleSystemError):
            s.solve(budget=Budget())

    def test_fuse_honours_node_cap(self):
        g = figure2_mldg()
        with pytest.raises(BudgetExceededError) as exc:
            fuse(g, budget=Budget(max_nodes=2))
        assert exc.value.resource == "nodes"

    def test_fuse_honours_relaxation_cap(self):
        g = figure2_mldg()
        with pytest.raises(BudgetExceededError):
            fuse(g, budget=Budget(max_relaxation_rounds=0))

    def test_fuse_unlimited_budget_matches_no_budget(self):
        g = figure2_mldg()
        assert (
            fuse(g, budget=Budget()).retiming.as_dict()
            == fuse(g).retiming.as_dict()
        )

    def test_fuse_program_threads_budget(self, tmp_path):
        from repro.gallery.paper import figure2_code

        with pytest.raises(BudgetExceededError):
            fuse_program(figure2_code(), budget=Budget(max_relaxation_rounds=0))

    def test_error_carries_structured_fields(self):
        err = BudgetExceededError("nodes", 2, 5, "unit")
        assert err.resource == "nodes"
        assert err.limit == 2 and err.used == 5
        assert "used 5 of limit 2" in str(err)
