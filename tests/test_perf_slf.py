"""Differential verification of the SLF worklist Bellman-Ford.

The worklist solver is the default; the classic round-based formulation is
kept as ``algorithm="rounds"`` precisely so these tests can hold the two
against each other: on randomized constraint graphs (feasible and not)
both must report the same distances, the same feasibility verdicts, and
honoured budgets.  Certificates are checked semantically -- the reported
cycle must actually be negative in the input -- and, since the worklist
delegates extraction to the round-based pass, textually identical too.
"""

import random

import pytest

from repro.constraints.bellman_ford import ALGORITHMS, scalar_bellman_ford
from repro.constraints.vector_bellman_ford import vector_bellman_ford
from repro.resilience import Budget, BudgetExceededError
from repro.vectors import ExtVec


def _random_graph(rng, n, density, weight_lo=-3, weight_hi=6):
    """A random digraph; positive-leaning weights keep most instances feasible."""
    nodes = [f"v{i}" for i in range(n)]
    edges = []
    for u in nodes:
        for v in nodes:
            if u != v and rng.random() < density:
                edges.append((u, v, rng.randint(weight_lo, weight_hi)))
    # connect everything to the source so feasibility questions are global
    edges += [(nodes[0], v, 0) for v in nodes[1:]]
    rng.shuffle(edges)
    return nodes, edges, nodes[0]


def _cycle_weight(cycle, edges):
    weight = {}
    for (u, v, w) in edges:
        weight[(u, v)] = min(w, weight.get((u, v), w))
    total = 0
    for k, u in enumerate(cycle):
        total += weight[(u, cycle[(k + 1) % len(cycle)])]
    return total


class TestDifferential:
    @pytest.mark.parametrize("seed", range(20))
    def test_same_answers_on_random_graphs(self, seed):
        rng = random.Random(seed)
        nodes, edges, src = _random_graph(rng, rng.randint(2, 24), rng.uniform(0.1, 0.5))
        slf = scalar_bellman_ford(nodes, edges, src)
        rounds = scalar_bellman_ford(nodes, edges, src, algorithm="rounds")
        assert slf.feasible == rounds.feasible
        if slf.feasible:
            assert slf.dist == rounds.dist
        else:
            # both certificates must be genuine negative cycles; the worklist
            # extracts via the round-based pass, so they are the same cycle
            assert _cycle_weight(slf.negative_cycle, edges) < 0
            assert slf.negative_cycle == rounds.negative_cycle

    @pytest.mark.parametrize("seed", range(10))
    def test_same_answers_on_vector_graphs(self, seed):
        rng = random.Random(1000 + seed)
        names = [f"v{i}" for i in range(rng.randint(2, 12))]
        edges = []
        for u in names:
            for v in names:
                if u != v and rng.random() < 0.4:
                    edges.append(
                        (u, v, ExtVec((rng.randint(0, 3), rng.randint(-2, 4))))
                    )
        edges += [(names[0], v, ExtVec((0, 0))) for v in names[1:]]
        slf = vector_bellman_ford(names, edges, names[0], dim=2)
        rounds = vector_bellman_ford(
            names, edges, names[0], dim=2, algorithm="rounds"
        )
        assert slf.feasible == rounds.feasible
        if slf.feasible:
            assert slf.dist == rounds.dist
        else:
            assert slf.negative_cycle == rounds.negative_cycle

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            scalar_bellman_ford(["a"], [], "a", algorithm="dijkstra")
        assert ALGORITHMS == ("slf", "rounds")


class TestBudgets:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_zero_cap_always_trips(self, algorithm):
        with pytest.raises(BudgetExceededError) as exc:
            scalar_bellman_ford(
                ["a", "b"], [("a", "b", 1)], "a", max_rounds=0, algorithm=algorithm
            )
        assert exc.value.resource == "relaxation-rounds"

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_generous_cap_never_trips(self, algorithm):
        rng = random.Random(7)
        nodes, edges, src = _random_graph(rng, 15, 0.3, weight_lo=0)
        result = scalar_bellman_ford(
            nodes, edges, src, max_rounds=10_000, algorithm=algorithm
        )
        assert result.feasible
        assert result.rounds <= 10_000

    def test_budget_and_max_rounds_combine_tighter_wins(self):
        nodes = ["s"] + [f"x{i}" for i in range(30)]
        edges = [(f"x{i - 1}" if i else "s", f"x{i}", -1) for i in range(30)]
        edges.reverse()
        with pytest.raises(BudgetExceededError) as exc:
            scalar_bellman_ford(
                nodes, edges, "s",
                max_rounds=50,
                budget=Budget(max_relaxation_rounds=2),
                algorithm="rounds",
            )
        assert exc.value.limit == 2

    def test_deadline_checked_inside_worklist(self):
        rng = random.Random(3)
        nodes, edges, src = _random_graph(rng, 20, 0.4)
        b = Budget(deadline_ms=0.0).start()
        with pytest.raises(BudgetExceededError) as exc:
            scalar_bellman_ford(nodes, edges, src, budget=b)
        assert exc.value.resource == "deadline-ms"

    def test_negative_cycle_beats_round_cap_in_worklist(self):
        # the certainty trigger (chain length >= |V|) fires within the first
        # few pops on a tight cycle, before any generous cap is consumed
        nodes = ["s", "a", "b"]
        edges = [("s", "a", 0), ("a", "b", -1), ("b", "a", 0)]
        result = scalar_bellman_ford(nodes, edges, "s", max_rounds=1_000_000)
        assert not result.feasible


class TestWorklistBehaviour:
    def test_worklist_rounds_are_near_constant_on_benign_chains(self):
        for n in (50, 200, 800):
            nodes = ["s"] + [f"x{i}" for i in range(n)]
            edges = [(f"x{i - 1}" if i else "s", f"x{i}", -1) for i in range(n)]
            edges.reverse()  # adversarial for the classic sweeps
            result = scalar_bellman_ford(nodes, edges, "s")
            assert result.feasible and result.dist[f"x{n - 1}"] == -n
            assert result.rounds <= 3, (
                f"worklist did O({result.rounds}) rounds on a {n}-chain"
            )

    def test_unreachable_nodes_keep_top(self):
        import math

        result = scalar_bellman_ford(
            ["s", "a", "island"], [("s", "a", 2)], "s"
        )
        assert result.dist["island"] == math.inf
        assert result.dist["a"] == 2

    def test_source_must_be_a_node(self):
        with pytest.raises(ValueError, match="not among nodes"):
            scalar_bellman_ford(["a"], [], "ghost")
