"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.gallery.common import iir2d_code
from repro.gallery.paper import figure2_code


@pytest.fixture
def fig2_file(tmp_path):
    path = tmp_path / "fig2.loop"
    path.write_text(figure2_code())
    return str(path)


@pytest.fixture
def iir_file(tmp_path):
    path = tmp_path / "iir.loop"
    path.write_text(iir2d_code())
    return str(path)


class TestAnalyze:
    def test_report(self, fig2_file, capsys):
        assert main(["analyze", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "B -> C *" in out
        assert "fusion-preventing" in out
        assert "cannot fuse" in out

    def test_json(self, fig2_file, capsys):
        assert main(["analyze", fig2_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nodes"] == ["A", "B", "C", "D"]

    def test_dot(self, fig2_file, capsys):
        assert main(["analyze", fig2_file, "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_text_includes_semantic_analysis(self, fig2_file, capsys):
        assert main(["analyze", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "analysis of" in out
        assert "domain: i in [0, n] x j in [0, m]" in out
        assert "prunable: none" in out  # symbolic bounds prove nothing away

    def test_json_carries_analysis_report(self, fig2_file, capsys):
        assert main(["analyze", fig2_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nodes"] == ["A", "B", "C", "D"]  # MLDG schema intact
        assert payload["analysis"]["schema"] == "repro-analysis/1"
        assert payload["analysis"]["summary"]["may"] == 0

    def test_phantom_example_reports_prunable_edges(self, tmp_path, capsys):
        from repro.gallery import phantom_dependence_code

        path = tmp_path / "phantom.loop"
        path.write_text(phantom_dependence_code())
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "prunable: A -> B {(9, 0)}" in out
        assert "prunable: A -> C {(8, 0)}" in out


class TestFuse:
    def test_default(self, fig2_file, capsys):
        assert main(["fuse", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "strategy     : cyclic" in out
        assert "doall j = 1, m" in out  # the emitted Figure-12b core

    def test_verify_flag(self, fig2_file, capsys):
        assert main(["fuse", fig2_file, "--verify"]) == 0
        assert "ALL EQUIVALENT" in capsys.readouterr().out

    def test_profile_flag(self, iir_file, capsys):
        assert main(["fuse", iir_file, "--profile", "40,40,4"]) == 0
        out = capsys.readouterr().out
        assert "machine simulation" in out
        assert "unfused:" in out and "fused  :" in out

    def test_bad_profile_value(self, iir_file, capsys):
        assert main(["fuse", iir_file, "--profile", "nope"]) == 2

    def test_forced_strategy(self, fig2_file, capsys):
        assert main(["fuse", fig2_file, "--strategy", "legal-only", "--no-emit"]) == 0
        out = capsys.readouterr().out
        assert "legal-only" in out
        assert "transformed program" not in out

    def test_inapplicable_strategy_fails_cleanly(self, fig2_file, capsys):
        assert main(["fuse", fig2_file, "--strategy", "direct"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.loop"
        bad.write_text("do i = 1, n\nend")
        assert main(["fuse", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["fuse", "/nonexistent/x.loop"]) == 1


class TestDemo:
    @pytest.mark.parametrize("name", ["fig2", "fig8", "fig14", "iir2d", "sor"])
    def test_demos_run(self, name, capsys):
        assert main(["demo", name]) == 0
        out = capsys.readouterr().out
        assert "strategy" in out

    def test_fig14_reports_hyperplane(self, capsys):
        main(["demo", "fig14"])
        out = capsys.readouterr().out
        assert "hyperplane h : (1, -5)" in out


class TestExtendedFlags:
    def test_iterspace_flag(self, fig2_file, capsys):
        assert main(["fuse", fig2_file, "--no-emit", "--iterspace"]) == 0
        out = capsys.readouterr().out
        assert "iteration space after retiming" in out
        assert "DOALL" in out

    def test_locality_flag(self, fig2_file, capsys):
        assert main(["fuse", fig2_file, "--no-emit", "--locality"]) == 0
        out = capsys.readouterr().out
        assert "reuse distances" in out
        assert "unfused" in out and "fused" in out

    def test_compile_flag(self, iir_file, capsys):
        assert main(["fuse", iir_file, "--no-emit", "--compile"]) == 0
        out = capsys.readouterr().out
        assert "def kernel(store, n, m):" in out

    def test_all_flags_together(self, iir_file, capsys):
        assert (
            main(
                [
                    "fuse",
                    iir_file,
                    "--verify",
                    "--iterspace",
                    "--locality",
                    "--compile",
                    "--profile",
                    "30,30,4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ALL EQUIVALENT" in out and "machine simulation" in out


class TestReport:
    def test_report_command(self, capsys):
        assert main(["report", "--size", "20,10"]) == 0
        out = capsys.readouterr().out
        assert "Section 5: synchronization reduction" in out
        assert "Shift-and-peel crossover" in out

    def test_bad_size(self, capsys):
        assert main(["report", "--size", "potato"]) == 2

    def test_analyze_shows_stats(self, fig2_file, capsys):
        assert main(["analyze", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "4 loops" in out and "hard-edge" in out


@pytest.fixture
def race_file(tmp_path):
    path = tmp_path / "race.loop"
    path.write_text(
        "do i = 0, n\n"
        "  doall j = 0, m\n"
        "    a[i][j] = a[i][j-1]\n"
        "  end\n"
        "end\n"
    )
    return str(path)


@pytest.fixture
def fusion_preventing_file(tmp_path):
    import pathlib

    src = (
        pathlib.Path(__file__).parent.parent / "examples" / "fusion_preventing.loop"
    ).read_text()
    path = tmp_path / "fp.loop"
    path.write_text(src)
    return str(path)


class TestRun:
    """The hardened entry point: 0 = verified result, 1 = typed failure
    (JSON error report with --format json), 2 = usage errors."""

    def test_strict_success(self, fig2_file, capsys):
        assert main(["run", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "strategy     : cyclic" in out
        assert "emitted program" in out

    def test_strict_budget_exhaustion_exit_1(self, fig2_file, capsys):
        assert main(["run", fig2_file, "--max-relaxation-rounds", "0"]) == 1
        err = capsys.readouterr().err
        assert "budget exceeded" in err

    def test_strict_budget_exhaustion_json(self, fig2_file, capsys):
        assert (
            main(
                [
                    "run",
                    fig2_file,
                    "--max-relaxation-rounds",
                    "0",
                    "--format",
                    "json",
                ]
            )
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"]["type"] == "BudgetExceededError"
        assert "relaxation-rounds" in payload["error"]["message"]

    def test_resilient_success_text(self, fig2_file, capsys):
        assert main(["run", fig2_file, "--resilient"]) == 0
        out = capsys.readouterr().out
        assert "final rung   : doall" in out
        assert "doall       ok" in out

    def test_resilient_json_report(self, fig2_file, capsys):
        assert main(["run", fig2_file, "--resilient", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rung"] == "doall"
        assert payload["parallelism"] == "doall"
        assert payload["report"]["attempts"][0]["status"] == "ok"
        assert "emitted" in payload

    def test_resilient_fusion_preventing_reaches_doall(
        self, fusion_preventing_file, capsys
    ):
        assert (
            main(
                [
                    "run",
                    fusion_preventing_file,
                    "--resilient",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["rung"] == "doall"

    def test_resilient_degrades_under_budget(self, fig2_file, capsys):
        assert (
            main(
                [
                    "run",
                    fig2_file,
                    "--resilient",
                    "--max-relaxation-rounds",
                    "0",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["rung"] == "partition"
        statuses = [(a["rung"], a["status"]) for a in payload["report"]["attempts"]]
        assert ("doall", "failed") in statuses
        assert ("partition", "ok") in statuses

    def test_resilient_min_rung_failure_json(self, fig2_file, capsys):
        assert (
            main(
                [
                    "run",
                    fig2_file,
                    "--resilient",
                    "--deadline-ms",
                    "0",
                    "--min-rung",
                    "doall",
                    "--format",
                    "json",
                ]
            )
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"]["type"] == "ResilienceError"
        codes = {d["code"] for d in payload["error"]["diagnostics"]}
        assert "RS004" in codes
        assert payload["error"]["report"]["finalRung"] == "none"

    def test_malformed_input_json_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.loop"
        bad.write_text("x = broken\n")
        assert main(["run", str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"]["type"] == "ParseError"
        assert payload["error"]["message"]

    def test_illegal_model_program_json_error(self, race_file, capsys):
        assert main(["run", race_file, "--resilient", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"]["type"] == "ValidationError"

    def test_missing_file_exit_1(self, capsys):
        assert main(["run", "/nonexistent/x.loop"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_min_rung_is_usage_error(self, fig2_file):
        with pytest.raises(SystemExit) as exc:
            main(["run", fig2_file, "--resilient", "--min-rung", "bogus"])
        assert exc.value.code == 2

    def test_no_emit_json_omits_program(self, fig2_file, capsys):
        assert (
            main(["run", fig2_file, "--resilient", "--format", "json", "--no-emit"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert "emitted" not in payload


class TestLint:
    """Exit-code convention: 0 = clean (notes allowed), 1 = warnings, 2 = errors."""

    def test_warnings_exit_1(self, fig2_file, capsys):
        assert main(["lint", fig2_file]) == 1
        out = capsys.readouterr().out
        assert "warning[LF201]" in out
        assert "info[LF301]" in out
        assert "hint:" in out

    def test_clean_exit_0(self, iir_file, capsys):
        assert main(["lint", iir_file]) == 0
        assert "clean: no diagnostics" in capsys.readouterr().out

    def test_errors_exit_2(self, race_file, capsys):
        assert main(["lint", race_file]) == 2
        assert "error[LF103]" in capsys.readouterr().out

    def test_parse_error_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.loop"
        bad.write_text("do i = 1, n\nend")
        assert main(["lint", str(bad)]) == 2
        assert "error[LF001]" in capsys.readouterr().out

    def test_missing_file_exit_2(self, capsys):
        assert main(["lint", "/nonexistent/x.loop"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_json_format(self, fig2_file, capsys):
        assert main(["lint", fig2_file, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["path"] == fig2_file
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "LF201" in codes
        assert payload["summary"]["exitCode"] == 1
        assert all("line" in d and "column" in d for d in payload["diagnostics"])

    def test_sarif_format(self, fig2_file, capsys):
        assert main(["lint", fig2_file, "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        results = log["runs"][0]["results"]
        lf201 = [r for r in results if r["ruleId"] == "LF201"]
        assert lf201
        region = lf201[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] > 1 and region["startColumn"] > 1

    def test_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("do i = 0, n\n  doall j = 0, m\n    a[i][j] = x[i][j]\n  end\nend\n"),
        )
        assert main(["lint", "-"]) == 0
        assert "<stdin>" in capsys.readouterr().out

    def test_analyze_shares_sarif_format(self, fig2_file, capsys):
        assert main(["analyze", fig2_file, "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_analyze_format_flag_matches_legacy_flags(self, fig2_file, capsys):
        assert main(["analyze", fig2_file, "--format", "json"]) == 0
        via_format = capsys.readouterr().out
        assert main(["analyze", fig2_file, "--json"]) == 0
        assert capsys.readouterr().out == via_format


class TestRunBackend:
    """``run --backend`` executes the fused program after fusing it."""

    def test_backend_parallel_verified(self, fig2_file, capsys):
        assert (
            main(
                [
                    "run", fig2_file, "--backend", "parallel", "--jobs", "2",
                    "--size", "16,16", "--no-emit",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "backend=parallel" in out
        assert "jobs=2" in out
        assert "bit-identical to interpreter" in out

    def test_backend_compiled_json(self, fig2_file, capsys):
        assert (
            main(
                [
                    "run", fig2_file, "--backend", "compiled",
                    "--size", "12,12", "--format", "json", "--no-emit",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["execution"]["backend"] == "compiled"
        assert payload["execution"]["n"] == 12
        assert payload["execution"]["verified"] == "bit-identical to interpreter"

    def test_backend_interp_times_only(self, fig2_file, capsys):
        assert (
            main(
                ["run", fig2_file, "--backend", "interp", "--size", "8,8",
                 "--format", "json", "--no-emit"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["execution"]["backend"] == "interp"
        assert "verified" not in payload["execution"]

    def test_backend_with_resilient_is_usage_error(self, fig2_file, capsys):
        assert main(["run", fig2_file, "--resilient", "--backend", "interp"]) == 2
        assert "--backend" in capsys.readouterr().err


class TestBench:
    """The performance harness subcommand."""

    def test_bench_json_schema(self, capsys):
        assert (
            main(
                [
                    "bench", "--size", "12,12", "--jobs", "1,2", "--repeats", "1",
                    "--no-solver-bench", "--no-cache-bench", "--format", "json",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-bench-perf/1"
        backends = {b["backend"] for b in doc["benchmarks"]}
        assert {"interp", "compiled"} <= backends
        assert any(b.startswith("parallel") for b in backends)
        assert {"fusion", "retiming", "kernels"} <= set(doc["caches"])
        for record in doc["benchmarks"]:
            assert record["medianSeconds"] >= 0
            assert record["repeats"] == 1

    def test_bench_text_table(self, capsys):
        assert (
            main(
                [
                    "bench", "--size", "10,10", "--jobs", "1",
                    "--backends", "interp,parallel", "--repeats", "1",
                    "--no-solver-bench", "--no-cache-bench",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "backend" in out and "median" in out
        assert "parallel-thread" in out

    def test_bench_output_file(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        assert (
            main(
                [
                    "bench", "--size", "10,10", "--jobs", "1", "--repeats", "1",
                    "--backends", "interp", "--no-solver-bench",
                    "--no-cache-bench", "--output", str(path),
                ]
            )
            == 0
        )
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-bench-perf/1"

    def test_bench_unknown_example_exit_1(self, capsys):
        assert main(["bench", "--example", "nonexistent"]) == 1
        assert "unknown bench example" in capsys.readouterr().err

    def test_bench_bad_size_exit_2(self, capsys):
        assert main(["bench", "--size", "banana"]) == 2


class TestJobsValidation:
    """Worker counts below 1 are argparse usage errors, not pool hangs.

    ``--jobs 0`` used to reach the executor layer and fail obscurely (or
    deadlock); every worker-count flag now validates at parse time and
    exits 2 with the subcommand's usage line.
    """

    @pytest.mark.parametrize("value", ["0", "-3", "banana"])
    def test_run_jobs(self, fig2_file, capsys, value):
        with pytest.raises(SystemExit) as err:
            main(["run", fig2_file, "--backend", "parallel", "--jobs", value])
        assert err.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["0", "-1"])
    def test_batch_jobs(self, fig2_file, capsys, value):
        with pytest.raises(SystemExit) as err:
            main(["batch", fig2_file, "--jobs", value])
        assert err.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_serve_workers(self, capsys):
        # rejected at parse time, before any port is bound
        with pytest.raises(SystemExit) as err:
            main(["serve", "--workers", "0"])
        assert err.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--concurrency", "--workers"])
    def test_loadgen_counts(self, capsys, flag):
        with pytest.raises(SystemExit) as err:
            main(["loadgen", flag, "0"])
        assert err.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("value,message", [
        ("0", ">= 1"),
        ("1,0,4", ">= 1"),
        ("banana", "comma-separated integers"),
        (",", "at least one"),
    ])
    def test_bench_jobs_list(self, capsys, value, message):
        with pytest.raises(SystemExit) as err:
            main(["bench", "--jobs", value])
        assert err.value.code == 2
        assert message in capsys.readouterr().err

    def test_valid_jobs_still_accepted(self, fig2_file, capsys):
        assert (
            main(
                ["run", fig2_file, "--backend", "parallel", "--jobs", "1",
                 "--size", "8,8", "--no-emit"]
            )
            == 0
        )
        assert "jobs=1" in capsys.readouterr().out


@pytest.fixture
def clean_store_env(monkeypatch):
    """Contain ``--store``'s process-global side effects to one test.

    ``repro-fuse --store PATH`` exports ``REPRO_FUSE_STORE`` so worker
    pools inherit the file; inside one pytest process that would leak an
    ambient L2 store into every later test.
    """
    import os

    from repro.store import reset_open_stores

    monkeypatch.delenv("REPRO_FUSE_STORE", raising=False)
    yield
    reset_open_stores()
    os.environ.pop("REPRO_FUSE_STORE", None)


class TestRunAutoBackend:
    """``run --backend auto`` delegates to the execution planner."""

    def test_auto_resolves_and_verifies(self, fig2_file, capsys):
        assert (
            main(
                ["run", fig2_file, "--backend", "auto", "--size", "12,12",
                 "--no-emit"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "backend=auto" in out
        assert "resolved=" in out
        assert "bit-identical to interpreter" in out
        assert "plan        :" in out  # the [source] rationale line

    def test_auto_json_carries_the_plan(self, fig2_file, capsys):
        assert (
            main(
                ["run", fig2_file, "--backend", "auto", "--size", "12,12",
                 "--format", "json", "--no-emit"]
            )
            == 0
        )
        execution = json.loads(capsys.readouterr().out)["execution"]
        assert execution["backend"] == "auto"
        assert execution["resolved"] in ("interp", "compiled", "numpy",
                                         "parallel")
        plan = execution["plan"]
        assert plan["backend"] == execution["resolved"]
        assert plan["source"] in ("profile", "model")
        assert plan["rationale"]
        assert execution["verified"] == "bit-identical to interpreter"

    def test_auto_warms_the_store_profile_tier(self, fig2_file, tmp_path,
                                               capsys, clean_store_env):
        store = str(tmp_path / "plan.db")
        for _ in range(2):
            assert (
                main(
                    ["run", fig2_file, "--backend", "auto", "--size", "12,12",
                     "--format", "json", "--no-emit", "--store", store]
                )
                == 0
            )
            capsys.readouterr()
        # the recorded timings are visible to cache maintenance
        assert main(["cache", "stats", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "execution-profile row(s)" in out
        assert "profiles: 0" not in out

    def test_cache_stats_json_reports_profile_rows(self, fig2_file, tmp_path,
                                                   capsys, clean_store_env):
        store = str(tmp_path / "plan.db")
        assert (
            main(
                ["run", fig2_file, "--backend", "auto", "--size", "12,12",
                 "--no-emit", "--store", store]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["cache", "stats", "--store", store,
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["profileRows"] >= 1
