"""Failure injection: every verification layer must catch a corrupted
transformation.

The suite's confidence rests on the checkers, so here we corrupt known-good
retimings/schedules in targeted ways and assert each layer fails loudly:
graph-level invariants, instance-level DOALL scans, randomised execution
equivalence, and the dataflow order checker.

The targeted corruption helper now lives in :mod:`repro.resilience.faults`
(as ``perturb_retiming``); the seeded chaos suite built on top of it is
``tests/test_resilience_faults.py``.
"""

import pytest

from repro.codegen import ArrayStore, apply_fusion, run_fused, run_original
from repro.depend import extract_mldg
from repro.fusion import fuse
from repro.gallery import figure2_mldg
from repro.gallery.paper import figure2_code
from repro.loopir import parse_program
from repro.resilience.faults import perturb_retiming as _corrupt
from repro.retiming import Retiming, verify_retiming
from repro.vectors import IVec
from repro.verify import (
    DataflowSemantics,
    OrderViolation,
    execute_retimed,
    runtime_doall_violations,
    verify_retimed_execution,
)


@pytest.fixture
def good():
    g = figure2_mldg()
    return g, fuse(g).retiming


class TestGraphLevelCatches:
    def test_legality_corruption_detected(self, good):
        """Pushing C one extra iteration forward drives B->C negative."""
        g, r = good
        bad = _corrupt(r, "C", IVec(1, 0))
        v = verify_retiming(g, bad)
        assert not v.fusion_legal
        assert v.cycles_preserved  # cycle weights survive ANY retiming

    def test_doall_corruption_detected(self, good):
        """A second-coordinate nudge leaves fusion legal but not DOALL
        (C->D becomes (0,1))."""
        g, r = good
        bad = _corrupt(r, "D", IVec(0, -1))
        v = verify_retiming(g, bad)
        assert v.fusion_legal
        assert not v.doall

    def test_driver_rejects_internal_corruption(self, good):
        """_result re-verifies: a driver bug producing an illegal retiming
        would surface as FusionError, not a silent wrong answer."""
        from repro.fusion.driver import Strategy, _result
        from repro.fusion import FusionError

        g, r = good
        bad = _corrupt(r, "C", IVec(1, 0))
        with pytest.raises(FusionError, match="invalid retiming"):
            _result(g, bad, Strategy.CYCLIC, schedule=IVec(1, 0), hyperplane=None)


class TestInstanceLevelCatches:
    def test_runtime_scan_catches_non_doall(self, good):
        g, r = good
        nest = parse_program(figure2_code())
        bad = _corrupt(r, "D", IVec(0, -1))
        fp = apply_fusion(nest, bad, mldg=g)
        assert runtime_doall_violations(fp, 8, 8)

    def test_execution_equivalence_catches_non_doall(self, good):
        g, r = good
        nest = parse_program(figure2_code())
        bad = _corrupt(r, "D", IVec(0, -1))
        fp = apply_fusion(nest, bad, mldg=g)
        n, m = 8, 8
        base = ArrayStore.for_program(nest, n, m, seed=4)
        ref = run_original(nest, n, m, store=base.copy())
        # serial still matches (the fusion is legal) ...
        assert ref.equal(run_fused(fp, n, m, store=base.copy(), mode="serial"))
        # ... but the DOALL claim is false and randomised rows expose it
        mismatches = sum(
            not ref.equal(
                run_fused(fp, n, m, store=base.copy(), mode="doall", order_seed=k)
            )
            for k in range(5)
        )
        assert mismatches > 0

    def test_dataflow_order_checker_catches_non_doall(self, good):
        g, r = good
        bad = _corrupt(r, "D", IVec(0, -1))
        sem = DataflowSemantics(g, (6, 6))
        with pytest.raises(OrderViolation):
            # some shuffle will schedule the consumer first; several seeds
            # make the probe deterministic-ish
            for k in range(6):
                execute_retimed(sem, bad, mode="doall", order_seed=k)


class TestScheduleCorruption:
    def test_wrong_wavefront_schedule_caught(self):
        """Figure 2 forced through Algorithm 5 has a valid s; a shallower
        skew is not strict and the dataflow executor rejects it."""
        g = figure2_mldg()
        res = fuse(g, strategy="hyperplane")
        assert verify_retimed_execution(
            g, res.retiming, (6, 6), mode="hyperplane", schedule=res.schedule
        )
        too_shallow = IVec(0, 1)  # serialises columns; (k,0) deps break it
        sem = DataflowSemantics(g, (6, 6))
        with pytest.raises(OrderViolation):
            execute_retimed(
                sem, res.retiming, mode="hyperplane", schedule=too_shallow
            )

    def test_schedule_constructor_rejects_corrupt_inputs(self):
        from repro.retiming import schedule_vector_for

        with pytest.raises(ValueError):
            schedule_vector_for([IVec(0, -3)])
