"""Unit and property tests for the n-dimensional generalisations."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fusion import (
    NoParallelRetimingError,
    cyclic_parallel_retiming,
    multidim_hyperplane_fusion,
    multidim_parallel_retiming,
    multidim_schedule_vector,
)
from repro.gallery import figure2_mldg, figure8_mldg, figure14_mldg, iir2d_mldg
from repro.graph import MLDG, is_fusion_legal, mldg_from_table
from repro.vectors import IVec


class TestTwoDimensionalAgreement:
    """In 2-D the generalisation must coincide with Algorithm 4."""

    @pytest.mark.parametrize(
        "build", [figure2_mldg, figure8_mldg, iir2d_mldg], ids=lambda b: b.__name__
    )
    def test_same_retiming_as_algorithm4(self, build):
        g = build()
        assert multidim_parallel_retiming(g) == cyclic_parallel_retiming(g)

    def test_same_failure_as_algorithm4(self):
        with pytest.raises(NoParallelRetimingError):
            multidim_parallel_retiming(figure14_mldg())


def _random_legal_3d(seed: int, n: int = 6) -> MLDG:
    rng = random.Random(seed)
    g = MLDG(dim=3)
    names = [f"L{k}" for k in range(n)]
    for name in names:
        g.add_node(name)
    for a in range(n):
        for b in range(n):
            if a == b or rng.random() > 0.4:
                continue
            lo = 0 if a < b else 1
            count = rng.randint(1, 2)
            vecs = [
                IVec(
                    rng.randint(lo, 2),
                    rng.randint(-3, 3),
                    rng.randint(-3, 3),
                )
                for _ in range(count)
            ]
            g.add_dependence(names[a], names[b], *vecs)
    return g


class TestThreeDimensional:
    def test_known_example(self):
        g = mldg_from_table(
            {
                ("A", "B"): [(0, -2, 1)],
                ("B", "C"): [(0, 1, -4), (0, 1, 2)],  # hard
                ("C", "A"): [(1, 0, 0)],
            },
            nodes=["A", "B", "C"],
            dim=3,
        )
        r = multidim_parallel_retiming(g)
        gr = r.apply(g)
        for d in gr.all_vectors():
            assert d[0] >= 1 or d.is_zero()
        assert is_fusion_legal(gr)

    @pytest.mark.parametrize("seed", range(10))
    def test_invariant_on_random_graphs(self, seed):
        g = _random_legal_3d(seed)
        try:
            r = multidim_parallel_retiming(g)
        except NoParallelRetimingError:
            return  # legitimately impossible for this graph
        gr = r.apply(g)
        for d in gr.all_vectors():
            assert d[0] >= 1 or d.is_zero(), (seed, d)

    def test_failure_carries_phase(self):
        g = mldg_from_table(
            {
                ("A", "B"): [(0, 0, -1)],
                ("B", "A"): [(0, 0, 3)],
            },
            nodes=["A", "B"],
            dim=3,
        )
        with pytest.raises(NoParallelRetimingError) as err:
            multidim_parallel_retiming(g)
        assert err.value.phase.startswith("tail[")


class TestMultidimSchedule:
    def test_matches_lemma_4_3_in_2d(self):
        """The n-D construction agrees with Lemma 4.3 on Figure 14's set."""
        deps = [
            IVec(0, 5), IVec(0, 0), IVec(0, 2), IVec(0, 1),
            IVec(1, 0), IVec(1, -4), IVec(1, 3),
        ]
        assert multidim_schedule_vector(deps) == IVec(5, 1)

    def test_strict_on_3d_sets(self):
        deps = [IVec(0, 0, 3), IVec(0, 2, -5), IVec(1, -4, -4)]
        s = multidim_schedule_vector(deps)
        assert all(s.dot(d) > 0 for d in deps)

    def test_rejects_negative_vector(self):
        with pytest.raises(ValueError):
            multidim_schedule_vector([IVec(0, -1, 0)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            multidim_schedule_vector([IVec(0, 0)])

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=-6, max_value=6),
                st.integers(min_value=-6, max_value=6),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=150)
    def test_property_strict_for_lex_nonneg(self, triples):
        vecs = []
        for t in triples:
            v = IVec(t)
            if tuple(v) >= (0, 0, 0) and not v.is_zero():
                vecs.append(v)
        if not vecs:
            return
        s = multidim_schedule_vector(vecs)
        assert all(s.dot(d) > 0 for d in vecs)


class TestMultidimHyperplane:
    def test_3d_pipeline(self):
        g = mldg_from_table(
            {
                ("A", "B"): [(0, 0, -2)],
                ("B", "A"): [(0, 0, 5), (1, 0, 0)],
            },
            nodes=["A", "B"],
            dim=3,
        )
        r, s = multidim_hyperplane_fusion(g)
        gr = r.apply(g)
        assert is_fusion_legal(gr)
        assert all(s.dot(d) > 0 for d in gr.all_vectors() if not d.is_zero())

    def test_no_dependencies(self):
        g = MLDG(dim=3)
        g.add_node("A")
        g.add_node("B")
        r, s = multidim_hyperplane_fusion(g)
        assert s == IVec(1, 0, 0)
