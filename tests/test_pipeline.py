"""Unit tests for the one-call pipeline API."""

import pytest

from repro import Parallelism, Strategy, fuse_and_verify, fuse_program
from repro.gallery.common import iir2d_code
from repro.gallery.paper import figure2_code
from repro.loopir import ParseError, parse_program


class TestFuseProgram:
    def test_from_source_text(self):
        out = fuse_program(figure2_code())
        assert out.fusion.strategy is Strategy.CYCLIC
        assert out.parallelism is Parallelism.DOALL
        assert out.fused is not None
        assert out.mldg.num_nodes == 4

    def test_from_nest(self):
        nest = parse_program(iir2d_code())
        out = fuse_program(nest)
        assert out.nest is nest
        assert out.fusion.is_doall

    def test_forced_strategy(self):
        out = fuse_program(figure2_code(), strategy="legal-only")
        assert out.fusion.strategy is Strategy.LEGAL_ONLY
        assert out.parallelism is Parallelism.SERIAL

    def test_emitted_code(self):
        out = fuse_program(figure2_code())
        assert "doall j = 1, m" in out.emitted_code()

    def test_parse_errors_propagate(self):
        with pytest.raises(ParseError):
            fuse_program("do i = 1, n\nend")

    def test_retiming_shortcut(self):
        out = fuse_program(figure2_code())
        assert out.retiming == out.fusion.retiming


class TestFuseAndVerify:
    def test_verified_note_appended(self):
        out = fuse_and_verify(figure2_code(), sizes=[(7, 6)], seeds=[0])
        assert any("verified" in n for n in out.notes)

    def test_iir2d(self):
        out = fuse_and_verify(iir2d_code(), sizes=[(6, 9)], seeds=[1])
        assert out.fusion.is_doall

    def test_custom_sizes_respected(self):
        # two sizes x two seeds x two modes = 8 executions; smoke-level check
        out = fuse_and_verify(figure2_code(), sizes=[(5, 5), (6, 4)], seeds=[0, 1])
        assert "8 randomised executions" in out.notes[-1]
