"""Unit tests for repro.obs counters, gauges, histograms and the registry."""

import threading

import pytest

from repro import obs
from repro.obs import MetricsRegistry, default_registry, use_registry

pytestmark = pytest.mark.obs


class TestInstruments:
    def test_counter_increments(self):
        c = MetricsRegistry().counter("c")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0

    def test_gauge_set_and_add(self):
        g = MetricsRegistry().gauge("g")
        g.set(10)
        g.add(-3)
        assert g.value == 7

    def test_histogram_stats(self):
        h = MetricsRegistry().histogram("h")
        assert h.count == 0
        for v in (1.0, 2.0, 6.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 3
        assert d["sum"] == pytest.approx(9.0)
        assert d["min"] == 1.0 and d["max"] == 6.0
        assert d["mean"] == pytest.approx(3.0)


class TestRegistry:
    def test_create_on_first_use_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z") is reg.histogram("z")

    def test_len_and_empty(self):
        reg = MetricsRegistry()
        assert reg.empty and len(reg) == 0
        reg.counter("a").inc()
        reg.gauge("b").set(1)
        assert not reg.empty and len(reg) == 2

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.empty and len(reg) == 0
        # instruments created before reset are detached, not rewound
        assert reg.counter("a").value == 0

    def test_to_dict_shape_and_sorting(self):
        reg = MetricsRegistry()
        reg.counter("b.two").inc(2)
        reg.counter("a.one").inc()
        reg.gauge("g").set(3.5)
        reg.histogram("h").observe(1.0)
        d = reg.to_dict()
        assert set(d) == {"counters", "gauges", "histograms"}
        assert list(d["counters"]) == ["a.one", "b.two"]
        assert d["counters"]["b.two"] == 2
        assert d["gauges"]["g"] == 3.5
        assert d["histograms"]["h"]["count"] == 1

    def test_render_text(self):
        reg = MetricsRegistry()
        reg.counter("solver.calls").inc(3)
        text = reg.render_text()
        assert "solver.calls" in text and "3" in text
        assert "no metrics" in MetricsRegistry().render_text()


class TestDefaultRegistry:
    def test_use_registry_swaps_and_restores(self):
        before = default_registry()
        with use_registry() as reg:
            assert default_registry() is reg
            assert reg is not before
            obs.counter("scoped").inc()
            assert reg.counter("scoped").value == 1
        assert default_registry() is before
        assert "scoped" not in before.to_dict()["counters"]

    def test_use_registry_accepts_explicit_registry(self):
        mine = MetricsRegistry()
        with use_registry(mine) as reg:
            assert reg is mine
            assert default_registry() is mine

    def test_use_registry_restores_on_error(self):
        before = default_registry()
        with pytest.raises(RuntimeError):
            with use_registry():
                raise RuntimeError("boom")
        assert default_registry() is before

    def test_shorthands_resolve_at_call_time(self):
        with use_registry() as reg:
            obs.counter("c").inc()
            obs.gauge("g").set(2)
            obs.histogram("h").observe(0.5)
            assert reg.counter("c").value == 1
            assert reg.gauge("g").value == 2
            assert reg.histogram("h").count == 1


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self):
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 1000

        def work():
            c = reg.counter("shared")
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert reg.counter("shared").value == n_threads * per_thread
