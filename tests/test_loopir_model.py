"""Unit tests for the loop-IR AST, builder, validator and synthesiser."""

import pytest

from repro.graph import is_sequence_executable, random_legal_mldg
from repro.loopir import (
    ArrayRef,
    Assignment,
    BinOp,
    Const,
    InnerLoop,
    LoopNest,
    LoopNestBuilder,
    UnaryOp,
    ValidationError,
    parse_program,
    program_from_mldg,
    validate_program,
)
from repro.depend import extract_mldg
from repro.vectors import IVec


class TestAstNodes:
    def test_arrayref_shift(self):
        ref = ArrayRef("a", IVec(1, -1))
        assert ref.shifted(IVec(-1, 0)) == ArrayRef("a", IVec(0, -1))

    def test_assignment_shift_covers_expression(self):
        stmt = Assignment(
            target=ArrayRef("c", IVec(0, 0)),
            expr=BinOp("-", ArrayRef("b", IVec(0, 2)), ArrayRef("a", IVec(0, -1))),
        )
        shifted = stmt.shifted(IVec(-1, 0))
        assert shifted.target.offset == IVec(-1, 0)
        reads = list(shifted.reads())
        assert reads[0].offset == IVec(-1, 2)
        assert reads[1].offset == IVec(-1, -1)

    def test_unary_op_validation(self):
        with pytest.raises(ValueError):
            UnaryOp("+", Const(1.0))

    def test_binop_validation(self):
        with pytest.raises(ValueError):
            BinOp("%", Const(1.0), Const(2.0))

    def test_inner_loop_requires_statements(self):
        with pytest.raises(ValueError):
            InnerLoop(label="A", statements=())

    def test_nest_rejects_duplicate_labels(self):
        loop = InnerLoop(
            "A", (Assignment(ArrayRef("a", IVec(0, 0)), Const(1.0)),)
        )
        loop2 = InnerLoop(
            "A", (Assignment(ArrayRef("b", IVec(0, 0)), Const(1.0)),)
        )
        with pytest.raises(ValueError):
            LoopNest(loops=(loop, loop2))

    def test_nest_queries(self):
        nest = parse_program(
            "do i = 0, n\n  A: doall j = 0, m\n    a[i][j] = x[i][j]\n  end\nend"
        )
        assert nest.input_arrays() == {"x"}
        assert nest.all_arrays() == {"a", "x"}
        assert nest.statement_count() == 1
        assert nest.loop("A").written_arrays() == {"a"}
        with pytest.raises(KeyError):
            nest.loop("Z")


class TestBuilder:
    def test_builds_figure2_equivalent(self):
        from repro.gallery.paper import figure2_code

        built = (
            LoopNestBuilder()
            .loop("A").assign("a", (0, 0), "e[i-2][j-1]")
            .loop("B").assign("b", (0, 0), "a[i-1][j-1] + a[i-2][j-1]")
            .loop("C")
            .assign("c", (0, 0), "b[i][j+2] - a[i][j-1] + b[i][j-1]")
            .assign("d", (0, 0), "c[i-1][j]")
            .loop("D").assign("e", (0, 0), "c[i][j+1]")
            .build()
        )
        assert built == parse_program(figure2_code())

    def test_assign_before_loop_rejected(self):
        with pytest.raises(ValueError):
            LoopNestBuilder().assign("a", (0, 0), "1")

    def test_duplicate_label_rejected(self):
        b = LoopNestBuilder().loop("A").assign("a", (0, 0), "1")
        with pytest.raises(ValueError):
            b.loop("A")

    def test_validation_on_build(self):
        b = (
            LoopNestBuilder()
            .loop("A").assign("a", (0, 0), "1")
            .loop("B").assign("a", (0, 0), "2")
        )
        with pytest.raises(ValidationError):
            b.build()
        assert b.build(validate=False).labels == ("A", "B")


class TestValidator:
    def _nest(self, body: str):
        return parse_program(f"do i = 0, n\n{body}\nend")

    def test_accepts_paper_programs(self):
        from repro.gallery.common import iir2d_code
        from repro.gallery.paper import figure2_code

        validate_program(parse_program(figure2_code()))
        validate_program(parse_program(iir2d_code()))

    def test_multiple_writers_rejected(self):
        nest = self._nest(
            "  doall j = 0, m\n    a[i][j] = 1\n  end\n"
            "  doall j = 0, m\n    a[i][j] = 2\n  end"
        )
        with pytest.raises(ValidationError, match="single-assignment"):
            validate_program(nest)

    def test_non_doall_self_read_rejected(self):
        nest = self._nest("  doall j = 0, m\n    a[i][j] = a[i][j-1]\n  end")
        with pytest.raises(ValidationError, match="not a DOALL"):
            validate_program(nest)

    def test_future_outer_read_rejected(self):
        nest = self._nest(
            "  doall j = 0, m\n    a[i][j] = b[i+1][j]\n  end\n"
            "  doall j = 0, m\n    b[i][j] = 1\n  end"
        )
        with pytest.raises(ValidationError, match="future"):
            validate_program(nest)

    def test_backward_same_iteration_read_rejected(self):
        nest = self._nest(
            "  doall j = 0, m\n    a[i][j] = b[i][j]\n  end\n"
            "  doall j = 0, m\n    b[i][j] = 1\n  end"
        )
        with pytest.raises(ValidationError, match="written later"):
            validate_program(nest)

    def test_read_before_write_same_body_rejected(self):
        nest = self._nest(
            "  doall j = 0, m\n    a[i][j] = c[i][j]\n    c[i][j] = 1\n  end"
        )
        with pytest.raises(ValidationError, match="before it is written"):
            validate_program(nest)

    def test_same_body_forward_read_allowed(self):
        nest = self._nest(
            "  doall j = 0, m\n    c[i][j] = 1\n    a[i][j] = c[i][j]\n  end"
        )
        validate_program(nest)


class TestSynthesis:
    @pytest.mark.parametrize("seed", range(6))
    def test_roundtrip_random_graphs(self, seed):
        g = random_legal_mldg(7, seed=seed)
        nest = program_from_mldg(g)
        validate_program(nest)
        assert extract_mldg(nest) == g

    def test_rejects_non_sequence_executable(self):
        from repro.gallery import figure14_mldg

        with pytest.raises(ValueError, match="sequence-executable"):
            program_from_mldg(figure14_mldg())

    def test_rejects_non_2d(self):
        from repro.graph import mldg_from_table

        g = mldg_from_table({("A", "B"): [(1, 0, 0)]}, nodes=["A", "B"], dim=3)
        with pytest.raises(ValueError):
            program_from_mldg(g)

    def test_figure8_synthesis_runs(self):
        from repro.gallery import figure8_mldg

        nest = program_from_mldg(figure8_mldg())
        assert extract_mldg(nest) == figure8_mldg()
        assert is_sequence_executable(extract_mldg(nest)).legal


class TestRichBodies:
    @pytest.mark.parametrize("seed", range(4))
    def test_rich_bodies_preserve_extraction(self, seed):
        g = random_legal_mldg(6, seed=seed)
        nest = program_from_mldg(g, rich_bodies=True)
        validate_program(nest)
        assert extract_mldg(nest) == g
        assert all(len(lp.statements) == 2 for lp in nest.loops)

    def test_rich_bodies_execute_equivalently(self):
        from repro.codegen import ArrayStore, apply_fusion, run_fused, run_original
        from repro.fusion import fuse

        g = random_legal_mldg(5, seed=77)
        nest = program_from_mldg(g, rich_bodies=True)
        gx = extract_mldg(nest)
        res = fuse(gx)
        fp = apply_fusion(nest, res.retiming, mldg=gx)
        n, m = 7, 6
        base = ArrayStore.for_program(nest, n, m, seed=5)
        ref = run_original(nest, n, m, store=base.copy())
        out = run_fused(fp, n, m, store=base.copy(), mode="doall")
        if res.is_doall:
            assert ref.equal(out)
        assert ref.equal(run_fused(fp, n, m, store=base.copy(), mode="serial"))
