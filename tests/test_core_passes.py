"""PassManager and pass-inventory behavior (repro.core.manager/passes)."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.manager import PM001, PassManager, diagnostics_from_exception
from repro.core.passes import (
    Artifact,
    FusePass,
    Pass,
    resilient_passes,
    strict_passes,
)
from repro.core.session import Session
from repro.gallery.paper import figure2_code
from repro.lint.diagnostics import Severity
from repro.loopir import ValidationError


class _BoomPass(Pass):
    name = "fuse"
    span_name = "pipeline.fuse"

    def run(self, artifact, session):
        raise ValueError("synthetic stage failure")


def test_strict_pass_sequence():
    assert tuple(p.name for p in strict_passes()) == (
        "parse",
        "validate",
        "lint",
        "extract-mldg",
        "prune-mldg",
        "legality",
        "fuse",
        "verify-retiming",
        "codegen",
    )


def test_resilient_pass_sequence_has_no_legality_pass():
    names = tuple(p.name for p in resilient_passes())
    assert names == (
        "parse",
        "validate",
        "lint",
        "extract-mldg",
        "prune-mldg",
        "resilient-fuse",
    )
    assert "legality" not in names  # the ladder owns legality per rung


def test_duplicate_pass_names_rejected():
    with pytest.raises(ValueError, match="duplicate pass names"):
        PassManager([FusePass(), FusePass()])


def test_replacing_substitutes_by_name():
    pm = PassManager(strict_passes(), name="strict")
    variant = pm.replacing(fuse=_BoomPass())
    assert variant.pass_names == pm.pass_names
    assert isinstance(
        variant.passes[pm.pass_names.index("fuse")], _BoomPass
    )
    # the original manager is untouched
    assert isinstance(pm.passes[pm.pass_names.index("fuse")], FusePass)


def test_replacing_unknown_name_raises():
    pm = PassManager(strict_passes(), name="strict")
    with pytest.raises(KeyError, match="no passes named"):
        pm.replacing(nonsense=_BoomPass())


def test_failing_pass_records_pm001_and_reraises():
    session = Session()
    pm = PassManager(strict_passes(), name="strict").replacing(fuse=_BoomPass())
    artifact = Artifact(source=figure2_code())
    with pytest.raises(ValueError, match="synthetic stage failure"):
        pm.run(artifact, session)
    diags = [d for d in session.diagnostics if d.code == PM001]
    assert len(diags) == 1
    assert diags[0].severity is Severity.ERROR
    assert "'fuse'" in diags[0].message
    assert "ValueError" in diags[0].message


def test_validation_error_contributes_findings_not_pm001():
    session = Session()
    # a future-iteration read violates the §1 model and must gate fusion
    bad = figure2_code().replace(
        "a[i][j] = e[i-2][j-1]", "a[i][j] = e[i+1][j]"
    )
    assert bad != figure2_code()
    with pytest.raises(ValidationError):
        session.fuse_program(bad)
    assert session.diagnostics, "validation failure must leave diagnostics"
    assert all(d.code != PM001 for d in session.diagnostics)


def test_diagnostics_from_exception_prefers_attached_diagnostics():
    exc = ValueError("bare")
    diags = diagnostics_from_exception(exc, pass_name="codegen")
    assert [d.code for d in diags] == [PM001]


def test_pass_metrics_recorded_uniformly():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        Session().fuse_program(figure2_code())
    for name in (
        "parse",
        "validate",
        "lint",
        "extract-mldg",
        "prune-mldg",
        "legality",
        "fuse",
        "verify-retiming",
        "codegen",
    ):
        assert registry.counter(f"core.pass.{name}.runs").value == 1
        assert registry.histogram(f"core.pass.{name}.ms").count == 1


def test_error_counter_bumped_on_failure():
    registry = obs.MetricsRegistry()
    pm = PassManager(strict_passes(), name="strict").replacing(fuse=_BoomPass())
    with obs.use_registry(registry):
        with pytest.raises(ValueError):
            pm.run(Artifact(source=figure2_code()), Session())
    assert registry.counter("core.pass.fuse.errors").value == 1
    # passes after the failing one never ran
    assert registry.counter("core.pass.codegen.runs").value == 0
