"""Properties tying the static analyzer to the rest of the pipeline.

Three contracts:

* a program that lints clean of errors fuses without :class:`FusionError`;
* ``LF202`` fires exactly when the fusion driver raises
  :class:`IllegalMLDGError` (and the exception carries the diagnostics);
* the static DOALL race detector (``LF103`` / ``static_doall_races``)
  agrees with the instance-level scan ``runtime_doall_violations`` on
  every gallery MLDG.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.codegen import apply_fusion
from repro.codegen.fused import DeadlockError
from repro.fusion import FusionError, IllegalMLDGError, fuse
from repro.gallery import (
    figure2_mldg,
    figure8_mldg,
    figure14_mldg,
    floyd_steinberg_mldg,
    iir2d_mldg,
)
from repro.graph import mldg_from_table, random_legal_mldg
from repro.graph.legality import is_sequence_executable
from repro.lint import lint_mldg, lint_nest, static_doall_races
from repro.loopir import program_from_mldg, validate_program
from repro.loopir.validate import ValidationError
from repro.pipeline import fuse_program
from repro.verify import runtime_doall_violations

seeds = st.integers(min_value=0, max_value=10**6)
sizes = st.integers(min_value=1, max_value=8)

GALLERY = {
    "fig2": figure2_mldg,
    "fig8": figure8_mldg,
    "fig14": figure14_mldg,
    "iir2d": iir2d_mldg,
    "sor": floyd_steinberg_mldg,
}


@given(seeds, sizes)
@settings(max_examples=40, deadline=None)
def test_error_clean_programs_fuse(seed, n):
    """Lint-clean (no error severity) source programs never hit FusionError."""
    g = random_legal_mldg(n, seed=seed)
    assume(is_sequence_executable(g).legal)
    nest = program_from_mldg(g)
    result = lint_nest(nest)
    assert not result.has_errors
    try:
        out = fuse_program(nest)
    except FusionError as exc:  # pragma: no cover - the property under test
        pytest.fail(f"lint-clean program failed to fuse: {exc}")
    assert out.fusion.retiming is not None


@given(seeds, sizes)
@settings(max_examples=40, deadline=None)
def test_linter_agrees_with_validator(seed, n):
    """Model-layer lint errors occur exactly when validate_program raises."""
    g = random_legal_mldg(n, seed=seed)
    assume(is_sequence_executable(g).legal)
    nest = program_from_mldg(g)
    validate_program(nest)  # must not raise
    model_codes = {"LF101", "LF102", "LF103", "LF104"}
    assert not (set(lint_nest(nest).codes) & model_codes)


@given(seeds, sizes)
@settings(max_examples=40, deadline=None)
def test_legal_graphs_never_lf202(seed, n):
    g = random_legal_mldg(n, seed=seed)
    result = lint_mldg(g)
    assert not result.by_code("LF202")
    fuse(g)  # must not raise IllegalMLDGError


@pytest.mark.parametrize(
    "table",
    [
        {("A", "B"): [(0, 1)], ("B", "A"): [(-1, 0)]},
        {("A", "A"): [(-1, 2)]},
        {("A", "B"): [(1, 0)], ("B", "C"): [(-2, 0)], ("C", "A"): [(0, 0)]},
    ],
    ids=["two-cycle", "self-loop", "three-cycle"],
)
def test_lf202_iff_illegal_mldg_error(table):
    g = mldg_from_table(table)
    diagnostics = lint_mldg(g).by_code("LF202")
    assert diagnostics
    with pytest.raises(IllegalMLDGError) as excinfo:
        fuse(g)
    assert excinfo.value.diagnostics  # structured findings ride on the error
    assert {d.code for d in excinfo.value.diagnostics} <= {"LF202", "LF102", "LF103", "LF104"}


def test_validation_error_carries_findings():
    bad = (
        "do i = 0, n\n"
        "  doall j = 0, m\n"
        "    a[i][j] = x[i][j]\n"
        "    a[i][j] = y[i][j]\n"
        "  end\n"
        "end\n"
    )
    with pytest.raises(ValidationError) as excinfo:
        fuse_program(bad)
    assert [f.code for f in excinfo.value.findings] == ["LF101"]
    assert excinfo.value.problems == [f.message for f in excinfo.value.findings]


class TestGalleryAgreement:
    """static_doall_races vs runtime_doall_violations on all five MLDGs."""

    @pytest.mark.parametrize("name", sorted(GALLERY))
    def test_static_matches_graph_level_doall(self, name):
        g = GALLERY[name]()
        result = fuse(g)
        static = static_doall_races(result.retimed, fused=True)
        assert (not static) == result.is_doall

    @pytest.mark.parametrize("name", sorted(GALLERY))
    def test_static_matches_runtime_scan(self, name):
        g = GALLERY[name]()
        result = fuse(g)
        static = static_doall_races(result.retimed, fused=True)
        nest = program_from_mldg(g, check=False)
        try:
            fp = apply_fusion(nest, result.retiming, mldg=g)
        except DeadlockError:
            # no fused body order exists (fig14): the static detector must
            # already have refused to call the fused loop DOALL
            assert static, f"{name}: deadlock but no static race reported"
            return
        runtime = runtime_doall_violations(fp, 8, 8, limit=100)
        assert (not static) == (not runtime), (
            f"{name}: static={[str(r) for r in static][:3]} "
            f"runtime={runtime[:3]}"
        )

    def test_expected_gallery_split(self):
        doall = {
            name: fuse(builder()).is_doall for name, builder in GALLERY.items()
        }
        assert doall == {
            "fig2": True,
            "fig8": True,
            "fig14": False,
            "iir2d": True,
            "sor": False,
        }
