"""Unit tests for lexicographic order helpers."""

import pytest

from repro.vectors import (
    IVec,
    is_strict_schedule_vector,
    lex_cmp,
    lex_max,
    lex_min,
    lex_nonnegative,
    lex_positive,
    lex_sorted,
    lex_sum,
)


class TestCmp:
    def test_less(self):
        assert lex_cmp(IVec(0, 9), IVec(1, 0)) == -1

    def test_greater(self):
        assert lex_cmp(IVec(1, 0), IVec(0, 9)) == 1

    def test_equal(self):
        assert lex_cmp(IVec(2, 2), IVec(2, 2)) == 0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            lex_cmp(IVec(1, 2), IVec(1, 2, 3))


class TestMinMaxSum:
    def test_min_is_paper_delta(self):
        # D_L(A,B) = {(1,1),(2,1)} -> delta = (1,1)
        assert lex_min([IVec(2, 1), IVec(1, 1)]) == IVec(1, 1)

    def test_min_empty_raises(self):
        with pytest.raises(ValueError):
            lex_min([])

    def test_max(self):
        assert lex_max([IVec(0, 5), IVec(1, -9)]) == IVec(1, -9)

    def test_max_empty_raises(self):
        with pytest.raises(ValueError):
            lex_max([])

    def test_sum_cycle_weight(self):
        # cycle c1 = A->B->C->D->A in Figure 2: (1,1)+(0,-2)+(0,-1)+(2,1)=(3,-1)
        total = lex_sum([IVec(1, 1), IVec(0, -2), IVec(0, -1), IVec(2, 1)])
        assert total == IVec(3, -1)

    def test_sum_empty_is_none(self):
        assert lex_sum([]) is None

    def test_sorted(self):
        out = lex_sorted([IVec(1, 0), IVec(0, 3)])
        assert out == [IVec(0, 3), IVec(1, 0)]


class TestPredicates:
    def test_positive(self):
        assert lex_positive(IVec(0, 1))
        assert not lex_positive(IVec(0, 0))
        assert not lex_positive(IVec(0, -1))

    def test_nonnegative(self):
        assert lex_nonnegative(IVec(0, 0))
        assert lex_nonnegative(IVec(1, -5))
        assert not lex_nonnegative(IVec(0, -1))

    def test_strict_schedule_row(self):
        # s=(1,0) is strict for Figure 3's retimed vectors (Section 2.3)
        s = IVec(1, 0)
        deps = [IVec(1, 1), IVec(1, -2), IVec(1, 0), IVec(1, 1)]
        assert is_strict_schedule_vector(s, deps)

    def test_strict_schedule_rejects_row_dependence(self):
        assert not is_strict_schedule_vector(IVec(1, 0), [IVec(0, 2)])

    def test_zero_vectors_exempt(self):
        assert is_strict_schedule_vector(IVec(1, 0), [IVec(0, 0), IVec(2, 3)])

    def test_figure14_schedule(self):
        # s=(5,1) must be strict for the Figure-15 retimed vector set
        s = IVec(5, 1)
        deps = [
            IVec(0, 5), IVec(0, 0), IVec(0, 2), IVec(0, 1),
            IVec(1, 0), IVec(1, -4), IVec(1, 3),
        ]
        assert is_strict_schedule_vector(s, deps)
        # but (4,1) is not: (1,-4) . (4,1) = 0
        assert not is_strict_schedule_vector(IVec(4, 1), deps)
