"""Unit tests for the loop DSL parser and printer."""

import pytest

from repro.loopir import (
    ArrayRef,
    ParseError,
    format_program,
    parse_program,
)
from repro.vectors import IVec

SIMPLE = """
do i = 0, n
  doall j = 0, m
    a[i][j] = b[i-1][j+2] + 1
  end
end
"""


class TestBasicParsing:
    def test_structure(self):
        nest = parse_program(SIMPLE)
        assert nest.labels == ("L1",)
        assert nest.outer_bound == "n"
        assert nest.inner_bound == "m"
        assert nest.index_names == ("i", "j")

    def test_statement_offsets(self):
        nest = parse_program(SIMPLE)
        stmt = nest.loops[0].statements[0]
        assert stmt.target == ArrayRef("a", IVec(0, 0))
        reads = list(stmt.reads())
        assert reads == [ArrayRef("b", IVec(-1, 2))]

    def test_label_prefix_syntax(self):
        src = "do i = 0, n\n  A: doall j = 0, m\n    a[i][j] = 1\n  end\nend"
        nest = parse_program(src)
        assert nest.labels == ("A",)

    def test_label_comment_syntax(self):
        src = "do i = 0, n\n  doall j = 0, m   ! loop Zed\n    a[i][j] = 1\n  end\nend"
        nest = parse_program(src)
        assert nest.labels == ("Zed",)

    def test_auto_labels(self):
        src = (
            "do i = 0, n\n"
            "  doall j = 0, m\n    a[i][j] = 1\n  end\n"
            "  doall j = 0, m\n    b[i][j] = 2\n  end\n"
            "end"
        )
        assert parse_program(src).labels == ("L1", "L2")

    def test_comments_stripped(self):
        src = "do i = 0, n  ! outer\n  doall j = 0, m\n    a[i][j] = 1 ! one\n  end\nend"
        nest = parse_program(src)
        assert nest.loops[0].statements[0].target.array == "a"

    def test_custom_index_names(self):
        src = "do t = 0, T\n  doall x = 0, X\n    a[t][x] = a[t-1][x+1]\n  end\nend"
        nest = parse_program(src)
        assert nest.index_names == ("t", "x")
        assert nest.outer_bound == "T"

    def test_expression_precedence(self):
        src = "do i = 0, n\n  doall j = 0, m\n    a[i][j] = 1 + 2 * 3\n  end\nend"
        nest = parse_program(src)
        expr = nest.loops[0].statements[0].expr
        assert expr.op == "+"

    def test_parentheses_and_unary(self):
        src = "do i = 0, n\n  doall j = 0, m\n    a[i][j] = -(1 + 2) * 3\n  end\nend"
        nest = parse_program(src)
        assert nest.loops[0].statements[0].expr.op == "*"


class TestParseErrors:
    def test_nonzero_lower_bound(self):
        with pytest.raises(ParseError, match="lower bound 0"):
            parse_program("do i = 1, n\n  doall j = 0, m\n    a[i][j] = 1\n  end\nend")

    def test_wrong_subscript_variable(self):
        with pytest.raises(ParseError, match="subscript"):
            parse_program("do i = 0, n\n  doall j = 0, m\n    a[j][i] = 1\n  end\nend")

    def test_mismatched_inner_ranges(self):
        src = (
            "do i = 0, n\n"
            "  doall j = 0, m\n    a[i][j] = 1\n  end\n"
            "  doall j = 0, k\n    b[i][j] = 2\n  end\n"
            "end"
        )
        with pytest.raises(ParseError, match="same control index and range"):
            parse_program(src)

    def test_missing_do(self):
        with pytest.raises(ParseError):
            parse_program("doall j = 0, m\n  a[i][j] = 1\nend")

    def test_empty_loop(self):
        with pytest.raises(ParseError):
            parse_program("do i = 0, n\n  doall j = 0, m\n  end\nend")

    def test_no_inner_loops(self):
        with pytest.raises(ParseError):
            parse_program("do i = 0, n\nend")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_program(SIMPLE + "\nextra")

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            parse_program("do i = 0, n @")

    def test_inner_equals_outer_index(self):
        with pytest.raises(ParseError, match="differ"):
            parse_program("do i = 0, n\n  doall i = 0, m\n    a[i][i] = 1\n  end\nend")

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as err:
            parse_program("do i = 0, n\n  doall j = 0, m\n    a[q][j] = 1\n  end\nend")
        assert err.value.line == 3


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source_fn",
        ["figure2_code"],
    )
    def test_paper_code_roundtrip(self, source_fn):
        from repro.gallery import paper

        src = getattr(paper, source_fn)()
        nest = parse_program(src)
        assert parse_program(format_program(nest)) == nest

    def test_gallery_iir_roundtrip(self):
        from repro.gallery.common import iir2d_code

        nest = parse_program(iir2d_code())
        assert parse_program(format_program(nest)) == nest

    def test_float_constants_roundtrip(self):
        src = "do i = 0, n\n  doall j = 0, m\n    a[i][j] = 0.25 * b[i-1][j]\n  end\nend"
        nest = parse_program(src)
        assert parse_program(format_program(nest)) == nest
