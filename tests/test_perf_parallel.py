"""The parallel execution backends, verified bit-for-bit.

The only acceptable standard for an execution backend in this repo is
*bit-identity* with the serial interpreter -- there are no reductions, so
every statement instance computes the same IEEE operations in any legal
order.  These tests sweep the gallery across serial/doall/hyperplane modes
and jobs in {1, 2, 4} (thread pool), plus one forked process-pool run over
POSIX shared memory, and assert exact equality every time.
"""

import pytest

from repro.codegen.interp import ArrayStore, ExecutionOrderError, run_fused
from repro.gallery.common import iir2d_code
from repro.gallery.extended import extended_kernels
from repro.gallery.paper import figure2_code
from repro.perf.parallel import (
    ParallelExecutor,
    run_parallel,
    split_range,
    wavefront_tiles,
)
from repro.pipeline import fuse_program

N, M = 17, 23  # deliberately not round, not square, not chunk-aligned


def _workloads():
    """(key, fused program, fusion result) for every runnable gallery code."""
    sources = {"fig2": figure2_code(), "iir2d": iir2d_code()}
    for k in extended_kernels():
        sources[k.key] = k.code
    out = []
    for key, src in sorted(sources.items()):
        res = fuse_program(src)
        out.append((key, res.fused, res.fusion))
    return out


_WORKLOADS = _workloads()
_DOALL = [(k, fp, fr) for (k, fp, fr) in _WORKLOADS if fr.is_doall]
_WAVEFRONT = [(k, fp, fr) for (k, fp, fr) in _WORKLOADS if not fr.is_doall]


def _reference(fp, seed=11):
    store = ArrayStore.for_program(fp.original, N, M, seed=seed)
    return run_fused(fp, N, M, store=store, mode="serial")


class TestRangeHelpers:
    def test_split_range_partitions_exactly(self):
        for lo, hi, parts in [(0, 9, 3), (-4, 17, 4), (5, 5, 8), (0, 99, 7)]:
            chunks = split_range(lo, hi, parts)
            cells = [j for (a, b) in chunks for j in range(a, b + 1)]
            assert cells == list(range(lo, hi + 1))
            sizes = [b - a + 1 for (a, b) in chunks]
            assert max(sizes) - min(sizes) <= 1

    def test_split_range_empty_and_oversubscribed(self):
        assert split_range(3, 2, 4) == []
        assert len(split_range(0, 1, 16)) == 2  # never more chunks than cells

    def test_wavefront_tiles_cover_cells(self):
        cells = [(i, i) for i in range(10)]
        tiles = wavefront_tiles(cells, 3)
        assert [c for t in tiles for c in t] == cells
        assert max(len(t) for t in tiles) == 3


class TestDoallBackend:
    @pytest.mark.parametrize("key,fp,fr", _DOALL, ids=[k for k, *_ in _DOALL])
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_bit_identical_across_jobs(self, key, fp, fr, jobs):
        ref = _reference(fp)
        got = ArrayStore.for_program(fp.original, N, M, seed=11)
        with ParallelExecutor(jobs=jobs) as ex:
            ex.run(fp, N, M, store=got, mode="doall")
        assert ref.equal(got)

    def test_jobs_do_not_change_results(self):
        # all job counts agree with each other, not just with the reference
        _key, fp, _fr = _DOALL[0]
        outs = []
        for jobs in (1, 2, 3, 4, 7):
            store = ArrayStore.for_program(fp.original, N, M, seed=5)
            run_parallel(fp, N, M, store=store, jobs=jobs)
            outs.append(store)
        assert all(outs[0].equal(o) for o in outs[1:])

    def test_process_pool_bit_identical(self):
        _key, fp, _fr = _DOALL[0]
        ref = _reference(fp)
        got = ArrayStore.for_program(fp.original, N, M, seed=11)
        try:
            run_parallel(fp, N, M, store=got, jobs=2, pool="process")
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"shared memory unavailable in this sandbox: {exc}")
        assert ref.equal(got)

    def test_non_doall_fusion_is_rejected(self):
        if not _WAVEFRONT:  # pragma: no cover - gallery always has one
            pytest.skip("no hyperplane workload in the gallery")
        _key, fp, _fr = _WAVEFRONT[0]
        with ParallelExecutor(jobs=2) as ex:
            with pytest.raises(ExecutionOrderError):
                ex.run(fp, N, M, mode="doall")


class TestWavefrontBackend:
    @pytest.mark.parametrize(
        "key,fp,fr", _WAVEFRONT, ids=[k for k, *_ in _WAVEFRONT]
    )
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_bit_identical_across_jobs(self, key, fp, fr, jobs):
        ref = _reference(fp)
        got = ArrayStore.for_program(fp.original, N, M, seed=11)
        with ParallelExecutor(jobs=jobs, tile=16) as ex:
            ex.run(fp, N, M, store=got, mode="hyperplane", schedule=fr.schedule)
        assert ref.equal(got)

    def test_tile_size_never_affects_values(self):
        _key, fp, fr = _WAVEFRONT[0]
        ref = _reference(fp)
        for tile in (1, 7, 64, 10_000):
            got = ArrayStore.for_program(fp.original, N, M, seed=11)
            run_parallel(
                fp, N, M, store=got, jobs=2, tile=tile,
                mode="hyperplane", schedule=fr.schedule,
            )
            assert ref.equal(got)

    def test_schedule_required(self):
        _key, fp, _fr = _WAVEFRONT[0]
        with ParallelExecutor() as ex:
            with pytest.raises(ExecutionOrderError):
                ex.run(fp, N, M, mode="hyperplane")


class TestExecutorSurface:
    def test_mode_auto_detection(self):
        _key, fp, fr = _DOALL[0]
        ref = _reference(fp)
        got = ArrayStore.for_program(fp.original, N, M, seed=11)
        with ParallelExecutor(jobs=2) as ex:
            ex.run(fp, N, M, store=got)  # doall detected from the fusion
        assert ref.equal(got)

    def test_serial_mode_delegates_to_interpreter(self):
        _key, fp, _fr = _DOALL[0]
        ref = _reference(fp)
        got = ArrayStore.for_program(fp.original, N, M, seed=11)
        run_parallel(fp, N, M, store=got, mode="serial")
        assert ref.equal(got)

    def test_allocates_store_when_omitted(self):
        _key, fp, _fr = _DOALL[0]
        ref = _reference(fp, seed=0)
        with ParallelExecutor(jobs=2) as ex:
            got = ex.run(fp, N, M, seed=0)
        assert ref.equal(got)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)
        with pytest.raises(ValueError):
            ParallelExecutor(pool="fibers")
        with pytest.raises(ValueError):
            ParallelExecutor(tile=0)
        _key, fp, _fr = _DOALL[0]
        with ParallelExecutor() as ex:
            with pytest.raises(ExecutionOrderError):
                ex.run(fp, N, M, mode="speculative")
