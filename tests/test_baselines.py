"""Unit tests for the baseline fusion techniques."""

import pytest

from repro.baselines import (
    direct_fusion,
    loop_distribution,
    shift_and_peel,
    typed_fusion,
)
from repro.gallery import (
    figure2_mldg,
    figure8_mldg,
    figure14_mldg,
    iir2d_mldg,
)
from repro.graph import mldg_from_table


class TestDirectFusion:
    def test_figure2_blocked(self):
        out = direct_fusion(figure2_mldg())
        assert not out.legal
        assert "B->C" in out.blockers and "C->D" in out.blockers

    def test_figure8_blocked(self):
        assert not direct_fusion(figure8_mldg()).legal

    def test_clean_graph_fuses_doall(self):
        g = mldg_from_table(
            {("A", "B"): [(0, 0)], ("B", "C"): [(1, -3)]}, nodes=["A", "B", "C"]
        )
        out = direct_fusion(g)
        assert out.legal and out.doall
        assert out.syncs_per_outer_iteration == 1

    def test_serialising_graph_fuses_non_doall(self):
        g = mldg_from_table({("A", "B"): [(0, 2)]}, nodes=["A", "B"])
        out = direct_fusion(g)
        assert out.legal and not out.doall
        assert "serialised" in out.describe()


class TestTypedFusion:
    def test_figure8_splits_at_preventing_edges(self):
        out = typed_fusion(figure8_mldg())
        # (0,-2) on B->C / B->F and (0,-3) on A->D force group breaks
        assert not out.fully_fused
        assert 1 < out.syncs_per_outer_iteration <= 7
        # every node appears exactly once
        flat = [n for grp in out.groups for n in grp]
        assert sorted(flat) == list("ABCDEFG")

    def test_figure8_group_semantics(self):
        """Within any group, no fusion-preventing edge may be internal."""
        from repro.graph.legality import VectorClass, classify_vector

        g = figure8_mldg()
        out = typed_fusion(g)
        for grp in out.groups:
            s = set(grp)
            for e in g.edges():
                if e.src in s and e.dst in s:
                    assert all(
                        classify_vector(d) != VectorClass.FUSION_PREVENTING
                        for d in e.vectors
                    )

    def test_preserve_parallelism_splits_more(self):
        g = figure8_mldg()
        assert (
            typed_fusion(g, preserve_parallelism=True).syncs_per_outer_iteration
            >= typed_fusion(g).syncs_per_outer_iteration
        )

    def test_preserve_parallelism_groups_all_parallel(self):
        out = typed_fusion(figure8_mldg(), preserve_parallelism=True)
        assert out.all_parallel

    def test_trivially_fusable_sequence(self):
        g = mldg_from_table(
            {("A", "B"): [(0, 0)], ("B", "C"): [(0, 0)]}, nodes=["A", "B", "C"]
        )
        out = typed_fusion(g)
        assert out.fully_fused
        assert out.all_parallel

    def test_figure14_rejected(self):
        """Cyclic same-iteration dependencies are beyond this baseline."""
        with pytest.raises(ValueError, match="cyclic"):
            typed_fusion(figure14_mldg())

    def test_iir2d_partial(self):
        out = typed_fusion(iir2d_mldg())
        assert out.fully_fused  # (0,0) and (0,1) edges are not preventing
        assert not out.all_parallel  # but the (0,1) edge serialises the group

    def test_describe(self):
        text = typed_fusion(figure8_mldg()).describe()
        assert "{" in text and "}" in text


class TestShiftAndPeel:
    def test_figure8_shifts(self):
        out = shift_and_peel(figure8_mldg())
        assert out.legal
        # alignment must neutralise every fusion-preventing dependence
        g = figure8_mldg()
        for e in g.edges():
            for d in e.vectors:
                if d[0] == 0:
                    assert d[1] + out.shifts[e.dst] - out.shifts[e.src] >= 0

    def test_figure8_peel_count(self):
        out = shift_and_peel(figure8_mldg())
        assert out.peel_count == 3  # A->D needs 3; the B->C/B->F chain also 3

    def test_shifts_minimal_and_nonnegative(self):
        out = shift_and_peel(figure8_mldg())
        assert min(out.shifts.values()) == 0
        assert all(v >= 0 for v in out.shifts.values())

    def test_efficiency_condition(self):
        """M&A degrade when peel >= iterations per processor (Section 1)."""
        out = shift_and_peel(figure8_mldg())
        assert out.efficient_for(m=63, processors=8)  # 8 iters/proc > peel 3
        assert not out.efficient_for(m=63, processors=32)  # 2 iters/proc

    def test_figure14_rejected(self):
        out = shift_and_peel(figure14_mldg())
        assert not out.legal
        assert "cyclic" in out.reason

    def test_unconstrained_graph_zero_shifts(self):
        g = mldg_from_table({("A", "B"): [(1, 5)]}, nodes=["A", "B"])
        out = shift_and_peel(g)
        assert out.legal and out.peel_count == 0

    def test_figure2_legal_with_peel(self):
        out = shift_and_peel(figure2_mldg())
        assert out.legal
        assert out.peel_count >= 2


class TestDistribution:
    def test_one_group_per_loop(self):
        out = loop_distribution(figure8_mldg())
        assert out.syncs_per_outer_iteration == 7
        assert out.all_parallel

    def test_describe(self):
        assert "DOALL" in loop_distribution(figure2_mldg()).describe()


class TestTransformSearch:
    def test_fusion_preventing_cases_fail(self):
        from repro.baselines import transform_search

        for build in (figure2_mldg, figure8_mldg, figure14_mldg):
            out = transform_search(build())
            assert not out.fusable
            assert not out.parallel
            assert "fusion-preventing" in out.describe()

    def test_iir2d_found_by_skew(self):
        from repro.baselines import transform_search
        from repro.retiming import is_doall_after_fusion
        from repro.transforms import transform_mldg

        g = iir2d_mldg()
        out = transform_search(g)
        assert out.fusable and out.parallel
        gt = transform_mldg(g, out.transform)
        assert is_doall_after_fusion(gt)
        assert all(tuple(d) >= (0, 0) for d in gt.all_vectors())

    def test_already_parallel_returns_identity(self):
        from repro.baselines import transform_search

        g = mldg_from_table({("A", "B"): [(0, 0)]}, nodes=["A", "B"])
        out = transform_search(g)
        assert out.parallel
        assert out.transform.rows == ((1, 0), (0, 1))

    def test_unfixable_serial_fusion(self):
        from repro.baselines import transform_search

        # an inner-carried dependence plus a steep negative back-vector,
        # wide enough to defeat the bounded skew family
        g = mldg_from_table(
            {("A", "B"): [(0, 1)], ("B", "A"): [(1, -9)]}, nodes=["A", "B"]
        )
        out = transform_search(g, max_skew=2)
        assert out.fusable
        assert not out.parallel
        assert "no unimodular" in out.describe()
