"""Unit tests for DependenceEdge."""

import pytest

from repro.graph import DependenceEdge
from repro.vectors import IVec


class TestBasics:
    def test_delta_is_min(self):
        e = DependenceEdge.of("A", "B", [IVec(2, 1), IVec(1, 1)])
        assert e.delta == IVec(1, 1)

    def test_empty_vectors_rejected(self):
        with pytest.raises(ValueError):
            DependenceEdge.of("A", "B", [])

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(ValueError):
            DependenceEdge.of("A", "B", [IVec(1, 1), IVec(1, 1, 1)])

    def test_self_loop(self):
        e = DependenceEdge.of("C", "C", [IVec(1, 0)])
        assert e.is_self_loop

    def test_key_and_dim(self):
        e = DependenceEdge.of("A", "B", [IVec(1, 2, 3)])
        assert e.key == ("A", "B")
        assert e.dim == 3


class TestHardEdges:
    def test_paper_hard_edge(self):
        """B->C in Figure 2: (0,-2) and (0,1) share first coordinate."""
        e = DependenceEdge.of("B", "C", [IVec(0, -2), IVec(0, 1)])
        assert e.is_hard

    def test_paper_non_hard_edge(self):
        """A->B in Figure 2: (1,1) and (2,1) differ in first coordinate."""
        e = DependenceEdge.of("A", "B", [IVec(1, 1), IVec(2, 1)])
        assert not e.is_hard

    def test_single_vector_never_hard(self):
        assert not DependenceEdge.of("A", "B", [IVec(0, -9)]).is_hard

    def test_duplicate_first_same_rest_not_hard(self):
        e = DependenceEdge.of("A", "B", [IVec(0, 2), IVec(1, 2)])
        assert not e.is_hard

    def test_three_dimensional_hard(self):
        e = DependenceEdge.of("A", "B", [IVec(0, 1, 1), IVec(0, 1, 2)])
        assert e.is_hard

    def test_three_vectors_mixed(self):
        e = DependenceEdge.of("A", "B", [IVec(0, 1), IVec(1, 5), IVec(0, 2)])
        assert e.is_hard


class TestShift:
    def test_shifted_matches_retiming_rule(self):
        e = DependenceEdge.of("D", "A", [IVec(2, 1)])
        out = e.shifted(IVec(-1, -1), IVec(0, 0))
        assert out.vectors == frozenset({IVec(1, 0)})

    def test_shift_preserves_set_size_unless_collision(self):
        e = DependenceEdge.of("A", "B", [IVec(1, 1), IVec(2, 1)])
        out = e.shifted(IVec(0, 0), IVec(1, 0))
        assert out.vectors == frozenset({IVec(0, 1), IVec(1, 1)})

    def test_str_marks_hard(self):
        e = DependenceEdge.of("B", "C", [IVec(0, -2), IVec(0, 1)])
        assert "*" in str(e)
