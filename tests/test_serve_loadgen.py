"""The serve load generator / benchmark harness (repro.serve.loadgen)."""

from __future__ import annotations

import json

import pytest

from repro.serve.loadgen import (
    BENCH_SCHEMA,
    LoadgenOptions,
    render_report_text,
    run_loadgen,
)


def test_clean_run_report_shape(tmp_path):
    out = tmp_path / "BENCH_serve.json"
    report = run_loadgen(
        LoadgenOptions(requests=6, concurrency=3, workers=1, out=str(out))
    )
    assert report["schema"] == BENCH_SCHEMA
    assert report["wellFormed"] == 6 and report["malformed"] == []
    assert report["byStatus"].get("ok", 0) >= 1
    assert report["requestsPerSecond"] > 0
    for key in ("p50", "p90", "p99", "max", "mean"):
        assert report["latencyMs"][key] >= 0
    assert "admission" in report["service"]
    on_disk = json.loads(out.read_text(encoding="utf-8"))
    assert on_disk["schema"] == BENCH_SCHEMA
    text = render_report_text(report)
    assert "well-formed=6/6" in text


@pytest.mark.chaos
def test_chaos_run_stays_well_formed(tmp_path):
    report = run_loadgen(
        LoadgenOptions(
            requests=12, concurrency=4, workers=2,
            chaos_kills=1, chaos_hangs=1, seed=5,
        )
    )
    assert report["wellFormed"] == 12 and report["malformed"] == []
    assert report["options"]["chaosKills"] == 1
