"""Unit tests for the wavefront (skewed) code emission."""

import pytest

from repro.codegen import apply_fusion, emit_wavefront_program, wavefront_iterations
from repro.gallery.extended import extended_kernels
from repro.pipeline import fuse_program
from repro.vectors import IVec


@pytest.fixture
def aniso():
    kernel = next(k for k in extended_kernels() if k.key == "anisotropic-sweep")
    return fuse_program(kernel.code)


class TestEnumeration:
    def test_covers_fused_rectangle_exactly(self, aniso):
        n, m = 5, 6
        fp, s = aniso.fused, aniso.fusion.schedule
        seen = []
        for t, pts in wavefront_iterations(fp, s, n, m):
            for (p, i, j) in pts:
                assert s.dot((i, j)) == t
                seen.append((i, j))
        lo_i, hi_i = fp.full_outer_range(n)
        lo_j, hi_j = fp.full_inner_range(m)
        expect = [(i, j) for i in range(lo_i, hi_i + 1) for j in range(lo_j, hi_j + 1)]
        assert sorted(seen) == sorted(expect)
        assert len(seen) == len(set(seen))

    def test_levels_ascending(self, aniso):
        levels = [t for t, _ in wavefront_iterations(aniso.fused, aniso.fusion.schedule, 4, 4)]
        assert levels == sorted(levels)

    def test_row_schedule_levels_are_rows(self, aniso):
        """With s = (1,0) every level is one fused row."""
        fp = aniso.fused
        n, m = 3, 4
        lo_j, hi_j = fp.full_inner_range(m)
        for t, pts in wavefront_iterations(fp, IVec(1, 0), n, m):
            assert {i for (_p, i, _j) in pts} == {t}
            assert len(pts) == hi_j - lo_j + 1


class TestEmission:
    def test_structure(self, aniso):
        text = emit_wavefront_program(aniso.fused, aniso.fusion.schedule)
        assert "do t = t_lo, t_hi" in text
        assert "doall p over" in text
        assert "wavefront execution" in text
        # the inverse-transform index definitions appear
        assert "i = " in text and "j = " in text

    def test_contains_shifted_statements(self, aniso):
        text = emit_wavefront_program(aniso.fused, aniso.fusion.schedule)
        assert "s[i][j-1] = d[i][j] + 0.5 * d[i][j-2]" in text

    def test_non_coprime_schedule_rejected(self, aniso):
        with pytest.raises(ValueError):
            emit_wavefront_program(aniso.fused, IVec(4, 2))
