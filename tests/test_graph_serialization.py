"""Unit tests for MLDG JSON/DOT serialization and random generation."""

import json

import pytest

from repro.graph import (
    is_legal,
    is_sequence_executable,
    mldg_from_json,
    mldg_from_table,
    mldg_to_dot,
    mldg_to_json,
    random_acyclic_mldg,
    random_legal_mldg,
    is_acyclic,
)
from repro.gallery import figure2_mldg, figure8_mldg, figure14_mldg


class TestJson:
    @pytest.mark.parametrize("build", [figure2_mldg, figure8_mldg, figure14_mldg])
    def test_roundtrip_paper_graphs(self, build):
        g = build()
        assert mldg_from_json(mldg_to_json(g)) == g

    def test_schema_shape(self):
        g = mldg_from_table({("A", "B"): [(1, 1)]}, nodes=["A", "B"])
        payload = json.loads(mldg_to_json(g))
        assert payload["dim"] == 2
        assert payload["nodes"] == ["A", "B"]
        assert payload["edges"] == [{"src": "A", "dst": "B", "vectors": [[1, 1]]}]

    def test_node_order_preserved(self):
        g = mldg_from_table({("B", "A"): [(1, 0)]}, nodes=["A", "B"])
        assert mldg_from_json(mldg_to_json(g)).nodes == ("A", "B")

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            mldg_from_json("{}")


class TestDot:
    def test_dot_contains_edges_and_hard_marker(self):
        dot = mldg_to_dot(figure2_mldg())
        assert '"B" -> "C"' in dot
        assert "*" in dot
        assert dot.startswith("digraph")

    def test_dot_all_nodes_present(self):
        dot = mldg_to_dot(figure8_mldg())
        for n in "ABCDEFG":
            assert f'"{n}"' in dot


class TestRandomGeneration:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_legal_graphs_are_legal(self, seed):
        g = random_legal_mldg(8, seed=seed)
        assert is_legal(g)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_legal_graphs_sequence_executable(self, seed):
        g = random_legal_mldg(8, seed=seed)
        assert is_sequence_executable(g).legal

    @pytest.mark.parametrize("seed", range(8))
    def test_random_acyclic_graphs(self, seed):
        g = random_acyclic_mldg(8, seed=seed)
        assert is_acyclic(g)
        assert is_legal(g)

    def test_deterministic_by_seed(self):
        assert random_legal_mldg(10, seed=42) == random_legal_mldg(10, seed=42)

    def test_different_seeds_differ(self):
        assert random_legal_mldg(10, seed=1) != random_legal_mldg(10, seed=2)

    def test_node_count(self):
        assert random_legal_mldg(17, seed=0).num_nodes == 17

    def test_roundtrip_random(self):
        g = random_legal_mldg(12, seed=7)
        assert mldg_from_json(mldg_to_json(g)) == g

    def test_bad_count(self):
        with pytest.raises(ValueError):
            random_legal_mldg(0)
