"""Unit tests for the lexicographic Bellman-Ford (Algorithm 1) and 2-ILP."""

import pytest

from repro.constraints import (
    InfeasibleSystemError,
    VectorConstraintSystem,
    vector_bellman_ford,
)
from repro.constraints.constraint_graph import SUPER_SOURCE, ConstraintGraph
from repro.vectors import ExtVec, IVec, POS_INF


class TestVectorBellmanFord:
    def test_figure5_running_example(self):
        """The constraint graph of Figure 5 must yield Figure 6's retiming."""
        nodes = ["v0", "A", "B", "C", "D"]
        edges = [
            ("v0", "A", IVec(0, 0)),
            ("v0", "B", IVec(0, 0)),
            ("v0", "C", IVec(0, 0)),
            ("v0", "D", IVec(0, 0)),
            ("A", "B", IVec(1, 1)),
            ("B", "C", IVec(0, -2)),
            ("C", "D", IVec(0, -1)),
            ("A", "C", IVec(0, 1)),
            ("D", "A", IVec(2, 1)),
            ("C", "C", IVec(1, 0)),
        ]
        res = vector_bellman_ford(nodes, edges, "v0", dim=2)
        assert res.feasible
        assert res.dist["A"].to_ivec() == IVec(0, 0)
        assert res.dist["B"].to_ivec() == IVec(0, 0)
        assert res.dist["C"].to_ivec() == IVec(0, -2)
        assert res.dist["D"].to_ivec() == IVec(0, -3)

    def test_lexicographic_not_componentwise(self):
        """(0,100) beats (1,-100) as a path weight under lex order."""
        nodes = ["s", "t"]
        edges = [("s", "t", IVec(0, 100)), ("s", "t", IVec(1, -100))]
        res = vector_bellman_ford(nodes, edges, "s", dim=2)
        assert res.dist["t"].to_ivec() == IVec(0, 100)

    def test_negative_lex_cycle(self):
        nodes = ["s", "a", "b"]
        edges = [
            ("s", "a", IVec(0, 0)),
            ("a", "b", IVec(0, -1)),
            ("b", "a", IVec(0, 0)),
        ]
        res = vector_bellman_ford(nodes, edges, "s", dim=2)
        assert not res.feasible
        assert set(res.negative_cycle) == {"a", "b"}

    def test_zero_cycle_feasible(self):
        nodes = ["s", "a", "b"]
        edges = [
            ("s", "a", IVec(0, 0)),
            ("a", "b", IVec(0, -3)),
            ("b", "a", IVec(0, 3)),
        ]
        assert vector_bellman_ford(nodes, edges, "s", dim=2).feasible

    def test_infinite_weights(self):
        nodes = ["s", "a"]
        edges = [("s", "a", ExtVec(-1, POS_INF))]
        res = vector_bellman_ford(nodes, edges, "s", dim=2)
        d = res.dist["a"]
        assert d[0] == -1 and d[1] == POS_INF

    def test_wrong_dim_weight_raises(self):
        with pytest.raises(ValueError):
            vector_bellman_ford(["s", "a"], [("s", "a", IVec(1, 2, 3))], "s", dim=2)

    def test_three_dimensional(self):
        nodes = ["s", "a", "b"]
        edges = [("s", "a", IVec(0, 0, 0)), ("a", "b", IVec(0, 0, -5))]
        res = vector_bellman_ford(nodes, edges, "s", dim=3)
        assert res.dist["b"].to_ivec() == IVec(0, 0, -5)


class TestVectorSystem:
    def test_solution_satisfies_constraints(self):
        s = VectorConstraintSystem(["x", "y"], dim=2)
        s.add_leq("x", "y", IVec(0, -2))
        sol = s.solve()
        assert sol["y"] - sol["x"] <= IVec(0, -2)

    def test_vector_equality(self):
        s = VectorConstraintSystem(["x", "y"], dim=2)
        s.add_eq("x", "y", IVec(1, -1))
        sol = s.solve()
        assert sol["y"] - sol["x"] == IVec(1, -1)

    def test_infinite_equality_rejected(self):
        s = VectorConstraintSystem(["x", "y"], dim=2)
        with pytest.raises(ValueError):
            s.add_eq("x", "y", ExtVec(1, POS_INF))

    def test_infeasible_raises_with_cycle(self):
        s = VectorConstraintSystem(["x", "y"], dim=2)
        s.add_leq("x", "y", IVec(0, -1))
        s.add_leq("y", "x", IVec(0, 0))
        with pytest.raises(InfeasibleSystemError) as err:
            s.solve()
        assert set(err.value.cycle) == {"x", "y"}

    def test_infinite_coordinates_resolve_to_zero(self):
        """Algorithm-3 style: only first coordinates constrained."""
        s = VectorConstraintSystem(["x", "y"], dim=2)
        s.add_leq("x", "y", ExtVec(-1, POS_INF))
        sol = s.solve()
        assert sol["y"] - sol["x"] == IVec(-1, 0)
        assert sol["y"][1] == 0

    def test_is_feasible(self):
        s = VectorConstraintSystem(["x"], dim=2)
        s.add_leq("x", "x", IVec(0, 0))
        assert s.is_feasible()

    def test_duplicate_unknowns_rejected(self):
        with pytest.raises(ValueError):
            VectorConstraintSystem(["x", "x"], dim=2).constraint_graph()


class TestConstraintGraph:
    def test_build_adds_source_edges(self):
        g = ConstraintGraph.build(["a", "b"], [("a", "b", 1)], zero=0)
        assert (SUPER_SOURCE, "a", 0) in g.edges
        assert (SUPER_SOURCE, "b", 0) in g.edges
        assert ("a", "b", 1) in g.edges

    def test_unknown_reference_rejected(self):
        with pytest.raises(ValueError):
            ConstraintGraph.build(["a"], [("a", "zzz", 1)], zero=0)

    def test_without_source(self):
        g = ConstraintGraph.build(["a", "b"], [("a", "b", 1)], zero=0)
        stripped = g.without_source()
        assert SUPER_SOURCE not in stripped.nodes
        assert stripped.edges == [("a", "b", 1)]

    def test_describe(self):
        g = ConstraintGraph.build(["a"], [], zero=0)
        assert "v0 -> a" in g.describe()


class TestDistanceExtraction:
    def test_solve_distances_as_ivecs(self):
        from repro.constraints.vector_bellman_ford import (
            solve_distances_as_ivecs,
            vector_bellman_ford,
        )

        nodes = ["s", "a", "b"]
        edges = [("s", "a", IVec(0, -2))]
        res = vector_bellman_ford(nodes, edges, "s", dim=2)
        out = solve_distances_as_ivecs(res, unreachable=IVec(0, 0))
        assert out["s"] == IVec(0, 0)
        assert out["a"] == IVec(0, -2)
        assert out["b"] == IVec(0, 0)  # unreachable -> sentinel

    def test_infeasible_result_rejected(self):
        from repro.constraints.vector_bellman_ford import (
            solve_distances_as_ivecs,
            vector_bellman_ford,
        )

        nodes = ["s", "a", "b"]
        edges = [
            ("s", "a", IVec(0, 0)),
            ("a", "b", IVec(0, -1)),
            ("b", "a", IVec(0, 0)),
        ]
        res = vector_bellman_ford(nodes, edges, "s", dim=2)
        with pytest.raises(ValueError):
            solve_distances_as_ivecs(res, unreachable=IVec(0, 0))
