"""Tests for the dimension-agnostic dataflow executor.

This is the end-to-end verification channel for the n-D generalisations:
the order-free reference semantics versus concrete (randomised) schedules.
"""

import random

import pytest

from repro.fusion import (
    NoParallelRetimingError,
    cyclic_parallel_retiming,
    fuse,
    legal_fusion_retiming,
    multidim_hyperplane_fusion,
    multidim_parallel_retiming,
)
from repro.gallery import figure2_mldg, figure8_mldg, figure14_mldg
from repro.graph import MLDG, mldg_from_table, random_legal_mldg
from repro.retiming import Retiming
from repro.vectors import IVec
from repro.verify import (
    DataflowSemantics,
    OrderViolation,
    execute_retimed,
    reference_values,
    verify_retimed_execution,
)


def _random_3d(seed: int, nodes: int = 5) -> MLDG:
    rng = random.Random(seed)
    g = MLDG(dim=3)
    names = [f"L{k}" for k in range(nodes)]
    for n in names:
        g.add_node(n)
    for a in range(nodes):
        for b in range(nodes):
            if a == b or rng.random() > 0.4:
                continue
            lo = 0 if a < b else 1
            vecs = [
                IVec(rng.randint(lo, 2), rng.randint(-2, 2), rng.randint(-2, 2))
                for _ in range(rng.randint(1, 2))
            ]
            g.add_dependence(names[a], names[b], *vecs)
    return g


class TestSemantics:
    def test_inputs_deterministic(self):
        sem1 = DataflowSemantics(figure2_mldg(), (4, 4), seed=3)
        sem2 = DataflowSemantics(figure2_mldg(), (4, 4), seed=3)
        assert sem1.input_value("A", (2, 2)) == sem2.input_value("A", (2, 2))

    def test_inputs_vary_with_seed_and_instance(self):
        sem = DataflowSemantics(figure2_mldg(), (4, 4), seed=3)
        other = DataflowSemantics(figure2_mldg(), (4, 4), seed=4)
        assert sem.input_value("A", (2, 2)) != other.input_value("A", (2, 2))
        assert sem.input_value("A", (2, 2)) != sem.input_value("A", (2, 3))

    def test_bounds_dimension_checked(self):
        with pytest.raises(ValueError):
            DataflowSemantics(figure2_mldg(), (4, 4, 4))

    def test_reference_rejects_deadlock(self):
        """Figure 14's zero-weight cycle is an instance-level deadlock."""
        sem = DataflowSemantics(figure14_mldg(), (3, 8))
        with pytest.raises(ValueError, match="deadlock|cycle"):
            reference_values(sem)

    def test_reference_size_guard(self):
        sem = DataflowSemantics(figure2_mldg(), (500, 500))
        with pytest.raises(ValueError, match="too large"):
            reference_values(sem, max_instances=1000)


class TestTwoDimensional:
    def test_figure2_serial_and_doall(self):
        g = figure2_mldg()
        r = cyclic_parallel_retiming(g)
        assert verify_retimed_execution(g, r, (5, 5), mode="serial")
        assert verify_retimed_execution(g, r, (5, 5), mode="doall", order_seed=11)

    def test_figure2_llofra_serial_only(self):
        """LLOFRA fusion is serial: lexicographic order works, randomised
        rows trip the order check."""
        g = figure2_mldg()
        r = legal_fusion_retiming(g)
        assert verify_retimed_execution(g, r, (5, 5), mode="serial")
        sem = DataflowSemantics(g, (5, 5))
        with pytest.raises(OrderViolation):
            execute_retimed(sem, r, mode="doall", order_seed=3)

    def test_figure8_acyclic(self):
        g = figure8_mldg()
        r = fuse(g).retiming
        assert verify_retimed_execution(g, r, (6, 6), mode="doall")

    def test_hyperplane_mode_2d(self):
        g = figure2_mldg()
        res = fuse(g, strategy="hyperplane")
        assert verify_retimed_execution(
            g, res.retiming, (5, 5), mode="hyperplane", schedule=res.schedule
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_random_2d_graphs(self, seed):
        g = random_legal_mldg(5, seed=seed)
        res = fuse(g)
        mode = "doall" if res.is_doall else "hyperplane"
        assert verify_retimed_execution(
            g, res.retiming, (5, 5), mode=mode,
            schedule=res.schedule if mode == "hyperplane" else None,
            seed=seed,
        )


class TestThreeDimensional:
    @pytest.mark.parametrize("seed", range(6))
    def test_multidim_doall_execution(self, seed):
        g = _random_3d(seed)
        try:
            r = multidim_parallel_retiming(g)
        except NoParallelRetimingError:
            return
        assert verify_retimed_execution(g, r, (3, 3, 3), mode="doall", seed=seed)

    @pytest.mark.parametrize("seed", range(4))
    def test_multidim_hyperplane_execution(self, seed):
        g = _random_3d(seed + 50)
        r, s = multidim_hyperplane_fusion(g)
        assert verify_retimed_execution(
            g, r, (3, 3, 3), mode="hyperplane", schedule=s, seed=seed
        )

    def test_known_3d_example(self):
        g = mldg_from_table(
            {
                ("A", "B"): [(0, -2, 1)],
                ("B", "C"): [(0, 1, -4), (0, 1, 2)],
                ("C", "A"): [(1, 0, 0)],
            },
            nodes=["A", "B", "C"],
            dim=3,
        )
        r = multidim_parallel_retiming(g)
        assert verify_retimed_execution(g, r, (4, 4, 4), mode="doall")


class TestOrderViolationDetection:
    def test_serial_with_backward_vector_fails(self):
        """A retiming leaving a lexicographically negative vector cannot be
        executed serially -- and the executor notices."""
        g = mldg_from_table({("A", "B"): [(0, -2)]}, nodes=["A", "B"])
        sem = DataflowSemantics(g, (4, 4))
        with pytest.raises(OrderViolation):
            execute_retimed(sem, Retiming.zero(dim=2), mode="serial")

    def test_bad_mode(self):
        sem = DataflowSemantics(figure2_mldg(), (3, 3))
        with pytest.raises(ValueError):
            execute_retimed(sem, Retiming.zero(dim=2), mode="zigzag")

    def test_hyperplane_needs_schedule(self):
        sem = DataflowSemantics(figure2_mldg(), (3, 3))
        with pytest.raises(ValueError, match="schedule"):
            execute_retimed(sem, Retiming.zero(dim=2), mode="hyperplane")
