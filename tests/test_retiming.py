"""Unit tests for the Retiming object and its invariants."""

import pytest

from repro.gallery import figure2_mldg
from repro.gallery.paper import (
    figure2_expected_alg4_retiming,
    figure2_expected_llofra_retiming,
)
from repro.graph import mldg_from_table
from repro.retiming import (
    Retiming,
    cycle_weights_preserved,
    edges_all_nonnegative,
    is_doall_after_fusion,
    verify_retiming,
)
from repro.vectors import IVec


class TestRetimingObject:
    def test_missing_nodes_default_zero(self):
        r = Retiming({"C": IVec(-1, 0)}, dim=2)
        assert r["C"] == IVec(-1, 0)
        assert r["anything"] == IVec(0, 0)

    def test_coerces_tuples(self):
        r = Retiming({"A": (1, 2)}, dim=2)  # type: ignore[dict-item]
        assert r["A"] == IVec(1, 2)

    def test_dimension_enforced(self):
        with pytest.raises(ValueError):
            Retiming({"A": IVec(1, 2, 3)}, dim=2)

    def test_zero_retiming_is_identity(self):
        g = figure2_mldg()
        assert Retiming.zero(dim=2).apply(g) == g

    def test_equality_ignores_explicit_zeros(self):
        assert Retiming({"A": IVec(0, 0)}, dim=2) == Retiming({}, dim=2)

    def test_hash_consistent_with_eq(self):
        a = Retiming({"A": IVec(0, 0), "B": IVec(1, 1)}, dim=2)
        b = Retiming({"B": IVec(1, 1)}, dim=2)
        assert a == b and hash(a) == hash(b)

    def test_compose_is_pointwise_sum(self):
        r1 = Retiming({"A": IVec(1, 0)}, dim=2)
        r2 = Retiming({"A": IVec(0, -2), "B": IVec(1, 1)}, dim=2)
        r = r1.compose(r2)
        assert r["A"] == IVec(1, -2)
        assert r["B"] == IVec(1, 1)

    def test_compose_matches_sequential_application(self):
        g = figure2_mldg()
        r1 = Retiming({"C": IVec(0, -2)}, dim=2)
        r2 = Retiming({"D": IVec(-1, 0)}, dim=2)
        assert r2.apply(r1.apply(g)) == r1.compose(r2).apply(g)

    def test_from_components(self):
        r = Retiming.from_components({"A": -1}, {"A": 2, "B": 3})
        assert r["A"] == IVec(-1, 2)
        assert r["B"] == IVec(0, 3)

    def test_describe(self):
        r = Retiming({"A": IVec(0, -2)}, dim=2)
        assert "r(A)=(0, -2)" in r.describe()

    def test_normalized_covers_all_nodes(self):
        g = figure2_mldg()
        r = Retiming({"C": IVec(-1, 0)}, dim=2).normalized(g)
        assert set(r.nodes()) == set(g.nodes)


class TestRetimedWeights:
    def test_figure6_edge_weights(self):
        """Applying Figure 6's retiming must produce Figure 6's edge weights."""
        gr = figure2_expected_llofra_retiming().apply(figure2_mldg())
        assert gr.delta("A", "B") == IVec(1, 1)
        assert gr.delta("B", "C") == IVec(0, 0)
        assert gr.delta("C", "D") == IVec(0, 0)
        assert gr.delta("A", "C") == IVec(0, 3)
        assert gr.delta("D", "A") == IVec(2, -2)
        assert gr.delta("C", "C") == IVec(1, 0)

    def test_figure12_edge_weights(self):
        """Applying Figure 12's retiming must produce Figure 12's weights."""
        gr = figure2_expected_alg4_retiming().apply(figure2_mldg())
        assert gr.delta("A", "B") == IVec(1, 1)
        assert gr.delta("B", "C") == IVec(1, -2)
        assert gr.delta("C", "D") == IVec(0, 0)
        assert gr.delta("A", "C") == IVec(1, 1)
        assert gr.delta("D", "A") == IVec(1, 0)
        assert gr.delta("C", "C") == IVec(1, 0)

    def test_section23_worked_example(self):
        """Section 2.3: edge e5 (D->A) becomes (1,0) and D_Lr(D,A)={(1,0)}."""
        r = Retiming(
            {"A": IVec(0, 0), "B": IVec(0, 0), "C": IVec(-1, 0), "D": IVec(-1, -1)},
            dim=2,
        )
        gr = r.apply(figure2_mldg())
        assert gr.D("D", "A") == frozenset({IVec(1, 0)})


class TestInvariants:
    def test_cycle_weights_invariant_for_paper_retimings(self):
        g = figure2_mldg()
        for r in (figure2_expected_llofra_retiming(), figure2_expected_alg4_retiming()):
            assert cycle_weights_preserved(g, r)

    def test_cycle_weights_section23(self):
        """delta_Lr(c1) = (3,-1) and delta_Lr(c2) = (2,1), unchanged."""
        from repro.graph import cycle_weight

        g = figure2_mldg()
        gr = figure2_expected_alg4_retiming().apply(g)
        assert cycle_weight(gr, ["A", "B", "C", "D"]) == IVec(3, -1)
        assert cycle_weight(gr, ["A", "C", "D"]) == IVec(2, 1)

    def test_edges_all_nonnegative(self):
        gr = figure2_expected_llofra_retiming().apply(figure2_mldg())
        assert edges_all_nonnegative(gr)
        assert not edges_all_nonnegative(figure2_mldg())

    def test_doall_detection(self):
        g = figure2_mldg()
        assert not is_doall_after_fusion(g)
        gr = figure2_expected_alg4_retiming().apply(g)
        assert is_doall_after_fusion(gr)
        # LLOFRA alone does not give DOALL (Figure 7's serialised rows)
        gl = figure2_expected_llofra_retiming().apply(g)
        assert not is_doall_after_fusion(gl)

    def test_verify_retiming_full_report(self):
        g = figure2_mldg()
        v = verify_retiming(g, figure2_expected_alg4_retiming())
        assert v.ok_for_legal_fusion and v.ok_for_parallel_fusion
        assert v.problems == []

    def test_verify_retiming_flags_bad(self):
        g = mldg_from_table({("A", "B"): [(0, 0)]}, nodes=["A", "B"])
        bad = Retiming({"B": IVec(0, 5)}, dim=2)  # drives A->B to (0,-5)
        v = verify_retiming(g, bad)
        assert not v.fusion_legal
        assert any("delta" in p for p in v.problems)
