"""GCD/Banerjee dependence tests and their certificates
(repro.analysis.tests), including the differential property tests that
check every analytic verdict against brute-force enumeration."""

from hypothesis import given, settings, strategies as st

from repro.analysis.affine import UNKNOWN, AffineAccess, AffineSubscript
from repro.analysis.domain import Interval, IterationDomain
from repro.analysis.tests import (
    Verdict,
    banerjee_test,
    classify,
    enumerate_conflicts,
    gcd_test,
    verify_evidence,
)


def _domain(*intervals, names=("i", "j")):
    ivs = tuple(intervals)
    return IterationDomain(
        intervals=ivs,
        index_names=names[: len(ivs)],
        bound_names=tuple(
            "n" if iv.hi is None else str(iv.hi) for iv in ivs
        ),
    )


def _access(*subs, array="a"):
    return AffineAccess(array, tuple(AffineSubscript(c, o) for c, o in subs))


class TestGcd:
    def test_divisibility(self):
        # 2p == 2c + 1 has no integer solution; 2p == 2c + 4 does.
        assert not gcd_test(AffineSubscript(2, 0), AffineSubscript(2, 1))
        assert gcd_test(AffineSubscript(2, 0), AffineSubscript(2, 4))

    def test_unit_coefficients_never_disprove(self):
        assert gcd_test(AffineSubscript(1, 0), AffineSubscript(1, -999))

    def test_both_constant(self):
        assert gcd_test(AffineSubscript(0, 3), AffineSubscript(0, 3))
        assert not gcd_test(AffineSubscript(0, 3), AffineSubscript(0, 4))


class TestBanerjee:
    def test_distance_exceeding_extent_is_absent(self):
        # writer touches i, reader touches i' - 9 over [0, 6]
        assert not banerjee_test(
            AffineSubscript(1, 0), AffineSubscript(1, -9), Interval(0, 6)
        )

    def test_reachable_distance_passes(self):
        assert banerjee_test(
            AffineSubscript(1, 0), AffineSubscript(1, -3), Interval(0, 6)
        )

    def test_unbounded_interval_cannot_exclude_reachable_offsets(self):
        assert banerjee_test(
            AffineSubscript(1, 0), AffineSubscript(1, -9), Interval(0, None)
        )


class TestClassify:
    def test_bounded_absent_with_banerjee_certificate(self):
        ev = classify(
            _access((1, 0), (1, 0)),
            _access((1, -9), (1, 0)),
            _domain(Interval(0, 6), Interval(0, 8)),
        )
        assert ev.verdict is Verdict.ABSENT
        assert ev.test == "banerjee"
        assert ev.failing_dim == 0
        assert "never meets" in ev.reason

    def test_bounded_must_carries_in_domain_witness(self):
        domain = _domain(Interval(0, 6), Interval(0, 8))
        ev = classify(
            _access((1, 0), (1, 0)), _access((1, 0), (1, -1)), domain
        )
        assert ev.verdict is Verdict.MUST
        assert ev.test == "witness"
        producer, consumer = ev.witness
        assert domain.contains(producer) and domain.contains(consumer)

    def test_unknown_access_stays_may(self):
        ev = classify(
            UNKNOWN, _access((1, 0), (1, 0)), _domain(Interval(0, 4), Interval(0, 4))
        )
        assert ev.verdict is Verdict.MAY
        assert ev.test == "unknown-subscript"

    def test_symbolic_domain_finds_nearby_witness(self):
        ev = classify(
            _access((1, 0), (1, 0)),
            _access((1, -1), (1, 0)),
            _domain(Interval(0, None), Interval(0, None)),
        )
        assert ev.verdict is Verdict.MUST

    def test_symbolic_domain_beyond_scan_cap_degrades_to_may(self):
        # p == 2c + 100 first solves at p = 100, far past a 16-point scan
        # of the symbolic dimension; the verdict soundly degrades to MAY.
        ev = classify(
            _access((1, 0), (1, 0)),
            _access((2, 100), (1, 0)),
            _domain(Interval(0, None), Interval(0, None)),
            cap=16,
        )
        assert ev.verdict is Verdict.MAY
        assert ev.test == "scan-cap"

    def test_certificate_serializes(self):
        ev = classify(
            _access((1, 0), (1, 0)),
            _access((1, 0), (1, -1)),
            _domain(Interval(0, 4), Interval(0, 4)),
        )
        payload = ev.to_dict()
        assert payload["verdict"] == "must"
        assert payload["witness"]["producer"] is not None
        assert len(payload["equations"]) == 2
        assert payload["equations"][0] == {
            "writerCoeff": 1,
            "writerOffset": 0,
            "readerCoeff": 1,
            "readerOffset": 0,
        }


# --------------------------------------------------------------------- #
# differential property tests: analytic verdicts vs. brute force
# --------------------------------------------------------------------- #

subscripts = st.tuples(
    st.integers(min_value=0, max_value=3), st.integers(min_value=-6, max_value=6)
)
extents = st.integers(min_value=0, max_value=5)


@given(subscripts, subscripts, subscripts, subscripts, extents, extents)
@settings(max_examples=200, deadline=None)
def test_bounded_verdicts_match_enumeration(w0, w1, r0, r1, ext0, ext1):
    """On a fully bounded domain every verdict is exact: MUST iff the
    brute-force sweep finds a conflicting pair, ABSENT iff it does not,
    and never MAY."""
    writer = _access(w0, w1)
    reader = _access(r0, r1)
    domain = _domain(Interval(0, ext0), Interval(0, ext1))
    ev = classify(writer, reader, domain)
    truth = next(enumerate_conflicts(writer, reader, domain), None)
    assert ev.verdict is not Verdict.MAY
    if truth is None:
        assert ev.verdict is Verdict.ABSENT
    else:
        assert ev.verdict is Verdict.MUST
    assert verify_evidence(ev, writer, reader)


@given(subscripts, subscripts, subscripts, subscripts, extents)
@settings(max_examples=150, deadline=None)
def test_symbolic_verdicts_are_sound(w0, w1, r0, r1, ext1):
    """With a symbolic outer dimension the verdict may degrade to MAY, but
    every MUST/ABSENT claim still re-verifies, and any conflict found in a
    probed prefix rules ABSENT out."""
    writer = _access(w0, w1)
    reader = _access(r0, r1)
    domain = _domain(Interval(0, None), Interval(0, ext1))
    ev = classify(writer, reader, domain)
    assert verify_evidence(ev, writer, reader)
    if next(enumerate_conflicts(writer, reader, domain, cap=8), None) is not None:
        assert ev.verdict is not Verdict.ABSENT


@given(subscripts, subscripts, subscripts, subscripts, extents, extents)
@settings(max_examples=100, deadline=None)
def test_must_witnesses_touch_one_cell(w0, w1, r0, r1, ext0, ext1):
    writer = _access(w0, w1)
    reader = _access(r0, r1)
    domain = _domain(Interval(0, ext0), Interval(0, ext1))
    ev = classify(writer, reader, domain)
    if ev.verdict is Verdict.MUST:
        producer, consumer = ev.witness
        assert writer.cell(producer) == reader.cell(consumer)
        assert domain.contains(producer) and domain.contains(consumer)
