"""CLI observability: --trace/--metrics plumbing and the stats subcommand.

Every ``main()`` call runs under a private registry
(:func:`repro.obs.use_registry`), because the stats subcommand reads the
process-wide default registry and the rest of the suite writes into it.
Trace-sensitive tests clear the fusion/kernel caches first -- a warm cache
legitimately skips the solver spans.
"""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.codegen.pycompile import clear_kernel_cache
from repro.gallery.paper import figure2_code
from repro.perf.memo import clear_all_caches

pytestmark = pytest.mark.obs


@pytest.fixture
def fig2_file(tmp_path):
    path = tmp_path / "fig2.loop"
    path.write_text(figure2_code())
    return str(path)


@pytest.fixture
def cold_caches():
    clear_all_caches()
    clear_kernel_cache()


class TestTraceFlag:
    def test_run_parallel_writes_chrome_trace(self, fig2_file, tmp_path, capsys,
                                              cold_caches):
        trace = tmp_path / "t.json"
        with obs.use_registry():
            code = main([
                "run", fig2_file, "--backend", "parallel", "--jobs", "2",
                "--size", "16,16", "--no-emit",
                "--trace", str(trace), "--trace-format", "chrome",
            ])
        assert code == 0
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        # the acceptance shape: pipeline, solver and per-chunk spans nested
        # in one chrome-loadable trace
        assert "pipeline.fuse_program" in names
        assert "solver.bellman_ford" in names
        assert "exec.parallel.run" in names
        assert "exec.parallel.chunk" in names
        assert all(e["ph"] == "X" for e in doc["traceEvents"])
        assert doc["otherData"]["schema"] == "repro-trace/1"

    def test_fuse_writes_json_trace_by_default(self, fig2_file, tmp_path,
                                               capsys, cold_caches):
        trace = tmp_path / "t.json"
        with obs.use_registry():
            assert main(["fuse", fig2_file, "--no-emit",
                         "--trace", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        assert doc["schema"] == "repro-trace/1"
        assert doc["traceId"]
        names = [s["name"] for s in doc["spans"]]
        assert "fusion.fuse" in names

    def test_trace_format_text(self, fig2_file, tmp_path, capsys, cold_caches):
        trace = tmp_path / "t.txt"
        with obs.use_registry():
            assert main(["fuse", fig2_file, "--no-emit", "--trace", str(trace),
                         "--trace-format", "text"]) == 0
        assert trace.read_text().startswith("trace ")

    def test_trace_written_even_when_the_command_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.loop"
        bad.write_text("do i = 1, n\nend")
        trace = tmp_path / "t.json"
        with obs.use_registry():
            assert main(["fuse", str(bad), "--trace", str(trace)]) == 1
        # the parse spans collected before the failure still get flushed
        assert json.loads(trace.read_text())["schema"] == "repro-trace/1"

    def test_unknown_trace_format_rejected(self, fig2_file, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fuse", fig2_file, "--trace", str(tmp_path / "t"),
                  "--trace-format", "yaml"])
        assert exc.value.code == 2

    def test_tracing_does_not_change_the_result(self, fig2_file, tmp_path,
                                                capsys, cold_caches):
        with obs.use_registry():
            assert main(["run", fig2_file, "--format", "json",
                         "--no-emit"]) == 0
            plain = json.loads(capsys.readouterr().out)
            assert main(["run", fig2_file, "--format", "json", "--no-emit",
                         "--trace", str(tmp_path / "t.json")]) == 0
            traced = json.loads(capsys.readouterr().out)
        # the JSON document carries no timing fields: it must be identical
        assert plain == traced


class TestStatsCommand:
    def test_stats_after_workload_reports_counters(self, fig2_file, capsys,
                                                   cold_caches):
        with obs.use_registry():
            assert main(["stats", fig2_file, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-stats/1"
        counters = doc["metrics"]["counters"]
        assert counters.get("solver.bellman_ford.calls", 0) > 0
        assert counters.get("fusion.cache.hits", 0) > 0
        assert counters.get("kernel.cache.hits", 0) > 0
        assert counters.get("exec.interp.runs", 0) > 0
        assert "caches" in doc

    def test_stats_text_output(self, fig2_file, capsys, cold_caches):
        with obs.use_registry():
            assert main(["stats", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "solver.bellman_ford.calls" in out

    def test_empty_registry_exits_nonzero(self, capsys):
        with obs.use_registry():
            assert main(["stats", "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["metrics"]["counters"] == {}

    def test_empty_registry_text_exits_nonzero(self, capsys):
        with obs.use_registry():
            assert main(["stats"]) == 1

    def test_bad_size_value(self, fig2_file, capsys):
        with obs.use_registry():
            assert main(["stats", fig2_file, "--size", "nope"]) == 2


class TestMetricsFlag:
    def test_metrics_file_roundtrips_through_stats_input(self, fig2_file,
                                                         tmp_path, capsys,
                                                         cold_caches):
        metrics = tmp_path / "m.json"
        with obs.use_registry():
            assert main(["run", fig2_file, "--backend", "parallel",
                         "--jobs", "2", "--size", "16,16", "--no-emit",
                         "--metrics", str(metrics)]) == 0
        doc = json.loads(metrics.read_text())
        assert doc["schema"] == "repro-stats/1"
        assert doc["metrics"]["counters"].get("exec.parallel.runs", 0) > 0
        capsys.readouterr()
        with obs.use_registry():
            # a fresh (empty) registry: the rendered numbers come from the file
            assert main(["stats", "--input", str(metrics)]) == 0
        assert "exec.parallel.runs" in capsys.readouterr().out

    def test_stats_input_empty_document_exits_nonzero(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({
            "schema": "repro-stats/1",
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            "caches": {},
        }))
        with obs.use_registry():
            assert main(["stats", "--input", str(empty)]) == 1
