"""The execution planner (repro.plan): model, profiles, precedence.

The planner's two load-bearing invariants, tested head-on:

* **Determinism** -- a decision is a pure function of (shape, profile
  rows, fingerprint, cpu count).  The same inputs yield the same
  :class:`ExecutionPlan` even while the wall clock is jumping wildly,
  because ``plan_execution`` never reads it.
* **Bit-identity** -- ``"auto"`` picks *how* to run, never *what* is
  computed: the full runnable gallery under the planner matches the
  serial interpreter exactly, cold (model tier) and warm (profile tier).

Plus the precedence ladder (explicit > session > profile > model), the
exploration rule that keeps a cold profile from locking onto the first
backend measured, the memoization gate on feedback recording, and the
sqlite ``profiles`` table behind it all.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.codegen import apply_fusion
from repro.codegen.interp import ArrayStore, run_fused
from repro.core.backends import backend_names, execute_fused
from repro.core.session import Session, SessionCaches, SessionOptions
from repro.depend import extract_mldg
from repro.fusion import fuse
from repro.gallery.common import iir2d_code
from repro.gallery.extended import extended_kernels
from repro.gallery.paper import figure2_code
from repro.loopir import parse_program
from repro.perf.memo import clear_all_caches, structural_hash
from repro.plan import (
    DEFAULT_BATCH_JOBS,
    DEFAULT_TILE,
    ExecutionPlan,
    MemoryProfiles,
    Planner,
    choose_tile,
    estimate_costs,
    job_candidates,
    memory_profiles,
    plan_snapshot,
    shape_info,
    size_bucket,
)
from repro.store import CompileStore, current_fingerprint, reset_open_stores


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    """No ambient store, empty in-process profile table, per test."""
    monkeypatch.delenv("REPRO_FUSE_STORE", raising=False)
    monkeypatch.delenv("REPRO_FUSE_MEMO", raising=False)
    clear_all_caches()
    reset_open_stores()
    memory_profiles().clear()
    yield
    clear_all_caches()
    reset_open_stores()
    memory_profiles().clear()


def _fused(source: str):
    nest = parse_program(source)
    g = extract_mldg(nest)
    result = fuse(g)
    return nest, apply_fusion(nest, result.retiming, mldg=g), result


@pytest.fixture(scope="module")
def fig2():
    return _fused(figure2_code())


# ------------------------------------------------------------------ #
# size buckets
# ------------------------------------------------------------------ #


class TestSizeBucket:
    def test_reference_sizes(self):
        # 24x24 = 625 cells -> lg8; 256x256 = 66049 -> lg16
        assert size_bucket(24, 24) == "lg8"
        assert size_bucket(256, 256) == "lg16"

    def test_buckets_are_two_powers_wide(self):
        # nearby sizes share a bucket so measurements transfer...
        assert size_bucket(24, 24) == size_bucket(30, 30)
        # ...but scales never mix: crossover is a function of size
        assert size_bucket(24, 24) != size_bucket(256, 256)

    def test_degenerate_space(self):
        assert size_bucket(0, 0) == "lg0"

    def test_labels_are_even(self):
        for n in (0, 3, 7, 24, 100, 256, 1000):
            label = size_bucket(n, n)
            assert int(label[2:]) % 2 == 0


# ------------------------------------------------------------------ #
# the static cost model
# ------------------------------------------------------------------ #


class TestCostModel:
    def test_shape_info_is_stable(self, fig2):
        _, fp, result = fig2
        a = shape_info(fp, 24, 24, schedule=result.schedule,
                       is_doall=result.is_doall)
        b = shape_info(fp, 24, 24, schedule=result.schedule,
                       is_doall=result.is_doall)
        assert a == b
        assert a.cells == 625 and a.statements >= 1

    def test_estimates_are_deterministic(self, fig2):
        _, fp, result = fig2
        shape = shape_info(fp, 256, 256, schedule=result.schedule,
                           is_doall=result.is_doall)
        assert estimate_costs(shape, cpus=4) == estimate_costs(shape, cpus=4)

    def test_job_candidates_clip_to_cpu_count(self):
        assert job_candidates(1) == (1,)
        assert job_candidates(2) == (1, 2)
        assert job_candidates(3) == (1, 2)
        assert job_candidates(8) == (1, 2, 4)

    def test_choose_tile(self, fig2):
        _, fp, result = fig2
        shape = shape_info(fp, 24, 24, schedule=result.schedule,
                           is_doall=result.is_doall)
        # serial keeps the extracted ParallelExecutor default
        assert choose_tile(shape, 1) == DEFAULT_TILE
        # with workers the tile shrinks so one front feeds all of them,
        # floored where submission overhead would exceed the tile's work
        assert choose_tile(shape, 4) == 16
        big = shape_info(fp, 2000, 2000, schedule=result.schedule,
                         is_doall=result.is_doall)
        assert 16 <= choose_tile(big, 4) <= DEFAULT_TILE

    def test_small_space_never_models_parallel_fanout_as_best(self, fig2):
        # pool submission overhead must dominate at 24x24
        _, fp, result = fig2
        shape = shape_info(fp, 24, 24, schedule=result.schedule,
                           is_doall=result.is_doall)
        best = min(estimate_costs(shape, cpus=4), key=lambda c: c.est_s)
        assert not (best.backend == "parallel" and best.jobs > 1)

    def test_batch_default_preserved(self):
        # the old SessionOptions.jobs = 4 literal lives here now
        assert DEFAULT_BATCH_JOBS == 4


# ------------------------------------------------------------------ #
# profile tables: in-process fallback and the sqlite tier
# ------------------------------------------------------------------ #


class TestMemoryProfiles:
    def test_rows_aggregate(self):
        t = MemoryProfiles()
        assert t.profile_record("s", "f", "lg8", "compiled", 1, 0.004)
        assert t.profile_record("s", "f", "lg8", "compiled", 1, 0.002)
        (row,) = t.profile_rows("s", "f", "lg8")
        assert (row.backend, row.jobs, row.runs) == ("compiled", 1, 2)
        assert row.best_s == pytest.approx(0.002)
        assert row.mean_s == pytest.approx(0.003)

    def test_rows_sorted_and_keyed(self):
        t = MemoryProfiles()
        t.profile_record("s", "f", "lg8", "parallel", 2, 0.1)
        t.profile_record("s", "f", "lg8", "interp", 1, 0.2)
        assert [r.backend for r in t.profile_rows("s", "f", "lg8")] == [
            "interp", "parallel"]
        assert t.profile_rows("s", "f", "lg16") == []
        assert t.profile_rows("s", "other", "lg8") == []

    def test_bounded_eviction(self):
        t = MemoryProfiles(max_keys=2)
        for i in range(4):
            t.profile_record(f"s{i}", "f", "lg8", "interp", 1, 0.1)
        assert t.profile_rows("s0", "f", "lg8") == []  # oldest evicted
        assert len(t.profile_rows("s3", "f", "lg8")) == 1

    def test_clear(self):
        t = MemoryProfiles()
        t.profile_record("s", "f", "lg8", "interp", 1, 0.1)
        t.clear()
        assert len(t) == 0


class TestStoreProfiles:
    def test_roundtrip_aggregates(self, tmp_path):
        store = CompileStore(str(tmp_path / "s.db"))
        assert store.profile_record("s", "f", "lg8", "numpy", 1, 0.004)
        assert store.profile_record("s", "f", "lg8", "numpy", 1, 0.002)
        assert store.profile_record("s", "f", "lg8", "parallel", 2, 0.030)
        rows = store.profile_rows("s", "f", "lg8")
        assert [(r.backend, r.jobs) for r in rows] == [
            ("numpy", 1), ("parallel", 2)]
        assert rows[0].runs == 2 and rows[0].best_s == pytest.approx(0.002)
        assert rows[0].mean_s == pytest.approx(0.003)

    def test_key_isolation(self, tmp_path):
        store = CompileStore(str(tmp_path / "s.db"))
        store.profile_record("s", "f", "lg8", "numpy", 1, 0.004)
        assert store.profile_rows("s", "f", "lg16") == []
        assert store.profile_rows("s", "other-env", "lg8") == []
        assert store.profile_rows("other-prog", "f", "lg8") == []

    def test_rows_survive_reopen(self, tmp_path):
        path = str(tmp_path / "s.db")
        CompileStore(path).profile_record("s", "f", "lg8", "compiled", 1, 0.01)
        rows = CompileStore(path).profile_rows("s", "f", "lg8")
        assert [(r.backend, r.runs) for r in rows] == [("compiled", 1)]

    def test_stats_and_count_report_profiles(self, tmp_path):
        store = CompileStore(str(tmp_path / "s.db"))
        store.profile_record("s", "f", "lg8", "numpy", 1, 0.004)
        store.profile_record("s", "f", "lg16", "numpy", 1, 0.1)
        assert store.profile_count() == 2
        assert store.stats().profile_rows == 2
        assert store.stats().to_dict()["profileRows"] == 2

    def test_clear_drops_profiles_too(self, tmp_path):
        store = CompileStore(str(tmp_path / "s.db"))
        store.put("k", "f", 1)
        store.profile_record("s", "f", "lg8", "numpy", 1, 0.004)
        store.clear()
        assert store.profile_count() == 0
        assert store.profile_rows("s", "f", "lg8") == []


# ------------------------------------------------------------------ #
# planner decisions
# ------------------------------------------------------------------ #


def _plan(fig2, n=256, m=256, **kw):
    _, fp, result = fig2
    return Planner().plan_execution(
        fp, n, m, schedule=result.schedule, is_doall=result.is_doall, **kw)


def _seed_profile(fig2, backend, jobs, elapsed_s, n=256, m=256):
    """Plant one observed timing for fig2's planning key."""
    _, fp, _ = fig2
    memory_profiles().profile_record(
        structural_hash(fp.retimed_mldg), current_fingerprint(),
        size_bucket(n, m), backend, jobs, elapsed_s)


class TestPlannerPrecedence:
    def test_explicit_wins(self, fig2):
        plan = _plan(fig2, requested="compiled", session_backend="numpy")
        assert (plan.backend, plan.source) == ("compiled", "explicit")

    def test_session_pin_wins_over_profile(self, fig2):
        _seed_profile(fig2, "numpy", 1, 1e-4)
        plan = _plan(fig2, session_backend="parallel")
        assert (plan.backend, plan.source) == ("parallel", "session")

    def test_requested_auto_delegates(self, fig2):
        plan = _plan(fig2, requested="auto")
        assert plan.source in ("profile", "model")

    def test_cold_key_falls_back_to_model(self, fig2):
        plan = _plan(fig2)
        assert plan.source == "model"
        assert "cost model" in plan.rationale
        assert plan.backend in backend_names()
        assert plan.est_s is not None and plan.est_s > 0

    def test_explicit_jobs_respected(self, fig2):
        plan = _plan(fig2, requested="parallel", jobs=3)
        assert plan.jobs == 3
        assert plan.tile == choose_tile(
            shape_info(fig2[1], 256, 256, schedule=fig2[2].schedule,
                       is_doall=fig2[2].is_doall), 3)

    def test_non_parallel_backend_plans_one_job(self, fig2):
        plan = _plan(fig2, requested="numpy")
        assert plan.jobs == 1 and plan.tile == DEFAULT_TILE


class TestPlannerProfileTier:
    def test_measured_winner_is_picked(self, fig2):
        # the model favourite is measured, so measurements rule outright
        model = _plan(fig2)
        _seed_profile(fig2, model.backend, model.jobs, 0.5)
        _seed_profile(fig2, "compiled", 1, 1e-5)
        plan = _plan(fig2)
        assert (plan.backend, plan.source) == ("compiled", "profile")
        assert "measured fastest" in plan.rationale

    def test_exploration_beats_first_mover_lock_in(self, fig2):
        # only a slow backend is measured and the model favourite is
        # still unprofiled: explore the favourite instead of locking on
        model = _plan(fig2)
        _seed_profile(fig2, "interp", 1, 1.0)  # far above any estimate
        plan = _plan(fig2)
        assert plan.source == "model"
        assert plan.backend == model.backend
        assert plan.rationale.startswith("exploring unprofiled")

    def test_measured_best_beating_estimate_ends_exploration(self, fig2):
        model = _plan(fig2)
        _seed_profile(fig2, "compiled", 1, model.est_s / 10.0)
        plan = _plan(fig2)
        assert (plan.backend, plan.source) == ("compiled", "profile")

    def test_profile_rows_are_bucket_local(self, fig2):
        _seed_profile(fig2, "compiled", 1, 1e-5, n=256, m=256)
        # 24x24 lives in lg8, so the lg16 row must not steer it
        assert _plan(fig2, n=24, m=24).source == "model"
        assert _plan(fig2, n=256, m=256).source == "profile"

    def test_jobs_constraint_filters_parallel_rows(self, fig2):
        _seed_profile(fig2, "parallel", 4, 1e-6)
        plan = _plan(fig2, jobs=2)
        assert not (plan.backend == "parallel" and plan.jobs == 4)


class TestPlannerDeterminism:
    def test_same_inputs_same_plan(self, fig2):
        assert _plan(fig2) == _plan(fig2)

    def test_warm_plans_repeat(self, fig2):
        _seed_profile(fig2, "compiled", 1, 1e-5)
        assert _plan(fig2) == _plan(fig2)

    def test_no_wall_clock_leakage(self, fig2, monkeypatch):
        # decisions stay identical while the clock jumps by hours
        # between (and during) calls -- the planner never reads it
        import time as _time

        real = _time.perf_counter
        state = {"skew": 0.0}

        def jumpy():
            state["skew"] += 3600.0
            return real() + state["skew"]

        monkeypatch.setattr(_time, "perf_counter", jumpy)
        monkeypatch.setattr(_time, "time", lambda: jumpy())
        _seed_profile(fig2, "compiled", 1, 1e-5)
        assert _plan(fig2) == _plan(fig2)

    def test_decision_ignores_row_insertion_order(self, fig2):
        _, fp, result = fig2
        skey = structural_hash(fp.retimed_mldg)
        fingerprint = current_fingerprint()
        forward = MemoryProfiles()
        backward = MemoryProfiles()
        rows = [("numpy", 1, 0.004), ("compiled", 1, 0.002),
                ("parallel", 2, 0.010)]
        for b, j, s in rows:
            forward.profile_record(skey, fingerprint, "lg16", b, j, s)
        for b, j, s in reversed(rows):
            backward.profile_record(skey, fingerprint, "lg16", b, j, s)
        plans = []
        for table in (forward, backward):
            planner = Planner()
            planner._profiles = lambda t=table: t
            plans.append(planner.plan_execution(
                fp, 256, 256, schedule=result.schedule,
                is_doall=result.is_doall))
        assert plans[0] == plans[1]
        assert plans[0].backend == "compiled"


class TestPlannerObservability:
    def test_counters_and_snapshot(self, fig2):
        reg = obs.default_registry()
        before = reg.counter("plan.selects").value
        plan = _plan(fig2)
        assert reg.counter("plan.selects").value == before + 1
        assert reg.counter(f"plan.source.{plan.source}").value >= 1
        assert reg.counter(f"plan.backend.{plan.backend}").value >= 1
        recent = plan_snapshot()["recent"]
        assert recent and recent[-1] == plan.to_dict()

    def test_select_emits_trace_span(self, fig2):
        _, fp, result = fig2
        with obs.tracing() as tracer:
            Planner().plan_execution(
                fp, 24, 24, schedule=result.schedule,
                is_doall=result.is_doall)
        (span,) = [s for s in tracer.spans() if s.name == "plan.select"]
        assert span.attributes["bucket"] == "lg8"
        assert span.attributes["backend"] in backend_names()
        assert span.attributes["source"] in ("profile", "model")

    def test_plan_to_dict_is_json_shaped(self, fig2):
        d = _plan(fig2).to_dict()
        assert set(d) == {"backend", "jobs", "tile", "source", "rationale",
                          "skey", "bucket", "fingerprint", "estS"}


# ------------------------------------------------------------------ #
# feedback recording and its gate
# ------------------------------------------------------------------ #


class TestRecordGate:
    def test_record_feeds_the_profile_tier(self, fig2):
        plan = _plan(fig2)
        assert Planner().record(plan, 0.004) is True
        warm = _plan(fig2)
        assert warm.source == "profile"
        assert (warm.backend, warm.jobs) == (plan.backend, plan.jobs)

    def test_memo_kill_switch_blocks_recording(self, fig2, monkeypatch):
        plan = _plan(fig2)
        monkeypatch.setenv("REPRO_FUSE_MEMO", "0")
        assert Planner().record(plan, 0.004) is False
        monkeypatch.delenv("REPRO_FUSE_MEMO")
        assert _plan(fig2).source == "model"  # nothing was written

    def test_work_limiting_budget_blocks_recording(self, fig2):
        from repro.resilience import Budget

        plan = _plan(fig2)
        probe = Budget(max_nodes=1)
        assert Planner().record(plan, 0.004, budget=probe) is False
        assert _plan(fig2).source == "model"

    def test_active_fault_injection_blocks_recording(self, fig2):
        from repro.resilience.faults import EdgeWeightCorruption, inject

        plan = _plan(fig2)
        with inject(EdgeWeightCorruption(), seed=3):
            assert Planner().record(plan, 0.004) is False
        assert _plan(fig2).source == "model"

    def test_keyless_plan_is_not_recorded(self, fig2):
        plan = ExecutionPlan(backend="interp", jobs=1, tile=DEFAULT_TILE,
                             source="model", rationale="x")
        assert Planner().record(plan, 0.004) is False


# ------------------------------------------------------------------ #
# bit-identity: auto vs the interpreter, across the gallery
# ------------------------------------------------------------------ #


def _gallery():
    sources = {"fig2": figure2_code(), "iir2d": iir2d_code()}
    for k in extended_kernels():
        sources[k.key] = k.code
    return [(key, *_fused(src)) for key, src in sorted(sources.items())]


_GALLERY = _gallery()
_SIZES = [(5, 7), (17, 23)]


class TestAutoBitIdentity:
    @pytest.mark.parametrize("key,nest,fp,result", _GALLERY,
                             ids=[w[0] for w in _GALLERY])
    @pytest.mark.parametrize("n,m", _SIZES, ids=[f"{n}x{m}" for n, m in _SIZES])
    def test_cold_auto_matches_interp(self, key, nest, fp, result, n, m):
        ref = ArrayStore.for_program(nest, n, m, seed=11)
        run_fused(fp, n, m, store=ref, mode="serial")
        got = ArrayStore.for_program(nest, n, m, seed=11)
        execute_fused("auto", fp, n, m, store=got,
                      schedule=result.schedule, is_doall=result.is_doall)
        assert ref.equal(got), f"auto diverged from interp on {key}"

    @pytest.mark.parametrize("key,nest,fp,result", _GALLERY,
                             ids=[w[0] for w in _GALLERY])
    def test_warm_auto_matches_every_static_backend(self, key, nest, fp,
                                                    result):
        n, m = 17, 23
        ref = ArrayStore.for_program(nest, n, m, seed=11)
        run_fused(fp, n, m, store=ref, mode="serial")
        skey = structural_hash(fp.retimed_mldg)
        for backend in backend_names():
            got = ArrayStore.for_program(nest, n, m, seed=11)
            execute_fused(backend, fp, n, m, store=got,
                          schedule=result.schedule,
                          is_doall=result.is_doall, jobs=2)
            assert ref.equal(got), f"{backend} diverged on {key}"
            # warm the profile tier toward this backend, then re-check auto
            memory_profiles().profile_record(
                skey, current_fingerprint(), size_bucket(n, m),
                backend, 2 if backend == "parallel" else 1, 1e-6)
            auto = ArrayStore.for_program(nest, n, m, seed=11)
            execute_fused("auto", fp, n, m, store=auto,
                          schedule=result.schedule, is_doall=result.is_doall)
            assert ref.equal(auto), (
                f"auto diverged on {key} warmed toward {backend}")


# ------------------------------------------------------------------ #
# session integration: execute_fused through the planner + L2 profiles
# ------------------------------------------------------------------ #


class TestSessionIntegration:
    def _session(self, path, backend="auto"):
        return Session(
            options=SessionOptions(backend=backend, store_path=str(path)),
            caches=SessionCaches.private(),
        )

    def test_auto_session_executes_and_persists_profiles(self, tmp_path):
        session = self._session(tmp_path / "plan.db")
        out = session.fuse_program(figure2_code())
        n = m = 12
        ref = ArrayStore.for_program(out.nest, n, m, seed=11)
        run_fused(out.fused, n, m, store=ref, mode="serial")
        got = ArrayStore.for_program(out.nest, n, m, seed=11)
        session.execute_fused(out.fused, n, m, store=got,
                              schedule=out.fusion.schedule,
                              is_doall=out.fusion.is_doall)
        assert ref.equal(got)
        assert session.caches.store.profile_count() >= 1
        session.caches.store.close()

    def test_cold_then_warm_reuses_the_measurement(self, tmp_path):
        session = self._session(tmp_path / "plan.db")
        out = session.fuse_program(figure2_code())
        reg = obs.default_registry()
        for _ in range(2):
            got = ArrayStore.for_program(out.nest, 12, 12, seed=11)
            session.execute_fused(out.fused, 12, 12, store=got,
                                  schedule=out.fusion.schedule,
                                  is_doall=out.fusion.is_doall)
        # second decision had a row to read: the profile tier was hit
        assert reg.counter("store.profile_hits").value >= 1
        assert reg.counter("plan.records").value >= 2
        session.caches.store.close()

    def test_explicit_backend_skips_planner_choice(self, tmp_path):
        session = self._session(tmp_path / "plan.db")
        out = session.fuse_program(figure2_code())
        reg = obs.default_registry()
        before = reg.counter("plan.source.explicit").value
        got = ArrayStore.for_program(out.nest, 12, 12, seed=11)
        session.execute_fused(out.fused, 12, 12, store=got,
                              backend="compiled",
                              schedule=out.fusion.schedule,
                              is_doall=out.fusion.is_doall)
        assert reg.counter("plan.source.explicit").value == before + 1
        session.caches.store.close()

    def test_pinned_session_backend_reports_session_source(self, tmp_path):
        session = self._session(tmp_path / "plan.db", backend="interp")
        out = session.fuse_program(figure2_code())
        reg = obs.default_registry()
        before = reg.counter("plan.source.session").value
        got = ArrayStore.for_program(out.nest, 12, 12, seed=11)
        session.execute_fused(out.fused, 12, 12, store=got,
                              schedule=out.fusion.schedule,
                              is_doall=out.fusion.is_doall)
        assert reg.counter("plan.source.session").value == before + 1
        session.caches.store.close()
