"""Cross-subsystem consistency checks.

Independent components that compute the same quantity different ways must
agree: the machine simulator's wavefront phases vs the codegen enumerator,
the transforms' unimodular laws under random composition, and the driver's
behaviour under forced strategies on the paper's graphs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen import apply_fusion, wavefront_iterations
from repro.depend import extract_mldg
from repro.fusion import NoParallelRetimingError, Strategy, fuse
from repro.gallery import figure14_mldg
from repro.gallery.extended import extended_kernels
from repro.loopir import parse_program
from repro.machine import hyperplane_profile, profile_fusion, unfused_profile
from repro.transforms import Unimodular, interchange, reversal, skew
from repro.vectors import IVec


class TestWavefrontConsistency:
    """Two independent wavefront computations: the machine simulator's
    numpy-bucketed profile and codegen's explicit enumeration."""

    def test_phase_counts_and_work_agree(self):
        kernel = next(k for k in extended_kernels() if k.key == "anisotropic-sweep")
        nest = parse_program(kernel.code)
        g = extract_mldg(nest)
        res = fuse(g)
        fp = apply_fusion(nest, res.retiming, mldg=g)
        n, m = 9, 11

        prof = hyperplane_profile(g, res.retiming, res.schedule, n, m)
        enum = list(wavefront_iterations(fp, res.schedule, n, m))

        assert prof.num_phases == len(enum)
        # the simulator weights phases by in-bounds statement instances;
        # node count per cell varies, so compare total cells via costs=1
        total_cells = sum(len(pts) for _t, pts in enum)
        lo_i, hi_i = fp.full_outer_range(n)
        lo_j, hi_j = fp.full_inner_range(m)
        assert total_cells == (hi_i - lo_i + 1) * (hi_j - lo_j + 1)

    def test_profile_work_equals_unfused_work(self):
        g = figure14_mldg()
        res = fuse(g)
        n, m = 12, 7
        assert (
            hyperplane_profile(g, res.retiming, res.schedule, n, m).total_work
            == unfused_profile(g, n, m).total_work
        )


class TestDriverForcedStrategies:
    def test_forced_cyclic_on_figure14_raises(self):
        with pytest.raises(NoParallelRetimingError):
            fuse(figure14_mldg(), strategy=Strategy.CYCLIC)

    def test_every_strategy_on_every_extended_kernel(self):
        """LEGAL_ONLY and HYPERPLANE always apply; the specific ones only
        where their preconditions hold -- and nothing crashes unexpectedly."""
        from repro.fusion import FusionError

        for kernel in extended_kernels():
            g = kernel.mldg()
            for strategy in (Strategy.LEGAL_ONLY, Strategy.HYPERPLANE):
                res = fuse(g, strategy=strategy)
                assert res.verification.ok_for_legal_fusion
            for strategy in (Strategy.ACYCLIC, Strategy.CYCLIC, Strategy.DIRECT):
                try:
                    res = fuse(g, strategy=strategy)
                    assert res.verification.ok_for_legal_fusion
                except FusionError:
                    pass  # precondition legitimately unmet

    def test_work_conservation_across_strategies(self):
        for kernel in extended_kernels():
            g = kernel.mldg()
            res = fuse(g)
            n, m = 15, 9
            assert (
                profile_fusion(res, n, m).total_work
                == unfused_profile(g, n, m).total_work
            ), kernel.key


_GENERATORS = [interchange(), reversal(0), reversal(1), skew(1), skew(-1), skew(2, of=0)]


@given(st.lists(st.integers(min_value=0, max_value=len(_GENERATORS) - 1), min_size=1, max_size=6))
@settings(max_examples=100)
def test_unimodular_group_closed_under_composition(indices):
    t = _GENERATORS[indices[0]]
    for k in indices[1:]:
        t = t.compose(_GENERATORS[k])
    assert t.det in (1, -1)
    v = IVec(3, -7)
    assert t.inverse().apply(t.apply(v)) == v


@given(
    st.lists(st.integers(min_value=0, max_value=len(_GENERATORS) - 1), min_size=1, max_size=4),
    st.integers(min_value=-20, max_value=20),
    st.integers(min_value=-20, max_value=20),
)
@settings(max_examples=100)
def test_unimodular_linearity(indices, a, b):
    t = _GENERATORS[indices[0]]
    for k in indices[1:]:
        t = t.compose(_GENERATORS[k])
    u, v = IVec(a, b), IVec(b - a, 3)
    assert t.apply(u + v) == t.apply(u) + t.apply(v)
