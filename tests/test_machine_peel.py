"""Unit tests for the shift-and-peel execution-cost model."""

import pytest

from repro.baselines import shift_and_peel
from repro.gallery import figure8_mldg, figure14_mldg
from repro.graph import mldg_from_table
from repro.machine import shift_and_peel_profile, shift_and_peel_time


@pytest.fixture
def fig8_outcome():
    return shift_and_peel(figure8_mldg())


class TestTimeModel:
    def test_serial_time_is_total_work(self, fig8_outcome):
        g = figure8_mldg()
        n, m = 10, 9
        assert shift_and_peel_time(g, fig8_outcome, n, m, 1) == (n + 1) * (m + 1) * 7

    def test_monotone_until_threshold(self, fig8_outcome):
        g = figure8_mldg()
        times = [shift_and_peel_time(g, fig8_outcome, 50, 63, p) for p in (1, 2, 4, 8)]
        assert times == sorted(times, reverse=True)

    def test_peel_floor(self, fig8_outcome):
        """Past the threshold, per-row time cannot drop below the peel cost."""
        g = figure8_mldg()
        n, m = 50, 63
        t_big = shift_and_peel_time(g, fig8_outcome, n, m, 1000)
        assert t_big >= (n + 1) * fig8_outcome.peel_count * 7

    def test_zero_peel_matches_doall(self):
        g = mldg_from_table({("A", "B"): [(0, 0)]}, nodes=["A", "B"])
        out = shift_and_peel(g)
        assert out.peel_count == 0
        n, m, p = 10, 15, 4
        expected = (n + 1) * (((m + 1) + p - 1) // p) * 2
        assert shift_and_peel_time(g, out, n, m, p) == expected

    def test_sync_cost_added(self, fig8_outcome):
        g = figure8_mldg()
        base = shift_and_peel_time(g, fig8_outcome, 10, 9, 4)
        with_sync = shift_and_peel_time(g, fig8_outcome, 10, 9, 4, sync_cost=5)
        assert with_sync == base + 5 * 10

    def test_illegal_outcome_rejected(self):
        g = figure14_mldg()
        out = shift_and_peel(g)
        assert not out.legal
        with pytest.raises(ValueError):
            shift_and_peel_time(g, out, 5, 5, 2)


class TestProfile:
    def test_one_phase_per_row(self, fig8_outcome):
        g = figure8_mldg()
        prof = shift_and_peel_profile(g, fig8_outcome, 20, 9)
        assert prof.num_phases == 21
        assert prof.sync_count == 20
        assert prof.total_work == 21 * 10 * 7

    def test_illegal_rejected(self):
        g = figure14_mldg()
        out = shift_and_peel(g)
        with pytest.raises(ValueError):
            shift_and_peel_profile(g, out, 5, 5)
