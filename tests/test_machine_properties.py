"""Property-based tests for the machine model's conservation laws."""

from hypothesis import given, settings, strategies as st

from repro.fusion import Parallelism, fuse
from repro.graph import random_legal_mldg
from repro.machine import (
    fused_doall_profile,
    hyperplane_profile,
    profile_fusion,
    unfused_profile,
)

seeds = st.integers(min_value=0, max_value=10**6)
sizes = st.integers(min_value=1, max_value=8)
ns = st.integers(min_value=1, max_value=40)
ms = st.integers(min_value=1, max_value=40)


@given(seeds, sizes, ns, ms)
@settings(max_examples=50, deadline=None)
def test_work_is_conserved_by_fusion(seed, nodes, n, m):
    """No execution shape creates or destroys statement instances."""
    g = random_legal_mldg(nodes, seed=seed)
    res = fuse(g)
    before = unfused_profile(g, n, m)
    after = profile_fusion(res, n, m)
    assert after.total_work == before.total_work == g.num_nodes * (n + 1) * (m + 1)


@given(seeds, sizes, ns, ms)
@settings(max_examples=50, deadline=None)
def test_fused_never_more_phases_of_row_type(seed, nodes, n, m):
    """A DOALL fusion has at most as many phases as the unfused nest
    (rows subsume per-loop sweeps)."""
    g = random_legal_mldg(nodes, seed=seed)
    res = fuse(g)
    if res.parallelism is Parallelism.DOALL:
        before = unfused_profile(g, n, m)
        after = fused_doall_profile(g, res.retiming, n, m, include_boundary=True)
        assert after.num_phases <= before.num_phases


@given(seeds, sizes, ns, ms)
@settings(max_examples=40, deadline=None)
def test_parallel_time_bounds(seed, nodes, n, m):
    """T(P) is sandwiched between work/P and work, and T(1) == work."""
    g = random_legal_mldg(nodes, seed=seed)
    prof = unfused_profile(g, n, m)
    assert prof.parallel_time(1) == prof.total_work
    for p in (2, 8):
        t = prof.parallel_time(p)
        assert prof.total_work / p <= t <= prof.total_work


@given(seeds, sizes)
@settings(max_examples=40, deadline=None)
def test_hyperplane_profile_work_conserved(seed, nodes):
    g = random_legal_mldg(nodes, seed=seed)
    res = fuse(g, strategy="hyperplane")
    prof = hyperplane_profile(g, res.retiming, res.schedule, 12, 9)
    assert prof.total_work == unfused_profile(g, 12, 9).total_work


@given(seeds, sizes, st.integers(min_value=0, max_value=100))
@settings(max_examples=40, deadline=None)
def test_sync_cost_is_linear_in_barriers(seed, nodes, cost):
    g = random_legal_mldg(nodes, seed=seed)
    prof = unfused_profile(g, 10, 10)
    base = prof.parallel_time(4)
    assert prof.parallel_time(4, sync_cost=cost) == base + cost * prof.sync_count
