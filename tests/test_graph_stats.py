"""Unit tests for MLDG summary statistics."""

from repro.graph import mldg_from_table, mldg_stats
from repro.gallery import figure2_mldg, figure8_mldg, figure14_mldg


class TestStats:
    def test_figure2(self):
        s = mldg_stats(figure2_mldg())
        assert s.nodes == 4 and s.edges == 6
        assert s.vectors == 8
        assert s.hard_edges == 1  # B->C
        assert s.self_loops == 1  # C->C
        assert s.fusion_preventing == 2  # (0,-2), (0,-1)
        assert not s.acyclic
        assert s.largest_scc == 4
        assert s.legal and not s.directly_fusable

    def test_figure8(self):
        s = mldg_stats(figure8_mldg())
        assert s.acyclic
        assert s.scc_count == 7 and s.largest_scc == 1
        assert s.hard_edges == 2  # B->C and A->D
        # (0,-2) on B->C, (0,-2) on B->F, (0,-3) and (0,-1) on A->D
        assert s.fusion_preventing == 4

    def test_figure14_counts(self):
        s = mldg_stats(figure14_mldg())
        assert s.nodes == 7 and s.edges == 10
        assert s.hard_edges == 2  # B->C, C->D
        assert not s.acyclic

    def test_vector_kind_partition(self):
        for build in (figure2_mldg, figure8_mldg, figure14_mldg):
            s = mldg_stats(build())
            assert s.outer_carried + s.same_iteration == s.vectors

    def test_describe(self):
        text = mldg_stats(figure2_mldg()).describe()
        assert "4 loops" in text and "hard-edge" in text and "legal" in text

    def test_directly_fusable_graph(self):
        g = mldg_from_table({("A", "B"): [(0, 0)]}, nodes=["A", "B"])
        s = mldg_stats(g)
        assert s.directly_fusable and s.acyclic and s.fusion_preventing == 0
