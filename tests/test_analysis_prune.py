"""Certificate-carrying MLDG edge pruning (repro.analysis.prune): the
graph transform, the pipeline pass and its gating, and the golden
guarantee that pruning never changes execution results."""

import pytest

from repro.analysis.engine import analyze_nest
from repro.analysis.prune import PruneMLDGPass, prune_mldg
from repro.analysis.tests import Verdict
from repro.codegen.interp import ArrayStore, run_original
from repro.core.passes import Artifact
from repro.core.session import Session, SessionOptions
from repro.depend import extract_mldg
from repro.gallery import phantom_dependence_mldg
from repro.gallery.common import (
    all_section5_examples,
    phantom_dependence_code,
)
from repro.graph import mldg_from_table
from repro.loopir.parser import parse_program
from repro.resilience.faults import RetimingDrop, inject
from repro.vectors import IVec


@pytest.fixture(scope="module")
def phantom():
    return parse_program(phantom_dependence_code())


class TestPruneMldg:
    def test_phantom_edges_are_pruned_with_certificates(self, phantom):
        g = extract_mldg(phantom)
        assert g.D("A", "B") == {IVec([0, 1]), IVec([9, 0])}
        pruned, result = prune_mldg(phantom, g)

        assert pruned.D("A", "B") == {IVec([0, 1])}
        assert not pruned.has_edge("A", "C")  # last vector gone -> edge gone
        assert pruned.D("B", "C") == {IVec([1, 0])}
        assert result.removed_vector_count == 2
        assert result.removed_edges == (("A", "C"),)
        for p in result.pruned:
            assert p.evidence.verdict is Verdict.ABSENT
            assert p.evidence.test in {"gcd", "banerjee", "enumerate"}

        # the input graph is never mutated
        assert g.D("A", "B") == {IVec([0, 1]), IVec([9, 0])}

    def test_extracted_graph_matches_gallery_syntactic_mldg(self, phantom):
        g = extract_mldg(phantom)
        expected = phantom_dependence_mldg()
        assert set(g.nodes) == set(expected.nodes)
        for src, dst in [("A", "B"), ("A", "C"), ("B", "C")]:
            assert g.D(src, dst) == expected.D(src, dst)

    def test_every_certificate_reverifies_by_enumeration(self, phantom):
        report = analyze_nest(phantom)
        assert report.counts() == {"must": 2, "may": 0, "absent": 2}
        for d in report.dependences:
            assert d.check(), f"certificate failed re-verification: {d.evidence}"

    def test_symbolic_bounds_prune_nothing(self):
        for ex in all_section5_examples():
            if ex.code is None:
                continue
            nest = parse_program(ex.code)
            g = extract_mldg(nest)
            pruned, result = prune_mldg(nest, g)
            assert result.pruned == ()  # fig2/iir2d declare symbolic bounds
            assert {e.src for e in pruned.edges()} == {e.src for e in g.edges()}

    def test_remove_dependence_rejects_unknown_vectors(self):
        g = mldg_from_table({("A", "B"): [(0, 1)]}, nodes=["A", "B"])
        with pytest.raises(ValueError, match="not on edge"):
            g.remove_dependence("A", "B", IVec([5, 5]))
        with pytest.raises(ValueError):
            g.remove_dependence("A", "B")  # empty vector list is a caller bug


class TestPruneMLDGPass:
    def _artifact(self, nest):
        return Artifact(source=None, nest=nest, mldg=extract_mldg(nest))

    def test_pass_prunes_and_notes(self, phantom):
        artifact = self._artifact(phantom)
        PruneMLDGPass().run(artifact, Session())
        assert not artifact.mldg.has_edge("A", "C")
        assert artifact.prune is not None
        assert artifact.prune.removed_vector_count == 2
        assert any("provably-absent" in note for note in artifact.notes)

    def test_opt_out_skips(self, phantom):
        artifact = self._artifact(phantom)
        session = Session(options=SessionOptions(prune_edges=False))
        PruneMLDGPass().run(artifact, session)
        assert artifact.mldg.has_edge("A", "C")
        assert artifact.prune is None

    def test_active_fault_injection_skips(self, phantom):
        artifact = self._artifact(phantom)
        with inject(RetimingDrop(), seed=0):
            PruneMLDGPass().run(artifact, Session())
        assert artifact.mldg.has_edge("A", "C")  # untouched
        assert any("fault injection" in note for note in artifact.notes)


class TestExecutionEquivalence:
    """Pruning is justified by certificates; these tests hold it to the
    stronger operational standard: identical execution output."""

    def _outputs(self, source, n, m, prune):
        session = Session(options=SessionOptions(prune_edges=prune))
        out = session.fuse_program(source)
        return out, out.emitted_code()

    def test_phantom_fuses_identically_with_and_without_pruning(self):
        source = phantom_dependence_code()
        nest = parse_program(source)
        on, code_on = self._outputs(source, 6, 8, prune=True)
        off, code_off = self._outputs(source, 6, 8, prune=False)
        assert any("pruned" in note for note in on.notes)
        assert not any("pruned" in note for note in off.notes)
        assert code_on == code_off

        from repro.verify import check_equivalence

        for result in (on, off):
            report = check_equivalence(nest, result.fused, n=6, m=8)
            assert report.equivalent

    def test_gallery_wide_pruned_output_matches_unpruned(self):
        """Every executable gallery program, plus the phantom showcase:
        the pruned pipeline's fused program computes bit-identically to
        the unpruned one from the same initial store."""
        sources = [phantom_dependence_code()] + [
            ex.code for ex in all_section5_examples() if ex.code is not None
        ]
        for source in sources:
            nest = parse_program(source)
            on, code_on = self._outputs(source, 6, 8, prune=True)
            off, code_off = self._outputs(source, 6, 8, prune=False)
            assert code_on == code_off, source

            from repro.codegen.interp import run_fused

            n, m = 6, 8
            base = ArrayStore.for_program(nest, n, m, seed=3)
            reference = run_original(nest, n, m, store=base.copy())
            for result in (on, off):
                got = run_fused(result.fused, n, m, store=base.copy())
                assert reference.equal(got), source
