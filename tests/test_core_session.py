"""Session behavior: options, ladder variants, caches, activation, obs."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.context import current_session
from repro.core.session import (
    LADDER_VARIANTS,
    Session,
    SessionCaches,
    SessionOptions,
)
from repro.gallery.common import iir2d_code
from repro.gallery.paper import figure2_code
from repro.perf.memo import fusion_cache
from repro.pipeline import fuse_program


def test_default_session_matches_legacy_entry_point():
    source = figure2_code()
    legacy = fuse_program(source)
    out = Session().fuse_program(source)
    assert out.fusion.strategy == legacy.fusion.strategy
    assert out.fusion.parallelism == legacy.fusion.parallelism
    assert out.fusion.retiming.as_dict() == legacy.fusion.retiming.as_dict()
    assert out.emitted_code() == legacy.emitted_code()
    assert [d.to_dict() for d in out.diagnostics] == [
        d.to_dict() for d in legacy.diagnostics
    ]


def test_pass_names_exposed():
    assert Session().pass_names == (
        "parse",
        "validate",
        "lint",
        "extract-mldg",
        "prune-mldg",
        "legality",
        "fuse",
        "verify-retiming",
        "codegen",
    )


def test_options_default_strategy_respected():
    session = Session(options=SessionOptions(strategy="legal-only"))
    out = session.fuse_program(figure2_code())
    assert out.fusion.strategy.value == "legal-only"
    # per-call override wins over the session default
    out2 = session.fuse_program(figure2_code(), strategy="cyclic")
    assert out2.fusion.strategy.value == "cyclic"


@pytest.mark.parametrize(
    "variant, expected_rung",
    [
        ("full", "doall"),
        ("serial", "legal-only"),
        ("conservative", "partition"),
    ],
)
def test_ladder_variants_select_the_descent(variant, expected_rung):
    session = Session(options=SessionOptions(ladder=variant))
    out = session.fuse_program_resilient(figure2_code())
    assert out.rung.label == expected_rung
    attempted = {a.rung.label for a in out.report.attempts}
    allowed = set(LADDER_VARIANTS[variant])
    assert attempted <= allowed


def test_explicit_rung_tuple_ladder():
    session = Session(options=SessionOptions(ladder=("legal-only", "none")))
    out = session.fuse_program_resilient(figure2_code())
    assert out.rung.label == "legal-only"


def test_unknown_ladder_variant_raises():
    with pytest.raises(KeyError, match="unknown ladder variant"):
        SessionOptions(ladder="nope").ladder_labels()


def test_no_session_keeps_default_descent():
    out = fuse_program(figure2_code())  # strict path, sanity anchor
    assert out.fusion.parallelism.value == "doall"
    from repro.resilience.pipeline import fuse_program_resilient

    res = fuse_program_resilient(figure2_code())
    assert res.rung.label == "doall"


def test_activate_sets_and_restores_ambient_session():
    session = Session()
    assert current_session() is None
    with session.activate():
        assert current_session() is session
        # re-entrant: activating the active session is a no-op
        with session.activate():
            assert current_session() is session
        assert current_session() is session
    assert current_session() is None


def test_private_caches_do_not_touch_process_cache():
    source = iir2d_code()
    process_cache = fusion_cache()
    before = process_cache.cache_info()
    session = Session(caches=SessionCaches.private())
    session.fuse_program(source)
    session.fuse_program(source)  # second run: session-cache hit
    with session.activate():
        info = fusion_cache().cache_info()
    assert fusion_cache() is process_cache
    assert info.hits >= 1
    after = process_cache.cache_info()
    assert after.misses == before.misses
    assert after.currsize == before.currsize


def test_isolated_session_registry_keeps_process_registry_clean():
    registry = obs.MetricsRegistry()
    session = Session(registry=registry, caches=SessionCaches.private())
    default = obs.default_registry()
    before = default.counter("core.pass.fuse.runs").value
    session.fuse_program(figure2_code())
    assert registry.counter("core.pass.fuse.runs").value == 1
    assert default.counter("core.pass.fuse.runs").value == before


def test_session_tracer_collects_pipeline_spans():
    tracer = obs.Tracer()
    out = Session(tracer=tracer).fuse_program(figure2_code())
    assert out.fused is not None
    names = [s.name for s in tracer.spans()]
    assert "pipeline.fuse_program" in names
    for name in ("pipeline.parse", "pipeline.lint", "pipeline.codegen"):
        assert name in names


def test_session_diagnostics_accumulate_and_clear():
    session = Session()
    session.fuse_program(figure2_code())
    n1 = len(session.diagnostics)
    assert n1 > 0
    session.fuse_program(figure2_code())
    assert len(session.diagnostics) == 2 * n1
    session.clear_diagnostics()
    assert session.diagnostics == []


def test_graph_level_fuse_uses_session_budget():
    from repro.gallery.paper import figure2_mldg
    from repro.resilience.budget import Budget, BudgetExceededError

    ok = Session().fuse(figure2_mldg())
    assert ok.parallelism.value == "doall"
    strangled = Session(budget=Budget(max_nodes=1))
    with pytest.raises(BudgetExceededError):
        strangled.fuse(figure2_mldg())


def test_session_owned_fault_injector_is_active_inside_activation():
    from repro.resilience import faults
    from repro.resilience.faults import RetimingDrop

    session = Session(
        options=SessionOptions(injector=RetimingDrop(), fault_seed=7)
    )
    assert faults.active_fault() is None
    with session.activate():
        fault = faults.active_fault()
        assert fault is not None
        assert isinstance(fault.injector, RetimingDrop)
        assert fault.seed == 7
    assert faults.active_fault() is None
    # the resilient pipeline under an injected fault still degrades safely
    out = session.fuse_program_resilient(figure2_code())
    assert out.rung.label in {r for rungs in LADDER_VARIANTS.values() for r in rungs}


def test_top_level_session_export():
    import repro

    assert repro.Session is Session
    assert "Session" in repro.__all__
