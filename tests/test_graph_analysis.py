"""Unit tests for MLDG structural analyses."""

import pytest

from repro.graph import (
    cycle_weight,
    enumerate_cycles,
    is_acyclic,
    mldg_from_table,
    strongly_connected_components,
    topological_order,
)
from repro.gallery import figure2_mldg, figure8_mldg
from repro.vectors import IVec


class TestAcyclicity:
    def test_figure8_acyclic(self):
        assert is_acyclic(figure8_mldg())

    def test_figure2_cyclic(self):
        assert not is_acyclic(figure2_mldg())

    def test_self_loop_is_cycle(self):
        g = mldg_from_table({("A", "A"): [(1, 0)]}, nodes=["A"])
        assert not is_acyclic(g)


class TestCycles:
    def test_figure2_cycle_count(self):
        # simple cycles of Figure 2: the self-loop C, A->B->C->D->A, A->C->D->A
        cycles = list(enumerate_cycles(figure2_mldg()))
        assert len(cycles) == 3

    def test_limit(self):
        cycles = list(enumerate_cycles(figure2_mldg(), limit=1))
        assert len(cycles) == 1

    def test_cycle_weight_self_loop(self):
        g = figure2_mldg()
        assert cycle_weight(g, ["C"]) == IVec(1, 0)

    def test_cycle_weight_rotation_invariant(self):
        g = figure2_mldg()
        w1 = cycle_weight(g, ["A", "B", "C", "D"])
        w2 = cycle_weight(g, ["C", "D", "A", "B"])
        assert w1 == w2

    def test_cycle_weight_empty_raises(self):
        with pytest.raises(ValueError):
            cycle_weight(figure2_mldg(), [])

    def test_cycle_weight_missing_edge_raises(self):
        with pytest.raises(KeyError):
            cycle_weight(figure2_mldg(), ["A", "D"])  # no D->A? (exists) A->D missing


class TestTopology:
    def test_topological_order_figure8(self):
        order = topological_order(figure8_mldg())
        pos = {n: i for i, n in enumerate(order)}
        for (u, v) in [("A", "B"), ("B", "C"), ("C", "D"), ("D", "E"),
                       ("B", "F"), ("F", "G"), ("B", "E"), ("A", "D")]:
            assert pos[u] < pos[v]

    def test_topological_prefers_program_order(self):
        g = mldg_from_table(
            {("A", "B"): [(0, 1)], ("A", "C"): [(0, 1)]}, nodes=["A", "B", "C"]
        )
        assert topological_order(g) == ["A", "B", "C"]

    def test_sccs_figure2(self):
        comps = strongly_connected_components(figure2_mldg())
        # A,B,C,D form one SCC (the D->A back edge closes it)
        assert (max(comps, key=len)) == ("A", "B", "C", "D")

    def test_sccs_figure8_all_singletons(self):
        comps = strongly_connected_components(figure8_mldg())
        assert all(len(c) == 1 for c in comps)
        assert len(comps) == 7

    def test_scc_condensation_in_topological_order(self):
        g = mldg_from_table(
            {
                ("A", "B"): [(0, 1)],
                ("B", "C"): [(0, 1)],
                ("C", "B"): [(1, 0)],
                ("C", "D"): [(0, 1)],
            },
            nodes=["A", "B", "C", "D"],
        )
        comps = strongly_connected_components(g)
        assert comps == [("A",), ("B", "C"), ("D",)]
