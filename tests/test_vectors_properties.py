"""Property-based tests for the vector algebra (hypothesis)."""

from hypothesis import given, strategies as st

from repro.vectors import ExtVec, IVec, lex_max, lex_min, lex_sum

ints = st.integers(min_value=-10**6, max_value=10**6)


def ivecs(dim=2):
    return st.lists(ints, min_size=dim, max_size=dim).map(IVec)


@given(ivecs(), ivecs())
def test_addition_commutes(a, b):
    assert a + b == b + a


@given(ivecs(), ivecs(), ivecs())
def test_addition_associates(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(ivecs())
def test_additive_inverse(a):
    assert a + (-a) == IVec.zero(a.dim)
    assert a - a == IVec.zero(a.dim)


@given(ivecs(), ivecs(), ivecs())
def test_lex_order_is_translation_invariant(a, b, c):
    """Adding the same vector to both sides preserves lexicographic order --
    the fact that makes difference-constraint reasoning sound."""
    assert (a < b) == (a + c < b + c)


@given(ivecs(), ivecs())
def test_order_totality(a, b):
    assert (a < b) + (a == b) + (b < a) == 1


@given(st.lists(ivecs(), min_size=1, max_size=20))
def test_lex_min_max_membership(vs):
    lo, hi = lex_min(vs), lex_max(vs)
    assert lo in vs and hi in vs
    assert all(lo <= v <= hi for v in vs)


@given(st.lists(ivecs(), min_size=1, max_size=10))
def test_lex_sum_matches_componentwise(vs):
    total = lex_sum(vs)
    for axis in range(2):
        assert total[axis] == sum(v[axis] for v in vs)


@given(ivecs(), st.integers(min_value=-50, max_value=50))
def test_scalar_mul_distributes(a, k):
    assert k * a == IVec(k * c for c in a) if a.dim else True
    assert (k * a) + a == (k + 1) * a


@given(ivecs(dim=3), ivecs(dim=3))
def test_higher_dimension_arithmetic(a, b):
    assert (a + b) - b == a


@given(ivecs())
def test_extvec_roundtrip(a):
    assert ExtVec.from_ivec(a).to_ivec() == a


@given(ivecs(), ivecs())
def test_extvec_order_agrees_with_ivec(a, b):
    assert (a < b) == (ExtVec.from_ivec(a) < ExtVec.from_ivec(b))


@given(ivecs(), ivecs())
def test_dot_symmetry(a, b):
    assert a.dot(b) == b.dot(a)
