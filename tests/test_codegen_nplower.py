"""The numpy whole-array lowering backend, verified bit-for-bit.

Four independent implementations of fused-program semantics now guard
each other: interp (ground truth), compiled (per-row), parallel
(chunked) and numpy (staged whole-array).  These tests sweep

* the full runnable gallery x sizes x all four backends (identity),
* seeded random single-writer programs through the same sweep,
* resilience-ladder rungs that reach execution,
* hand-permuted fused bodies that force the slab classifier to give up
  (exercising the wavefront and scalar-fallback stages),

asserting exact array equality every time, plus trace-skeleton
determinism (``tree_shape``) and the lowering-decision counters.
"""

import dataclasses
import random

import pytest

from repro import obs
from repro.codegen import apply_fusion
from repro.codegen.interp import ArrayStore, run_fused
from repro.codegen.nplower import compile_numpy, plan_lowering
from repro.codegen.pycompile import compile_fused
from repro.core.backends import backend_names, execute_fused, get
from repro.core.session import Session, SessionOptions
from repro.depend import extract_mldg
from repro.fusion import FusionError, fuse
from repro.gallery.common import iir2d_code
from repro.gallery.extended import extended_kernels
from repro.gallery.paper import figure2_code
from repro.loopir import parse_program
from repro.loopir.ast_nodes import ArrayRef
from repro.perf.bench import (
    bench_backend_sweep,
    bench_backends,
    parse_sizes,
    platform_block,
)
from repro.vectors import IVec

N, M = 17, 23  # deliberately not round, not square, not slab-aligned
SIZES = [(5, 7), (N, M), (32, 31)]

ALL_BACKENDS = ("interp", "compiled", "numpy", "parallel")


def _workloads():
    sources = {"fig2": figure2_code(), "iir2d": iir2d_code()}
    for k in extended_kernels():
        sources[k.key] = k.code
    out = []
    for key, src in sorted(sources.items()):
        nest = parse_program(src)
        g = extract_mldg(nest)
        result = fuse(g)
        out.append((key, nest, apply_fusion(nest, result.retiming, mldg=g), result))
    return out


_WORKLOADS = _workloads()


def _reference(nest, fp, n, m, seed=11):
    store = ArrayStore.for_program(nest, n, m, seed=seed)
    return run_fused(fp, n, m, store=store, mode="serial")


# ------------------------------------------------------------------ #
# gallery identity across every backend
# ------------------------------------------------------------------ #


class TestGalleryIdentity:
    @pytest.mark.parametrize("key,nest,fp,result", _WORKLOADS,
                             ids=[w[0] for w in _WORKLOADS])
    @pytest.mark.parametrize("n,m", SIZES, ids=[f"{n}x{m}" for n, m in SIZES])
    def test_numpy_bit_identical(self, key, nest, fp, result, n, m):
        ref = _reference(nest, fp, n, m)
        got = ArrayStore.for_program(nest, n, m, seed=11)
        compile_numpy(fp, schedule=result.schedule)(got, n, m)
        assert ref.equal(got)

    @pytest.mark.parametrize("key,nest,fp,result", _WORKLOADS,
                             ids=[w[0] for w in _WORKLOADS])
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_all_backends_agree(self, key, nest, fp, result, backend):
        ref = _reference(nest, fp, N, M)
        got = ArrayStore.for_program(nest, N, M, seed=11)
        execute_fused(
            backend, fp, N, M, store=got,
            schedule=result.schedule, is_doall=result.is_doall, jobs=2,
        )
        assert ref.equal(got), f"{backend} diverged on {key}"

    def test_no_fallback_on_core_gallery(self):
        """Every gallery statement lowers to an array-op stage."""
        for key, nest, fp, result in _WORKLOADS:
            plan = plan_lowering(fp, schedule=result.schedule)
            assert plan.fallback_statements == 0, (
                f"{key} fell back to scalar: {plan.describe()}"
            )

    def test_fig2_plan_shape(self):
        fp, result = next(
            (fp, r) for key, _, fp, r in _WORKLOADS if key == "fig2"
        )
        plan = plan_lowering(fp, schedule=result.schedule)
        summary = plan.summary()
        # the d-statement is a sink singleton; the {a,b,c,e} recurrence
        # slabs at height 2 (its min dependence-cycle row total)
        assert summary["wholeArray"] == 1
        assert summary["slab"] == 4
        assert summary["slabHeights"] == [2]


# ------------------------------------------------------------------ #
# random single-writer programs
# ------------------------------------------------------------------ #


def _random_program(seed: int) -> str:
    """A random legal single-writer two-level program.

    Every statement writes a fresh array.  Reads follow the model rules:
    earlier-written arrays at row offsets <= 0, feedback (textually later
    writers, including self) strictly below at row offsets <= -1, plus
    unconstrained external inputs.
    """
    rng = random.Random(seed)
    n_loops = rng.randint(2, 4)
    per_loop = [rng.randint(1, 2) for _ in range(n_loops)]
    written = [f"w{i}" for i in range(sum(per_loop))]
    inputs = ["x0", "x1"]

    def ref(name, lo_i, hi_i, same_loop=False):
        di = rng.randint(lo_i, hi_i)
        # a DOALL loop may only read its own iteration's same-loop
        # values at exactly (0, 0); any column offset needs di <= -1
        dj = 0 if (same_loop and di == 0) else rng.randint(-2, 2)
        i_s = f"i{di:+d}" if di else "i"
        j_s = f"j{dj:+d}" if dj else "j"
        return f"{name}[{i_s}][{j_s}]"

    lines = ["do i = 0, n"]
    stmt = 0
    loop_start = 0
    for loop in range(n_loops):
        lines.append(f"  doall j = 0, m        ! loop L{loop}")
        for _ in range(per_loop[loop]):
            prior_loops = written[:loop_start]
            same_loop_earlier = written[loop_start:stmt]
            later = written[stmt:]
            terms = [ref(rng.choice(inputs), -2, 2)]
            for _ in range(rng.randint(1, 2)):
                pick = rng.random()
                if pick < 0.35 and prior_loops:
                    terms.append(ref(rng.choice(prior_loops), -2, 0))
                elif pick < 0.6 and same_loop_earlier:
                    terms.append(
                        ref(rng.choice(same_loop_earlier), -2, 0, same_loop=True)
                    )
                elif pick < 0.8 and later:
                    terms.append(ref(rng.choice(later), -2, -1, same_loop=True))
                else:
                    terms.append(ref(rng.choice(inputs), -2, 2))
            op = rng.choice([" + ", " - "])
            lines.append(f"    {written[stmt]}[i][j] = {op.join(terms)}")
            stmt += 1
        lines.append("  end")
        loop_start = stmt
    lines.append("end")
    return "\n".join(lines)


class TestRandomPrograms:
    @pytest.mark.parametrize("seed", range(30))
    def test_backends_agree_on_random_programs(self, seed):
        src = _random_program(seed)
        nest = parse_program(src)
        g = extract_mldg(nest)
        try:
            result = fuse(g)
        except FusionError:
            pytest.skip("random graph not fusible under any strategy")
        fp = apply_fusion(nest, result.retiming, mldg=g)
        for n, m in ((6, 9), (19, 16)):
            ref = _reference(nest, fp, n, m, seed=seed)
            for backend in ALL_BACKENDS:
                got = ArrayStore.for_program(nest, n, m, seed=seed)
                execute_fused(
                    backend, fp, n, m, store=got,
                    schedule=result.schedule, is_doall=result.is_doall, jobs=2,
                )
                assert ref.equal(got), (
                    f"{backend} diverged on seed {seed} at {n}x{m}:\n{src}"
                )

    def test_random_programs_never_fall_back(self):
        """Body order keeps zero-row dependences forward, so the slab and
        whole-array stages cover every legal fused program -- scalar
        fallback stays reserved for adversarial (hand-built) orders."""
        lowered = 0
        for seed in range(30):
            nest = parse_program(_random_program(seed))
            g = extract_mldg(nest)
            try:
                result = fuse(g)
            except FusionError:
                continue
            fp = apply_fusion(nest, result.retiming, mldg=g)
            plan = plan_lowering(fp, schedule=result.schedule)
            assert plan.fallback_statements == 0, plan.describe()
            lowered += plan.lowered_statements
        assert lowered > 0  # the sweep must actually exercise programs


# ------------------------------------------------------------------ #
# resilience-ladder rungs
# ------------------------------------------------------------------ #


class TestLadderRungs:
    @pytest.mark.parametrize("src_key", ["fig2", "iir2d"])
    def test_rung_results_bit_identical(self, src_key):
        src = figure2_code() if src_key == "fig2" else iir2d_code()
        session = Session()
        out = session.fuse_program_resilient(src)
        assert out.fused is not None, "gallery programs reach an executable rung"
        fp = out.fused
        ref = _reference(out.nest, fp, N, M)
        got = ArrayStore.for_program(out.nest, N, M, seed=11)
        compile_numpy(fp)(got, N, M)
        assert ref.equal(got), f"{src_key} rung {out.rung.label!r} diverged"


# ------------------------------------------------------------------ #
# wavefront and scalar stages (adversarial body orders)
# ------------------------------------------------------------------ #


# The program model keeps inner loops DOALL, so no *source* program ever
# carries a same-row self-recurrence -- which is exactly the shape that
# defeats the slab stage (a self-edge cannot be skewed away) while still
# agreeing with serial order under a wavefront schedule.  We manufacture
# it by offset surgery on a legally fused program: rewrite the feedback
# read ``a[i-1][j-1]`` to ``a[i][j-1]`` *after* fusion.  The surgered
# read stays inside the halo the original nest allocated, and serial
# execution of the surgered FusedProgram is the reference semantics.

_COUPLED_SRC = """\
do i = 0, n
  doall j = 0, m        ! loop A
    a[i][j] = x[i][j] + a[i-1][j-1] + b[i-1][j]
  end
  doall j = 0, m        ! loop B
    b[i][j] = a[i][j]
  end
end
"""

_CHAIN_SRC = """\
do i = 0, n
  doall j = 0, m        ! loop A
    a[i][j] = x[i][j] + a[i-1][j-1]
  end
  doall j = 0, m        ! loop B
    b[i][j] = a[i][j-2]
  end
end
"""


def _rewrite_self_read(expr):
    """Rewrite ``a[i-1][j-1]`` reads to ``a[i][j-1]`` throughout ``expr``."""
    if isinstance(expr, ArrayRef):
        if expr.array == "a" and expr.offset == IVec(-1, -1):
            return dataclasses.replace(expr, offset=IVec(0, -1))
        return expr
    fields = {}
    for f in dataclasses.fields(expr):
        value = getattr(expr, f.name)
        if hasattr(value, "__dataclass_fields__"):
            fields[f.name] = _rewrite_self_read(value)
    return dataclasses.replace(expr, **fields) if fields else expr


def _surgered(src):
    nest = parse_program(src)
    g = extract_mldg(nest)
    result = fuse(g)
    fp = apply_fusion(nest, result.retiming, mldg=g)
    body = tuple(
        dataclasses.replace(
            node,
            statements=tuple(
                dataclasses.replace(s, expr=_rewrite_self_read(s.expr))
                for s in node.statements
            ),
        )
        for node in fp.body
    )
    return nest, dataclasses.replace(fp, body=body)


class TestAdversarialGroups:
    """Slab-defeating recurrences: wavefront and scalar stages."""

    def _check(self, src, schedule, expected_kinds):
        nest, fp = _surgered(src)
        plan = plan_lowering(fp, schedule=schedule)
        assert [s.kind for s in plan.stages] == expected_kinds, plan.describe()
        ref = _reference(nest, fp, N, M)
        got = ArrayStore.for_program(nest, N, M, seed=11)
        compile_numpy(fp, schedule=schedule)(got, N, M)
        assert ref.equal(got)
        return plan

    def test_wavefront_general_schedule_two_member_group(self):
        # the coupled pair {a, b} is one SCC: a's same-row self-edge
        # (0,1) defeats the slab, the (0,0) a->b edge exercises the
        # same-iteration member-order exception, and s0=1 drives the
        # arange gather/scatter path
        self._check(_COUPLED_SRC, IVec(1, 1), ["wavefront"])

    def test_wavefront_column_schedule_with_shifted_member(self):
        # the chain splits into a self-recurrent singleton (wavefront)
        # and a pure sink (whole-array); s=(0,1) drives the column-slice
        # path, and fusion's nonzero shift on A exercises the shifted
        # wavefront bounds
        nest, fp = _surgered(_CHAIN_SRC)
        assert any(not node.shift.is_zero() for node in fp.body)
        self._check(_CHAIN_SRC, IVec(0, 1), ["wavefront", "whole-array"])

    def test_scalar_fallback_without_schedule(self):
        plan = self._check(_COUPLED_SRC, None, ["scalar"])
        assert plan.fallback_statements == 2
        assert plan.lowered_statements == 0

    def test_row_schedule_never_claims_wavefront(self):
        """A row schedule (1, 0) fails the per-edge s.delta >= 1
        re-verification on the same-row self-edge -- the schedule is
        checked, not trusted."""
        self._check(_COUPLED_SRC, IVec(1, 0), ["scalar"])

    def test_scalar_group_beside_whole_array_stage(self):
        plan = self._check(_CHAIN_SRC, None, ["scalar", "whole-array"])
        assert plan.fallback_statements == 1
        assert plan.lowered_statements == 1


# ------------------------------------------------------------------ #
# observability: counters + trace-skeleton determinism
# ------------------------------------------------------------------ #


class TestObservability:
    def test_fallback_counter(self):
        nest, fp = _surgered(_COUPLED_SRC)
        reg = obs.MetricsRegistry()
        with obs.use_registry(reg):
            compile_numpy(fp)  # no schedule -> both statements scalar
        assert reg.counter("exec.numpy.fallback").value == 2
        assert reg.counter("exec.numpy.lowered").value == 0

    def test_lowered_counter(self):
        key, nest, fp, result = _WORKLOADS[0]
        reg = obs.MetricsRegistry()
        with obs.use_registry(reg):
            compile_numpy(fp, schedule=result.schedule)
        total = sum(len(node.statements) for node in fp.body)
        assert reg.counter("exec.numpy.lowered").value == total
        assert reg.counter("exec.numpy.fallback").value == 0

    def test_traced_runs_deterministic_and_bit_identical(self):
        nest, fp = _surgered(_CHAIN_SRC)  # wavefront emits detail spans
        kernel = compile_numpy(fp, schedule=IVec(0, 1))

        untraced = ArrayStore.for_program(nest, N, M, seed=11)
        kernel(untraced, N, M)

        shapes = detailed = None
        for _ in range(2):
            tracer = obs.Tracer()
            store = ArrayStore.for_program(nest, N, M, seed=11)
            with obs.overriding_tracer(tracer):
                kernel(store, N, M)
            assert untraced.equal(store)  # tracing never changes results
            shape = obs.tree_shape(tracer)
            assert shapes is None or shape == shapes  # deterministic skeleton
            shapes = shape
            detailed = obs.tree_shape(tracer, include_detail=True)
        # per-wavefront spans are detail-only: hidden by default, and the
        # wavefront loop really did emit one span per _t value
        flat = repr(detailed)
        assert "exec.numpy.wavefront" in flat
        assert "exec.numpy.wavefront" not in repr(shapes)


# ------------------------------------------------------------------ #
# registry + session plumbing
# ------------------------------------------------------------------ #


class TestBackendRegistry:
    def test_registry_names(self):
        assert set(ALL_BACKENDS) <= set(backend_names())
        assert get("numpy").name == "numpy"

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="unknown execution backend"):
            get("fortran")

    def test_session_execute_fused_uses_options_backend(self):
        key, nest, fp, result = _WORKLOADS[0]
        session = Session(options=SessionOptions(backend="numpy"))
        ref = _reference(nest, fp, N, M)
        got = ArrayStore.for_program(nest, N, M, seed=11)
        session.execute_fused(
            fp, N, M, store=got,
            schedule=result.schedule, is_doall=result.is_doall,
        )
        assert ref.equal(got)

    def test_kernel_reuses_pycompile_cache(self):
        key, nest, fp, result = _WORKLOADS[0]
        k1 = compile_numpy(fp, schedule=result.schedule)
        k2 = compile_numpy(fp, schedule=result.schedule)
        assert k1 is k2  # source-keyed kernel cache hit
        assert compile_fused(fp) is not k1  # distinct source, distinct kernel


# ------------------------------------------------------------------ #
# bench harness plumbing
# ------------------------------------------------------------------ #


class TestBenchHarness:
    def test_parse_sizes(self):
        assert parse_sizes("16x16") == [(16, 16)]
        assert parse_sizes("8x12, 256x128") == [(8, 12), (256, 128)]
        assert parse_sizes("16x16,") == [(16, 16)]  # trailing comma tolerated
        for bad in ("", "16", "16x", "axb"):
            with pytest.raises(ValueError):
                parse_sizes(bad)

    def test_platform_block_records_library_versions(self):
        import networkx
        import numpy

        block = platform_block()
        assert block["numpy"] == numpy.__version__
        assert block["networkx"] == networkx.__version__
        assert "python" in block and "cpuCount" in block

    def test_bench_backends_numpy_phase(self):
        records = bench_backends(
            "fig2", n=9, m=9, jobs=(1,),
            backends=("interp", "compiled", "numpy"), repeats=1,
        )
        by_backend = {r.backend: r for r in records}
        assert "store-copy" in by_backend  # copy cost split out of rows
        np_rec = by_backend["numpy"]
        assert np_rec.extra["plan"]["scalar"] == 0
        assert set(np_rec.extra["kernelCache"]) == {"hits", "misses"}
        assert "speedupVsCompiled" in np_rec.extra
        # per-phase deltas: compiled and numpy each saw exactly one
        # compile of their own source, not the other's
        assert by_backend["compiled"].extra["kernelCache"]["misses"] <= 1
        assert np_rec.extra["kernelCache"]["misses"] <= 1

    def test_bench_backend_sweep_covers_each_size(self):
        records = bench_backend_sweep(
            "jacobi-pair", sizes=[(6, 6), (9, 7)],
            backends=("interp", "numpy"), repeats=1,
        )
        sized = {(r.n, r.m) for r in records}
        assert sized == {(6, 6), (9, 7)}
