"""Unit tests for Algorithms 2-5, pinned to the paper's reported results."""

import pytest

from repro.fusion import (
    FusionError,
    IllegalMLDGError,
    NoParallelRetimingError,
    NotAcyclicError,
    acyclic_constraint_graph,
    acyclic_parallel_retiming,
    cyclic_parallel_retiming,
    cyclic_phase_graphs,
    hyperplane_parallel_fusion,
    legal_fusion_retiming,
    llofra_constraint_graph,
)
from repro.gallery import figure2_mldg, figure8_mldg, figure14_mldg
from repro.gallery.paper import (
    figure2_expected_alg4_retiming,
    figure2_expected_llofra_retiming,
    figure8_expected_retiming,
    figure14_expected_hyperplane,
    figure14_expected_retiming,
    figure14_expected_schedule,
)
from repro.graph import is_fusion_legal, mldg_from_table
from repro.retiming import is_doall_after_fusion, verify_retiming
from repro.vectors import IVec


class TestLLOFRA:
    """Algorithm 2."""

    def test_figure6_exact(self):
        assert legal_fusion_retiming(figure2_mldg()) == figure2_expected_llofra_retiming()

    def test_figure15_exact(self):
        assert legal_fusion_retiming(figure14_mldg()) == figure14_expected_retiming()

    def test_result_makes_fusion_legal(self):
        for build in (figure2_mldg, figure8_mldg, figure14_mldg):
            g = build()
            gr = legal_fusion_retiming(g).apply(g)
            assert is_fusion_legal(gr)

    def test_cycle_weights_preserved(self):
        g = figure2_mldg()
        r = legal_fusion_retiming(g)
        assert verify_retiming(g, r).cycles_preserved

    def test_illegal_graph_raises(self):
        g = mldg_from_table(
            {("A", "B"): [(0, -1)], ("B", "A"): [(0, 0)]}, nodes=["A", "B"]
        )
        with pytest.raises(IllegalMLDGError):
            legal_fusion_retiming(g)

    def test_constraint_graph_shape(self):
        cg = llofra_constraint_graph(figure2_mldg())
        # 4 nodes + v0; 6 dependence edges + 4 source edges
        assert len(cg.nodes) == 5
        assert len(cg.edges) == 10

    def test_single_node_graph(self):
        g = mldg_from_table({("A", "A"): [(1, 0)]}, nodes=["A"])
        r = legal_fusion_retiming(g)
        assert r["A"] == IVec(0, 0)


class TestAcyclic:
    """Algorithm 3."""

    def test_figure10_exact(self):
        assert acyclic_parallel_retiming(figure8_mldg()) == figure8_expected_retiming()

    def test_figure10_retimed_weights(self):
        """The retimed edge weights printed in Figure 10."""
        gr = figure8_expected_retiming().apply(figure8_mldg())
        assert gr.delta("A", "B") == IVec(1, 1)
        assert gr.delta("B", "C") == IVec(1, -2)
        assert gr.delta("C", "D") == IVec(1, 3)
        assert gr.delta("D", "E") == IVec(1, -2)
        assert gr.delta("B", "F") == IVec(1, -2)
        assert gr.delta("F", "G") == IVec(1, 2)
        assert gr.delta("B", "E") == IVec(1, 2)
        assert gr.delta("A", "D") == IVec(2, -3)

    def test_result_is_doall(self):
        g = figure8_mldg()
        gr = acyclic_parallel_retiming(g).apply(g)
        assert is_doall_after_fusion(gr)
        assert is_fusion_legal(gr)

    def test_second_components_zero(self):
        r = acyclic_parallel_retiming(figure8_mldg())
        assert all(v[1] == 0 for _n, v in r.items())

    def test_cyclic_input_rejected(self):
        with pytest.raises(NotAcyclicError):
            acyclic_parallel_retiming(figure2_mldg())

    def test_constraint_graph_uses_infinite_second(self):
        """Figure 9's weights have the form (delta[0]-1, inf)."""
        import math

        cg = acyclic_constraint_graph(figure8_mldg())
        dep_edges = [e for e in cg.edges if e[0] != cg.source]
        assert all(w[1] == math.inf for (_u, _v, w) in dep_edges)

    def test_chain_of_fusion_preventing_edges(self):
        g = mldg_from_table(
            {("A", "B"): [(0, -4)], ("B", "C"): [(0, -4)]}, nodes=["A", "B", "C"]
        )
        r = acyclic_parallel_retiming(g)
        gr = r.apply(g)
        assert is_doall_after_fusion(gr)
        assert gr.delta("A", "B")[0] >= 1
        assert gr.delta("B", "C")[0] >= 1


class TestCyclic:
    """Algorithm 4."""

    def test_figure12_exact(self):
        assert cyclic_parallel_retiming(figure2_mldg()) == figure2_expected_alg4_retiming()

    def test_result_is_doall_and_legal(self):
        g = figure2_mldg()
        gr = cyclic_parallel_retiming(g).apply(g)
        assert is_doall_after_fusion(gr)
        assert is_fusion_legal(gr)

    def test_figure12_vector_sets(self):
        """All retimed vectors satisfy Property 4.2 (>= (1,-1) or (0,0))."""
        gr = figure2_expected_alg4_retiming().apply(figure2_mldg())
        for d in gr.all_vectors():
            assert d == IVec(0, 0) or d >= IVec(1, -1) or d[0] >= 1

    def test_figure14_fails_theorem_4_2(self):
        with pytest.raises(NoParallelRetimingError) as err:
            cyclic_parallel_retiming(figure14_mldg())
        assert err.value.phase in ("x", "y")

    def test_works_on_acyclic_too(self):
        """Algorithm 4 subsumes the acyclic case."""
        g = figure8_mldg()
        gr = cyclic_parallel_retiming(g).apply(g)
        assert is_doall_after_fusion(gr)

    def test_phase_graphs_figure11(self):
        """Figure 11a: the hard-edge B->C gets weight -1 in x."""
        graphs = cyclic_phase_graphs(figure2_mldg())
        x_weights = {(u, v): w for (u, v, w) in graphs.x_graph.edges if u != graphs.x_graph.source}
        assert x_weights[("B", "C")] == -1
        assert x_weights[("C", "D")] == 0
        assert x_weights[("A", "B")] == 1
        assert x_weights[("D", "A")] == 2

    def test_phase_two_has_back_edges(self):
        """Figure 11b: C->D appears with weight -1 and back-edge D->C with 1."""
        graphs = cyclic_phase_graphs(figure2_mldg())
        y_edges = [(u, v, w) for (u, v, w) in graphs.y_graph.edges if u != graphs.y_graph.source]
        assert ("C", "D", -1) in y_edges
        assert ("D", "C", 1) in y_edges

    def test_y_phase_failure(self):
        """Inconsistent same-iteration coupling fails in the y phase."""
        g = mldg_from_table(
            {("R", "U"): [(0, -1)], ("U", "R"): [(0, 3)]}, nodes=["R", "U"]
        )
        with pytest.raises(NoParallelRetimingError) as err:
            cyclic_parallel_retiming(g)
        assert err.value.phase == "y"

    def test_non_2d_rejected(self):
        g = mldg_from_table({("A", "B"): [(1, 0, 0)]}, nodes=["A", "B"], dim=3)
        with pytest.raises(ValueError):
            cyclic_parallel_retiming(g)


class TestHyperplane:
    """Algorithm 5."""

    def test_figure14_full_result(self):
        hp = hyperplane_parallel_fusion(figure14_mldg())
        assert hp.retiming == figure14_expected_retiming()
        assert hp.schedule == figure14_expected_schedule()
        assert hp.hyperplane == figure14_expected_hyperplane()
        assert not hp.is_row_parallel

    def test_figure15_retimed_vector_sets(self):
        """The D_Lr sets Section 4.4 lists explicitly."""
        gr = figure14_expected_retiming().apply(figure14_mldg())
        assert gr.D("A", "B") == frozenset({IVec(0, 5)})
        assert gr.D("B", "C") == frozenset({IVec(0, 0), IVec(0, 5)})
        assert gr.D("C", "D") == frozenset({IVec(0, 0), IVec(0, 2)})
        assert gr.D("D", "C") == frozenset({IVec(0, 1)})
        assert gr.D("D", "E") == frozenset({IVec(0, 0)})
        assert gr.D("E", "B") == frozenset({IVec(0, 0), IVec(1, 0)})
        assert gr.D("B", "F") == frozenset({IVec(0, 0)})
        assert gr.D("F", "G") == frozenset({IVec(1, -4)})
        assert gr.D("B", "E") == frozenset({IVec(1, 3)})
        assert gr.D("A", "D") == frozenset({IVec(0, 0), IVec(1, 3)})

    def test_schedule_is_strict_for_retimed_vectors(self):
        from repro.vectors import is_strict_schedule_vector

        hp = hyperplane_parallel_fusion(figure14_mldg())
        assert is_strict_schedule_vector(hp.schedule, hp.retimed_vectors)

    def test_works_on_every_legal_graph(self):
        for build in (figure2_mldg, figure8_mldg, figure14_mldg):
            hp = hyperplane_parallel_fusion(build())
            assert hp.schedule.dot(hp.hyperplane) == 0

    def test_non_2d_rejected(self):
        g = mldg_from_table({("A", "B"): [(1, 0, 0)]}, nodes=["A", "B"], dim=3)
        with pytest.raises(ValueError):
            hyperplane_parallel_fusion(g)
