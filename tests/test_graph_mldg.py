"""Unit tests for the MLDG data structure."""

import pytest

from repro.graph import MLDG, mldg_from_table
from repro.vectors import IVec


@pytest.fixture
def simple():
    g = MLDG(dim=2)
    g.add_dependence("A", "B", IVec(1, 1), IVec(2, 1))
    g.add_dependence("B", "C", IVec(0, -2), IVec(0, 1))
    return g


class TestConstruction:
    def test_nodes_in_program_order(self, simple):
        assert simple.nodes == ("A", "B", "C")

    def test_explicit_node_order(self):
        g = MLDG()
        for n in ["Z", "Y", "X"]:
            g.add_node(n)
        g.add_dependence("X", "Z", IVec(1, 0))
        assert g.nodes == ("Z", "Y", "X")
        assert g.program_index("Y") == 1

    def test_readd_node_noop(self, simple):
        simple.add_node("A")
        assert simple.nodes == ("A", "B", "C")

    def test_vectors_accumulate(self):
        g = MLDG()
        g.add_dependence("A", "B", IVec(1, 1))
        g.add_dependence("A", "B", IVec(2, 1))
        assert g.D("A", "B") == frozenset({IVec(1, 1), IVec(2, 1)})

    def test_duplicate_vectors_dedupe(self):
        g = MLDG()
        g.add_dependence("A", "B", IVec(1, 1), IVec(1, 1))
        assert len(g.D("A", "B")) == 1

    def test_dimension_enforced(self):
        g = MLDG(dim=2)
        with pytest.raises(ValueError):
            g.add_dependence("A", "B", IVec(1, 2, 3))

    def test_requires_ivec(self):
        g = MLDG()
        with pytest.raises(TypeError):
            g.add_dependence("A", "B", (1, 2))  # type: ignore[arg-type]

    def test_empty_vector_list_rejected(self):
        g = MLDG()
        with pytest.raises(ValueError):
            g.add_dependence("A", "B")

    def test_bad_node_name(self):
        g = MLDG()
        with pytest.raises(ValueError):
            g.add_node("")

    def test_bad_dim(self):
        with pytest.raises(ValueError):
            MLDG(dim=0)


class TestQueries:
    def test_delta_is_lex_min(self, simple):
        assert simple.delta("A", "B") == IVec(1, 1)
        assert simple.delta("B", "C") == IVec(0, -2)

    def test_hard_edge(self, simple):
        assert simple.is_hard_edge("B", "C")
        assert not simple.is_hard_edge("A", "B")

    def test_D_missing_edge_empty(self, simple):
        assert simple.D("A", "C") == frozenset()

    def test_has_edge(self, simple):
        assert simple.has_edge("A", "B")
        assert not simple.has_edge("B", "A")

    def test_edges_deterministic_order(self, simple):
        keys = [e.key for e in simple.edges()]
        assert keys == [("A", "B"), ("B", "C")]

    def test_all_vectors(self, simple):
        assert sorted(simple.all_vectors()) == [
            IVec(0, -2), IVec(0, 1), IVec(1, 1), IVec(2, 1)
        ]

    def test_successors_predecessors(self, simple):
        assert simple.successors("A") == ["B"]
        assert simple.predecessors("C") == ["B"]

    def test_counts(self, simple):
        assert simple.num_nodes == 3
        assert simple.num_edges == 2


class TestTransforms:
    def test_copy_independent(self, simple):
        c = simple.copy()
        c.add_dependence("C", "A", IVec(1, 0))
        assert not simple.has_edge("C", "A")
        assert c.has_edge("C", "A")

    def test_retimed_shifts_vectors(self, simple):
        r = {"B": IVec(0, -2)}
        gr = simple.retimed(r)
        # A->B: d + r(A) - r(B) = d - (0,-2)
        assert gr.D("A", "B") == frozenset({IVec(1, 3), IVec(2, 3)})
        # B->C: d + r(B) - r(C) = d + (0,-2)
        assert gr.D("B", "C") == frozenset({IVec(0, -4), IVec(0, -1)})

    def test_retimed_preserves_original(self, simple):
        simple.retimed({"A": IVec(5, 5)})
        assert simple.delta("A", "B") == IVec(1, 1)

    def test_restricted_to(self, simple):
        sub = simple.restricted_to(["A", "B"])
        assert sub.nodes == ("A", "B")
        assert sub.has_edge("A", "B")
        assert not sub.has_edge("B", "C")

    def test_restricted_to_unknown(self, simple):
        with pytest.raises(KeyError):
            simple.restricted_to(["A", "Q"])

    def test_remove_edge(self, simple):
        simple.remove_edge("A", "B")
        assert not simple.has_edge("A", "B")
        with pytest.raises(KeyError):
            simple.remove_edge("A", "B")


class TestViews:
    def test_networkx_view(self, simple):
        nxg = simple.to_networkx()
        assert set(nxg.nodes) == {"A", "B", "C"}
        attrs = list(nxg.get_edge_data("B", "C").values())[0]
        assert attrs["hard"] is True
        assert attrs["delta"] == IVec(0, -2)

    def test_structure_digraph(self, simple):
        dg = simple.structure_digraph()
        assert set(dg.edges) == {("A", "B"), ("B", "C")}

    def test_equality(self, simple):
        other = mldg_from_table(
            {
                ("A", "B"): [(1, 1), (2, 1)],
                ("B", "C"): [(0, -2), (0, 1)],
            },
            nodes=["A", "B", "C"],
        )
        assert simple == other

    def test_inequality_on_order(self):
        a = mldg_from_table({("A", "B"): [(1, 1)]}, nodes=["A", "B"])
        b = mldg_from_table({("A", "B"): [(1, 1)]}, nodes=["B", "A"])
        assert a != b

    def test_describe_mentions_hard_edge(self, simple):
        text = simple.describe()
        assert "B -> C *" in text
