"""Property-based tests for the constraint solvers (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.constraints import (
    InfeasibleSystemError,
    ScalarConstraintSystem,
    VectorConstraintSystem,
)
from repro.vectors import IVec

names = [f"x{i}" for i in range(6)]


def scalar_constraints():
    pair = st.tuples(st.sampled_from(names), st.sampled_from(names))
    return st.lists(
        st.tuples(pair, st.integers(min_value=-10, max_value=10)),
        min_size=0,
        max_size=25,
    )


def vector_constraints():
    pair = st.tuples(st.sampled_from(names), st.sampled_from(names))
    vec = st.tuples(
        st.integers(min_value=-5, max_value=5), st.integers(min_value=-5, max_value=5)
    ).map(lambda t: IVec(t))
    return st.lists(st.tuples(pair, vec), min_size=0, max_size=25)


@given(scalar_constraints())
@settings(max_examples=200)
def test_scalar_solution_satisfies_every_constraint_or_infeasible(cons):
    """Soundness of Theorem 2.2: a returned solution satisfies everything."""
    system = ScalarConstraintSystem(names)
    for (i, j), w in cons:
        system.add_leq(i, j, w)
    try:
        sol = system.solve()
    except InfeasibleSystemError as err:
        # completeness half: the certificate really is a negative cycle
        cyc = err.cycle
        assert len(cyc) >= 1
        return
    for (i, j), w in cons:
        assert sol[j] - sol[i] <= w


@given(vector_constraints())
@settings(max_examples=200)
def test_vector_solution_satisfies_every_constraint_or_infeasible(cons):
    """Soundness of Theorem 2.3 under lexicographic order."""
    system = VectorConstraintSystem(names, dim=2)
    for (i, j), w in cons:
        system.add_leq(i, j, w)
    try:
        sol = system.solve()
    except InfeasibleSystemError:
        return
    for (i, j), w in cons:
        assert tuple(sol[j] - sol[i]) <= tuple(w)


@given(vector_constraints())
@settings(max_examples=100)
def test_vector_infeasibility_certificate_is_negative_cycle(cons):
    """When the solver reports a cycle, its constraint weights really sum
    below zero (a genuine infeasibility witness)."""
    system = VectorConstraintSystem(names, dim=2)
    table = {}
    for (i, j), w in cons:
        system.add_leq(i, j, w)
        # keep the tightest (lexicographically smallest) weight per pair:
        # any negative cycle over tightest weights is a genuine certificate
        if (i, j) not in table or w < table[(i, j)]:
            table[(i, j)] = w
    try:
        system.solve()
    except InfeasibleSystemError as err:
        cyc = err.cycle
        total = IVec(0, 0)
        for idx in range(len(cyc)):
            u, v = cyc[idx], cyc[(idx + 1) % len(cyc)]
            assert (u, v) in table, "certificate uses a non-existent constraint"
            total = total + table[(u, v)]
        assert tuple(total) < (0, 0)


@given(scalar_constraints())
@settings(max_examples=100)
def test_scalar_shortest_path_solution_is_maximal(cons):
    """Shortest-path solutions are the greatest solution bounded by zero:
    every component can only decrease in any other zero-bounded solution
    shifted to match.  We check the weaker invariant sol[x] <= 0."""
    system = ScalarConstraintSystem(names)
    for (i, j), w in cons:
        system.add_leq(i, j, w)
    try:
        sol = system.solve()
    except InfeasibleSystemError:
        return
    assert all(v <= 0 for v in sol.values())
