"""Warm-store acceptance: the gallery twice, and warmth across workers.

The PR-level acceptance criteria, as tests:

- the whole gallery compiled twice through one shared store is
  bit-identical cold vs warm with an L2 hit ratio >= 90%, and
  ``repro-fuse cache verify`` reports the store clean afterwards;
- a serve pool with several workers shows *cross-worker* warm hits: a
  structure compiled by one worker is served from the store to another,
  visible as the file-level ``storedHits`` aggregate.
"""

from __future__ import annotations

import contextlib
import io
import json

import pytest

from repro.perf.bench import bench_store_gallery
from repro.perf.memo import clear_all_caches
from repro.store import open_store, reset_open_stores


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    monkeypatch.delenv("REPRO_FUSE_STORE", raising=False)
    clear_all_caches()
    reset_open_stores()
    yield
    clear_all_caches()
    reset_open_stores()


def test_gallery_twice_is_warm_and_bit_identical(tmp_path):
    path = str(tmp_path / "gallery.db")
    records = bench_store_gallery(store_path=path)
    warm = next(r for r in records if r.backend == "warm-pass")
    assert warm.extra["bitIdentical"] is True
    assert warm.extra["store"]["hitRatio"] >= 0.90
    assert warm.extra["examples"] >= 5  # the sweep really covered the gallery

    # and the store the two passes left behind audits clean
    from repro.cli import main

    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(["cache", "verify", "--store", path])
    assert code == 0 and "CLEAN" in out.getvalue()


def test_serve_workers_share_warmth_through_the_store(tmp_path):
    """A structure compiled by one worker warms every other worker."""
    from repro.gallery.paper import figure2_code
    from repro.serve.service import CompileService, ServeConfig
    from repro.serve.wire import request_from_program

    path = str(tmp_path / "serve.db")
    service = CompileService(ServeConfig(workers=2, store_path=path))
    try:
        responses = [
            service.handle(
                request_from_program(f"fig2#{k}", figure2_code())
            )
            for k in range(6)
        ]
    finally:
        service.shutdown()
    assert all(r.status == "ok" for r in responses)
    # round-robin dispatch lands the repeat requests on the *other*
    # worker, whose first sight of the structure must come off the disk
    stats = open_store(path).stats()
    assert stats.stored_hits > 0
    # the parallelism answers agree across workers (same store row)
    assert len({r.parallelism for r in responses}) == 1


def test_loadgen_warm_pass_reports_store_block(tmp_path):
    """One loadgen invocation measures cold-vs-warm serving end to end."""
    from repro.serve.loadgen import LoadgenOptions, run_loadgen

    path = str(tmp_path / "loadgen.db")
    report = run_loadgen(
        LoadgenOptions(
            requests=4,
            concurrency=2,
            workers=2,
            store_path=path,
            warm_passes=2,
        )
    )
    assert report["wellFormed"] == 8 and report["malformed"] == []
    assert len(report["passes"]) == 2
    store = report["service"]["store"]
    assert store["currsize"] >= 1
    assert json.dumps(report)  # the whole document stays JSON-serialisable
