"""Edge-case tests across subsystem boundaries.

Degenerate iteration spaces, retimings larger than the grid, dependencies
off every cycle with negative first coordinates, and other corners that
unit tests organised per module do not naturally reach.
"""

import pytest

from repro.codegen import (
    ArrayStore,
    apply_fusion,
    compile_fused,
    run_fused,
    run_original,
)
from repro.depend import extract_mldg
from repro.fusion import Strategy, fuse, legal_fusion_retiming
from repro.gallery.paper import figure2_code
from repro.graph import is_legal, is_sequence_executable, mldg_from_table
from repro.loopir import parse_program
from repro.machine import hyperplane_profile, unfused_profile
from repro.retiming import Retiming
from repro.vectors import IVec


class TestDegenerateGrids:
    """n = 0 / m = 0: the fused core can be empty; guards must still cover
    every original instance exactly once."""

    @pytest.mark.parametrize("n,m", [(0, 0), (0, 5), (5, 0), (1, 1), (2, 9)])
    def test_equivalence_on_tiny_grids(self, n, m):
        nest = parse_program(figure2_code())
        g = extract_mldg(nest)
        res = fuse(g)
        fp = apply_fusion(nest, res.retiming, mldg=g)
        base = ArrayStore.for_program(nest, n, m, seed=9)
        ref = run_original(nest, n, m, store=base.copy())
        assert ref.equal(run_fused(fp, n, m, store=base.copy(), mode="serial"))
        assert ref.equal(run_fused(fp, n, m, store=base.copy(), mode="doall"))

    @pytest.mark.parametrize("n,m", [(0, 0), (0, 4), (3, 0)])
    def test_compiled_backend_on_tiny_grids(self, n, m):
        nest = parse_program(figure2_code())
        g = extract_mldg(nest)
        fp = apply_fusion(nest, fuse(g).retiming, mldg=g)
        base = ArrayStore.for_program(nest, n, m, seed=9)
        ref = run_original(nest, n, m, store=base.copy())
        out = base.copy()
        compile_fused(fp)(out, n, m)
        assert ref.equal(out)

    def test_empty_core_range(self):
        """Retiming shifts larger than n leave an empty core; the full
        range still covers everything."""
        nest = parse_program(figure2_code())
        g = extract_mldg(nest)
        fp = apply_fusion(nest, fuse(g).retiming, mldg=g)
        lo, hi = fp.core_outer_range(0)  # n = 0 with shifts down to -1
        assert lo > hi  # empty core
        flo, fhi = fp.full_outer_range(0)
        assert flo <= fhi  # but the full range is not


class TestNegativeFirstCoordinates:
    """Vectors with d[0] < 0 off every cycle: legal (retimable) but not
    sequence-executable; LLOFRA must fix them."""

    def test_legal_but_not_executable(self):
        g = mldg_from_table({("A", "B"): [(-2, 3)]}, nodes=["A", "B"])
        assert is_legal(g)
        assert not is_sequence_executable(g).legal

    def test_llofra_repairs(self):
        g = mldg_from_table({("A", "B"): [(-2, 3)]}, nodes=["A", "B"])
        r = legal_fusion_retiming(g)
        gr = r.apply(g)
        assert gr.delta("A", "B") >= IVec(0, 0)

    def test_driver_gives_parallel_result(self):
        g = mldg_from_table(
            {("A", "B"): [(-1, 0)], ("B", "C"): [(0, -2)]}, nodes=["A", "B", "C"]
        )
        res = fuse(g)
        assert res.parallelism.value in ("doall", "hyperplane")


class TestExtremeRetimings:
    def test_large_shifts_still_equivalent(self):
        """A legal but absurdly large retiming must still execute exactly
        (everything lands in prologue/epilogue)."""
        nest = parse_program(
            "do i = 0, n\n"
            "  A: doall j = 0, m\n    a[i][j] = x[i][j]\n  end\n"
            "  B: doall j = 0, m\n    b[i][j] = a[i-3][j-5]\n  end\n"
            "end"
        )
        g = extract_mldg(nest)
        big = Retiming({"B": IVec(-3, -5)}, dim=2)
        fp = apply_fusion(nest, big, mldg=g)
        n, m = 4, 4  # smaller than the shifts
        base = ArrayStore.for_program(nest, n, m, seed=1)
        ref = run_original(nest, n, m, store=base.copy())
        assert ref.equal(run_fused(fp, n, m, store=base.copy(), mode="serial"))

    def test_positive_retiming_components(self):
        """Nothing requires shortest-path (non-positive) retimings; positive
        shifts must transform and execute correctly too."""
        nest = parse_program(
            "do i = 0, n\n"
            "  A: doall j = 0, m\n    a[i][j] = x[i][j]\n  end\n"
            "  B: doall j = 0, m\n    b[i][j] = a[i-1][j]\n  end\n"
            "end"
        )
        g = extract_mldg(nest)
        r = Retiming({"A": IVec(1, 0), "B": IVec(0, 1)}, dim=2)
        gr = r.apply(g)
        assert gr.delta("A", "B") == IVec(2, -1)
        fp = apply_fusion(nest, r, mldg=g)
        n, m = 6, 6
        base = ArrayStore.for_program(nest, n, m, seed=2)
        ref = run_original(nest, n, m, store=base.copy())
        assert ref.equal(run_fused(fp, n, m, store=base.copy(), mode="serial"))


class TestSingleLoopPrograms:
    def test_single_loop_fuses_trivially(self):
        nest = parse_program(
            "do i = 0, n\n  A: doall j = 0, m\n    a[i][j] = a[i-1][j+4]\n  end\nend"
        )
        g = extract_mldg(nest)
        res = fuse(g)
        assert res.is_doall
        assert res.retiming.is_identity() or res.retiming[("A")] is not None
        fp = apply_fusion(nest, res.retiming, mldg=g)
        base = ArrayStore.for_program(nest, 5, 5, seed=3)
        ref = run_original(nest, 5, 5, store=base.copy())
        assert ref.equal(run_fused(fp, 5, 5, store=base.copy(), mode="doall"))


class TestScheduleCorners:
    def test_negative_skew_schedule_profile(self):
        """Lemma 4.3 can yield s with negative first component; the machine
        profile must handle negative wavefront levels."""
        from repro.retiming import schedule_vector_for

        s = schedule_vector_for([IVec(1, 3)])
        assert s.dot(IVec(1, 3)) > 0
        g = mldg_from_table({("A", "B"): [(1, 3)]}, nodes=["A", "B"])
        r = Retiming.zero(dim=2)
        prof = hyperplane_profile(g, r, s, 6, 6)
        assert prof.total_work == unfused_profile(g, 6, 6).total_work

    def test_forced_hyperplane_on_acyclic(self):
        g = mldg_from_table({("A", "B"): [(0, -7)]}, nodes=["A", "B"])
        res = fuse(g, strategy=Strategy.HYPERPLANE)
        assert res.schedule is not None
        # LLOFRA turned (0,-7) into (0,0); no non-zero vectors remain,
        # so the row schedule appears and the result is DOALL
        assert res.is_doall
