"""Golden tests: one fixture program per diagnostic code, plus the rule
registry, suppression comments, and the static DOALL race detector."""

import pathlib

import pytest

from repro.gallery import figure2_mldg, figure14_mldg
from repro.graph import mldg_from_table, random_legal_mldg
from repro.lint import (
    Severity,
    all_rules,
    get_rule,
    lint_mldg,
    lint_source,
    rule_codes,
    static_doall_races,
)
from repro.lint.registry import rule

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures" / "lint"

#: fixture -> (expected code, expected severity, expected exit code)
GOLDEN = {
    "lf001.loop": ("LF001", Severity.ERROR, 2),
    "lf101.loop": ("LF101", Severity.ERROR, 2),
    "lf102.loop": ("LF102", Severity.ERROR, 2),
    "lf103.loop": ("LF103", Severity.ERROR, 2),
    "lf104.loop": ("LF104", Severity.ERROR, 2),
    "lf201.loop": ("LF201", Severity.WARNING, 1),
    "lf204.loop": ("LF204", Severity.INFO, 0),
    "lf301.loop": ("LF301", Severity.INFO, 0),
    "lf302.loop": ("LF302", Severity.WARNING, 1),
    "lf401.loop": ("LF401", Severity.WARNING, 1),
    "lf402.loop": ("LF402", Severity.WARNING, 1),
    "lf403.loop": ("LF403", Severity.INFO, 0),
}


def lint_fixture(name):
    path = FIXTURES / name
    return lint_source(path.read_text(), path=name)


class TestGoldenFixtures:
    @pytest.mark.parametrize("name", sorted(GOLDEN), ids=lambda n: n.split(".")[0])
    def test_expected_code_fires(self, name):
        code, severity, exit_code = GOLDEN[name]
        result = lint_fixture(name)
        hits = result.by_code(code)
        assert hits, f"{name}: expected {code}, got {result.codes}"
        assert all(d.severity is severity for d in hits)
        assert result.exit_code == exit_code

    @pytest.mark.parametrize("name", sorted(GOLDEN), ids=lambda n: n.split(".")[0])
    def test_diagnostics_carry_spans(self, name):
        """Source-backed diagnostics always know their line and column."""
        for d in lint_fixture(name).diagnostics:
            assert d.span is not None, f"{name}: {d.code} has no span"
            assert d.span.line >= 1 and d.span.col >= 1

    def test_clean_program_has_no_diagnostics(self):
        result = lint_fixture("clean.loop")
        assert result.diagnostics == []
        assert result.exit_code == 0
        assert result.summary() == "clean: no diagnostics"

    def test_fixture_set_covers_every_source_rule(self):
        covered = {code for code, _, _ in GOLDEN.values()}
        # LF202/LF203 need graphs that no valid single-writer source produces.
        assert covered == set(rule_codes()) - {"LF202", "LF203"}


class TestGraphOnlyRules:
    def test_lf202_illegal_cycle(self):
        g = mldg_from_table(
            {("A", "B"): [(0, 1)], ("B", "A"): [(-1, 0)]},
            nodes=["A", "B"],
        )
        result = lint_mldg(g)
        assert result.by_code("LF202")
        assert result.exit_code == 2

    def test_lf203_zero_weight_cycle_fig14(self):
        result = lint_mldg(figure14_mldg())
        hits = result.by_code("LF203")
        assert len(hits) == 1
        assert "zero-weight" in hits[0].message
        assert not result.has_errors  # legal graph: deadlock is a warning

    def test_lf103_on_abstract_graph_self_edge(self):
        g = mldg_from_table({("A", "A"): [(0, 1)]}, nodes=["A"])
        result = lint_mldg(g)
        assert result.by_code("LF103")

    def test_fig2_graph_layer(self):
        result = lint_mldg(figure2_mldg())
        assert "LF201" in result.codes
        assert "LF204" in result.codes
        assert not result.has_errors


class TestStaticDoallRaces:
    def test_self_edge_race_detected(self):
        g = mldg_from_table({("A", "A"): [(0, 2)]}, nodes=["A"])
        races = static_doall_races(g)
        assert [(r.src, r.dst, tuple(r.vector)) for r in races] == [("A", "A", (0, 2))]

    def test_outer_carried_self_edge_is_fine(self):
        g = mldg_from_table({("A", "A"): [(1, -1)]}, nodes=["A"])
        assert static_doall_races(g) == []

    def test_fused_mode_checks_cross_edges(self):
        g = mldg_from_table({("A", "B"): [(0, 1)]}, nodes=["A", "B"])
        assert static_doall_races(g) == []  # unfused: separate DOALL loops sync
        races = static_doall_races(g, fused=True)
        assert [(r.src, r.dst) for r in races] == [("A", "B")]


class TestSuppressions:
    def test_inline_suppression_silences_the_line(self):
        result = lint_fixture("suppressed.loop")
        assert result.diagnostics == []
        assert result.exit_code == 0

    def test_suppression_is_code_specific(self):
        src = (
            "do i = 0, n\n"
            "  doall j = 0, m\n"
            "    a[i][j] = a[i][j-1]  ! lint: disable=LF301\n"
            "  end\n"
            "end\n"
        )
        result = lint_source(src)
        assert "LF103" in result.codes  # a different code stays

    def test_file_wide_suppression(self):
        src = (
            "! lint: disable=LF103, LF301\n"
            "do i = 0, n\n"
            "  doall j = 0, m\n"
            "    a[i][j] = a[i][j-1]\n"
            "  end\n"
            "end\n"
        )
        assert lint_source(src).diagnostics == []


class TestRegistry:
    def test_codes_are_sorted_and_unique(self):
        codes = rule_codes()
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))
        assert len(codes) >= 10

    def test_every_rule_is_well_formed(self):
        for r in all_rules():
            assert r.code.startswith("LF") and len(r.code) == 5
            assert r.slug and r.summary
            assert r.layer in {"source", "model", "graph", "hygiene", "analysis"}
            assert isinstance(r.severity, Severity)

    def test_get_rule(self):
        assert get_rule("LF201").slug == "fusion-preventing-edge"
        with pytest.raises(KeyError):
            get_rule("LF999")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            rule("LF201", "dup", Severity.INFO, "graph", "duplicate")(lambda ctx: iter(()))

    def test_random_legal_graphs_never_error(self):
        for seed in range(10):
            g = random_legal_mldg(6, seed=seed)
            assert not lint_mldg(g).has_errors
