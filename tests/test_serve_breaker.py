"""Per-workload-class circuit breakers (repro.serve.breaker).

The clock is injected so every cooldown transition is deterministic.
"""

from __future__ import annotations

import pytest

from repro.serve.breaker import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now_s = 0.0

    def __call__(self) -> float:
        return self.now_s

    def advance_ms(self, ms: float) -> None:
        self.now_s += ms / 1000.0


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(threshold=3, cooldown_ms=1000.0, clock=clock)


class TestBreaker:
    def test_trips_after_consecutive_failures(self, breaker):
        for _ in range(2):
            breaker.record_failure("k")
            assert breaker.state("k") is BreakerState.CLOSED
            assert breaker.allow("k")
        breaker.record_failure("k")
        assert breaker.state("k") is BreakerState.OPEN
        assert not breaker.allow("k")

    def test_success_resets_the_consecutive_count(self, breaker):
        breaker.record_failure("k")
        breaker.record_failure("k")
        breaker.record_success("k")
        breaker.record_failure("k")
        breaker.record_failure("k")
        assert breaker.state("k") is BreakerState.CLOSED

    def test_classes_are_independent(self, breaker):
        for _ in range(3):
            breaker.record_failure("bad")
        assert not breaker.allow("bad")
        assert breaker.allow("good")

    def test_half_open_admits_exactly_one_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("k")
        clock.advance_ms(999.0)
        assert not breaker.allow("k")  # cooldown not elapsed
        clock.advance_ms(2.0)
        assert breaker.allow("k")  # the probe
        assert breaker.state("k") is BreakerState.HALF_OPEN
        assert not breaker.allow("k")  # everyone else queues behind it

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("k")
        clock.advance_ms(1001.0)
        assert breaker.allow("k")
        breaker.record_success("k")
        assert breaker.state("k") is BreakerState.CLOSED
        assert breaker.allow("k")

    def test_probe_failure_reopens_for_a_full_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("k")
        clock.advance_ms(1001.0)
        assert breaker.allow("k")
        breaker.record_failure("k")
        assert breaker.state("k") is BreakerState.OPEN
        clock.advance_ms(999.0)
        assert not breaker.allow("k")
        clock.advance_ms(2.0)
        assert breaker.allow("k")

    def test_retry_after_reports_remaining_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("k")
        assert breaker.retry_after_ms("k") == pytest.approx(1000.0)
        clock.advance_ms(600.0)
        assert breaker.retry_after_ms("k") == pytest.approx(400.0)
        assert breaker.retry_after_ms("unknown") == 1.0

    def test_rekey_migrates_accumulated_failures(self, breaker):
        breaker.record_failure("digest")
        breaker.record_failure("digest")
        breaker.rekey("digest", "structural")
        breaker.record_failure("structural")
        assert breaker.state("structural") is BreakerState.OPEN
        # the old key starts fresh
        assert breaker.allow("digest")

    def test_rekey_merges_into_existing_class(self, breaker):
        breaker.record_failure("old")
        breaker.record_failure("old")
        breaker.record_failure("new")
        breaker.rekey("old", "new")
        breaker.record_failure("new")
        assert breaker.state("new") is BreakerState.OPEN

    def test_snapshot_lists_open_classes(self, breaker):
        for _ in range(3):
            breaker.record_failure("bad")
        breaker.record_failure("meh")
        snap = breaker.snapshot()
        assert snap["trips"] == 1
        assert snap["openClasses"] == ["bad"]
        assert snap["classes"] == 2

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestProbeResolution:
    """An admitted probe must never be leaked: record_abandoned settles
    any probe that ended on an uncharged path (the REVIEW.md high)."""

    def _trip(self, breaker, key="k"):
        for _ in range(breaker.threshold):
            breaker.record_failure(key)

    def test_allow_hands_the_probe_a_token(self, breaker, clock):
        assert breaker.allow("k").probe_token is None  # CLOSED: no probe
        self._trip(breaker)
        clock.advance_ms(1001.0)
        admit = breaker.allow("k")
        assert admit and admit.probe_token is not None

    def test_abandoned_probe_reopens_and_rearms_the_cooldown(
        self, breaker, clock
    ):
        self._trip(breaker)
        clock.advance_ms(1001.0)
        admit = breaker.allow("k")
        assert admit.probe_token is not None
        # the probe request dies on an uncharged path (stalled future,
        # fallback, internal error): without resolution the class would
        # reject everyone forever
        breaker.record_abandoned("k", admit.probe_token)
        assert breaker.state("k") is BreakerState.OPEN
        clock.advance_ms(999.0)
        assert not breaker.allow("k")
        clock.advance_ms(2.0)
        assert breaker.allow("k").probe_token is not None  # next probe runs

    def test_abandoned_is_a_noop_after_success(self, breaker, clock):
        self._trip(breaker)
        clock.advance_ms(1001.0)
        admit = breaker.allow("k")
        breaker.record_success("k")
        breaker.record_abandoned("k", admit.probe_token)
        assert breaker.state("k") is BreakerState.CLOSED
        assert breaker.allow("k")

    def test_abandoned_is_a_noop_after_failure(self, breaker, clock):
        self._trip(breaker)
        clock.advance_ms(1001.0)
        admit = breaker.allow("k")
        breaker.record_failure("k")
        opened_retry = breaker.retry_after_ms("k")
        clock.advance_ms(300.0)
        breaker.record_abandoned("k", admit.probe_token)  # stale token
        # the cooldown from the *failure* still stands, not re-armed
        assert breaker.retry_after_ms("k") == pytest.approx(opened_retry - 300.0)

    def test_stale_token_cannot_clobber_a_newer_probe(self, breaker, clock):
        self._trip(breaker)
        clock.advance_ms(1001.0)
        old = breaker.allow("k")
        breaker.record_failure("k")  # probe failed, breaker re-opened
        clock.advance_ms(1001.0)
        new = breaker.allow("k")  # a fresh probe is in flight
        assert new.probe_token != old.probe_token
        breaker.record_abandoned("k", old.probe_token)
        assert breaker.state("k") is BreakerState.HALF_OPEN  # untouched
        breaker.record_success("k")
        assert breaker.state("k") is BreakerState.CLOSED

    def test_none_token_is_a_noop(self, breaker):
        breaker.record_abandoned("k", None)
        assert breaker.state("k") is BreakerState.CLOSED

    def test_rekey_carries_the_probe_with_the_class(self, breaker, clock):
        self._trip(breaker, "digest")
        clock.advance_ms(1001.0)
        admit = breaker.allow("digest")
        breaker.rekey("digest", "structural")
        breaker.record_abandoned("structural", admit.probe_token)
        assert breaker.state("structural") is BreakerState.OPEN


class TestEviction:
    """The class map is LRU-bounded (the REVIEW.md unbounded-growth note)."""

    def test_idle_closed_classes_are_evicted_at_the_cap(self, clock):
        breaker = CircuitBreaker(threshold=3, max_classes=4, clock=clock)
        for i in range(4):
            assert breaker.allow(f"k{i}")
        assert breaker.snapshot()["classes"] == 4
        assert breaker.allow("k4")
        assert breaker.snapshot()["classes"] == 4  # k0 went

    def test_classes_with_signal_survive_idle_ones(self, clock):
        breaker = CircuitBreaker(threshold=3, max_classes=3, clock=clock)
        for _ in range(3):
            breaker.record_failure("bad")  # OPEN: carries signal
        breaker.record_failure("meh")  # failing: carries signal
        assert breaker.allow("idle")
        assert breaker.allow("new")  # evicts "idle", not "bad"/"meh"
        assert not breaker.allow("bad")
        snap = breaker.snapshot()
        assert snap["classes"] == 3
        assert "bad" in snap["openClasses"]

    def test_all_hot_still_stays_bounded(self, clock):
        breaker = CircuitBreaker(threshold=3, max_classes=3, clock=clock)
        for i in range(10):
            for _ in range(3):
                breaker.record_failure(f"k{i}")
        assert breaker.snapshot()["classes"] == 3

    def test_rejects_nonpositive_max_classes(self):
        with pytest.raises(ValueError):
            CircuitBreaker(max_classes=0)
