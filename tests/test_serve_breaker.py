"""Per-workload-class circuit breakers (repro.serve.breaker).

The clock is injected so every cooldown transition is deterministic.
"""

from __future__ import annotations

import pytest

from repro.serve.breaker import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now_s = 0.0

    def __call__(self) -> float:
        return self.now_s

    def advance_ms(self, ms: float) -> None:
        self.now_s += ms / 1000.0


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(threshold=3, cooldown_ms=1000.0, clock=clock)


class TestBreaker:
    def test_trips_after_consecutive_failures(self, breaker):
        for _ in range(2):
            breaker.record_failure("k")
            assert breaker.state("k") is BreakerState.CLOSED
            assert breaker.allow("k")
        breaker.record_failure("k")
        assert breaker.state("k") is BreakerState.OPEN
        assert not breaker.allow("k")

    def test_success_resets_the_consecutive_count(self, breaker):
        breaker.record_failure("k")
        breaker.record_failure("k")
        breaker.record_success("k")
        breaker.record_failure("k")
        breaker.record_failure("k")
        assert breaker.state("k") is BreakerState.CLOSED

    def test_classes_are_independent(self, breaker):
        for _ in range(3):
            breaker.record_failure("bad")
        assert not breaker.allow("bad")
        assert breaker.allow("good")

    def test_half_open_admits_exactly_one_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("k")
        clock.advance_ms(999.0)
        assert not breaker.allow("k")  # cooldown not elapsed
        clock.advance_ms(2.0)
        assert breaker.allow("k")  # the probe
        assert breaker.state("k") is BreakerState.HALF_OPEN
        assert not breaker.allow("k")  # everyone else queues behind it

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("k")
        clock.advance_ms(1001.0)
        assert breaker.allow("k")
        breaker.record_success("k")
        assert breaker.state("k") is BreakerState.CLOSED
        assert breaker.allow("k")

    def test_probe_failure_reopens_for_a_full_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("k")
        clock.advance_ms(1001.0)
        assert breaker.allow("k")
        breaker.record_failure("k")
        assert breaker.state("k") is BreakerState.OPEN
        clock.advance_ms(999.0)
        assert not breaker.allow("k")
        clock.advance_ms(2.0)
        assert breaker.allow("k")

    def test_retry_after_reports_remaining_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("k")
        assert breaker.retry_after_ms("k") == pytest.approx(1000.0)
        clock.advance_ms(600.0)
        assert breaker.retry_after_ms("k") == pytest.approx(400.0)
        assert breaker.retry_after_ms("unknown") == 1.0

    def test_rekey_migrates_accumulated_failures(self, breaker):
        breaker.record_failure("digest")
        breaker.record_failure("digest")
        breaker.rekey("digest", "structural")
        breaker.record_failure("structural")
        assert breaker.state("structural") is BreakerState.OPEN
        # the old key starts fresh
        assert breaker.allow("digest")

    def test_rekey_merges_into_existing_class(self, breaker):
        breaker.record_failure("old")
        breaker.record_failure("old")
        breaker.record_failure("new")
        breaker.rekey("old", "new")
        breaker.record_failure("new")
        assert breaker.state("new") is BreakerState.OPEN

    def test_snapshot_lists_open_classes(self, breaker):
        for _ in range(3):
            breaker.record_failure("bad")
        breaker.record_failure("meh")
        snap = breaker.snapshot()
        assert snap["trips"] == 1
        assert snap["openClasses"] == ["bad"]
        assert snap["classes"] == 2

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
