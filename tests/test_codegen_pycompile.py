"""Unit tests for the compiled Python/numpy backend.

The compiled kernels are checked bit-for-bit against the tree-walking
interpreter: two independent implementations of the same semantics.
"""

import pytest

from repro.codegen import (
    ArrayStore,
    apply_fusion,
    compile_fused,
    compile_original,
    run_fused,
    run_original,
)
from repro.depend import extract_mldg
from repro.fusion import Strategy, fuse
from repro.gallery import figure8_mldg
from repro.gallery.common import iir2d_code
from repro.gallery.paper import figure2_code, figure2_expected_llofra_retiming
from repro.graph import random_legal_mldg
from repro.loopir import parse_program, program_from_mldg


def _check_original(nest, n=9, m=8, seed=3):
    base = ArrayStore.for_program(nest, n, m, seed=seed)
    ref = run_original(nest, n, m, store=base.copy())
    kernel = compile_original(nest)
    out = base.copy()
    kernel(out, n, m)
    assert ref.equal(out)


def _check_fused(nest, retiming, g, n=9, m=8, seed=3):
    fp = apply_fusion(nest, retiming, mldg=g)
    base = ArrayStore.for_program(nest, n, m, seed=seed)
    ref = run_fused(fp, n, m, store=base.copy(), mode="serial")
    kernel = compile_fused(fp)
    out = base.copy()
    kernel(out, n, m)
    assert ref.equal(out)
    # and against the original program, transitively
    assert run_original(nest, n, m, store=base.copy()).equal(out)


class TestCompiledOriginal:
    def test_figure2(self):
        _check_original(parse_program(figure2_code()))

    def test_iir2d(self):
        _check_original(parse_program(iir2d_code()))

    @pytest.mark.parametrize("seed", range(4))
    def test_random_programs(self, seed):
        _check_original(program_from_mldg(random_legal_mldg(5, seed=seed)))

    def test_source_attached(self):
        kernel = compile_original(parse_program(figure2_code()))
        assert "def kernel(store, n, m):" in kernel.source
        assert "_arr_a" in kernel.source

    def test_nonsquare_sizes(self):
        _check_original(parse_program(figure2_code()), n=4, m=13)
        _check_original(parse_program(figure2_code()), n=13, m=4)


class TestCompiledFused:
    def test_figure2_doall(self):
        nest = parse_program(figure2_code())
        g = extract_mldg(nest)
        _check_fused(nest, fuse(g).retiming, g)

    def test_figure2_serial_llofra(self):
        """The non-DOALL path must interleave the body j-major."""
        nest = parse_program(figure2_code())
        g = extract_mldg(nest)
        _check_fused(nest, figure2_expected_llofra_retiming(), g)

    def test_iir2d(self):
        nest = parse_program(iir2d_code())
        g = extract_mldg(nest)
        _check_fused(nest, fuse(g).retiming, g)

    def test_figure8_synthesised(self):
        g = figure8_mldg()
        nest = program_from_mldg(g)
        _check_fused(nest, fuse(extract_mldg(nest)).retiming, extract_mldg(nest))

    @pytest.mark.parametrize("seed", range(4))
    def test_random_parallel_fusions(self, seed):
        g = random_legal_mldg(5, seed=seed + 100)
        nest = program_from_mldg(g)
        gx = extract_mldg(nest)
        res = fuse(gx)
        _check_fused(nest, res.retiming, gx)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_legal_only_fusions(self, seed):
        """Exercise the scalar (serial) compiled path on random graphs."""
        g = random_legal_mldg(5, seed=seed + 200)
        nest = program_from_mldg(g)
        gx = extract_mldg(nest)
        res = fuse(gx, strategy=Strategy.LEGAL_ONLY)
        _check_fused(nest, res.retiming, gx)

    def test_doall_kernel_is_vectorised(self):
        nest = parse_program(figure2_code())
        g = extract_mldg(nest)
        fp = apply_fusion(nest, fuse(g).retiming, mldg=g)
        src = compile_fused(fp).source
        assert ":" in src and "for j" not in src  # sliced, no inner loop

    def test_serial_kernel_has_inner_loop(self):
        nest = parse_program(figure2_code())
        g = extract_mldg(nest)
        fp = apply_fusion(nest, figure2_expected_llofra_retiming(), mldg=g)
        src = compile_fused(fp).source
        assert "for j in range" in src
