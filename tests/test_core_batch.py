"""Batch compilation and cross-session isolation (repro.core.batch)."""

from __future__ import annotations

import io
import json
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import redirect_stdout

import pytest

from repro import obs
from repro.core.batch import BATCH_SCHEMA
from repro.core.session import Session, SessionCaches, SessionOptions
from repro.gallery.common import iir2d_code
from repro.gallery.paper import figure2_code

HERE = os.path.dirname(os.path.abspath(__file__))
EXAMPLES = os.path.join(os.path.dirname(HERE), "examples")


def _gallery():
    with open(
        os.path.join(EXAMPLES, "fusion_preventing.loop"), encoding="utf-8"
    ) as fh:
        fusion_preventing = fh.read()
    return [
        ("fig2", figure2_code()),
        ("iir2d", iir2d_code()),
        ("fusion_preventing", fusion_preventing),
    ]


def _entry_key(e):
    return (
        e.name,
        e.status,
        e.strategy,
        e.parallelism,
        e.rung,
        tuple(e.notes),
        len(e.diagnostics),
        e.error,
    )


def test_fuse_many_compiles_gallery_concurrently():
    report = Session().fuse_many(_gallery(), jobs=4)
    assert report.ok and report.ok_count == 3 and report.error_count == 0
    assert [e.index for e in report.entries] == [0, 1, 2]  # input order
    assert report.entry("fig2").strategy == "cyclic"
    assert report.entry("fig2").parallelism == "doall"
    assert report.entry("fusion_preventing").strategy == "acyclic"


def test_serial_and_parallel_batches_are_equivalent():
    serial = Session().fuse_many(_gallery(), jobs=1)
    parallel = Session().fuse_many(_gallery(), jobs=4)
    assert [_entry_key(e) for e in serial.entries] == [
        _entry_key(e) for e in parallel.entries
    ]


def test_fuse_many_resilient():
    report = Session().fuse_many(_gallery(), jobs=4, resilient=True)
    assert report.ok
    assert report.entry("fig2").rung == "doall"
    assert all(e.rung is not None for e in report.entries)


def test_one_bad_program_never_sinks_the_batch():
    programs = _gallery() + [("broken", "this is not a loop program")]
    report = Session().fuse_many(programs, jobs=4)
    assert not report.ok
    assert report.ok_count == 3 and report.error_count == 1
    bad = report.entry("broken")
    assert bad.status == "error"
    assert bad.error is not None and bad.error["type"] == "ParseError"
    # the good entries are untouched
    assert report.entry("fig2").status == "ok"


def test_batch_report_schema_and_renderings():
    report = Session().fuse_many(_gallery(), jobs=2)
    doc = report.to_dict()
    assert doc["schema"] == BATCH_SCHEMA == "repro-batch/1"
    assert doc["jobs"] == 2 and doc["okCount"] == 3
    assert [p["name"] for p in doc["programs"]] == [
        "fig2", "iir2d", "fusion_preventing",
    ]
    json.dumps(doc)  # JSON-serializable all the way down
    text = report.render_text()
    assert "3 programs" in text and "fig2" in text


def test_per_program_trace_ids_when_session_traces():
    session = Session(tracer=obs.Tracer())
    report = session.fuse_many(_gallery(), jobs=4)
    ids = [e.trace_id for e in report.entries]
    assert all(ids) and len(set(ids)) == len(ids)
    for e in report.entries:
        assert e.tracer is not None
        names = [s.name for s in e.tracer.spans()]
        assert "batch.program" in names
        assert "pipeline.fuse_program" in names
    # without a session tracer, no per-program tracers are minted
    plain = Session().fuse_many(_gallery()[:1])
    assert plain.entries[0].trace_id is None


def test_names_parameter_labels_positional_programs():
    report = Session().fuse_many(
        [figure2_code(), iir2d_code()], jobs=2, names=["a", "b"]
    )
    assert [e.name for e in report.entries] == ["a", "b"]
    with pytest.raises(ValueError, match="names for"):
        Session().fuse_many([figure2_code()], names=["a", "b"])


def test_concurrent_sessions_never_observe_each_other():
    """Two sessions with different ladders running concurrently stay isolated."""
    serial = Session.isolated(options=SessionOptions(ladder="serial"))
    full = Session.isolated(options=SessionOptions(ladder="full"))
    barrier = threading.Barrier(2)

    def run(session):
        barrier.wait(timeout=30)
        return session.fuse_many(
            [("fig2", figure2_code())] * 3, jobs=3, resilient=True, names=None
        )

    with ThreadPoolExecutor(max_workers=2) as pool:
        f_serial = pool.submit(run, serial)
        f_full = pool.submit(run, full)
        serial_report, full_report = f_serial.result(), f_full.result()

    assert {e.rung for e in serial_report.entries} == {"legal-only"}
    assert {e.rung for e in full_report.entries} == {"doall"}


def test_concurrent_sessions_keep_private_registries_and_diagnostics():
    a = Session.isolated()
    b = Session.isolated()
    barrier = threading.Barrier(2)

    def run(session, source):
        barrier.wait(timeout=30)
        return session.fuse_many([("p", source)] * 4, jobs=4)

    with ThreadPoolExecutor(max_workers=2) as pool:
        ra = pool.submit(run, a, figure2_code())
        rb = pool.submit(run, b, iir2d_code())
        ra.result(), rb.result()

    assert a.registry is not None and b.registry is not None
    assert a.registry.counter("core.pass.fuse.runs").value == 4
    assert b.registry.counter("core.pass.fuse.runs").value == 4
    assert a.registry.counter("core.batch.programs").value == 4
    # diagnostics stay per session (fig2 lints findings, 4 runs' worth)
    assert len(a.diagnostics) == 4 * 4
    assert len(b.diagnostics) == 0  # iir2d is clean


def test_concurrent_sessions_keep_private_caches():
    a = Session(caches=SessionCaches.private())
    b = Session(caches=SessionCaches.private())
    a.fuse_many([("p", figure2_code())] * 3, jobs=3)
    b.fuse_many([("p", figure2_code())] * 3, jobs=3)
    assert a.caches.fusion is not None and b.caches.fusion is not None
    assert a.caches.fusion.cache_info().currsize >= 1
    assert b.caches.fusion.cache_info().currsize >= 1
    assert a.caches.fusion is not b.caches.fusion


def test_session_budget_applies_to_every_batch_program():
    from repro.resilience.budget import Budget

    session = Session(budget=Budget(max_nodes=1))
    report = session.fuse_many(_gallery(), jobs=4)
    assert report.error_count == 3
    assert all(
        e.error is not None and e.error["type"] == "BudgetExceededError"
        for e in report.entries
    )


def test_trace_ids_survive_worker_exceptions():
    """Regression: an exception whose own __str__ raises must neither
    sink the batch nor cost the entry its trace id."""

    class HostileError(Exception):
        def __str__(self):
            raise RuntimeError("no message for you")

        @property
        def diagnostics(self):
            raise RuntimeError("no diagnostics either")

    session = Session(tracer=obs.Tracer())

    def explode(source, strategy=None):
        raise HostileError()

    original = session.fuse_program
    session.fuse_program = explode
    try:
        report = session.fuse_many(_gallery(), jobs=3)
    finally:
        session.fuse_program = original

    assert report.error_count == 3
    for e in report.entries:
        assert e.trace_id is not None  # assigned before the compile
        assert e.tracer is not None  # attached in the finally
        assert e.error["type"] == "HostileError"
        assert "unprintable" in e.error["message"]
        assert e.diagnostics == []
    json.dumps(report.to_dict())


def test_timeout_ms_budgets_each_program_separately():
    from repro.perf.memo import clear_all_caches

    session = Session()
    report = session.fuse_many(_gallery(), jobs=2, timeout_ms=60_000.0)
    assert report.ok
    # an unmeetable per-program deadline trips every program's own budget
    # without mutating the shared session.  Deadline-only budgets are
    # allowed to take cache hits (a hit is how a deadline gets met), so
    # the caches the first run warmed are cleared to make every tight
    # compile actually do (and be billed for) solver work.
    clear_all_caches()
    tight = session.fuse_many(_gallery(), jobs=2, timeout_ms=0.000001)
    assert tight.error_count == 3
    assert all(
        e.error["type"] == "BudgetExceededError" for e in tight.entries
    )
    assert session.budget is None
    assert session.fuse_many(_gallery()[:1], jobs=1).ok


def test_budget_scope_override_wins_over_session_budget():
    from repro.core import context as _context
    from repro.resilience.budget import Budget

    session = Session(budget=Budget(max_nodes=1))
    assert session.effective_budget is session.budget
    override = Budget(deadline_ms=60_000.0).start()
    with _context.budget_scope(override):
        assert session.effective_budget is override
    assert session.effective_budget is session.budget


def test_process_pool_matches_thread_pool_results():
    session = Session()
    threaded = session.fuse_many(_gallery(), jobs=2)
    processed = session.fuse_many(_gallery(), jobs=2, pool="process")
    assert processed.ok_count == threaded.ok_count == 3
    for t, p in zip(threaded.entries, processed.entries):
        assert (t.name, t.status, t.strategy, t.parallelism) == (
            p.name, p.status, p.strategy, p.parallelism
        )
        assert [d.to_dict() for d in t.diagnostics] == [
            d.to_dict() for d in p.diagnostics
        ]
    json.dumps(processed.to_dict())


def test_process_pool_reports_typed_errors():
    report = Session().fuse_many(
        [("bad", "not a ( program"), ("good", figure2_code())],
        jobs=2,
        pool="process",
    )
    assert report.entry("good").ok
    bad = report.entry("bad")
    assert bad.status == "error" and bad.error["type"] == "ParseError"


def test_unknown_pool_rejected():
    with pytest.raises(ValueError, match="unknown pool"):
        Session().fuse_many(_gallery(), pool="fiber")


# ---------------------------------------------------------------------- #
# CLI surface
# ---------------------------------------------------------------------- #


def _cli(argv):
    from repro.cli import main

    buf = io.StringIO()
    with redirect_stdout(buf):
        try:
            code = main(argv)
        except SystemExit as exc:
            code = int(exc.code or 0)
    return int(code), buf.getvalue()


def test_cli_version():
    from repro import __version__

    code, text = _cli(["--version"])
    assert code == 0
    assert text.strip() == f"repro-fuse {__version__}"


def test_cli_batch_text(tmp_path):
    paths = []
    for name, source in _gallery():
        p = tmp_path / f"{name}.loop"
        p.write_text(source, encoding="utf-8")
        paths.append(str(p))
    code, text = _cli(["batch", *paths, "--jobs", "4"])
    assert code == 0
    assert "3 programs" in text and "fig2.loop" in text


def test_cli_batch_json_and_failure_exit(tmp_path):
    good = tmp_path / "good.loop"
    good.write_text(figure2_code(), encoding="utf-8")
    bad = tmp_path / "bad.loop"
    bad.write_text("not a program", encoding="utf-8")
    code, text = _cli(
        ["batch", str(good), str(bad), "--format", "json", "--jobs", "2"]
    )
    assert code == 1  # ExitCode.FAILURE: one program failed
    doc = json.loads(text)
    assert doc["schema"] == "repro-batch/1"
    assert doc["okCount"] == 1 and doc["errorCount"] == 1
    by_name = {p["name"]: p for p in doc["programs"]}
    assert by_name["good.loop"]["status"] == "ok"
    assert by_name["bad.loop"]["error"]["type"] == "ParseError"


def test_cli_batch_resilient(tmp_path):
    p = tmp_path / "fig2.loop"
    p.write_text(figure2_code(), encoding="utf-8")
    code, text = _cli(
        ["batch", str(p), "--resilient", "--format", "json", "--jobs", "1"]
    )
    assert code == 0
    doc = json.loads(text)
    assert doc["resilient"] is True
    assert doc["programs"][0]["rung"] == "doall"


def test_cli_batch_timeout_ms_and_process_pool(tmp_path):
    p = tmp_path / "fig2.loop"
    p.write_text(figure2_code(), encoding="utf-8")
    code, text = _cli(
        ["batch", str(p), "--jobs", "2", "--timeout-ms", "60000",
         "--batch-pool", "process", "--format", "json"]
    )
    assert code == 0
    doc = json.loads(text)
    assert doc["okCount"] == 1
    assert doc["programs"][0]["strategy"] is not None
    # a hopeless per-program deadline fails the batch with a typed error
    # (cold caches: deadline-only budgets may legitimately be served from
    # a warm cache without doing any billable solver work)
    from repro.perf.memo import clear_all_caches

    clear_all_caches()
    code2, text2 = _cli(
        ["batch", str(p), "--jobs", "1", "--timeout-ms", "0.000001",
         "--format", "json"]
    )
    assert code2 == 1
    doc2 = json.loads(text2)
    assert doc2["programs"][0]["error"]["type"] == "BudgetExceededError"


def test_cli_exit_codes_are_intenum_members():
    from repro.core import ExitCode

    assert int(ExitCode.OK) == 0
    assert int(ExitCode.FAILURE) == 1
    assert int(ExitCode.USAGE) == 2
    assert isinstance(ExitCode.OK, int)
