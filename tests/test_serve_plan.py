"""Planner integration at the serve layer (docs/PLANNING.md).

The wire grew two additive response fields (``backend``, ``plan``) and
the config/request grew ``"auto"``; the invariants under test:

* **Explicit wins, always** -- a request that names a concrete backend
  is echoed verbatim, untouched by a ``ServeConfig(backend="auto")``,
  and the guarantee survives worker crash-retry re-dispatch (the wire
  payload is rebuilt per attempt).
* **Auto resolves server-side** -- a request that left the backend at
  the wire default inherits the config backend; ``"auto"`` comes back
  as a *concrete* backend with the :class:`ExecutionPlan` dict attached,
  so clients never have to interpret ``"auto"`` themselves.

The chaos-marked tests SIGKILL real pool workers; deselect with
``-m "not chaos"``.
"""

from __future__ import annotations

import pytest

from repro.core.backends import backend_names
from repro.gallery.paper import figure2_code
from repro.serve.loadgen import LoadgenOptions, render_report_text, run_loadgen
from repro.serve.service import CompileService, ServeConfig
from repro.serve.wire import (
    CompileRequest,
    CompileResponse,
    WireError,
    request_from_program,
)


def _crash_spec(seed: int = 0, probability: float = 1.0) -> dict:
    return {"injector": "WorkerCrash", "seed": seed, "probability": probability}


@pytest.fixture(scope="module")
def auto_service():
    with CompileService(ServeConfig(workers=2, backend="auto")) as svc:
        yield svc


@pytest.fixture()
def auto_chaos_service():
    with CompileService(
        ServeConfig(
            workers=2, backend="auto", allow_faults=True, backoff_base_ms=1.0
        )
    ) as svc:
        yield svc


# ------------------------------------------------------------------ #
# wire-level contract
# ------------------------------------------------------------------ #


class TestWire:
    def test_request_accepts_auto(self):
        req = request_from_program("fig2", figure2_code(), backend="auto")
        assert CompileRequest.from_dict(req.to_dict()).backend == "auto"

    def test_request_rejects_unknown_backend(self):
        with pytest.raises(WireError) as err:
            request_from_program("fig2", figure2_code(), backend="gpu")
        assert "auto" in str(err.value)  # the error lists the legal set

    def test_response_roundtrips_backend_and_plan(self):
        resp = CompileResponse(
            status="ok",
            name="fig2",
            backend="numpy",
            plan={"backend": "numpy", "jobs": 1, "source": "model"},
        )
        clone = CompileResponse.from_dict(resp.to_dict())
        assert clone.backend == "numpy"
        assert clone.plan == {"backend": "numpy", "jobs": 1, "source": "model"}

    def test_fields_are_additive(self):
        # an old-format document without the new keys still parses
        doc = CompileResponse(status="ok", name="fig2").to_dict()
        doc.pop("backend", None)
        doc.pop("plan", None)
        clone = CompileResponse.from_dict(doc)
        assert clone.backend is None and clone.plan is None

    def test_service_validates_config_backend(self):
        # fails fast, before any worker process exists
        with pytest.raises(ValueError) as err:
            CompileService(ServeConfig(workers=1, backend="gpu"))
        assert "auto" in str(err.value)
        assert ServeConfig(workers=1, backend="auto").backend == "auto"


# ------------------------------------------------------------------ #
# resolution through the service
# ------------------------------------------------------------------ #


class TestResolution:
    def test_config_auto_resolves_to_concrete_backend(self, auto_service):
        resp = auto_service.handle(request_from_program("fig2", figure2_code()))
        assert resp.status == "ok"
        assert resp.backend in backend_names()  # never "auto" on the wire out
        assert resp.plan is not None
        assert resp.plan["backend"] == resp.backend
        assert resp.plan["source"] in ("profile", "model")
        assert resp.plan["rationale"]

    def test_explicit_request_backend_wins_over_auto_config(self, auto_service):
        resp = auto_service.handle(
            request_from_program("fig2", figure2_code(), backend="parallel")
        )
        assert resp.status == "ok"
        assert resp.backend == "parallel"
        assert resp.plan is None  # nothing was planned on the client's behalf

    def test_requested_auto_resolves_even_with_concrete_config(self):
        with CompileService(ServeConfig(workers=1, backend="compiled")) as svc:
            resp = svc.handle(
                request_from_program("fig2", figure2_code(), backend="auto")
            )
            assert resp.status == "ok"
            assert resp.backend in backend_names()
            assert resp.plan is not None

    def test_default_config_echoes_wire_default(self):
        with CompileService(ServeConfig(workers=1)) as svc:
            resp = svc.handle(request_from_program("fig2", figure2_code()))
            assert resp.status == "ok"
            assert resp.backend == "interp" and resp.plan is None

    def test_resilient_path_resolves_auto_too(self, auto_service):
        resp = auto_service.handle(
            request_from_program("fig2", figure2_code(), resilient=True)
        )
        assert resp.status == "ok"
        assert resp.backend in backend_names()

    def test_snapshot_carries_plan_block(self, auto_service):
        auto_service.handle(request_from_program("fig2", figure2_code()))
        snap = auto_service.snapshot()
        assert snap["plan"]["backend"] == "auto"
        assert "recent" in snap["plan"]


# ------------------------------------------------------------------ #
# the guarantee under fire: crash-retry re-dispatch
# ------------------------------------------------------------------ #


@pytest.mark.chaos
class TestCrashRetry:
    def test_explicit_backend_survives_redispatch(self, auto_chaos_service):
        # seed 1, p=0.5: attempt 0 is killed, attempt 1 is spared -- the
        # request is *rebuilt* for the retry, and the explicit backend
        # must ride along instead of decaying to the config's "auto"
        resp = auto_chaos_service.handle(
            request_from_program(
                "fig2", figure2_code(),
                backend="compiled", fault=_crash_spec(seed=1, probability=0.5),
            )
        )
        assert resp.status == "ok" and resp.attempts == 2
        assert resp.worker_crashes == 1
        assert resp.backend == "compiled"
        assert resp.plan is None

    def test_auto_still_resolves_after_redispatch(self, auto_chaos_service):
        resp = auto_chaos_service.handle(
            request_from_program(
                "fig2", figure2_code(),
                fault=_crash_spec(seed=1, probability=0.5),
            )
        )
        assert resp.status == "ok" and resp.attempts == 2
        assert resp.backend in backend_names()
        assert resp.plan is not None and resp.plan["backend"] == resp.backend

    def test_fallback_ladder_still_honors_explicit_backend(self):
        # every worker attempt crashes -> the in-process fallback serves
        # the request, and the explicit backend survives even that
        with CompileService(
            ServeConfig(
                workers=1, backend="auto", allow_faults=True,
                backoff_base_ms=1.0, max_attempts=2,
            )
        ) as svc:
            resp = svc.handle(
                request_from_program(
                    "fig2", figure2_code(),
                    backend="numpy", fault=_crash_spec(seed=0, probability=1.0),
                )
            )
            assert resp.status == "degraded"  # served by the fallback
            assert resp.backend == "numpy"
            assert resp.plan is None


# ------------------------------------------------------------------ #
# loadgen: the plan block in BENCH_serve.json
# ------------------------------------------------------------------ #


class TestLoadgenPlanBlock:
    def test_report_counts_auto_requests(self, tmp_path):
        report = run_loadgen(
            LoadgenOptions(
                requests=6, concurrency=3, workers=1, auto_every=2,
                out=str(tmp_path / "serve.json"),
            )
        )
        plan = report["plan"]
        assert plan["autoRequests"] == 3  # requests 0, 2, 4
        assert sum(plan["byBackend"].values()) == 6
        assert all(b != "auto" for b in plan["byBackend"])
        assert plan["sample"] is not None
        assert plan["sample"]["source"] in ("profile", "model")
        assert report["options"]["autoEvery"] == 2
        assert "plan:" in render_report_text(report)

    def test_auto_disabled_by_default(self, tmp_path):
        report = run_loadgen(
            LoadgenOptions(requests=4, concurrency=2, workers=1)
        )
        assert report["plan"]["autoRequests"] == 0
        assert report["plan"]["sample"] is None
