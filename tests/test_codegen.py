"""Unit tests for fused-program construction, emission and execution."""

import pytest

from repro.codegen import (
    ArrayStore,
    DeadlockError,
    apply_fusion,
    emit_fused_program,
    run_fused,
    run_original,
)
from repro.fusion import fuse
from repro.gallery.paper import (
    figure2_code,
    figure2_expected_alg4_retiming,
    figure2_expected_llofra_retiming,
    figure2_mldg,
)
from repro.loopir import parse_program
from repro.retiming import Retiming
from repro.vectors import IVec


@pytest.fixture
def fig2_nest():
    return parse_program(figure2_code())


@pytest.fixture
def fig2_fused(fig2_nest):
    return apply_fusion(fig2_nest, figure2_expected_alg4_retiming())


class TestApplyFusion:
    def test_geometry_matches_figure12(self, fig2_fused):
        # Figure 12b: DO 50 i=1,n ... DOALL 70 j=1,m
        assert fig2_fused.core_outer_range(10) == (1, 10)
        assert fig2_fused.core_inner_range(7) == (1, 7)
        assert fig2_fused.full_outer_range(10) == (0, 11)

    def test_body_in_program_order_here(self, fig2_fused):
        assert tuple(n.label for n in fig2_fused.body) == ("A", "B", "C", "D")

    def test_zero_dep_reorders_body(self):
        """A (0,0) dependence from a later loop forces body reordering."""
        nest = parse_program(
            "do i = 0, n\n"
            "  A: doall j = 0, m\n    a[i][j] = b[i-1][j]\n  end\n"
            "  B: doall j = 0, m\n    b[i][j] = 1\n  end\n"
            "end"
        )
        # advancing A one outer iteration makes the B -> A edge (0,0), so B's
        # statement must precede A's inside the fused body
        r = Retiming({"A": IVec(1, 0)}, dim=2)
        fp = apply_fusion(nest, r)
        assert tuple(n.label for n in fp.body) == ("B", "A")
        # and the transformed program still computes the original's results
        base = ArrayStore.for_program(nest, 7, 6, seed=2)
        ref = run_original(nest, 7, 6, store=base.copy())
        assert ref.equal(run_fused(fp, 7, 6, store=base.copy(), mode="serial"))

    def test_illegal_retiming_rejected(self, fig2_nest):
        with pytest.raises(ValueError, match="illegal"):
            apply_fusion(fig2_nest, Retiming.zero(dim=2))

    def test_deadlock_detected(self):
        """A crafted zero-weight dependence cycle admits no body order."""
        from repro.graph import mldg_from_table

        nest = parse_program(
            "do i = 0, n\n"
            "  A: doall j = 0, m\n    a[i][j] = 1\n  end\n"
            "  B: doall j = 0, m\n    b[i][j] = 2\n  end\n"
            "end"
        )
        crafted = mldg_from_table(
            {("A", "B"): [(0, 0)], ("B", "A"): [(0, 0)]}, nodes=["A", "B"]
        )
        with pytest.raises(DeadlockError):
            apply_fusion(nest, Retiming.zero(dim=2), mldg=crafted)

    def test_sync_count_figure8_accounting(self):
        from repro.gallery import figure8_mldg
        from repro.loopir import program_from_mldg

        g = figure8_mldg()
        nest = program_from_mldg(g)
        res = fuse(g)
        fp = apply_fusion(nest, res.retiming, mldg=g)
        n = 100
        assert fp.synchronization_count(n) == n - 2  # the paper's count
        assert fp.synchronization_count(n, include_boundary=True) == n + 2


class TestEmission:
    def test_figure12b_landmarks(self, fig2_fused):
        text = emit_fused_program(fig2_fused)
        assert "do i = 1, n" in text
        assert "doall j = 1, m" in text
        assert "c[i-1][j] = b[i-1][j+2] - a[i-1][j-1] + b[i-1][j-1]" in text
        assert "e[i-1][j-1] = c[i-1][j]" in text
        assert "e[i-1][m] = c[i-1][m+1]" in text  # post-DOALL boundary
        assert "a[0][j] = e[-2][j-1]" in text  # prologue row A at i = 0
        assert "e[n][j] = c[n][j+1]" in text  # epilogue row D at i = n

    def test_figure6b_landmarks(self, fig2_nest):
        fp = apply_fusion(fig2_nest, figure2_expected_llofra_retiming())
        text = emit_fused_program(fp)
        # Figure 6b: DO 70 j=3,m with c[i][j-2] = b[i][j] - a[i][j-3] + b[i][j-3]
        assert "j = 3, m" in text
        assert "c[i][j-2] = b[i][j] - a[i][j-3] + b[i][j-3]" in text
        assert "e[i][j-3] = c[i][j-2]" in text

    def test_no_boundary_sections_when_unshifted(self):
        nest = parse_program(
            "do i = 0, n\n"
            "  A: doall j = 0, m\n    a[i][j] = 1\n  end\n"
            "  B: doall j = 0, m\n    b[i][j] = a[i][j]\n  end\n"
            "end"
        )
        fp = apply_fusion(nest, Retiming.zero(dim=2))
        text = emit_fused_program(fp)
        assert "prologue" not in text and "epilogue" not in text
        assert "do i = 0, n" in text and "doall j = 0, m" in text


class TestExecution:
    def test_store_halo_reads(self, fig2_nest):
        store = ArrayStore.for_program(fig2_nest, 4, 4, seed=1)
        # e[-2][-1] must be addressable (read by a[0][0])
        value = store.get("e", -2, -1)
        assert isinstance(value, float)

    def test_store_copy_independent(self, fig2_nest):
        a = ArrayStore.for_program(fig2_nest, 4, 4, seed=1)
        b = a.copy()
        b.set("a", 0, 0, 123.0)
        assert a.get("a", 0, 0) != 123.0
        assert not a.equal(b)

    def test_same_seed_same_store(self, fig2_nest):
        a = ArrayStore.for_program(fig2_nest, 4, 4, seed=7)
        b = ArrayStore.for_program(fig2_nest, 4, 4, seed=7)
        assert a.equal(b)

    def test_serial_fused_matches_original(self, fig2_nest, fig2_fused):
        base = ArrayStore.for_program(fig2_nest, 8, 9, seed=5)
        ref = run_original(fig2_nest, 8, 9, store=base.copy())
        out = run_fused(fig2_fused, 8, 9, store=base.copy(), mode="serial")
        assert ref.equal(out)

    def test_doall_fused_matches_original(self, fig2_nest, fig2_fused):
        base = ArrayStore.for_program(fig2_nest, 8, 9, seed=5)
        ref = run_original(fig2_nest, 8, 9, store=base.copy())
        for order_seed in (1, 2, 3):
            out = run_fused(
                fig2_fused, 8, 9, store=base.copy(), mode="doall", order_seed=order_seed
            )
            assert ref.equal(out)

    def test_llofra_only_fusion_is_not_doall(self, fig2_nest):
        """Randomised row order must break the serialised (Figure 7) fusion."""
        fp = apply_fusion(fig2_nest, figure2_expected_llofra_retiming())
        base = ArrayStore.for_program(fig2_nest, 8, 9, seed=5)
        ref = run_original(fig2_nest, 8, 9, store=base.copy())
        assert ref.equal(run_fused(fp, 8, 9, store=base.copy(), mode="serial"))
        broken = run_fused(fp, 8, 9, store=base.copy(), mode="doall", order_seed=99)
        assert not ref.equal(broken)

    def test_hyperplane_mode_requires_schedule(self, fig2_fused):
        from repro.codegen import ExecutionOrderError

        with pytest.raises(ExecutionOrderError):
            run_fused(fig2_fused, 4, 4, mode="hyperplane")

    def test_unknown_mode(self, fig2_fused):
        from repro.codegen import ExecutionOrderError

        with pytest.raises(ExecutionOrderError):
            run_fused(fig2_fused, 4, 4, mode="warp")


class TestEmissionCorners:
    def test_positive_shift_emission(self):
        """Positive retiming components put boundaries on the other side:
        epilogue rows for positive-shift nodes, prologue for the rest."""
        from repro.retiming import Retiming

        nest = parse_program(
            "do i = 0, n\n"
            "  A: doall j = 0, m\n    a[i][j] = x[i][j]\n  end\n"
            "  B: doall j = 0, m\n    b[i][j] = a[i-1][j]\n  end\n"
            "end"
        )
        fp = apply_fusion(nest, Retiming({"A": IVec(1, 0)}, dim=2))
        text = emit_fused_program(fp)
        # A runs one iteration ahead: its last original row lands in the
        # epilogue and B's first original row in the prologue
        assert "prologue" in text and "epilogue" in text
        assert "do i = 0, n-1" in text
        # and execution agrees
        from repro.codegen import ArrayStore, run_fused, run_original

        base = ArrayStore.for_program(nest, 6, 5, seed=3)
        ref = run_original(nest, 6, 5, store=base.copy())
        assert ref.equal(run_fused(fp, 6, 5, store=base.copy(), mode="serial"))

    def test_emitted_dsl_core_reparses(self, fig2_fused):
        """The fused DOALL core is valid DSL when wrapped appropriately --
        a sanity check that emission produces parseable index expressions."""
        text = emit_fused_program(fig2_fused)
        core_lines = []
        in_outer = False
        in_core = False
        for line in text.splitlines():
            if line.startswith("do i"):
                in_outer = True
                continue
            if in_outer and line.strip().startswith("doall"):
                in_core = True
                continue
            if in_core and line.strip() == "end":
                break
            if in_core:
                core_lines.append(line.strip())
        assert len(core_lines) == 5  # the five statements of Figure 12b
        for stmt in core_lines:
            assert "=" in stmt and "[" in stmt
