"""Unit tests for legality predicates (Lemma 2.1, Theorem 3.1, Section 3.1)."""

import pytest

from repro.graph import (
    MLDG,
    VectorClass,
    check_legal,
    classify_vector,
    fusion_preventing_edges,
    is_deadlock_free,
    is_fusion_legal,
    is_legal,
    is_sequence_executable,
    lemma_2_1_holds,
    mldg_from_table,
    zero_weight_cycle,
)
from repro.gallery import figure2_mldg, figure8_mldg, figure14_mldg
from repro.vectors import IVec


class TestClassifyVector:
    """The Section-3.1 case analysis, with the sign convention of Thm 3.1."""

    def test_outer_carried_safe(self):
        assert classify_vector(IVec(1, -100)) == VectorClass.OUTER_CARRIED
        assert classify_vector(IVec(2, 1)) == VectorClass.OUTER_CARRIED

    def test_forward_safe(self):
        assert classify_vector(IVec(0, 0)) == VectorClass.FORWARD
        assert classify_vector(IVec(0, 3)) == VectorClass.FORWARD

    def test_fusion_preventing(self):
        # the paper's Figure 8 discussion explicitly names (0,-2) and (0,-3)
        assert classify_vector(IVec(0, -2)) == VectorClass.FUSION_PREVENTING
        assert classify_vector(IVec(0, -3)) == VectorClass.FUSION_PREVENTING

    def test_illegal(self):
        assert classify_vector(IVec(-1, 0)) == VectorClass.ILLEGAL


class TestLegality:
    def test_paper_graphs_legal(self):
        for g in (figure2_mldg(), figure8_mldg(), figure14_mldg()):
            assert is_legal(g)

    def test_negative_cycle_illegal(self):
        g = mldg_from_table(
            {("A", "B"): [(0, -1)], ("B", "A"): [(0, 0)]}, nodes=["A", "B"]
        )
        report = check_legal(g)
        assert not report.legal
        assert "negative" in report.violations[0]

    def test_negative_self_loop_illegal(self):
        g = mldg_from_table({("A", "A"): [(0, -1)]}, nodes=["A"])
        assert not is_legal(g)

    def test_dangling_negative_edge_is_legal(self):
        """An edge with negative weight off any cycle is retimable, hence legal."""
        g = mldg_from_table({("A", "B"): [(0, -5)]}, nodes=["A", "B"])
        assert is_legal(g)


class TestDeadlockFreedom:
    def test_figure14_has_zero_cycle(self):
        cyc = zero_weight_cycle(figure14_mldg())
        assert cyc is not None
        assert set(cyc) == {"B", "C", "D", "E"}
        assert not is_deadlock_free(figure14_mldg())

    def test_figures_2_and_8_deadlock_free(self):
        assert is_deadlock_free(figure2_mldg())
        assert is_deadlock_free(figure8_mldg())

    def test_zero_self_loop_is_deadlock(self):
        g = mldg_from_table({("A", "A"): [(0, 0)]}, nodes=["A"])
        assert is_legal(g)
        assert not is_deadlock_free(g)

    def test_on_illegal_graph_raises(self):
        g = mldg_from_table({("A", "A"): [(0, -1)]}, nodes=["A"])
        with pytest.raises(ValueError):
            zero_weight_cycle(g)


class TestSequenceExecutability:
    def test_figure2_executable(self):
        assert is_sequence_executable(figure2_mldg()).legal

    def test_figure8_executable(self):
        assert is_sequence_executable(figure8_mldg()).legal

    def test_figure14_not_executable(self):
        """Figure 14's D->C edge carries (0,-2): backwards in loop order."""
        report = is_sequence_executable(figure14_mldg())
        assert not report.legal
        assert any("D->C" in v for v in report.violations)

    def test_negative_outer_distance(self):
        g = mldg_from_table({("A", "B"): [(-1, 0)]}, nodes=["A", "B"])
        report = is_sequence_executable(g)
        assert not report.legal

    def test_self_loop_same_iteration(self):
        g = mldg_from_table({("A", "A"): [(0, 1)]}, nodes=["A"])
        assert not is_sequence_executable(g).legal


class TestFusionLegality:
    def test_figure2_direct_fusion_illegal(self):
        """Figure 4: fusing Figure 2 directly is illegal ((0,-2) on B->C)."""
        g = figure2_mldg()
        assert not is_fusion_legal(g)
        bad = fusion_preventing_edges(g)
        assert {e.key for e in bad} == {("B", "C"), ("C", "D")}

    def test_figure6_retimed_graph_fusable(self):
        from repro.gallery.paper import figure2_expected_llofra_retiming

        gr = figure2_expected_llofra_retiming().apply(figure2_mldg())
        assert is_fusion_legal(gr)

    def test_all_nonnegative_is_fusable(self):
        g = mldg_from_table(
            {("A", "B"): [(0, 0), (1, -5)], ("B", "C"): [(0, 2)]},
            nodes=["A", "B", "C"],
        )
        assert is_fusion_legal(g)


class TestLemma21:
    def test_holds_on_figures_2_and_8(self):
        assert lemma_2_1_holds(figure2_mldg())
        assert lemma_2_1_holds(figure8_mldg())

    def test_fails_on_figure14(self):
        """Documented paper anomaly: cycle C->D->C has weight (0,1) < (1,-1)."""
        assert not lemma_2_1_holds(figure14_mldg())

    def test_explicit_cycle_weights_figure2(self):
        from repro.graph import cycle_weight

        g = figure2_mldg()
        assert cycle_weight(g, ["A", "B", "C", "D"]) == IVec(3, -1)
        assert cycle_weight(g, ["A", "C", "D"]) == IVec(2, 1)
