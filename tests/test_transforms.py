"""Unit and property tests for unimodular transformations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fusion import fuse, hyperplane_parallel_fusion
from repro.gallery import figure2_mldg, figure14_mldg, floyd_steinberg_mldg
from repro.retiming import is_doall_after_fusion
from repro.transforms import (
    Unimodular,
    interchange,
    reversal,
    skew,
    transform_mldg,
    wavefront_transform,
)
from repro.vectors import IVec


class TestUnimodularBasics:
    def test_determinant_enforced(self):
        with pytest.raises(ValueError):
            Unimodular(rows=((2, 0), (0, 1)))

    def test_identity_composition(self):
        ident = Unimodular(rows=((1, 0), (0, 1)))
        t = skew(3)
        assert t.compose(ident).rows == t.rows
        assert ident.compose(t).rows == t.rows

    def test_inverse(self):
        for t in (interchange(), reversal(0), reversal(1), skew(4), skew(-2, of=0)):
            ti = t.inverse()
            v = IVec(7, -3)
            assert ti.apply(t.apply(v)) == v
            assert t.apply(ti.apply(v)) == v

    def test_compose_matches_sequential_application(self):
        a, b = skew(2), interchange()
        v = IVec(3, 5)
        assert a.compose(b).apply(v) == a.apply(b.apply(v))

    def test_named_constructors(self):
        assert interchange().apply(IVec(1, 2)) == IVec(2, 1)
        assert reversal(0).apply(IVec(1, 2)) == IVec(-1, 2)
        assert reversal(1).apply(IVec(1, 2)) == IVec(1, -2)
        assert skew(3).apply(IVec(1, 0)) == IVec(1, 3)
        assert skew(3, of=0, by=1).apply(IVec(0, 1)) == IVec(3, 1)

    def test_reversal_axis_checked(self):
        with pytest.raises(ValueError):
            reversal(2)

    def test_non_2d_vector_rejected(self):
        with pytest.raises(ValueError):
            interchange().apply(IVec(1, 2, 3))


class TestWavefrontTransform:
    def test_first_row_is_schedule(self):
        t = wavefront_transform(IVec(5, 1))
        assert t.rows[0] == (5, 1)
        assert t.det in (1, -1)

    @pytest.mark.parametrize("s", [IVec(1, 0), IVec(0, 1), IVec(5, 1), IVec(3, 2), IVec(-2, 1)])
    def test_unimodular_for_coprime_schedules(self, s):
        t = wavefront_transform(s)
        assert t.det in (1, -1)
        assert t.rows[0] == tuple(s)

    def test_non_coprime_rejected(self):
        with pytest.raises(ValueError):
            wavefront_transform(IVec(4, 2))

    def test_levels_become_rows(self):
        """Transformed first coordinate equals s . x for every iteration."""
        t = wavefront_transform(IVec(5, 1))
        for x in (IVec(0, 0), IVec(2, 3), IVec(-1, 7)):
            assert t.apply(x)[0] == IVec(5, 1).dot(x)

    @pytest.mark.parametrize(
        "build", [figure14_mldg, floyd_steinberg_mldg], ids=lambda b: b.__name__
    )
    def test_algorithm5_result_becomes_row_parallel(self, build):
        """The headline composition: retime (Alg 5), skew by the wavefront
        transform, and the nest is inner-DOALL -- Algorithm 5's schedule is
        compilable as ordinary loops."""
        g = build()
        hp = hyperplane_parallel_fusion(g)
        skewed = transform_mldg(hp.retiming.apply(g), wavefront_transform(hp.schedule))
        assert is_doall_after_fusion(skewed)
        # and still sequentially valid: every vector lexicographically >= 0
        assert all(tuple(d) >= (0, 0) for d in skewed.all_vectors())


class TestTransformMldg:
    def test_structure_preserved(self):
        g = figure2_mldg()
        gt = transform_mldg(g, interchange())
        assert gt.nodes == g.nodes
        assert gt.num_edges == g.num_edges

    def test_vectors_mapped(self):
        g = figure2_mldg()
        gt = transform_mldg(g, interchange())
        assert gt.D("A", "B") == frozenset({IVec(1, 1), IVec(1, 2)})

    def test_interchange_alone_cannot_parallelise_figure2(self):
        """The Section-1 point: classic single-nest transformations do not
        substitute for retiming-based fusion on multi-loop problems."""
        g = figure2_mldg()
        for t in (interchange(), skew(1), skew(2), skew(3)):
            gt = transform_mldg(g, t)
            # either some dependence now flows backwards (invalid as a
            # sequential nest) or the inner loop still carries a dependence
            valid = all(tuple(d) >= (0, 0) for d in gt.all_vectors())
            assert not (valid and is_doall_after_fusion(gt)), t

    def test_retiming_then_skew_succeeds_where_skew_alone_fails(self):
        g = figure2_mldg()
        res = fuse(g)  # Algorithm 4: already DOALL without skewing
        assert is_doall_after_fusion(res.retimed)
