"""Unit tests for iteration-space renderings (Figures 7, 13, 16)."""

import pytest

from repro.fusion import cyclic_parallel_retiming, legal_fusion_retiming
from repro.gallery import figure2_mldg
from repro.vectors import IVec
from repro.viz import (
    dependence_arrows,
    format_hyperplane_grid,
    format_iteration_space,
    intra_row_arrows,
)


@pytest.fixture
def fig2():
    return figure2_mldg()


class TestArrows:
    def test_simple_vector(self):
        from repro.graph import mldg_from_table

        g = mldg_from_table({("A", "B"): [(1, 1)]}, nodes=["A", "B"])
        arrows = dependence_arrows(g, 2, 2)
        assert arrows == [((0, 0), (1, 1))]

    def test_zero_vectors_omitted(self):
        from repro.graph import mldg_from_table

        g = mldg_from_table({("A", "B"): [(0, 0)]}, nodes=["A", "B"])
        assert dependence_arrows(g, 3, 3) == []

    def test_duplicate_vectors_collapse(self):
        from repro.graph import mldg_from_table

        g = mldg_from_table(
            {("A", "B"): [(1, 0)], ("B", "C"): [(1, 0)]}, nodes=["A", "B", "C"]
        )
        arrows = dependence_arrows(g, 2, 1)
        assert arrows == [((0, 0), (1, 0))]

    def test_figure7_has_intra_row_arrows(self, fig2):
        """LLOFRA-only retiming leaves same-row dependencies (Figure 7)."""
        gr = legal_fusion_retiming(fig2).apply(fig2)
        assert intra_row_arrows(gr, 4, 4)

    def test_figure13_has_none(self, fig2):
        """Algorithm 4's retiming clears every same-row arrow (Figure 13)."""
        gr = cyclic_parallel_retiming(fig2).apply(fig2)
        assert intra_row_arrows(gr, 4, 4) == []


class TestFormatting:
    def test_iteration_space_distinguishes_figures(self, fig2):
        serial = format_iteration_space(legal_fusion_retiming(fig2).apply(fig2))
        parallel = format_iteration_space(cyclic_parallel_retiming(fig2).apply(fig2))
        assert "SERIAL" in serial and "Figure 7" in serial
        assert "DOALL" in parallel and "Figure 13" in parallel

    def test_grid_shape(self, fig2):
        gr = cyclic_parallel_retiming(fig2).apply(fig2)
        text = format_iteration_space(gr, rows=3, cols=5)
        assert "2,4" in text and "0,0" in text

    def test_empty_graph(self):
        from repro.graph import MLDG

        g = MLDG(dim=2)
        g.add_node("A")
        assert "no inter-iteration dependencies" in format_iteration_space(g)

    def test_hyperplane_grid_figure16(self):
        """s = (5,1): level increments of 1 along j and 5 along i."""
        text = format_hyperplane_grid(IVec(5, 1), rows=3, cols=4)
        assert "i=2:" in text
        # row i=0 shows 0 1 2 3; row i=1 shows 5 6 7 8
        assert " 0   1   2   3" in text
        assert " 5   6   7   8" in text

    def test_hyperplane_grid_rejects_3d(self):
        with pytest.raises(ValueError):
            format_hyperplane_grid(IVec(1, 1, 1))
