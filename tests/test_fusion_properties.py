"""Property-based tests: the paper's theorems on random legal MLDGs."""

from hypothesis import given, settings, strategies as st

from repro.fusion import (
    NoParallelRetimingError,
    acyclic_parallel_retiming,
    cyclic_parallel_retiming,
    fuse,
    hyperplane_parallel_fusion,
    legal_fusion_retiming,
)
from repro.graph import is_fusion_legal, random_acyclic_mldg, random_legal_mldg
from repro.retiming import is_doall_after_fusion, verify_retiming
from repro.vectors import IVec, is_strict_schedule_vector

seeds = st.integers(min_value=0, max_value=10**6)
sizes = st.integers(min_value=1, max_value=12)


@given(seeds, sizes)
@settings(max_examples=60, deadline=None)
def test_theorem_3_2_llofra_always_succeeds(seed, n):
    """Every legal MLDG admits a retiming making fusion legal."""
    g = random_legal_mldg(n, seed=seed)
    r = legal_fusion_retiming(g)
    gr = r.apply(g)
    assert is_fusion_legal(gr)


@given(seeds, sizes)
@settings(max_examples=60, deadline=None)
def test_retiming_preserves_cycle_weights(seed, n):
    g = random_legal_mldg(n, seed=seed)
    r = legal_fusion_retiming(g)
    assert verify_retiming(g, r, cycle_limit=200).cycles_preserved


@given(seeds, sizes)
@settings(max_examples=60, deadline=None)
def test_theorem_4_1_acyclic_always_doall(seed, n):
    """Every legal acyclic MLDG admits a DOALL fusion retiming."""
    g = random_acyclic_mldg(n, seed=seed)
    r = acyclic_parallel_retiming(g)
    gr = r.apply(g)
    assert is_fusion_legal(gr)
    assert is_doall_after_fusion(gr)


@given(seeds, sizes)
@settings(max_examples=60, deadline=None)
def test_theorem_4_2_soundness(seed, n):
    """When Algorithm 4 succeeds, the fused loop really is DOALL."""
    g = random_legal_mldg(n, seed=seed)
    try:
        r = cyclic_parallel_retiming(g)
    except NoParallelRetimingError:
        return
    gr = r.apply(g)
    assert is_fusion_legal(gr)
    assert is_doall_after_fusion(gr)


@given(seeds, sizes)
@settings(max_examples=60, deadline=None)
def test_theorem_4_4_hyperplane_always_works(seed, n):
    """Algorithm 5 succeeds on every legal MLDG with a strict schedule."""
    g = random_legal_mldg(n, seed=seed)
    hp = hyperplane_parallel_fusion(g)
    gr = hp.retiming.apply(g)
    assert is_fusion_legal(gr)
    assert is_strict_schedule_vector(hp.schedule, gr.all_vectors())
    assert hp.schedule.dot(hp.hyperplane) == 0


@given(seeds, sizes)
@settings(max_examples=60, deadline=None)
def test_driver_always_produces_parallel_result(seed, n):
    """fuse() on any legal MLDG yields DOALL or hyperplane parallelism,
    never a serial fused loop."""
    g = random_legal_mldg(n, seed=seed)
    res = fuse(g)
    assert res.parallelism.value in ("doall", "hyperplane")
    assert res.verification.ok_for_legal_fusion


@given(seeds, sizes)
@settings(max_examples=40, deadline=None)
def test_doall_means_row_schedule_is_strict(seed, n):
    """Property 4.1 round-trip: DOALL results admit the (1,0) schedule."""
    g = random_legal_mldg(n, seed=seed)
    res = fuse(g)
    if res.is_doall:
        assert is_strict_schedule_vector(IVec(1, 0), res.retimed.all_vectors())


@given(seeds, st.integers(min_value=2, max_value=10))
@settings(max_examples=40, deadline=None)
def test_algorithm4_retiming_shape(seed, n):
    """Property 4.2: after Algorithm 4 every vector is carried or zero."""
    g = random_legal_mldg(n, seed=seed)
    try:
        r = cyclic_parallel_retiming(g)
    except NoParallelRetimingError:
        return
    gr = r.apply(g)
    for d in gr.all_vectors():
        assert d[0] >= 1 or d == IVec(0, 0)
