"""Differential property tests: independent implementations must agree.

Three executable semantics exist for every program --

1. the scalar tree-walking interpreter (`run_original` / `run_fused`),
2. the compiled Python/numpy backend (`compile_original` / `compile_fused`),
3. (for parallel results) randomised-order execution --

and three graph-level engines that must corroborate them (Property 4.1,
the instance-level DOALL scan, and the wavefront enumeration).  Hypothesis
drives random programs through all of them.
"""

from hypothesis import given, settings, strategies as st

from repro.codegen import (
    ArrayStore,
    apply_fusion,
    compile_fused,
    compile_original,
    run_fused,
    run_original,
)
from repro.depend import extract_mldg
from repro.fusion import Strategy, fuse
from repro.graph import random_legal_mldg
from repro.loopir import parse_program, format_program, program_from_mldg
from repro.retiming import is_doall_after_fusion
from repro.verify import runtime_doall_violations

seeds = st.integers(min_value=0, max_value=10**6)
sizes = st.integers(min_value=2, max_value=7)


@given(seeds, sizes)
@settings(max_examples=25, deadline=None)
def test_interpreter_vs_compiled_original(seed, nodes):
    g = random_legal_mldg(nodes, seed=seed)
    nest = program_from_mldg(g)
    n, m = 6, 7
    base = ArrayStore.for_program(nest, n, m, seed=seed)
    interp = run_original(nest, n, m, store=base.copy())
    compiled_store = base.copy()
    compile_original(nest)(compiled_store, n, m)
    assert interp.equal(compiled_store)


@given(seeds, sizes)
@settings(max_examples=25, deadline=None)
def test_interpreter_vs_compiled_fused(seed, nodes):
    g = random_legal_mldg(nodes, seed=seed)
    nest = program_from_mldg(g)
    gx = extract_mldg(nest)
    res = fuse(gx)
    fp = apply_fusion(nest, res.retiming, mldg=gx)
    n, m = 6, 7
    base = ArrayStore.for_program(nest, n, m, seed=seed)
    interp = run_fused(fp, n, m, store=base.copy(), mode="serial")
    compiled_store = base.copy()
    compile_fused(fp)(compiled_store, n, m)
    assert interp.equal(compiled_store)
    # and both equal the original program
    assert run_original(nest, n, m, store=base.copy()).equal(compiled_store)


@given(seeds, sizes)
@settings(max_examples=25, deadline=None)
def test_graph_doall_agrees_with_instance_scan(seed, nodes):
    """Property 4.1 (graph) is sound against the instance-level scan for
    every driver result on random programs."""
    g = random_legal_mldg(nodes, seed=seed)
    nest = program_from_mldg(g)
    gx = extract_mldg(nest)
    res = fuse(gx)
    fp = apply_fusion(nest, res.retiming, mldg=gx)
    if is_doall_after_fusion(res.retimed):
        assert runtime_doall_violations(fp, 10, 10) == []


@given(seeds, sizes)
@settings(max_examples=25, deadline=None)
def test_parser_printer_roundtrip_on_synthesised_programs(seed, nodes):
    g = random_legal_mldg(nodes, seed=seed)
    nest = program_from_mldg(g)
    assert parse_program(format_program(nest)) == nest


@given(seeds, sizes)
@settings(max_examples=25, deadline=None)
def test_serialization_roundtrip_random(seed, nodes):
    from repro.graph import mldg_from_json, mldg_to_json

    g = random_legal_mldg(nodes, seed=seed)
    assert mldg_from_json(mldg_to_json(g)) == g


@given(seeds, sizes)
@settings(max_examples=15, deadline=None)
def test_legal_only_fusion_serial_execution_matches(seed, nodes):
    """LLOFRA-only fusions (possibly serial) still execute exactly."""
    g = random_legal_mldg(nodes, seed=seed)
    nest = program_from_mldg(g)
    gx = extract_mldg(nest)
    res = fuse(gx, strategy=Strategy.LEGAL_ONLY)
    fp = apply_fusion(nest, res.retiming, mldg=gx)
    n, m = 6, 6
    base = ArrayStore.for_program(nest, n, m, seed=seed)
    ref = run_original(nest, n, m, store=base.copy())
    assert ref.equal(run_fused(fp, n, m, store=base.copy(), mode="serial"))
