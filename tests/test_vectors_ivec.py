"""Unit tests for the IVec integer-vector type."""

import pytest

from repro.vectors import IVec


class TestConstruction:
    def test_varargs(self):
        assert tuple(IVec(1, -2)) == (1, -2)

    def test_iterable(self):
        assert IVec([3, 4, 5]) == IVec(3, 4, 5)

    def test_generator(self):
        assert IVec(x for x in (1, 2)) == IVec(1, 2)

    def test_single_component(self):
        v = IVec([7])
        assert v.dim == 1
        assert v[0] == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IVec([])

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            IVec(1.5, 2)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            IVec(True, 0)

    def test_zero_constructor(self):
        assert IVec.zero(3) == IVec(0, 0, 0)

    def test_unit_constructor(self):
        assert IVec.unit(3, 1) == IVec(0, 1, 0)

    def test_unit_out_of_range(self):
        with pytest.raises(ValueError):
            IVec.unit(2, 2)


class TestOrdering:
    """Tuple comparison must be lexicographic -- Section 2.1's order."""

    def test_first_coordinate_dominates(self):
        assert IVec(0, 100) < IVec(1, -100)

    def test_tie_broken_by_second(self):
        assert IVec(1, -2) < IVec(1, -1)

    def test_equality(self):
        assert IVec(2, 3) == IVec(2, 3)
        assert not IVec(2, 3) < IVec(2, 3)

    def test_paper_example(self):
        # delta_L(B,C) = min{(0,-2),(0,1)} = (0,-2)
        assert min([IVec(0, -2), IVec(0, 1)]) == IVec(0, -2)

    def test_sorting(self):
        vecs = [IVec(1, 0), IVec(0, 5), IVec(0, -1), IVec(2, -9)]
        assert sorted(vecs) == [IVec(0, -1), IVec(0, 5), IVec(1, 0), IVec(2, -9)]


class TestArithmetic:
    def test_add(self):
        assert IVec(2, 1) + IVec(-1, -1) == IVec(1, 0)

    def test_sub(self):
        assert IVec(2, 1) - IVec(0, -3) == IVec(2, 4)

    def test_neg(self):
        assert -IVec(1, -2) == IVec(-1, 2)

    def test_scalar_mul(self):
        assert 3 * IVec(1, 2) == IVec(3, 6)
        assert IVec(1, 2) * -1 == IVec(-1, -2)

    def test_add_is_not_tuple_concat(self):
        assert (IVec(1, 2) + IVec(3, 4)).dim == 2

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            IVec(1, 2) + IVec(1, 2, 3)

    def test_retiming_identity(self):
        """delta_Lr = delta + r(u) - r(v) on the paper's edge e5 (D -> A)."""
        delta = IVec(2, 1)
        r_d, r_a = IVec(-1, -1), IVec(0, 0)
        assert delta + r_d - r_a == IVec(1, 0)

    def test_dot(self):
        assert IVec(5, 1).dot(IVec(1, -4)) == 1

    def test_dot_dimension_mismatch(self):
        with pytest.raises(ValueError):
            IVec(1, 2).dot([1, 2, 3])


class TestMisc:
    def test_is_zero(self):
        assert IVec(0, 0).is_zero()
        assert not IVec(0, 1).is_zero()

    def test_xy_accessors(self):
        v = IVec(3, -7)
        assert v.x == 3 and v.y == -7

    def test_y_on_1d_raises(self):
        with pytest.raises(IndexError):
            IVec([4]).y

    def test_with_component(self):
        assert IVec(1, 2).with_component(1, 9) == IVec(1, 9)

    def test_with_component_out_of_range(self):
        with pytest.raises(IndexError):
            IVec(1, 2).with_component(2, 0)

    def test_prefix(self):
        assert IVec(1, 2, 3).prefix(2) == IVec(1, 2)

    def test_hashable(self):
        assert len({IVec(1, 2), IVec(1, 2), IVec(2, 1)}) == 2

    def test_repr_and_str(self):
        assert repr(IVec(1, -2)) == "IVec(1, -2)"
        assert str(IVec(1, -2)) == "(1, -2)"

    def test_immutable(self):
        v = IVec(1, 2)
        with pytest.raises(TypeError):
            v[0] = 5  # type: ignore[index]
