"""Unit tests for scalar Bellman-Ford and Problem ILP (Section 2.4)."""

import math

import pytest

from repro.constraints import (
    InfeasibleSystemError,
    NegativeCycleError,
    ScalarConstraintSystem,
    scalar_bellman_ford,
)


class TestScalarBellmanFord:
    def test_simple_shortest_paths(self):
        nodes = ["s", "a", "b"]
        edges = [("s", "a", 2), ("a", "b", -1), ("s", "b", 5)]
        res = scalar_bellman_ford(nodes, edges, "s")
        assert res.feasible
        assert res.dist == {"s": 0, "a": 2, "b": 1}

    def test_predecessors_form_tree(self):
        nodes = ["s", "a", "b"]
        edges = [("s", "a", 2), ("a", "b", -1)]
        res = scalar_bellman_ford(nodes, edges, "s")
        assert res.pred["b"] == "a"
        assert res.pred["a"] == "s"
        assert res.pred["s"] is None

    def test_unreachable_stays_inf(self):
        res = scalar_bellman_ford(["s", "x"], [], "s")
        assert res.dist["x"] == math.inf

    def test_negative_cycle_detected(self):
        nodes = ["s", "a", "b"]
        edges = [("s", "a", 0), ("a", "b", -2), ("b", "a", 1)]
        res = scalar_bellman_ford(nodes, edges, "s")
        assert not res.feasible
        assert set(res.negative_cycle) == {"a", "b"}

    def test_zero_cycle_is_feasible(self):
        nodes = ["s", "a", "b"]
        edges = [("s", "a", 0), ("a", "b", -2), ("b", "a", 2)]
        assert scalar_bellman_ford(nodes, edges, "s").feasible

    def test_unknown_source_raises(self):
        with pytest.raises(ValueError):
            scalar_bellman_ford(["a"], [], "zzz")

    def test_negative_cycle_through_longer_path(self):
        nodes = ["s", "a", "b", "c"]
        edges = [("s", "a", 0), ("a", "b", 1), ("b", "c", -3), ("c", "a", 1)]
        res = scalar_bellman_ford(nodes, edges, "s")
        assert not res.feasible
        assert set(res.negative_cycle) == {"a", "b", "c"}


class TestScalarSystem:
    def test_feasible_solution_satisfies_constraints(self):
        s = ScalarConstraintSystem(["x", "y", "z"])
        s.add_leq("x", "y", 3)
        s.add_leq("y", "z", -2)
        s.add_leq("x", "z", 0)
        sol = s.solve()
        assert sol["y"] - sol["x"] <= 3
        assert sol["z"] - sol["y"] <= -2
        assert sol["z"] - sol["x"] <= 0

    def test_equalities(self):
        s = ScalarConstraintSystem(["x", "y"])
        s.add_eq("x", "y", 4)
        sol = s.solve()
        assert sol["y"] - sol["x"] == 4

    def test_infeasible_equality_chain(self):
        s = ScalarConstraintSystem(["x", "y"])
        s.add_eq("x", "y", 1)
        s.add_eq("y", "x", 1)  # x->y->x sums to 2 != 0
        with pytest.raises(InfeasibleSystemError) as err:
            s.solve()
        assert set(err.value.cycle) <= {"x", "y"}

    def test_unconstrained_unknown_zero(self):
        s = ScalarConstraintSystem(["x", "lonely"])
        s.add_leq("x", "x", 0)
        sol = s.solve()
        assert sol["lonely"] == 0

    def test_is_feasible(self):
        good = ScalarConstraintSystem(["a", "b"])
        good.add_leq("a", "b", 1)
        assert good.is_feasible()
        bad = ScalarConstraintSystem(["a", "b"])
        bad.add_leq("a", "b", -1)
        bad.add_leq("b", "a", 0)
        assert not bad.is_feasible()

    def test_negative_cycle_error_is_exception(self):
        assert issubclass(NegativeCycleError, Exception)

    def test_theorem_2_2_solution_is_shortest_paths(self):
        """The Bellman-Ford distances are themselves a feasible solution."""
        s = ScalarConstraintSystem(["a", "b", "c"])
        s.add_leq("a", "b", 5)
        s.add_leq("b", "c", -7)
        sol = s.solve()
        # shortest-path solutions are the componentwise maximum solution <= 0
        assert sol["a"] == 0 and sol["b"] == 0 and sol["c"] == -7
