"""Case study: a ten-loop pipeline, larger than anything in the paper.

One integration test exercising every subsystem together at a size the
paper never shows: parse, validate, extract, fuse, verify invariants,
generate and execute code in randomised parallel order, compile, simulate,
and report -- asserting cross-subsystem consistency along the way.
"""

import pytest

from repro.baselines import direct_fusion, shift_and_peel, typed_fusion
from repro.codegen import (
    ArrayStore,
    apply_fusion,
    compile_fused,
    emit_fused_program,
    run_fused,
    run_original,
)
from repro.depend import dependence_table, extract_mldg
from repro.fusion import Parallelism, fuse
from repro.graph import is_sequence_executable, mldg_stats
from repro.loopir import parse_program, validate_program
from repro.machine import profile_fusion, unfused_profile
from repro.verify import runtime_doall_violations

TEN_STAGE = """
do i = 0, n
  doall j = 0, m        ! loop Load
    v0[i][j] = src[i][j] + 0.1 * src[i-1][j+1]
  end
  doall j = 0, m        ! loop Blur
    v1[i][j] = 0.25 * (v0[i][j] + v0[i][j-1] + v0[i][j+1] + v0[i-1][j])
  end
  doall j = 0, m        ! loop GradX
    v2[i][j] = v1[i][j+1] - v1[i][j-1]
  end
  doall j = 0, m        ! loop GradY
    v3[i][j] = v1[i][j] - v1[i-1][j]
  end
  doall j = 0, m        ! loop Mag
    v4[i][j] = v2[i][j] * v2[i][j] + v3[i][j+2] * v3[i][j+2]
  end
  doall j = 0, m        ! loop Thin
    v5[i][j] = v4[i][j+1] - 0.5 * v4[i][j-1]
  end
  doall j = 0, m        ! loop Hist
    v6[i][j] = v5[i][j] + v6[i-1][j]
  end
  doall j = 0, m        ! loop Norm
    v7[i][j] = v5[i][j+3] - 0.125 * v6[i][j]
  end
  doall j = 0, m        ! loop Sharp
    v8[i][j] = v0[i][j] + v7[i][j+1] - v7[i][j-1]
  end
  doall j = 0, m        ! loop Store
    dst[i][j] = v8[i][j] + 0.0625 * dst[i-1][j]
  end
end
"""


@pytest.fixture(scope="module")
def study():
    nest = parse_program(TEN_STAGE)
    validate_program(nest)
    g = extract_mldg(nest)
    res = fuse(g)
    fp = apply_fusion(nest, res.retiming, mldg=g)
    return nest, g, res, fp


class TestAnalysis:
    def test_shape(self, study):
        _nest, g, _res, _fp = study
        stats = mldg_stats(g)
        assert stats.nodes == 10
        assert stats.fusion_preventing >= 4  # GradX, Mag, Thin, Norm, Sharp reads
        assert stats.legal
        assert not stats.directly_fusable
        assert is_sequence_executable(g).legal

    def test_dependence_count(self, study):
        """One record per producer-backed read; the MLDG's vector sets
        dedupe, so records >= vectors >= edges."""
        nest, g, _res, _fp = study
        records = dependence_table(nest)
        vectors = sum(len(g.D(e.src, e.dst)) for e in g.edges())
        assert len(records) >= vectors >= g.num_edges

    def test_baselines_struggle(self, study):
        _nest, g, _res, _fp = study
        assert not direct_fusion(g).legal
        km = typed_fusion(g)
        assert km.syncs_per_outer_iteration > 1
        sp = shift_and_peel(g)
        assert sp.legal and sp.peel_count >= 3


class TestFusion:
    def test_one_fully_parallel_loop(self, study):
        _nest, _g, res, _fp = study
        assert res.parallelism in (Parallelism.DOALL, Parallelism.HYPERPLANE)
        assert res.verification.ok_for_legal_fusion

    def test_sync_reduction(self, study):
        _nest, g, res, _fp = study
        n, m = 64, 64
        before = unfused_profile(g, n, m)
        after = profile_fusion(res, n, m)
        assert after.total_work == before.total_work
        if res.parallelism is Parallelism.DOALL:
            assert after.sync_count * 5 < before.sync_count

    def test_doall_scan_consistent(self, study):
        _nest, _g, res, fp = study
        if res.parallelism is Parallelism.DOALL:
            assert runtime_doall_violations(fp, 10, 10) == []


class TestExecution:
    def test_interpreter_equivalence_all_modes(self, study):
        nest, _g, res, fp = study
        n, m = 12, 11
        base = ArrayStore.for_program(nest, n, m, seed=21)
        ref = run_original(nest, n, m, store=base.copy())
        assert ref.equal(run_fused(fp, n, m, store=base.copy(), mode="serial"))
        if res.parallelism is Parallelism.DOALL:
            for k in (1, 2):
                assert ref.equal(
                    run_fused(fp, n, m, store=base.copy(), mode="doall", order_seed=k)
                )
        elif res.parallelism is Parallelism.HYPERPLANE:
            assert ref.equal(
                run_fused(
                    fp, n, m, store=base.copy(), mode="hyperplane",
                    schedule=res.schedule,
                )
            )

    def test_compiled_equivalence(self, study):
        nest, _g, _res, fp = study
        n, m = 12, 11
        base = ArrayStore.for_program(nest, n, m, seed=21)
        ref = run_original(nest, n, m, store=base.copy())
        out = base.copy()
        compile_fused(fp)(out, n, m)
        assert ref.equal(out)

    def test_emission_contains_all_stages(self, study):
        _nest, _g, _res, fp = study
        text = emit_fused_program(fp)
        for arr in ("v0", "v4", "v8", "dst"):
            assert f"{arr}[" in text
