"""Unit tests for ExtVec (vectors with infinite components)."""

import pytest

from repro.vectors import ExtVec, IVec, NEG_INF, POS_INF


class TestConstruction:
    def test_basic(self):
        v = ExtVec(-1, POS_INF)
        assert v[0] == -1
        assert v[1] == POS_INF

    def test_from_ivec(self):
        assert ExtVec.from_ivec(IVec(1, 2)) == ExtVec(1, 2)

    def test_top(self):
        t = ExtVec.top(2)
        assert t == ExtVec(POS_INF, POS_INF)

    def test_finite_float_rejected(self):
        with pytest.raises(TypeError):
            ExtVec(1.5, 2)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            ExtVec(True, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ExtVec([])


class TestOrdering:
    def test_inf_greater_than_any_int(self):
        assert ExtVec(0, 10**9) < ExtVec(0, POS_INF)

    def test_neg_inf_smaller(self):
        assert ExtVec(0, NEG_INF) < ExtVec(0, -(10**9))

    def test_top_dominates(self):
        assert ExtVec(5, 5) < ExtVec.top(2)

    def test_lex_first_coordinate(self):
        # the Figure-9 weight (-1, inf) is below (0, anything finite)
        assert ExtVec(-1, POS_INF) < ExtVec(0, -1000)


class TestArithmetic:
    def test_add_ivec(self):
        assert ExtVec(-1, POS_INF) + IVec(3, 4) == ExtVec(2, POS_INF)

    def test_finite_sums_stay_int(self):
        v = ExtVec(1, 2) + IVec(3, 4)
        assert v.is_finite()
        assert v.to_ivec() == IVec(4, 6)

    def test_inf_absorbs(self):
        assert (ExtVec.top(2) + IVec(-100, -100)) == ExtVec.top(2)

    def test_undefined_sum_raises(self):
        with pytest.raises(ValueError):
            ExtVec(POS_INF, 0) + ExtVec(NEG_INF, 0)

    def test_neg(self):
        assert -ExtVec(1, POS_INF) == ExtVec(-1, NEG_INF)

    def test_sub(self):
        assert ExtVec(5, 5) - IVec(2, 3) == ExtVec(3, 2)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            ExtVec(1, 2) + ExtVec(1, 2, 3)


class TestConversion:
    def test_to_ivec_finite(self):
        assert ExtVec(1, -2).to_ivec() == IVec(1, -2)

    def test_to_ivec_infinite_raises(self):
        with pytest.raises(ValueError):
            ExtVec(1, POS_INF).to_ivec()

    def test_is_finite(self):
        assert ExtVec(0, 0).is_finite()
        assert not ExtVec(0, POS_INF).is_finite()

    def test_str(self):
        assert str(ExtVec(-1, POS_INF)) == "(-1, inf)"
        assert str(ExtVec(-1, NEG_INF)) == "(-1, -inf)"
