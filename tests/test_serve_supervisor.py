"""Generation-counted worker-pool supervision (repro.serve.supervisor)."""

from __future__ import annotations

import time

import pytest

from repro.serve.supervisor import SupervisedPool


def _double(x):
    return 2 * x


def _sleep_then(x, seconds):
    time.sleep(seconds)
    return x


@pytest.fixture()
def pool():
    with SupervisedPool(workers=1) as p:
        yield p


class TestSupervisedPool:
    def test_submit_returns_future_and_generation(self, pool):
        future, generation = pool.submit(_double, 21)
        assert future.result(timeout=30) == 42
        assert generation == 0 == pool.generation

    def test_replace_bumps_generation_and_pool_still_works(self, pool):
        _, generation = pool.submit(_double, 1)
        assert pool.replace(generation, "test") is True
        assert pool.generation == generation + 1
        future, new_generation = pool.submit(_double, 2)
        assert future.result(timeout=30) == 4
        assert new_generation == generation + 1

    def test_replace_is_idempotent_per_generation(self, pool):
        assert pool.replace(0) is True
        assert pool.replace(0) is False  # stale report: already handled
        assert pool.generation == 1

    def test_stale_generation_cannot_kill_a_healthy_pool(self, pool):
        pool.replace(0)
        future, _ = pool.submit(_double, 3)
        assert pool.replace(0) is False  # report about the dead generation
        assert future.result(timeout=30) == 6
        assert pool.generation == 1

    def test_pending_future_of_replaced_generation_resolves_with_error(self):
        with SupervisedPool(workers=1) as p:
            slow, generation = p.submit(_sleep_then, 1, 30.0)
            assert p.replace(generation, "test") is True
            # the SIGKILLed generation fails its futures instead of
            # stranding them -- promptly, not after the 30s sleep
            assert isinstance(slow.exception(timeout=30), Exception)

    def test_shutdown_rejects_new_work(self, pool):
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit(_double, 1)
        assert pool.replace(0) is False

    def test_shutdown_is_idempotent(self, pool):
        pool.shutdown()
        pool.shutdown()

    def test_rejects_nonpositive_worker_count(self):
        with pytest.raises(ValueError):
            SupervisedPool(workers=0)
