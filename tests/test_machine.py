"""Unit tests for the parallel machine simulator."""

import pytest

from repro.fusion import Strategy, fuse
from repro.gallery import figure2_mldg, figure8_mldg, figure14_mldg
from repro.machine import (
    fused_doall_profile,
    hyperplane_profile,
    profile_fusion,
    unfused_profile,
)
from repro.vectors import IVec


class TestUnfused:
    def test_figure8_sync_accounting(self):
        """Section 4.2: '7 synchronizations for each outmost loop iteration'."""
        g = figure8_mldg()
        n, m = 100, 50
        p = unfused_profile(g, n, m)
        assert p.num_phases == 7 * (n + 1)
        assert p.sync_count == 7 * (n + 1) - 1

    def test_work_conservation(self):
        g = figure2_mldg()
        p = unfused_profile(g, 10, 10)
        assert p.total_work == 4 * 11 * 11

    def test_costs(self):
        g = figure2_mldg()
        p = unfused_profile(g, 0, 0, costs={"C": 3})
        assert p.total_work == 1 + 1 + 3 + 1

    def test_bad_cost_node(self):
        with pytest.raises(KeyError):
            unfused_profile(figure2_mldg(), 1, 1, costs={"Z": 1})

    def test_bad_cost_value(self):
        with pytest.raises(ValueError):
            unfused_profile(figure2_mldg(), 1, 1, costs={"A": 0})


class TestFusedDoall:
    def test_figure8_paper_count(self):
        """Section 4.2: fused loop needs (n - 2) synchronizations."""
        g = figure8_mldg()
        res = fuse(g)
        n = 100
        core = fused_doall_profile(g, res.retiming, n, 50, include_boundary=False)
        assert core.sync_count == n - 2

    def test_work_conserved_with_boundary(self):
        g = figure8_mldg()
        res = fuse(g)
        full = fused_doall_profile(g, res.retiming, 20, 10, include_boundary=True)
        assert full.total_work == unfused_profile(g, 20, 10).total_work

    def test_far_fewer_syncs_than_unfused(self):
        g = figure8_mldg()
        res = fuse(g)
        n, m = 200, 100
        assert (
            fused_doall_profile(g, res.retiming, n, m).sync_count
            < unfused_profile(g, n, m).sync_count / 5
        )


class TestHyperplane:
    def test_figure14_phase_count(self):
        """s = (5,1): roughly 5n + m wavefronts."""
        g = figure14_mldg()
        res = fuse(g)
        n, m = 30, 40
        p = hyperplane_profile(g, res.retiming, res.schedule, n, m)
        # all retimings here have zero first component, so fused i spans
        # [0, n]; levels run between min and max of 5i + j over the space
        assert p.num_phases == pytest.approx(5 * n + m + 1, abs=15)
        assert p.total_work == unfused_profile(g, n, m).total_work

    def test_row_schedule_degenerates_to_rows(self):
        g = figure2_mldg()
        res = fuse(g)
        p_rows = fused_doall_profile(g, res.retiming, 10, 10)
        p_wave = hyperplane_profile(g, res.retiming, IVec(1, 0), 10, 10)
        assert p_wave.num_phases == p_rows.num_phases
        assert p_wave.total_work == p_rows.total_work


class TestMetrics:
    def test_parallel_time_monotone_in_processors(self):
        g = figure8_mldg()
        p = unfused_profile(g, 20, 20)
        times = [p.parallel_time(k) for k in (1, 2, 4, 8, 16)]
        assert times == sorted(times, reverse=True)

    def test_sync_cost_penalises_many_phases(self):
        g = figure8_mldg()
        res = fuse(g)
        n, m = 50, 50
        before = unfused_profile(g, n, m)
        after = profile_fusion(res, n, m)
        # fused phases are larger, so rounding waste can only shrink ...
        assert before.parallel_time(8) >= after.parallel_time(8)
        # ... and barrier cost then separates them decisively
        assert before.parallel_time(8, sync_cost=20) > after.parallel_time(
            8, sync_cost=20
        ) + 20 * (before.sync_count - after.sync_count) / 2

    def test_speedup_bounds(self):
        g = figure2_mldg()
        p = unfused_profile(g, 20, 20)
        s = p.speedup(4)
        assert 1.0 <= s <= 4.0

    def test_efficiency(self):
        g = figure2_mldg()
        p = unfused_profile(g, 20, 20)
        assert 0.0 < p.efficiency(4) <= 1.0

    def test_single_processor_time_is_work(self):
        g = figure2_mldg()
        p = unfused_profile(g, 5, 5)
        assert p.parallel_time(1) == p.total_work

    def test_invalid_processors(self):
        p = unfused_profile(figure2_mldg(), 2, 2)
        with pytest.raises(ValueError):
            p.parallel_time(0)


class TestProfileFusion:
    def test_dispatch_doall(self):
        res = fuse(figure2_mldg())
        assert profile_fusion(res, 10, 10).label == "fused-doall"

    def test_dispatch_hyperplane(self):
        res = fuse(figure14_mldg())
        assert profile_fusion(res, 10, 10).label == "fused-hyperplane"

    def test_dispatch_serial(self):
        res = fuse(figure2_mldg(), strategy=Strategy.LEGAL_ONLY)
        prof = profile_fusion(res, 5, 5)
        assert prof.label == "fused-serial"
        # serial rows: no useful parallelism
        assert prof.parallel_time(8) == prof.total_work
