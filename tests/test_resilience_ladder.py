"""The degradation ladder: fault-free parity with ``fuse()``, verified
degradation under exhausted budgets, ``min_rung`` gating, the greedy
partition rung, and the program-level pipeline with its recovery report.
"""

import json

import pytest

from repro.fusion import Strategy, fuse
from repro.gallery import (
    figure2_mldg,
    figure8_mldg,
    figure14_mldg,
    floyd_steinberg_mldg,
    iir2d_mldg,
)
from repro.gallery.common import iir2d_code
from repro.gallery.paper import figure2_code
from repro.resilience import (
    Budget,
    ResilienceError,
    Rung,
    fuse_program_resilient,
    fuse_resilient,
)
from repro.resilience.partition import greedy_partition, validate_partition
from repro.resilience.report import rung_from_label

GALLERY = {
    "fig2": figure2_mldg,
    "fig8": figure8_mldg,
    "fig14": figure14_mldg,
    "iir2d": iir2d_mldg,
    "sor": floyd_steinberg_mldg,
}

EXPECTED_RUNG = {
    "fig2": Rung.DOALL,
    "fig8": Rung.DOALL,
    "fig14": Rung.HYPERPLANE,
    "iir2d": Rung.DOALL,
    "sor": Rung.HYPERPLANE,
}


class TestFaultFreeParity:
    """Acceptance gate: the ladder's top surviving rung reproduces exactly
    what the strict driver computes for every paper figure."""

    @pytest.mark.parametrize("name", sorted(GALLERY))
    def test_matches_strict_fuse(self, name):
        g = GALLERY[name]()
        base = fuse(g)
        res = fuse_resilient(g)
        assert res.rung is EXPECTED_RUNG[name]
        assert res.parallelism is base.parallelism
        assert res.retiming.as_dict() == base.retiming.as_dict()
        assert res.schedule == base.schedule
        assert not res.degraded or name in ("fig14", "sor")

    @pytest.mark.parametrize("name", sorted(GALLERY))
    def test_report_attached_and_serializable(self, name):
        res = fuse_resilient(GALLERY[name]())
        report = res.report
        assert report is not None
        assert report.final_rung is res.rung
        d = report.to_dict()
        json.dumps(d)  # must round-trip through JSON
        assert d["finalRung"] == res.rung.label
        assert d["attempts"][-1]["status"] == "ok"
        assert all(a["wallMs"] >= 0 for a in d["attempts"])
        assert report.total_ms >= 0
        # text rendering mentions the final rung
        assert res.rung.label in report.describe()


class TestDegradation:
    def test_exhausted_solver_budget_degrades_to_partition(self):
        res = fuse_resilient(figure2_mldg(), budget=Budget(max_relaxation_rounds=0))
        assert res.rung is Rung.PARTITION
        assert res.partition is not None
        assert [c.labels for c in res.partition.clusters] == [
            ("A", "B"),
            ("C",),
            ("D",),
        ]
        assert res.partition.clusters[0].doall
        # every retiming rung was attempted and failed before partition won
        statuses = {a.rung: a.status for a in res.report.attempts}
        assert statuses[Rung.DOALL] == "failed"
        assert statuses[Rung.HYPERPLANE] == "failed"
        assert statuses[Rung.LEGAL_FUSION] == "failed"
        assert statuses[Rung.PARTITION] == "ok"
        assert res.report.diagnostics  # failures carried diagnostics

    def test_iir2d_partitions_into_single_serial_cluster(self):
        res = fuse_resilient(iir2d_mldg(), budget=Budget(max_relaxation_rounds=0))
        assert res.rung is Rung.PARTITION
        assert len(res.partition.clusters) == 1
        assert not res.partition.clusters[0].doall

    def test_sor_has_no_fusible_pair_and_returns_original(self):
        # floyd-steinberg's neighbours can't legally fuse pairwise, so the
        # partition rung degenerates to singletons and is rejected; the
        # ladder bottoms out at the (always safe) original program
        res = fuse_resilient(
            floyd_steinberg_mldg(), budget=Budget(max_relaxation_rounds=0)
        )
        assert res.rung is Rung.ORIGINAL
        assert res.parallelism.value == "serial"

    def test_zero_deadline_skips_every_strategy(self):
        res = fuse_resilient(figure2_mldg(), budget=Budget(deadline_ms=0.0))
        assert res.rung is Rung.ORIGINAL
        skipped = [a for a in res.report.attempts if a.status == "skipped"]
        assert len(skipped) == 4  # doall, hyperplane, legal-only, partition
        assert all("RS003" in {d.code for d in a.diagnostics} for a in skipped)

    def test_oversize_graph_degrades_instead_of_crashing(self):
        res = fuse_resilient(figure2_mldg(), budget=Budget(max_nodes=2))
        assert res.rung is Rung.ORIGINAL

    def test_min_rung_failure_raises_typed_error(self):
        with pytest.raises(ResilienceError) as exc:
            fuse_resilient(
                figure2_mldg(),
                budget=Budget(deadline_ms=0.0),
                min_rung=Rung.DOALL,
            )
        err = exc.value
        assert err.report is not None
        assert err.diagnostics
        assert "RS004" in {d.code for d in err.diagnostics}
        assert "RS004" in str(err)  # FusionError.__str__ appends codes

    def test_min_rung_accepts_string_labels(self):
        res = fuse_resilient(figure2_mldg(), min_rung="doall")
        assert res.rung is Rung.DOALL
        with pytest.raises(ResilienceError):
            fuse_resilient(
                figure2_mldg(),
                budget=Budget(max_relaxation_rounds=0),
                min_rung="hyperplane",
            )

    def test_min_rung_partition_still_allows_partition(self):
        res = fuse_resilient(
            figure2_mldg(),
            budget=Budget(max_relaxation_rounds=0),
            min_rung="partition",
        )
        assert res.rung is Rung.PARTITION


class TestRungEnum:
    def test_order_and_labels(self):
        assert Rung.DOALL > Rung.HYPERPLANE > Rung.LEGAL_FUSION
        assert Rung.LEGAL_FUSION > Rung.PARTITION > Rung.ORIGINAL
        for rung in Rung:
            assert rung_from_label(rung.label) is rung
        with pytest.raises(ValueError):
            rung_from_label("nonsense")


class TestGreedyPartition:
    def test_fig8_partition_shape(self):
        g = figure8_mldg()
        p = greedy_partition(g)
        assert validate_partition(g, p) is None
        assert [c.labels for c in p.clusters] == [
            ("A", "B"),
            ("C", "D", "E", "F", "G"),
        ]
        assert p.num_fused == 2

    def test_describe_mentions_doall_clusters(self):
        p = greedy_partition(figure2_mldg())
        text = p.describe()
        assert "A+B" in text and "(doall)" in text

    def test_unexecutable_sequence_is_rejected(self):
        # floyd-steinberg's original order is not even sequence-executable,
        # so no direct (retiming-free) fusion of it is safe
        g = floyd_steinberg_mldg()
        p = greedy_partition(g)
        reason = validate_partition(g, p)
        assert reason is not None and "not executable" in reason

    def test_all_singletons_is_rejected(self):
        import pathlib

        from repro.depend import extract_mldg
        from repro.loopir import parse_program

        src = (
            pathlib.Path(__file__).parent.parent
            / "examples"
            / "fusion_preventing.loop"
        ).read_text()
        g = extract_mldg(parse_program(src), check=False)
        p = greedy_partition(g)
        assert all(len(c.labels) == 1 for c in p.clusters)
        reason = validate_partition(g, p)
        assert reason is not None and "singleton" in reason


class TestProgramPipeline:
    def test_fig2_program_fault_free(self):
        res = fuse_program_resilient(figure2_code())
        assert res.rung is Rung.DOALL
        assert res.fused is not None and res.partitioned is None
        assert "doall" in res.emitted_code()
        doc = res.to_dict()
        json.dumps(doc)
        assert doc["rung"] == "doall"
        assert doc["report"]["finalRung"] == "doall"

    def test_fig2_program_partition_codegen(self):
        res = fuse_program_resilient(
            figure2_code(), budget=Budget(max_relaxation_rounds=0)
        )
        assert res.rung is Rung.PARTITION
        assert res.fused is None and res.partitioned is not None
        assert [l.label for l in res.partitioned.loops] == ["AB", "C", "D"]
        # fused cluster keeps all four statements of A and B
        ab = res.partitioned.loop("AB")
        assert len(ab.statements) == len(
            res.nest.loop("A").statements + res.nest.loop("B").statements
        )
        assert "AB:" in res.emitted_code()

    def test_iir2d_program_round_trips(self):
        res = fuse_program_resilient(iir2d_code())
        assert res.rung is Rung.DOALL
        assert res.report.to_dict()["parallelism"] == "doall"

    def test_zero_deadline_returns_original_text(self):
        res = fuse_program_resilient(figure2_code(), budget=Budget(deadline_ms=0.0))
        assert res.rung is Rung.ORIGINAL
        # the emitted fallback is the original program, reformatted
        assert "A:" in res.emitted_code()

    def test_min_rung_propagates(self):
        with pytest.raises(ResilienceError):
            fuse_program_resilient(
                figure2_code(),
                budget=Budget(deadline_ms=0.0),
                min_rung="legal-only",
            )

    def test_malformed_source_raises_parse_error(self):
        from repro.loopir import ParseError

        with pytest.raises(ParseError):
            fuse_program_resilient("this is not a loop program")

    def test_model_violation_raises_validation_error(self):
        from repro.loopir import ValidationError

        bad = """\
do i = 0, n
  A: doall j = 0, m
    a[i][j] = a[i][j-1]
  end
end
"""
        with pytest.raises(ValidationError):
            fuse_program_resilient(bad)
