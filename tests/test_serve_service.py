"""The fault-tolerant compile service (repro.serve.service).

The chaos-marked tests SIGKILL and hang real pool workers through the
seeded request-level fault specs; deselect with ``-m "not chaos"``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.gallery.common import iir2d_code
from repro.gallery.extended import extended_kernels
from repro.gallery.paper import figure2_code
from repro.serve import worker as serve_worker
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.service import CompileService, ServeConfig
from repro.serve.wire import (
    SV003,
    SV004,
    SV005,
    SV006,
    SV007,
    CompileRequest,
    CompileResponse,
    request_from_program,
)

BAD_SOURCE = "this is ( not a loop program"


def _crash_spec(seed: int = 0, probability: float = 1.0) -> dict:
    return {"injector": "WorkerCrash", "seed": seed, "probability": probability}


def _hang_spec(seed: int = 0, hang_s: float = 30.0) -> dict:
    return {"injector": "WorkerHang", "seed": seed, "hang_s": hang_s}


@pytest.fixture(scope="module")
def service():
    with CompileService(ServeConfig(workers=2)) as svc:
        yield svc


@pytest.fixture()
def chaos_service():
    with CompileService(
        ServeConfig(workers=2, allow_faults=True, backoff_base_ms=1.0)
    ) as svc:
        yield svc


class TestHappyPath:
    def test_strict_compile(self, service):
        resp = service.handle(request_from_program("fig2", figure2_code()))
        assert resp.status == "ok" and resp.well_formed
        assert resp.strategy is not None and resp.parallelism == "doall"
        assert resp.attempts == 1 and resp.retries == 0
        assert resp.structural_hash and resp.trace_id
        assert resp.worker_pid is not None

    def test_resilient_compile(self, service):
        resp = service.handle(
            request_from_program("fig2", figure2_code(), resilient=True)
        )
        assert resp.status == "ok" and resp.well_formed
        assert resp.rung == "doall"

    def test_typed_compile_error_is_not_retried(self, service):
        resp = service.handle(request_from_program("bad", BAD_SOURCE))
        assert resp.status == "error" and resp.well_formed
        assert resp.error["type"] == "ParseError"
        assert resp.attempts == 1 and resp.retries == 0

    def test_handle_dict_malformed_request(self, service):
        resp = CompileResponse.from_dict(service.handle_dict({"nope": 1}))
        assert resp.status == "error" and resp.code == SV006
        assert resp.well_formed
        resp2 = CompileResponse.from_dict(service.handle_dict("not a dict"))
        assert resp2.code == SV006

    def test_fault_specs_ignored_without_chaos_mode(self, service):
        # a hostile request cannot SIGKILL production workers
        resp = service.handle(
            request_from_program("fig2", figure2_code(), fault=_crash_spec())
        )
        assert resp.status == "ok"
        assert resp.worker_crashes == 0

    def test_snapshot_shape(self, service):
        snap = service.snapshot()
        assert snap["workers"] == 2
        assert "poolGeneration" in snap
        assert "inflight" in snap["admission"]
        assert "trips" in snap["breaker"]


class TestRefusals:
    def test_quota_exhaustion_sheds_with_retry_after(self):
        with CompileService(ServeConfig(workers=1, max_inflight=1)) as svc:
            ticket = svc.admission.try_admit()  # occupy the only slot
            try:
                resp = svc.handle(request_from_program("fig2", figure2_code()))
            finally:
                ticket.release()
            assert resp.status == "shed" and resp.code == SV003
            assert resp.retry_after_ms >= 1.0
            assert resp.well_formed
            # after release the same request is admitted and served
            assert svc.handle(
                request_from_program("fig2", figure2_code())
            ).status == "ok"

    def test_open_breaker_rejects_with_retry_after(self, service):
        req = request_from_program("fig2", figure2_code())
        key = service._class_key(req.digest)
        for _ in range(service.config.breaker_threshold):
            service.breaker.record_failure(key)
        try:
            resp = service.handle(req)
            assert resp.status == "rejected" and resp.code == SV004
            assert resp.retry_after_ms >= 1.0
            assert resp.well_formed
        finally:
            service.breaker.record_success(key)

    def test_internal_error_never_escapes_handle(self, service, monkeypatch):
        monkeypatch.setattr(
            service.breaker, "allow",
            lambda key: (_ for _ in ()).throw(RuntimeError("supervisor bug")),
        )
        resp = service.handle(request_from_program("fig2", figure2_code()))
        assert resp.status == "error" and resp.well_formed
        assert resp.error["type"] == "RuntimeError"
        assert resp.code == SV007  # the server's fault, mapped to HTTP 500

    def test_uncharged_probe_path_does_not_wedge_the_class(self, monkeypatch):
        """REVIEW.md high: a half-open probe whose request ends on a path
        that neither succeeds nor is charged as a failure (stalled or
        abandoned future, internal error, fallback) must re-open the
        class, not leave it rejecting everyone forever."""
        with CompileService(
            ServeConfig(workers=1, breaker_cooldown_ms=300.0)
        ) as svc:
            req = request_from_program("fig2", figure2_code())
            key = svc._class_key(req.digest)
            for _ in range(svc.config.breaker_threshold):
                svc.breaker.record_failure(key)
            time.sleep(0.35)  # cooldown elapses; next request is the probe
            monkeypatch.setattr(
                svc, "_dispatch",
                lambda *a: (_ for _ in ()).throw(RuntimeError("uncharged")),
            )
            probe = svc.handle(req)
            assert probe.status == "error" and probe.code == SV007
            monkeypatch.undo()
            # the probe resolved: the class re-opened with a fresh
            # cooldown instead of sticking HALF_OPEN behind a dead probe
            assert svc.breaker.state(key) is BreakerState.OPEN
            rejected = svc.handle(req)
            assert rejected.status == "rejected" and rejected.code == SV004
            time.sleep(0.35)  # after the re-armed cooldown, service resumes
            resp = svc.handle(req)
            assert resp.status == "ok" and resp.well_formed


class TestConfigLadder:
    def test_config_ladder_rides_the_wire_to_workers(self):
        """ServeConfig.ladder must shape *worker* compiles, not only the
        in-process fallback, or the two paths diverge for one config."""
        with CompileService(
            ServeConfig(workers=1, ladder="conservative")
        ) as svc:
            resp = svc.handle(
                request_from_program("fig2", figure2_code(), resilient=True)
            )
            assert resp.status == "ok" and resp.worker_pid is not None
            # the conservative descent tops out at the partition rung
            assert resp.rung == "partition"
            # a request carrying its own ladder still wins
            own = svc.handle(
                request_from_program(
                    "fig2", figure2_code(), resilient=True,
                    ladder=("doall", "none"),
                )
            )
            assert own.status == "ok" and own.rung == "doall"

    def test_unknown_ladder_variant_fails_at_construction(self):
        with pytest.raises(KeyError):
            CompileService(ServeConfig(workers=1, ladder="no-such-variant"))


class TestAliasMapBound:
    def test_alias_map_is_lru_capped(self, monkeypatch):
        import repro.serve.service as service_mod

        monkeypatch.setattr(service_mod, "MAX_HASH_ALIASES", 3)
        # a bare instance: _learn_hash touches only these three attributes
        svc = CompileService.__new__(CompileService)
        svc._alias_lock = threading.Lock()
        svc._hash_by_digest = OrderedDict()
        svc.breaker = CircuitBreaker()
        for i in range(10):
            svc._learn_hash(f"digest{i}", f"hash{i}")
        assert len(svc._hash_by_digest) == 3
        assert svc._class_key("digest9") == "hash9"  # newest survive
        assert svc._class_key("digest0") == "digest0"  # oldest evicted


@pytest.mark.chaos
class TestSupervision:
    def test_always_crashing_request_degrades_via_fallback(self, chaos_service):
        resp = chaos_service.handle(
            request_from_program("fig2", figure2_code(), fault=_crash_spec())
        )
        assert resp.status == "degraded" and resp.code == SV005
        assert resp.well_formed
        assert resp.rung is not None and resp.recovery is not None
        assert resp.worker_crashes == chaos_service.config.max_attempts
        # the pool survived: a clean request compiles right after
        after = chaos_service.handle(request_from_program("ok", iir2d_code()))
        assert after.status == "ok"

    def test_seeded_crash_spares_the_retry(self, chaos_service):
        # seed 1, p=0.5: Random(1+0) kills attempt 0, Random(1+1) spares
        # attempt 1 -- the retry itself succeeds, deterministically
        resp = chaos_service.handle(
            request_from_program(
                "fig2", figure2_code(),
                fault=_crash_spec(seed=1, probability=0.5),
            )
        )
        assert resp.status == "ok" and resp.well_formed
        assert resp.attempts == 2 and resp.worker_crashes == 1
        assert any("attempt 2" in note for note in resp.notes)

    def test_hung_worker_times_out_and_pool_is_replaced(self, chaos_service):
        generation_before = chaos_service.pool.generation
        resp = chaos_service.handle(
            request_from_program(
                "fig2", figure2_code(),
                deadline_ms=1200.0, fault=_hang_spec(),
            )
        )
        assert resp.well_formed
        assert resp.status == "degraded" and resp.timeouts >= 1
        assert chaos_service.pool.generation > generation_before
        after = chaos_service.handle(request_from_program("ok", iir2d_code()))
        assert after.status == "ok"


def _reference_responses(requests):
    """Serial in-process compiles of the distinct clean workloads."""
    reference = {}
    for req in requests:
        key = (req.source, req.resilient)
        if key in reference:
            continue
        clean = CompileRequest(
            source=req.source, name=req.name, strategy=req.strategy,
            resilient=req.resilient, emit=True,
        )
        reference[key] = CompileResponse.from_dict(
            serve_worker.compile_request(clean.to_dict())
        )
    return reference


@pytest.mark.chaos
class TestAcceptance:
    def test_chaos_run_stays_well_formed_and_bit_identical(self):
        """The PR's acceptance scenario: 50 concurrent requests with a
        seeded worker SIGKILL *and* an injected hang mid-run -- every
        response well-formed, the supervisor never crashes, and every
        successful result is bit-identical to a serial compile."""
        workloads = [("figure2", figure2_code()), ("iir2d", iir2d_code())]
        workloads += [(k.key, k.code) for k in extended_kernels()]
        requests = []
        for k in range(50):
            name, source = workloads[k % len(workloads)]
            fault = None
            deadline = 10_000.0
            if k in (7, 21, 35):  # seeded SIGKILLs mid-batch
                fault = _crash_spec(seed=5 + k, probability=0.5)
            elif k in (14, 28):  # injected hangs (deadline cuts them)
                fault = _hang_spec(seed=5 + k)
                deadline = 1_500.0
            requests.append(
                request_from_program(
                    f"{name}#{k}", source,
                    resilient=(k % 3 == 2), deadline_ms=deadline, fault=fault,
                )
            )
        with CompileService(
            ServeConfig(workers=2, allow_faults=True, backoff_base_ms=1.0)
        ) as svc:
            with ThreadPoolExecutor(max_workers=8) as clients:
                responses = list(clients.map(svc.handle, requests))
            snap = svc.snapshot()
            # the supervisor survived; the pool still serves
            final = svc.handle(request_from_program("final", figure2_code()))

        assert len(responses) == 50
        malformed = [r.name for r in responses if not r.well_formed]
        assert not malformed, f"malformed responses: {malformed}"
        infra_errors = [
            (r.name, (r.error or {}).get("type"), (r.error or {}).get("message"))
            for r in responses
            if r.status == "error"
        ]
        assert not infra_errors, f"unexpected errors: {infra_errors}"
        assert final.status == "ok"
        assert snap["poolGeneration"] >= 1  # the chaos really bit

        reference = _reference_responses(requests)
        for req, resp in zip(requests, responses):
            if resp.status != "ok":
                continue
            ref = reference[(req.source, req.resilient)]
            assert resp.strategy == ref.strategy, req.name
            assert resp.parallelism == ref.parallelism, req.name
            assert resp.rung == ref.rung, req.name
            assert resp.retiming == ref.retiming, req.name
            assert resp.structural_hash == ref.structural_hash, req.name
            assert resp.emitted == ref.emitted, req.name
