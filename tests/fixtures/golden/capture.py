"""Regenerate the golden shim fixtures (run from the repo root).

Captures the text/JSON outputs of the public entry points -- `fuse_program`
summaries + emitted code, `repro-fuse fuse` text, `repro-fuse run --format
json` and `repro-fuse run --resilient --format json` (timing fields
normalized) -- across the gallery programs, so the shim tests can assert
byte-identical behavior across refactors of the pipeline internals.
"""

from __future__ import annotations

import io
import json
import os
import sys
from contextlib import redirect_stdout

HERE = os.path.dirname(os.path.abspath(__file__))


def normalize_timings(obj):
    """Strip wall-clock fields (the only nondeterministic values) in place."""
    if isinstance(obj, dict):
        return {
            k: normalize_timings(v)
            for k, v in obj.items()
            if k not in ("wallMs", "totalMs", "elapsedMs", "traceId")
        }
    if isinstance(obj, list):
        return [normalize_timings(v) for v in obj]
    return obj


def programs():
    from repro.gallery.common import iir2d_code
    from repro.gallery.paper import figure2_code

    root = os.path.dirname(os.path.dirname(os.path.dirname(HERE)))
    out = {
        "fig2": figure2_code(),
        "iir2d": iir2d_code(),
    }
    for name in ("fig2", "iir2d", "fusion_preventing"):
        path = os.path.join(root, "examples", f"{name}.loop")
        with open(path, "r", encoding="utf-8") as fh:
            out[f"example_{name}"] = fh.read()
    return out


def _cli(argv):
    from repro.cli import main

    buf = io.StringIO()
    with redirect_stdout(buf):
        try:
            code = main(argv)
        except SystemExit as exc:  # argparse usage errors
            code = int(exc.code or 0)
    return code, buf.getvalue()


def capture_one(name, source):
    from repro.fusion.errors import FusionError
    from repro.pipeline import fuse_program

    records = {}
    try:
        out = fuse_program(source)
        records["summary.txt"] = out.fusion.summary() + "\n"
        records["emitted.txt"] = out.emitted_code() + "\n"
        records["diagnostics.json"] = (
            json.dumps([d.to_dict() for d in out.diagnostics], indent=2) + "\n"
        )
    except FusionError as exc:
        records["error.txt"] = f"{type(exc).__name__}: {exc}\n"

    path = os.path.join(HERE, f"{name}.loop")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(source)

    code, text = _cli(["fuse", path])
    records["cli_fuse.txt"] = f"exit={code}\n{text}"
    code, text = _cli(["run", path, "--format", "json"])
    records["cli_run.json"] = f"exit={code}\n{text}"
    code, text = _cli(["run", path, "--resilient", "--format", "json"])
    doc = normalize_timings(json.loads(text))
    records["cli_run_resilient.json"] = (
        f"exit={code}\n" + json.dumps(doc, indent=2) + "\n"
    )
    return records


def main():
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(HERE))), "src"))
    for name, source in programs().items():
        outdir = os.path.join(HERE, name)
        os.makedirs(outdir, exist_ok=True)
        for fname, content in capture_one(name, source).items():
            with open(os.path.join(outdir, fname), "w", encoding="utf-8") as fh:
                fh.write(content)
        print(f"captured {name}")


if __name__ == "__main__":
    main()
