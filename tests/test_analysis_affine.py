"""The affine subscript abstraction (repro.analysis.affine)."""

import pytest

from repro.analysis.affine import (
    UNKNOWN,
    AffineAccess,
    AffineSubscript,
    Unknown,
    affine_access,
)
from repro.loopir.parser import parse_program
from repro.vectors import IVec


class TestAffineSubscript:
    def test_value(self):
        assert AffineSubscript(1, -2).value(5) == 3
        assert AffineSubscript(3, 1).value(4) == 13
        assert AffineSubscript(0, 7).value(999) == 7  # constant subscript

    def test_describe(self):
        assert AffineSubscript(1, 0).describe("i") == "i"
        assert AffineSubscript(1, 2).describe("i") == "i+2"
        assert AffineSubscript(1, -9).describe("i") == "i-9"
        assert AffineSubscript(2, 1).describe("j") == "2*j+1"
        assert AffineSubscript(0, 4).describe("j") == "4"

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError, match="negative subscript coefficient"):
            AffineSubscript(-1, 0)


class TestUnknown:
    def test_singleton(self):
        assert Unknown() is UNKNOWN
        assert repr(UNKNOWN) == "UNKNOWN"


class TestAffineAccess:
    def test_cell(self):
        access = AffineAccess(
            "a", (AffineSubscript(1, -1), AffineSubscript(2, 3))
        )
        assert access.dim == 2
        assert access.cell(IVec([4, 5])) == IVec([3, 13])

    def test_describe(self):
        access = AffineAccess("a", (AffineSubscript(1, 0), AffineSubscript(1, -2)))
        assert access.describe(("i", "j")) == "a[i][j-2]"


class TestLifting:
    def test_parsed_refs_lift_exactly(self):
        nest = parse_program(
            "do i = 0, n\n"
            "  doall j = 0, m\n"
            "    a[i][j] = x[i-1][j+2]\n"
            "  end\n"
            "end\n"
        )
        stmt = nest.loops[0].statements[0]
        target = affine_access(stmt.target)
        assert not isinstance(target, Unknown)
        assert target.array == "a"
        assert all(s.coeff == 1 for s in target.subscripts)
        assert tuple(s.offset for s in target.subscripts) == (0, 0)

        (read,) = stmt.reads()
        lifted = affine_access(read)
        assert tuple(s.offset for s in lifted.subscripts) == tuple(read.offset)
        assert lifted.span is read.span  # diagnostics can still point home
        assert lifted.cell(IVec([3, 4])) == IVec([2, 6])
