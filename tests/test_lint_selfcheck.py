"""Self-check: everything this repo ships as a demo must lint error-free.

Collected inputs: the gallery's DSL sources, every ``examples/*.loop`` file,
and every loop-DSL program embedded in the ``examples/*.py`` scripts.
Warnings and notes are expected (fig2 exists *because* it has
fusion-preventing edges); error-severity diagnostics are not.
"""

import pathlib
import re

import pytest

from repro.gallery.common import floyd_steinberg_code, iir2d_code
from repro.gallery.paper import figure2_code
from repro.lint import lint_source

ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = ROOT / "examples"

_DSL_BLOCK = re.compile(r'"""(.*?)"""', re.DOTALL)


def embedded_dsl_programs():
    """(label, source) for every DSL program inside the example scripts."""
    found = []
    for script in sorted(EXAMPLES.glob("*.py")):
        for k, block in enumerate(_DSL_BLOCK.findall(script.read_text())):
            if re.search(r"^\s*do i = 0", block, re.MULTILINE):
                found.append((f"{script.name}[{k}]", block))
    return found


GALLERY_SOURCES = [
    ("figure2_code", figure2_code()),
    ("iir2d_code", iir2d_code()),
]
if floyd_steinberg_code() is not None:  # pragma: no cover - gallery choice
    GALLERY_SOURCES.append(("floyd_steinberg_code", floyd_steinberg_code()))


@pytest.mark.parametrize("label,source", GALLERY_SOURCES, ids=lambda v: v[:24])
def test_gallery_sources_lint_error_free(label, source):
    result = lint_source(source, path=label)
    assert not result.has_errors, result.render_text()


@pytest.mark.parametrize(
    "path", sorted(EXAMPLES.glob("*.loop")), ids=lambda p: p.name
)
def test_example_loop_files_lint_error_free(path):
    result = lint_source(path.read_text(), path=path.name)
    assert not result.has_errors, result.render_text()


def test_example_loop_files_exist():
    names = {p.name for p in EXAMPLES.glob("*.loop")}
    assert {"fig2.loop", "iir2d.loop", "fusion_preventing.loop"} <= names


@pytest.mark.parametrize("label,source", embedded_dsl_programs(), ids=lambda v: v[:32])
def test_embedded_example_programs_lint_error_free(label, source):
    result = lint_source(source, path=label)
    assert not result.has_errors, result.render_text()


def test_embedded_programs_were_collected():
    assert embedded_dsl_programs(), "no DSL programs found in examples/*.py"


def test_fig2_expected_diagnostics():
    """The running example's known analysis story, end to end."""
    result = lint_source(figure2_code(), path="fig2")
    assert result.codes == ["LF201", "LF204", "LF301"]
    assert result.exit_code == 1  # warnings, no errors
