"""Dataflow fixpoints and access regions (repro.analysis.dataflow), plus
the iteration-domain model they run over (repro.analysis.domain)."""

import pytest

from repro.analysis.dataflow import (
    access_regions,
    liveness,
    reaching_definitions,
    statement_sites,
)
from repro.analysis.domain import Interval, domain_of_nest, subscript_interval
from repro.gallery.common import iir2d_code, phantom_dependence_code
from repro.loopir.parser import parse_program
from repro.vectors import IVec


@pytest.fixture(scope="module")
def iir():
    return parse_program(iir2d_code())


@pytest.fixture(scope="module")
def phantom():
    return parse_program(phantom_dependence_code())


class TestDomain:
    def test_symbolic_bounds_stay_unbounded(self, iir):
        domain = domain_of_nest(iir)
        assert not domain.bounded
        assert domain.size() is None
        assert domain.describe() == "i in [0, n] x j in [0, m]"

    def test_concrete_bounds_are_exact_and_inclusive(self, phantom):
        domain = domain_of_nest(phantom)
        assert domain.bounded
        assert domain.size() == 7 * 9  # inclusive bounds, like run_original
        assert domain.contains(IVec([6, 8]))
        assert not domain.contains(IVec([7, 0]))

    def test_interval_containment(self):
        assert Interval(0, 6).contains_interval(Interval(1, 5))
        assert not Interval(0, 6).contains_interval(Interval(-1, 5))
        assert not Interval(0, 6).contains_interval(Interval(0, None))
        assert Interval(0, None).contains_interval(Interval(3, None))

    def test_subscript_interval(self):
        assert subscript_interval(1, -2, Interval(0, 6)) == Interval(-2, 4)
        assert subscript_interval(0, 5, Interval(0, 6)) == Interval(5, 5)
        assert subscript_interval(2, 1, Interval(0, None)) == Interval(1, None)


class TestReachingDefinitions:
    def test_program_order_reaches_first_iteration(self, iir):
        rd = reaching_definitions(iir)
        sites = statement_sites(iir)
        assert [s.loop for s in sites] == ["W", "U", "Y"]
        # U reads w[i][j]: the write of 'w' is textually earlier, so it
        # already reaches on the very first outer iteration.
        assert rd.reaches_first_iteration(1, "w")
        # W reads y[i-1][j-2]: 'y' is written later, so at i = 0 the read
        # sees seeded memory -- but in steady state the back edge carries it.
        assert not rd.reaches_first_iteration(0, "y")
        assert "y" in rd.steady[0]


class TestLiveness:
    def test_consumed_writes_are_live(self, iir):
        lv = liveness(iir)
        # w is read by U, u by Y, y by W (next outer iteration): all live.
        assert all(lv.write_is_live(k) for k in range(3))

    def test_unread_write_is_dead(self):
        nest = parse_program(
            "do i = 0, n\n"
            "  doall j = 0, m\n"
            "    a[i][j] = x[i][j]\n"
            "  end\n"
            "  doall j = 0, m\n"
            "    b[i][j] = a[i][j]\n"
            "  end\n"
            "end\n"
        )
        lv = liveness(nest)
        assert lv.write_is_live(0)  # a feeds b
        assert not lv.write_is_live(1)  # b feeds nothing


class TestAccessRegions:
    def test_phantom_hulls(self, phantom):
        regions = access_regions(phantom, domain_of_nest(phantom))
        a = regions["a"]
        assert a.written == (Interval(0, 6), Interval(0, 8))
        # reads: a[i][j-1], a[i-9][j], a[i-8][j]
        assert a.read == (Interval(-9, 6), Interval(-1, 8))
        assert a.read_escapes_written() == 0

        x = regions["x"]  # pure input: read but never written
        assert x.written is None
        assert x.read_escapes_written() is None

    def test_contained_reads_do_not_escape(self):
        nest = parse_program(
            "do i = 0, 4\n"
            "  doall j = 0, 4\n"
            "    a[i][j] = x[i][j]\n"
            "  end\n"
            "  doall j = 0, 4\n"
            "    b[i][j] = a[i][j]\n"
            "  end\n"
            "end\n"
        )
        regions = access_regions(nest, domain_of_nest(nest))
        assert regions["a"].read_escapes_written() is None
