"""Run the doctests embedded in the public API docstrings.

Documentation that executes: the usage examples shown in module and class
docstrings must keep working.
"""

import doctest

import pytest

import repro.constraints.system
import repro.graph.builders
import repro.graph.mldg
import repro.lint
import repro.retiming.retiming
import repro.vectors.extended
import repro.vectors.vector

MODULES = [
    repro.vectors.vector,
    repro.vectors.extended,
    repro.graph.mldg,
    repro.graph.builders,
    repro.retiming.retiming,
    repro.constraints.system,
    repro.lint,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"
    assert results.failed == 0
