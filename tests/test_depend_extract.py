"""Unit tests for dependence extraction (Definition 2.1)."""

import pytest

from repro.depend import (
    DependenceKind,
    classify_dependence,
    dependence_table,
    describe_dependencies,
    extract_mldg,
)
from repro.gallery import figure2_mldg, iir2d_mldg
from repro.gallery.common import iir2d_code
from repro.gallery.paper import figure2_code
from repro.loopir import parse_program
from repro.vectors import IVec


@pytest.fixture
def fig2():
    return parse_program(figure2_code())


class TestExtraction:
    def test_figure2_exact(self, fig2):
        assert extract_mldg(fig2) == figure2_mldg()

    def test_iir2d_exact(self):
        assert extract_mldg(parse_program(iir2d_code())) == iir2d_mldg()

    def test_definition_2_1_direction(self):
        """c[i][j] = b[i][j+2] yields d = (0,-2) (Section 2.1's own example)."""
        nest = parse_program(
            "do i = 0, n\n"
            "  B: doall j = 0, m\n    b[i][j] = 1\n  end\n"
            "  C: doall j = 0, m\n    c[i][j] = b[i][j+2]\n  end\n"
            "end"
        )
        g = extract_mldg(nest)
        assert g.D("B", "C") == frozenset({IVec(0, -2)})

    def test_multiple_vectors_one_edge(self, fig2):
        """a[i-1][j-1] and a[i-2][j-1] give D_L(A,B) = {(1,1),(2,1)}."""
        g = extract_mldg(fig2)
        assert g.D("A", "B") == frozenset({IVec(1, 1), IVec(2, 1)})

    def test_intra_body_zero_dep_not_an_edge(self):
        nest = parse_program(
            "do i = 0, n\n"
            "  A: doall j = 0, m\n    t[i][j] = 1\n    u[i][j] = t[i][j]\n  end\n"
            "end"
        )
        g = extract_mldg(nest)
        assert g.num_edges == 0

    def test_input_arrays_carry_no_dependence(self):
        nest = parse_program(
            "do i = 0, n\n  A: doall j = 0, m\n    a[i][j] = x[i-3][j-9]\n  end\nend"
        )
        assert extract_mldg(nest).num_edges == 0

    def test_nodes_without_edges_still_present(self):
        nest = parse_program(
            "do i = 0, n\n"
            "  A: doall j = 0, m\n    a[i][j] = 1\n  end\n"
            "  B: doall j = 0, m\n    b[i][j] = 2\n  end\n"
            "end"
        )
        g = extract_mldg(nest)
        assert g.nodes == ("A", "B")
        assert g.num_edges == 0

    def test_check_flag_validates(self):
        bad = parse_program(
            "do i = 0, n\n"
            "  A: doall j = 0, m\n    a[i][j] = 1\n  end\n"
            "  B: doall j = 0, m\n    a[i][j] = 2\n  end\n"
            "end"
        )
        from repro.loopir import ValidationError

        with pytest.raises(ValidationError):
            extract_mldg(bad)


class TestRecordsAndClassification:
    def test_table_has_one_record_per_dependent_read(self, fig2):
        records = dependence_table(fig2)
        # figure 2 reads with producers: e(1) + a(2) + b(2)+a(1)+c(1) + c(1) = 8
        assert len(records) == 8

    def test_self_dependence_classified(self, fig2):
        records = dependence_table(fig2)
        self_deps = [r for r in records if classify_dependence(r) == DependenceKind.SELF]
        assert len(self_deps) == 1
        assert self_deps[0].src == "C" and self_deps[0].vector == IVec(1, 0)

    def test_outer_carried_classified(self, fig2):
        records = dependence_table(fig2)
        kinds = {
            (r.src, r.dst, r.vector): classify_dependence(r) for r in records
        }
        assert kinds[("D", "A", IVec(2, 1))] == DependenceKind.OUTER_CARRIED
        assert kinds[("B", "C", IVec(0, -2))] == DependenceKind.SAME_ITERATION

    def test_describe_marks_fusion_preventing(self, fig2):
        text = describe_dependencies(dependence_table(fig2))
        assert "fusion-preventing" in text
        assert "B -> C (0, -2)" in text
