"""Unit tests for the example gallery (paper figures + Section-5 set)."""

import pytest

from repro.fusion import Strategy, fuse
from repro.gallery import (
    all_section5_examples,
    figure2_mldg,
    figure8_mldg,
    figure14_mldg,
    floyd_steinberg_mldg,
    iir2d_mldg,
)
from repro.graph import is_legal
from repro.vectors import IVec


class TestFigure2Transcription:
    def test_vector_sets_match_section_2_2(self):
        g = figure2_mldg()
        assert g.D("A", "B") == frozenset({IVec(1, 1), IVec(2, 1)})
        assert g.D("B", "C") == frozenset({IVec(0, -2), IVec(0, 1)})
        assert g.D("C", "D") == frozenset({IVec(0, -1)})
        assert g.D("A", "C") == frozenset({IVec(0, 1)})
        assert g.D("D", "A") == frozenset({IVec(2, 1)})
        assert g.D("C", "C") == frozenset({IVec(1, 0)})

    def test_deltas_match_section_2_2(self):
        g = figure2_mldg()
        assert g.delta("A", "B") == IVec(1, 1)
        assert g.delta("B", "C") == IVec(0, -2)
        assert g.delta("C", "D") == IVec(0, -1)
        assert g.delta("A", "C") == IVec(0, 1)
        assert g.delta("D", "A") == IVec(2, 1)
        assert g.delta("C", "C") == IVec(1, 0)

    def test_hard_edges(self):
        g = figure2_mldg()
        assert g.is_hard_edge("B", "C")
        assert not g.is_hard_edge("A", "B")

    def test_six_edges_four_nodes(self):
        g = figure2_mldg()
        assert g.num_nodes == 4 and g.num_edges == 6


class TestFigure8Transcription:
    def test_counts(self):
        g = figure8_mldg()
        assert g.num_nodes == 7 and g.num_edges == 8

    def test_hard_edges(self):
        g = figure8_mldg()
        assert g.is_hard_edge("B", "C")
        assert g.is_hard_edge("A", "D")
        assert not g.is_hard_edge("C", "D")


class TestFigure14Transcription:
    def test_counts(self):
        g = figure14_mldg()
        assert g.num_nodes == 7 and g.num_edges == 10

    def test_modified_sets(self):
        g = figure14_mldg()
        assert g.D("D", "C") == frozenset({IVec(0, -2)})
        assert g.D("E", "B") == frozenset({IVec(0, 1), IVec(1, 1)})
        assert g.D("C", "D") == frozenset({IVec(0, 3), IVec(0, 5)})
        assert g.D("A", "D") == frozenset({IVec(0, -3), IVec(1, 0)})

    def test_hard_edges_match_figure(self):
        g = figure14_mldg()
        assert g.is_hard_edge("B", "C")
        assert g.is_hard_edge("C", "D")
        assert not g.is_hard_edge("E", "B")
        assert not g.is_hard_edge("A", "D")


class TestSection5Set:
    def test_five_examples(self):
        assert len(all_section5_examples()) == 5

    def test_first_three_are_paper_figures(self):
        ex = all_section5_examples()
        assert ex[0].mldg() == figure8_mldg()
        assert ex[1].mldg() == figure2_mldg()
        assert ex[2].mldg() == figure14_mldg()
        assert not any(e.reconstructed for e in ex[:3])
        assert all(e.reconstructed for e in ex[3:])

    def test_all_legal(self):
        for ex in all_section5_examples():
            assert is_legal(ex.mldg()), ex.key

    @pytest.mark.parametrize("ex", all_section5_examples(), ids=lambda e: e.key)
    def test_expected_strategy(self, ex):
        res = fuse(ex.mldg())
        assert res.strategy is Strategy(ex.expected_strategy)


class TestReconstructedExamples:
    def test_iir2d_is_cyclic_doall(self):
        res = fuse(iir2d_mldg())
        assert res.strategy is Strategy.CYCLIC
        assert res.is_doall

    def test_sor_needs_hyperplane(self):
        res = fuse(floyd_steinberg_mldg())
        assert res.strategy is Strategy.HYPERPLANE
        assert res.schedule == IVec(5, 1)
        assert res.hyperplane == IVec(1, -5)

    def test_iir2d_code_matches_graph(self):
        """The DSL source must extract to exactly the published MLDG."""
        pytest.importorskip("repro.depend")
        from repro.depend import extract_mldg
        from repro.gallery.common import iir2d_code
        from repro.loopir import parse_program

        prog = parse_program(iir2d_code())
        assert extract_mldg(prog) == iir2d_mldg()


class TestExtendedKernels:
    def test_six_kernels(self):
        from repro.gallery import extended_kernels

        kernels = extended_kernels()
        assert len(kernels) == 6
        assert len({k.key for k in kernels}) == 6

    def test_all_parse_validate_and_extract(self):
        from repro.gallery import extended_kernels
        from repro.loopir import validate_program

        for k in extended_kernels():
            nest = k.nest()
            validate_program(nest)
            g = k.mldg()
            assert g.num_nodes == len(nest.loops)

    @pytest.mark.parametrize(
        "kernel",
        __import__("repro.gallery.extended", fromlist=["extended_kernels"]).extended_kernels(),
        ids=lambda k: k.key,
    )
    def test_expected_strategies(self, kernel):
        res = fuse(kernel.mldg())
        assert res.strategy is Strategy(kernel.expected_strategy)

    @pytest.mark.parametrize(
        "kernel",
        __import__("repro.gallery.extended", fromlist=["extended_kernels"]).extended_kernels(),
        ids=lambda k: k.key,
    )
    def test_end_to_end_verified(self, kernel):
        from repro.pipeline import fuse_and_verify

        out = fuse_and_verify(kernel.code, sizes=[(8, 7)], seeds=[0])
        assert out.fused is not None
