"""The persistent compilation store (repro.store): the L2 disk tier.

The load-bearing properties, in descending order of importance:

1. **Nothing unverified is ever served.**  Every disk row is re-verified
   (``verify_retiming`` through the normal rehydration gate) before a hit
   is returned; rows that fail are demoted to misses and evicted.
2. **Corruption degrades to a cold compile, never an exception.**  A
   truncated file, a tampered row, a wrong payload schema and a newer
   meta schema all turn into misses with the matching counters.
3. **The bypass predicate is shared with L1.**  Work-limiting budgets,
   active fault injectors and ``REPRO_FUSE_MEMO=0`` keep results out of
   the store, so chaos runs can never persist a corrupted answer.
4. **Keys are structural.**  Renamed-but-isomorphic programs hit the same
   row; any environment change (fingerprint) misses.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sqlite3

import pytest

from repro import obs
from repro.core.session import Session, SessionCaches, SessionOptions
from repro.fusion import fuse
from repro.gallery import figure2_mldg
from repro.graph.mldg import MLDG
from repro.perf.memo import clear_all_caches, structural_hash
from repro.resilience import Budget
from repro.resilience.faults import EdgeWeightCorruption, inject
from repro.store import (
    STORE_SCHEMA_VERSION,
    CompileStore,
    active_store,
    current_fingerprint,
    env_fingerprint,
    open_store,
    reset_open_stores,
    set_default_store_path,
)


@pytest.fixture(autouse=True)
def _isolated(monkeypatch):
    """No ambient store, clean L1, clean handle registry, per-test."""
    monkeypatch.delenv("REPRO_FUSE_STORE", raising=False)
    clear_all_caches()
    reset_open_stores()
    yield
    clear_all_caches()
    reset_open_stores()


def _counter(name: str) -> int:
    return obs.default_registry().counter(name).value


def _relabel(g: MLDG, prefix: str) -> MLDG:
    out = MLDG(dim=g.dim)
    for name in g.nodes:
        out.add_node(prefix + name)
    for e in g.edges():
        out.add_dependence(prefix + e.src, prefix + e.dst, *sorted(e.vectors))
    return out


def _outcome(result):
    return (
        result.strategy.value,
        tuple(sorted((k, tuple(v)) for k, v in result.retiming.as_dict().items())),
        tuple(result.schedule),
    )


def _session(path: str) -> Session:
    """A session with a private L1 over the store at ``path``."""
    return Session(
        options=SessionOptions(store_path=path),
        caches=SessionCaches.private(),
    )


class TestRawStore:
    def test_roundtrip_and_counters(self, tmp_path):
        store = CompileStore(str(tmp_path / "s.db"))
        assert store.get("fuse:auto:abc", "fp") is None  # miss
        store.put("fuse:auto:abc", "fp", {"x": [1, 2]})
        assert store.get("fuse:auto:abc", "fp") == {"x": [1, 2]}
        s = store.stats()
        assert (s.hits, s.misses, s.puts) == (1, 1, 1)
        assert s.entries == 1 and s.stored_hits == 1

    def test_fingerprint_isolation(self, tmp_path):
        store = CompileStore(str(tmp_path / "s.db"))
        store.put("k", "fp-a", 1)
        assert store.get("k", "fp-b") is None
        assert store.get("k", "fp-a") == 1

    def test_lru_caps_evict_oldest(self, tmp_path):
        store = CompileStore(str(tmp_path / "s.db"), max_entries=3)
        for i in range(5):
            store.put(f"k{i}", "fp", i)
        s = store.stats()
        assert s.entries == 3 and s.evictions == 2
        # the newest rows survive
        assert store.get("k4", "fp") == 4 and store.get("k0", "fp") is None

    def test_demote_deletes_and_counts(self, tmp_path):
        store = CompileStore(str(tmp_path / "s.db"))
        store.put("k", "fp", 1)
        before = _counter("store.verify_fail")
        store.demote("k", "fp")
        assert store.get("k", "fp") is None
        assert _counter("store.verify_fail") == before + 1

    def test_prune_and_clear(self, tmp_path):
        store = CompileStore(str(tmp_path / "s.db"))
        for i in range(6):
            store.put(f"k{i}", "fp", i)
        assert store.prune(max_entries=2) == 4
        assert store.stats().entries == 2
        assert store.clear() == 2
        assert store.stats().entries == 0

    def test_verify_reports_clean(self, tmp_path):
        store = CompileStore(str(tmp_path / "s.db"))
        store.put("k", "fp", {"a": 1})
        report = store.verify()
        assert report["ok"] and report["checked"] == 1
        assert report["corrupt"] == [] and report["repaired"] == 0


class TestCorruption:
    def test_tampered_payload_is_deleted_and_missed(self, tmp_path):
        path = str(tmp_path / "s.db")
        store = CompileStore(path)
        store.put("k", "fp", {"a": 1})
        store.close()
        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE entries SET payload = '{\"evil\": true}'")
        before = _counter("store.corrupt")
        assert store.get("k", "fp") is None
        assert _counter("store.corrupt") == before + 1
        # the row is gone: the next lookup is an ordinary cold miss
        assert store.stats().entries == 0

    def test_blob_payload_is_corrupt_not_an_exception(self, tmp_path):
        """sqlite columns are dynamically typed: a BLOB where text belongs
        (torn write, hostile tamper) must degrade to a miss, never raise."""
        path = str(tmp_path / "s.db")
        store = CompileStore(path)
        store.put("k", "fp", {"a": 1})
        store.close()
        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE entries SET payload = X'DEADBEEF'")
        before = _counter("store.corrupt")
        assert store.get("k", "fp") is None
        assert _counter("store.corrupt") == before + 1
        assert store.stats().entries == 0
        assert store.verify()["ok"]  # the bad row is already gone

    def test_tampered_payload_fails_verify_then_repairs(self, tmp_path):
        path = str(tmp_path / "s.db")
        store = CompileStore(path)
        store.put("good", "fp", 1)
        store.put("bad", "fp", 2)
        store.close()
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE entries SET checksum = 'ffff' WHERE skey = 'bad'"
            )
        report = store.verify()
        assert not report["ok"] and len(report["corrupt"]) == 1
        report = store.verify(repair=True)
        assert report["repaired"] == 1
        assert store.verify()["ok"]
        assert store.get("good", "fp") == 1

    def test_truncated_file_disables_the_handle(self, tmp_path):
        path = tmp_path / "s.db"
        path.write_bytes(b"this is not a sqlite database at all")
        store = CompileStore(str(path))
        before = _counter("store.corrupt")
        assert store.get("k", "fp") is None
        assert store.stats().disabled
        assert _counter("store.corrupt") > before
        # still a cheap miss, never an exception
        store.put("k", "fp", 1)
        assert store.get("k", "fp") is None

    def test_newer_schema_version_disables(self, tmp_path):
        path = str(tmp_path / "s.db")
        store = CompileStore(path)
        store.put("k", "fp", 1)
        store.close()
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(STORE_SCHEMA_VERSION + 1),),
            )
        before = _counter("store.schema_mismatch")
        reopened = CompileStore(path)
        assert reopened.get("k", "fp") is None
        assert reopened.stats().disabled
        assert _counter("store.schema_mismatch") == before + 1

    def test_older_schema_version_wipes_and_rebuilds(self, tmp_path):
        path = str(tmp_path / "s.db")
        store = CompileStore(path)
        store.put("k", "fp", 1)
        store.close()
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE meta SET value = '0' WHERE key = 'schema_version'"
            )
        reopened = CompileStore(path)
        # stale rows are unreadable under a new schema: dropped wholesale
        assert reopened.get("k", "fp") is None
        assert not reopened.stats().disabled
        reopened.put("k2", "fp", 2)
        assert reopened.get("k2", "fp") == 2


class TestFingerprint:
    def test_deterministic_and_parameter_sensitive(self):
        assert env_fingerprint() == env_fingerprint()
        assert env_fingerprint() != env_fingerprint(prune_edges=False)
        assert env_fingerprint() != env_fingerprint(ladder=("doall",))

    def test_current_fingerprint_tracks_session_options(self):
        ambient = current_fingerprint()
        session = Session(options=SessionOptions(prune_edges=False))
        with session.activate():
            assert current_fingerprint() != ambient
        assert current_fingerprint() == ambient


class TestFuseThroughStore:
    def test_second_session_is_served_from_disk(self, tmp_path):
        path = str(tmp_path / "s.db")
        g = figure2_mldg()
        with _session(path).activate():
            cold = _outcome(fuse(g))
        warm_session = _session(path)
        with warm_session.activate():
            before = warm_session.caches.store.stats()
            warm = _outcome(fuse(g))
            after = warm_session.caches.store.stats()
        assert warm == cold
        assert after.hits == before.hits + 1

    def test_relabelled_isomorph_hits_the_same_row(self, tmp_path):
        path = str(tmp_path / "s.db")
        g = figure2_mldg()
        h = _relabel(g, "renamed_")
        assert structural_hash(g) == structural_hash(h)
        with _session(path).activate():
            fuse(g)
        s2 = _session(path)
        with s2.activate():
            fuse(h)
            assert s2.caches.store.stats().hits >= 1

    def test_disk_hit_promotes_into_l1(self, tmp_path):
        path = str(tmp_path / "s.db")
        g = figure2_mldg()
        with _session(path).activate():
            fuse(g)
        s2 = _session(path)
        with s2.activate():
            fuse(g)  # L2 hit, promoted
            fuse(g)  # now an L1 hit
            assert s2.caches.fusion.cache_info().hits == 1
            assert s2.caches.store.stats().hits == 1

    def test_tampered_row_degrades_to_cold_compile(self, tmp_path):
        path = str(tmp_path / "s.db")
        g = figure2_mldg()
        with _session(path).activate():
            cold = _outcome(fuse(g))
        with sqlite3.connect(path) as conn:
            # keep the checksum consistent so the *payload* gate, not the
            # checksum, must catch this
            payload = json.dumps(
                {"schema": "repro-store/1", "value": ["auto", [], [], None, []]},
                sort_keys=True,
            )
            import hashlib

            checksum = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
            conn.execute(
                "UPDATE entries SET payload = ?, checksum = ?",
                (payload, checksum),
            )
        reset_open_stores()  # drop the first session's handle
        s2 = _session(path)
        with s2.activate():
            assert _outcome(fuse(g)) == cold  # recompiled, not raised
            assert s2.caches.store.stats().entries >= 1  # re-persisted


class TestBypass:
    """Nothing computed under a bypass condition may touch the disk."""

    def _entries(self, path: str) -> int:
        return open_store(path).stats().entries

    def test_work_limited_budget_bypasses(self, tmp_path):
        path = str(tmp_path / "s.db")
        session = Session(
            options=SessionOptions(store_path=path),
            caches=SessionCaches.private(),
            budget=Budget(max_relaxation_rounds=10_000),
        )
        before = _counter("store.bypassed")
        with session.activate():
            fuse(figure2_mldg(), budget=session.budget)
        assert self._entries(path) == 0
        assert _counter("store.bypassed") > before

    def test_deadline_only_budget_is_cacheable(self, tmp_path):
        # a deadline is an SLO on the answer, not a work probe: serve
        # workers always carry one and must still share the store
        path = str(tmp_path / "s.db")
        with _session(path).activate():
            fuse(figure2_mldg(), budget=Budget(deadline_ms=60_000.0))
        assert self._entries(path) == 1

    def test_active_fault_injector_bypasses(self, tmp_path):
        path = str(tmp_path / "s.db")
        with _session(path).activate():
            with inject(EdgeWeightCorruption(), seed=3):
                try:
                    fuse(figure2_mldg())
                except Exception:
                    pass  # the corrupted graph may legitimately fail
        assert self._entries(path) == 0

    def test_memo_env_flag_bypasses(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FUSE_MEMO", "0")
        path = str(tmp_path / "s.db")
        with _session(path).activate():
            fuse(figure2_mldg())
        assert self._entries(path) == 0


class TestResolution:
    def test_env_default_and_session_override(self, tmp_path, monkeypatch):
        env_path = str(tmp_path / "env.db")
        session_path = str(tmp_path / "session.db")
        assert active_store() is None
        set_default_store_path(env_path)
        assert active_store() is not None
        assert active_store().path == os.path.abspath(env_path)
        with _session(session_path).activate():
            assert active_store().path == session_path
        set_default_store_path(None)
        assert active_store() is None

    def test_open_store_returns_one_handle_per_path(self, tmp_path):
        path = str(tmp_path / "s.db")
        assert open_store(path) is open_store(path)

    def test_pickle_drops_connection_but_keeps_path(self, tmp_path):
        import pickle

        store = CompileStore(str(tmp_path / "s.db"))
        store.put("k", "fp", 1)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.path == store.path
        assert clone.get("k", "fp") == 1


def _hammer(path: str, worker: int, rounds: int) -> int:
    """Child-process body: interleaved reads/writes on one store file."""
    store = CompileStore(path)
    ok = 0
    for i in range(rounds):
        key = f"k{(worker + i) % 8}"
        store.put(key, "fp", {"worker": worker, "i": i})
        got = store.get(key, "fp")
        if got is not None and set(got) == {"worker", "i"}:
            ok += 1
    return ok


class TestMultiProcess:
    def test_concurrent_hammer_never_corrupts(self, tmp_path):
        path = str(tmp_path / "s.db")
        CompileStore(path).put("seed", "fp", 0)  # create the schema first
        rounds = 25
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            results = pool.starmap(
                _hammer, [(path, w, rounds) for w in range(4)]
            )
        assert all(r == rounds for r in results)
        report = CompileStore(path).verify()
        assert report["ok"] and report["checked"] >= 1


class TestCacheCli:
    def _run(self, *argv: str):
        import contextlib
        import io

        from repro.cli import main

        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = main(list(argv))
        return code, out.getvalue()

    def test_requires_a_path(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_FUSE_STORE", raising=False)
        from repro.cli import main

        assert main(["cache", "stats"]) == 2

    def test_stats_verify_prune_clear(self, tmp_path):
        path = str(tmp_path / "s.db")
        store = CompileStore(path)
        for i in range(4):
            store.put(f"k{i}", "fp", i)
        code, out = self._run("cache", "stats", "--store", path)
        assert code == 0 and "entries : 4" in out
        code, out = self._run(
            "cache", "stats", "--store", path, "--format", "json"
        )
        assert code == 0 and json.loads(out)["currsize"] == 4
        code, out = self._run("cache", "verify", "--store", path)
        assert code == 0 and "CLEAN" in out
        code, out = self._run(
            "cache", "prune", "--store", path, "--max-entries", "2"
        )
        assert code == 0 and "pruned 2" in out
        code, out = self._run("cache", "clear", "--store", path)
        assert code == 0 and "cleared 2" in out

    def test_verify_fails_on_tampered_store(self, tmp_path):
        path = str(tmp_path / "s.db")
        CompileStore(path).put("k", "fp", 1)
        reset_open_stores()
        with sqlite3.connect(path) as conn:
            conn.execute("UPDATE entries SET checksum = 'dead'")
        code, out = self._run("cache", "verify", "--store", path)
        assert code == 1 and "FAILED" in out
        code, _ = self._run("cache", "verify", "--store", path, "--repair")
        assert code == 1  # this pass still saw (and removed) the bad row
        code, out = self._run("cache", "verify", "--store", path)
        assert code == 0 and "CLEAN" in out
