"""Unit tests for the data-locality (reuse distance) model."""

import pytest

from repro.codegen.fused import _zero_dependence_order
from repro.fusion import fuse, legal_fusion_retiming
from repro.gallery import figure2_mldg, figure8_mldg, iir2d_mldg
from repro.graph import mldg_from_table
from repro.machine import locality_report, reuse_distances
from repro.retiming import Retiming
from repro.vectors import IVec


def _body_order(g, retiming):
    return _zero_dependence_order(retiming.apply(g), list(g.nodes))


class TestUnfusedDistances:
    def test_adjacent_loops_one_row_apart(self):
        """u then v, dependence (0,0): distance = remaining u row + nothing
        = one full row sweep of u."""
        g = mldg_from_table({("A", "B"): [(0, 0)]}, nodes=["A", "B"])
        profile = reuse_distances(g, 9)  # W = 10
        (_s, _d, dist), = profile.distances
        assert dist == 10  # W * before[B] gap with c=1

    def test_outer_carried_costs_full_sweeps(self):
        g = mldg_from_table({("A", "B"): [(2, 0)]}, nodes=["A", "B"])
        (_s, _d, dist), = reuse_distances(g, 9).distances
        assert dist == 2 * 10 * 2 + 10  # two outer sweeps + loop gap

    def test_backward_flow_charged_full_sweep(self):
        g = mldg_from_table({("B", "A"): [(0, 3)]}, nodes=["A", "B"])
        (_s, _d, dist), = reuse_distances(g, 9).distances
        assert dist == 10 * 2

    def test_costs_scale_distances(self):
        g = mldg_from_table({("A", "B"): [(0, 0)]}, nodes=["A", "B"])
        d1 = reuse_distances(g, 9).mean_distance()
        d2 = reuse_distances(g, 9, costs={"A": 5, "B": 5}).mean_distance()
        assert d2 == 5 * d1


class TestFusedDistances:
    def test_zero_vector_is_immediate(self):
        g = mldg_from_table({("A", "B"): [(0, 0)]}, nodes=["A", "B"])
        profile = reuse_distances(g, 9, retiming=Retiming.zero(dim=2))
        (_s, _d, dist), = profile.distances
        assert dist == 1  # just the body position gap

    def test_same_row_offset_costs_body_multiples(self):
        g = mldg_from_table({("A", "B"): [(0, 2)]}, nodes=["A", "B"])
        profile = reuse_distances(g, 9, retiming=Retiming.zero(dim=2))
        (_s, _d, dist), = profile.distances
        assert dist == 2 * 2 + 1  # two fused iterations + body gap

    def test_retiming_applied(self):
        g = mldg_from_table({("A", "B"): [(0, 2)]}, nodes=["A", "B"])
        r = Retiming({"B": IVec(0, 2)}, dim=2)  # retimed vector (0,0)
        profile = reuse_distances(g, 9, retiming=r)
        (_s, _d, dist), = profile.distances
        assert dist == 1


class TestTradeoffs:
    """The model exposes the paper's locality claim -- and its price."""

    @pytest.mark.parametrize(
        "build", [figure2_mldg, figure8_mldg, iir2d_mldg], ids=lambda b: b.__name__
    )
    def test_llofra_fusion_improves_small_capacity_hits(self, build):
        """Legal fusion turns same-iteration dependencies into immediate
        reuse: hit ratio at small capacity never degrades and usually
        improves (the Section-1 locality claim)."""
        g = build()
        r = legal_fusion_retiming(g)
        before = reuse_distances(g, 63)
        after = reuse_distances(g, 63, retiming=r, body_order=_body_order(g, r))
        assert after.hit_ratio(16) >= before.hit_ratio(16)

    def test_figure2_llofra_hits_concretely(self):
        g = figure2_mldg()
        r = legal_fusion_retiming(g)
        after = reuse_distances(g, 63, retiming=r, body_order=_body_order(g, r))
        assert after.hit_ratio(16) == 0.5
        assert reuse_distances(g, 63).hit_ratio(16) == 0.0

    def test_parallel_retiming_trades_locality(self):
        """Algorithm 3 carries every Figure-8 dependence outermost, so the
        fully-parallel fusion has *larger* mean reuse distance than the
        locality-optimal legal fusion -- a real tradeoff the model makes
        visible."""
        g = figure8_mldg()
        r_legal = legal_fusion_retiming(g)
        r_par = fuse(g).retiming
        legal = reuse_distances(g, 63, retiming=r_legal, body_order=_body_order(g, r_legal))
        par = reuse_distances(g, 63, retiming=r_par, body_order=_body_order(g, r_par))
        assert legal.mean_distance() < par.mean_distance()


class TestReport:
    def test_report_shape(self):
        g = figure2_mldg()
        res = fuse(g)
        rows = locality_report(g, 63, res.retiming, capacities=(8, 64))
        assert [r[0] for r in rows] == ["unfused", "fused"]
        assert all(len(r) == 5 for r in rows)

    def test_empty_graph_profile(self):
        from repro.graph import MLDG

        g = MLDG(dim=2)
        g.add_node("A")
        profile = reuse_distances(g, 9)
        assert profile.hit_ratio(1) == 1.0
        assert profile.mean_distance() == 0.0
        assert profile.max_distance() == 0
