"""The fusion memo layer: canonical hashing, the LRU cache, and the wiring
into ``fuse()`` and the resilience ladder.

The load-bearing property is that the canonical key quotients MLDGs by
node *renaming* (program order preserved) and nothing else -- so repeated
and isomorphic-but-relabelled queries hit, while any structural change
(an extra vector, a different dimension, a reordered program) misses.
Cache hits must be *verified* answers: ``fuse()`` re-runs the full
verification gate on every rehydrated retiming.
"""

import pytest

from repro.fusion import Strategy, fuse
from repro.gallery import figure2_mldg, figure8_mldg
from repro.graph.mldg import MLDG
from repro.perf.memo import (
    MemoCache,
    canonical_mldg_key,
    cached_retiming,
    clear_all_caches,
    fusion_cache,
    memoization_applicable,
    retiming_cache,
    structural_hash,
)
from repro.resilience import Budget, fuse_resilient
from repro.retiming import Retiming
from repro.vectors import IVec


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_all_caches()
    yield
    clear_all_caches()


def _relabel(g: MLDG, mapping) -> MLDG:
    """Rebuild ``g`` with renamed nodes, preserving program order."""
    out = MLDG(dim=g.dim)
    for name in g.nodes:
        out.add_node(mapping[name])
    for e in g.edges():
        out.add_dependence(mapping[e.src], mapping[e.dst], *sorted(e.vectors))
    return out


class TestCanonicalKey:
    def test_key_invariant_under_renaming(self):
        g = figure2_mldg()
        h = _relabel(g, {n: f"loop_{n.lower()}" for n in g.nodes})
        assert canonical_mldg_key(g) == canonical_mldg_key(h)
        assert structural_hash(g) == structural_hash(h)

    def test_key_invariant_under_edge_insertion_order(self):
        a = MLDG(dim=2)
        a.add_node("X")
        a.add_node("Y")
        a.add_dependence("X", "Y", IVec(1, 0))
        a.add_dependence("Y", "Y", IVec(0, 1))
        b = MLDG(dim=2)
        b.add_node("X")
        b.add_node("Y")
        b.add_dependence("Y", "Y", IVec(0, 1))
        b.add_dependence("X", "Y", IVec(1, 0))
        assert canonical_mldg_key(a) == canonical_mldg_key(b)

    def test_key_sensitive_to_program_order(self):
        # same edge structure, opposite program order: different programs
        a = MLDG(dim=2)
        a.add_node("X")
        a.add_node("Y")
        a.add_dependence("X", "Y", IVec(1, 1))
        b = MLDG(dim=2)
        b.add_node("Y")
        b.add_node("X")
        b.add_dependence("X", "Y", IVec(1, 1))
        assert canonical_mldg_key(a) != canonical_mldg_key(b)

    def test_key_sensitive_to_vectors_and_dim(self):
        a = MLDG(dim=2)
        a.add_dependence("X", "Y", IVec(1, 1))
        b = MLDG(dim=2)
        b.add_dependence("X", "Y", IVec(1, 1), IVec(2, 0))
        assert canonical_mldg_key(a) != canonical_mldg_key(b)
        c = MLDG(dim=3)
        c.add_dependence("X", "Y", IVec(1, 1, 0))
        assert canonical_mldg_key(a) != canonical_mldg_key(c)


class TestMemoCache:
    def test_hit_miss_eviction_accounting(self):
        cache = MemoCache(maxsize=2)
        assert cache.get("a") is None  # miss
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # hit; refreshes recency of "a"
        cache.put("c", 3)  # evicts "b" (LRU)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        info = cache.cache_info()
        assert info.hits == 3 and info.misses == 2 and info.evictions == 1
        assert info.currsize == 2 and info.maxsize == 2
        assert 0 < info.hit_ratio < 1

    def test_none_values_rejected(self):
        with pytest.raises(ValueError):
            MemoCache().put("k", None)

    def test_clear_and_resize(self):
        cache = MemoCache(maxsize=4)
        for k in range(4):
            cache.put(k, k + 1)
        cache.resize(2)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.cache_info().hits == 0


class TestFuseMemoization:
    def test_repeat_query_hits(self):
        g = figure2_mldg()
        first = fuse(g)
        second = fuse(g)
        info = fusion_cache().cache_info()
        assert info.hits >= 1 and info.misses >= 1
        assert first.retiming.as_dict() == second.retiming.as_dict()
        assert first.strategy == second.strategy
        assert first.schedule == second.schedule

    def test_isomorphic_relabel_hits_and_verifies(self):
        g = figure2_mldg()
        fuse(g)
        h = _relabel(g, {n: f"renamed_{n}" for n in g.nodes})
        result = fuse(h)
        assert fusion_cache().cache_info().hits >= 1
        # the rehydrated retiming is rebound to h's names and re-verified
        assert set(result.retiming.as_dict()) == set(h.nodes)
        assert result.verification.ok_for_legal_fusion
        expected = {
            f"renamed_{n}": v for n, v in fuse(g).retiming.as_dict().items()
        }
        assert result.retiming.as_dict() == expected

    def test_forced_strategies_cached_separately(self):
        g = figure8_mldg()
        fuse(g, strategy=Strategy.ACYCLIC)
        fuse(g, strategy=Strategy.LEGAL_ONLY)
        assert fusion_cache().cache_info().misses >= 2

    def test_limiting_budget_bypasses_cache(self):
        from repro.resilience import BudgetExceededError

        g = figure2_mldg()
        fuse(g)  # prime the cache
        hits_before = fusion_cache().cache_info().hits
        # a capped probe must still measure real solver work and trip
        with pytest.raises(BudgetExceededError):
            fuse(g, budget=Budget(max_relaxation_rounds=0))
        assert fusion_cache().cache_info().hits == hits_before

    def test_disable_flag_bypasses_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSE_MEMO", "0")
        assert not memoization_applicable(None)
        g = figure2_mldg()
        fuse(g)
        fuse(g)
        info = fusion_cache().cache_info()
        assert info.hits == 0 and info.misses == 0 and len(fusion_cache()) == 0


class TestLadderMemoization:
    def test_resilient_repeat_hits_retiming_cache(self):
        g = figure2_mldg()
        first = fuse_resilient(g)
        second = fuse_resilient(g)
        assert retiming_cache().cache_info().hits >= 1
        assert first.rung == second.rung
        assert first.retiming.as_dict() == second.retiming.as_dict()

    def test_cached_retiming_rebinds_names(self):
        g = figure2_mldg()
        r = fuse(g).retiming
        calls = []

        def compute():
            calls.append(1)
            return r

        got1 = cached_retiming("unit", g, compute)
        h = _relabel(g, {n: f"z_{n}" for n in g.nodes})
        got2 = cached_retiming(
            "unit", h, lambda: pytest.fail("cache should have hit")
        )
        assert len(calls) == 1
        assert got1.as_dict() == r.as_dict()
        assert got2.as_dict() == {
            f"z_{n}": v for n, v in r.as_dict().items()
        }
        assert isinstance(got2, Retiming) and got2.dim == g.dim


# ---------------------------------------------------------------------- #
# pickling and process pools (the serve worker-cache tiers)
# ---------------------------------------------------------------------- #


def _worker_cache_probe(_):
    """Runs in a pool worker: exercise the worker's own fusion cache."""
    from repro.gallery import figure2_mldg
    from repro.perf.memo import fusion_cache

    fuse(figure2_mldg())  # miss (or fork-inherited hit) in *this* process
    fuse(figure2_mldg())  # repeat: a hit in this process
    info = fusion_cache().cache_info()
    return {"hits": info.hits, "misses": info.misses, "pid": __import__("os").getpid()}


class TestPickleAndProcessPools:
    def test_pickle_round_trip_preserves_entries_and_stats(self):
        import pickle

        cache = MemoCache(maxsize=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.get("missing")
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.get("a") == 1 and clone.get("b") == 2
        before = cache.cache_info()
        # +2 hits from the two gets above; everything else carried over
        assert clone.cache_info() == before._replace(hits=before.hits + 2)
        # the recreated lock actually locks: mutation still works
        clone.put("c", 3)
        clone.put("d", 4)  # evicts
        assert clone.cache_info().evictions == 1
        # and the original is untouched (deep copy of the entries)
        assert cache.cache_info() == before

    def test_pickle_rejects_nothing_lock_is_dropped(self):
        import pickle

        state = MemoCache().__getstate__()
        assert "_lock" not in state
        restored = pickle.loads(pickle.dumps(MemoCache()))
        assert restored.cache_info().currsize == 0

    def test_process_pool_workers_keep_private_cache_accounting(self):
        """The docs/SERVING.md cache-tier contract: fork-started workers
        inherit a warm copy of the parent caches and diverge afterwards --
        worker hits/misses never flow back into the parent's accounting."""
        from concurrent.futures import ProcessPoolExecutor

        fuse(figure2_mldg())  # warm the parent cache pre-fork
        parent_before = fusion_cache().cache_info()
        with ProcessPoolExecutor(max_workers=2) as pool:
            reports = list(pool.map(_worker_cache_probe, range(4)))
        assert len(reports) == 4
        for report in reports:
            assert report["hits"] >= 1  # the repeat hit in the worker
        # the parent's accounting is exactly what it was: per-worker tiers
        assert fusion_cache().cache_info() == parent_before
