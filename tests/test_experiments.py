"""Unit tests for the programmatic experiment-table API."""

import pytest

from repro.experiments import (
    baseline_table,
    extended_table,
    format_table,
    full_report,
    peel_crossover_table,
    section5_table,
    speedup_table,
    sync_sweep_table,
)


class TestSection5:
    def test_five_rows(self):
        headers, rows = section5_table(n=50, m=31)
        assert len(rows) == 5
        assert headers[0] == "example"

    def test_reconstructed_marked(self):
        _h, rows = section5_table(n=20, m=10)
        starred = [r for r in rows if "*" in r[0]]
        assert len(starred) == 2

    def test_doall_rows_reduce_syncs(self):
        _h, rows = section5_table(n=50, m=31)
        for row in rows:
            if "DOALL" in row[6]:
                assert row[5] < row[4]


class TestSyncSweep:
    def test_paper_core_counts(self):
        _h, rows = sync_sweep_table(ns=(10, 100), m=63)
        for (n, _p7n, _before, paper, measured) in rows:
            assert measured == paper == n - 2


class TestSpeedup:
    def test_shape(self):
        headers, rows = speedup_table(n=30, m=15, processors=(1, 4))
        assert len(rows) == 5 * 2
        assert headers[-1] == "improvement"

    def test_doall_examples_improve_at_scale(self):
        _h, rows = speedup_table(n=50, m=31, processors=(8,))
        by_key = {r[0]: r for r in rows}
        assert float(by_key["example1-fig8"][4].rstrip("x")) > 1.0


class TestBaselines:
    def test_six_techniques_per_example(self):
        _h, rows = baseline_table()
        assert len(rows) == 5 * 6
        techniques = {r[1] for r in rows}
        assert "this paper (retiming)" in techniques
        assert "naive + unimodular" in techniques

    def test_retiming_always_one_loop(self):
        _h, rows = baseline_table()
        ours = [r for r in rows if r[1] == "this paper (retiming)"]
        assert all(r[2] == "1 loop" for r in ours)


class TestExtendedAndPeel:
    def test_extended_six_kernels(self):
        _h, rows = extended_table(n=20, m=10)
        assert len(rows) == 6

    def test_peel_crossover_monotone(self):
        _h, rows = peel_crossover_table(n=50, m=63, processors=(1, 16, 64))
        slowdowns = [float(r[4].rstrip("x")) for r in rows]
        assert slowdowns[0] == pytest.approx(1.0)
        assert slowdowns[-1] >= slowdowns[1]


class TestRendering:
    def test_format_table(self):
        text = format_table("T", (["a", "bb"], [(1, 22), (333, 4)]))
        assert "== T ==" in text
        lines = text.splitlines()
        assert len({len(l) for l in lines[1:]}) == 1  # aligned columns

    def test_full_report_contains_all_sections(self):
        text = full_report(n=20, m=10)
        for marker in ("E5", "E3", "E7", "E8", "E11", "crossover"):
            assert marker in text
