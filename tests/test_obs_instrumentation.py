"""Instrumentation tests: the pipeline's spans and counters, end to end.

Every test swaps in a private registry (:func:`repro.obs.use_registry`) so
the process-wide default one -- which other tests and the CLI touch --
never leaks counts in or out.  The trace-determinism tests clear the
fusion/retiming/kernel caches before *each* traced run, because cache hits
legitimately change the span tree (a hit skips the solver spans).
"""

import pytest

from repro import obs
from repro.codegen.interp import ArrayStore
from repro.codegen.pycompile import clear_kernel_cache, compile_fused
from repro.constraints.bellman_ford import scalar_bellman_ford
from repro.fusion.driver import fuse
from repro.gallery.paper import figure2_code, figure2_mldg
from repro.perf.bench import bench_solvers, records_to_json
from repro.perf.memo import clear_all_caches
from repro.perf.parallel import run_parallel
from repro.pipeline import fuse_program
from repro.resilience.budget import Budget, BudgetExceededError
from repro.resilience.ladder import fuse_resilient
from repro.resilience.report import RS001

pytestmark = pytest.mark.obs

_NODES = ["s", "a", "b"]
_EDGES = [("s", "a", 2), ("a", "b", -1), ("s", "b", 5)]


class TestSolverCounters:
    def test_slf_counts_calls_rounds_and_pops(self):
        with obs.use_registry() as reg:
            result = scalar_bellman_ford(_NODES, _EDGES, "s")
            c = reg.to_dict()["counters"]
            assert c["solver.bellman_ford.calls"] == 1
            assert c["solver.bellman_ford.rounds"] == result.rounds
            # SLF pops are actual worklist pops: every vertex is examined
            # at least once on a feasible system
            assert c["solver.bellman_ford.pops"] == result.pops >= len(_NODES)

    def test_rounds_algorithm_pops_are_rounds_times_vertices(self):
        with obs.use_registry() as reg:
            result = scalar_bellman_ford(_NODES, _EDGES, "s", algorithm="rounds")
            c = reg.to_dict()["counters"]
            assert result.pops == result.rounds * len(_NODES)
            assert c["solver.bellman_ford.pops"] == result.pops

    def test_budget_consumption_counted_only_under_a_cap(self):
        with obs.use_registry() as reg:
            scalar_bellman_ford(_NODES, _EDGES, "s")
            assert "solver.budget.rounds_consumed" not in reg.to_dict()["counters"]
        with obs.use_registry() as reg:
            result = scalar_bellman_ford(_NODES, _EDGES, "s", max_rounds=100)
            c = reg.to_dict()["counters"]
            assert c["solver.budget.rounds_consumed"] == result.rounds

    def test_budget_exceeded_counted(self):
        with obs.use_registry() as reg:
            with pytest.raises(BudgetExceededError):
                scalar_bellman_ford(
                    _NODES, _EDGES, "s",
                    budget=Budget(max_relaxation_rounds=0),
                )
            c = reg.to_dict()["counters"]
            assert c["solver.bellman_ford.budget_exceeded"] == 1


class TestCacheCounters:
    def test_fusion_cache_miss_then_hit(self):
        clear_all_caches()
        with obs.use_registry() as reg:
            fuse(figure2_mldg())
            fuse(figure2_mldg())
            c = reg.to_dict()["counters"]
            assert c["fusion.cache.misses"] == 1
            assert c["fusion.cache.hits"] == 1
            assert c["fusion.fuse.calls"] == 2
            # strategy counted on both the cold and the memoized path
            strategy = [k for k in c if k.startswith("fusion.strategy.")]
            assert strategy and sum(c[k] for k in strategy) == 2

    def test_fusion_cache_bypassed_under_limiting_budget(self):
        clear_all_caches()
        with obs.use_registry() as reg:
            fuse(figure2_mldg(), budget=Budget(max_relaxation_rounds=10_000))
            c = reg.to_dict()["counters"]
            assert c["fusion.cache.bypassed"] == 1
            assert "fusion.cache.misses" not in c

    def test_kernel_cache_miss_then_hit(self):
        clear_all_caches()
        clear_kernel_cache()
        fp = fuse_program(figure2_code()).fused
        with obs.use_registry() as reg:
            compile_fused(fp)
            compile_fused(fp)
            c = reg.to_dict()["counters"]
            assert c["kernel.cache.misses"] == 1
            assert c["kernel.cache.hits"] == 1


class TestResilienceBridge:
    def test_report_carries_trace_id_when_tracing(self):
        clear_all_caches()
        with obs.use_registry():
            with obs.tracing() as tracer:
                result = fuse_resilient(figure2_mldg())
            assert result.report.trace_id == tracer.trace_id
            assert result.report.to_dict()["traceId"] == tracer.trace_id

    def test_report_trace_id_none_without_tracer(self):
        clear_all_caches()
        with obs.use_registry():
            result = fuse_resilient(figure2_mldg())
            assert result.report.trace_id is None
            assert result.report.to_dict()["traceId"] is None

    def test_rung_counters_on_success(self):
        clear_all_caches()
        with obs.use_registry() as reg:
            result = fuse_resilient(figure2_mldg())
            c = reg.to_dict()["counters"]
            label = result.report.final_rung.label
            assert c["resilience.ladder.runs"] == 1
            assert c[f"resilience.rung.{label}"] == 1
            assert c[f"resilience.rung.{label}.ok"] == 1
            assert c[f"resilience.final_rung.{label}"] == 1

    def test_rs001_diagnostic_counted_on_budget_failure(self):
        clear_all_caches()
        with obs.use_registry() as reg:
            result = fuse_resilient(
                figure2_mldg(), budget=Budget(max_relaxation_rounds=0)
            )
            c = reg.to_dict()["counters"]
            assert c.get(f"resilience.diagnostic.{RS001}", 0) >= 1
            # it still came to rest somewhere, and that rung was counted
            label = result.report.final_rung.label
            assert c[f"resilience.final_rung.{label}"] == 1

    def test_ladder_span_nests_rung_spans(self):
        clear_all_caches()
        with obs.use_registry():
            with obs.tracing() as tracer:
                fuse_resilient(figure2_mldg())
        ladder = next(s for s in tracer.spans() if s.name == "resilience.ladder")
        rungs = [
            s for s in tracer.spans()
            if s.name.startswith("resilience.rung.")
        ]
        assert rungs
        assert all(s.parent_id == ladder.span_id for s in rungs)
        assert "final_rung" in ladder.attributes


def _traced_parallel_run(jobs):
    """One fully cold traced pipeline + parallel execution of fig2."""
    clear_all_caches()
    clear_kernel_cache()
    with obs.tracing() as tracer:
        result = fuse_program(figure2_code())
        store = ArrayStore.for_program(result.fused.original, 12, 12, seed=3)
        run_parallel(result.fused, 12, 12, store=store, jobs=jobs)
    return tracer, store


class TestTraceDeterminism:
    def test_span_tree_shape_identical_across_job_counts(self):
        with obs.use_registry():
            t1, s1 = _traced_parallel_run(jobs=1)
            t4, s4 = _traced_parallel_run(jobs=4)
        # detail spans (per-chunk) scale with the worker split; the
        # canonical skeleton must not
        assert obs.tree_shape(t1) == obs.tree_shape(t4)
        assert s1.equal(s4)

    def test_detail_chunk_spans_exist(self):
        with obs.use_registry():
            tracer, _ = _traced_parallel_run(jobs=4)
        chunks = [s for s in tracer.spans() if s.name == "exec.parallel.chunk"]
        assert chunks and all(s.detail for s in chunks)
        run_span = next(s for s in tracer.spans() if s.name == "exec.parallel.doall")
        # pool workers have no ambient stack: parents are passed explicitly
        assert all(s.parent_id == run_span.span_id for s in chunks)

    def test_pipeline_spans_nest_under_fuse_program(self):
        with obs.use_registry():
            tracer, _ = _traced_parallel_run(jobs=1)
        names = [s.name for s in tracer.spans()]
        root = next(s for s in tracer.spans() if s.name == "pipeline.fuse_program")
        for child in ("pipeline.parse", "pipeline.extract", "pipeline.codegen"):
            assert child in names
            sp = next(s for s in tracer.spans() if s.name == child)
            assert sp.parent_id == root.span_id
        assert "fusion.fuse" in names and "solver.bellman_ford" in names

    def test_tracing_never_changes_results(self):
        with obs.use_registry():
            clear_all_caches()
            clear_kernel_cache()
            result = fuse_program(figure2_code())
            plain = ArrayStore.for_program(result.fused.original, 12, 12, seed=3)
            run_parallel(result.fused, 12, 12, store=plain, jobs=4)
            _, traced = _traced_parallel_run(jobs=4)
        assert plain.equal(traced)


class TestBenchMetricsBridge:
    def test_records_to_json_carries_metrics(self):
        with obs.use_registry():
            records = bench_solvers(chain=10, repeats=1)
            doc = records_to_json(records)
        assert doc["schema"] == "repro-bench-perf/1"
        counters = doc["metrics"]["counters"]
        assert counters.get("solver.bellman_ford.calls", 0) > 0
        assert counters.get("solver.bellman_ford.pops", 0) > 0
