"""Unit tests for the unified fuse() driver."""

import pytest

from repro import FusionError, Parallelism, Strategy, fuse
from repro.fusion import IllegalMLDGError
from repro.gallery import figure2_mldg, figure8_mldg, figure14_mldg
from repro.graph import mldg_from_table
from repro.vectors import IVec


class TestAutoStrategy:
    def test_acyclic_picks_algorithm3(self):
        res = fuse(figure8_mldg())
        assert res.strategy is Strategy.ACYCLIC
        assert res.parallelism is Parallelism.DOALL

    def test_cyclic_picks_algorithm4(self):
        res = fuse(figure2_mldg())
        assert res.strategy is Strategy.CYCLIC
        assert res.parallelism is Parallelism.DOALL
        assert res.schedule == IVec(1, 0)

    def test_fallback_to_hyperplane(self):
        res = fuse(figure14_mldg())
        assert res.strategy is Strategy.HYPERPLANE
        assert res.parallelism is Parallelism.HYPERPLANE
        assert res.schedule == IVec(5, 1)
        assert res.hyperplane == IVec(1, -5)
        assert any("Theorem 4.2" in n for n in res.notes)

    def test_string_strategy_accepted(self):
        res = fuse(figure8_mldg(), strategy="auto")
        assert res.strategy is Strategy.ACYCLIC

    def test_verification_attached(self):
        res = fuse(figure2_mldg())
        assert res.verification.ok_for_parallel_fusion


class TestForcedStrategies:
    def test_direct_on_fusable_graph(self):
        g = mldg_from_table({("A", "B"): [(0, 0)]}, nodes=["A", "B"])
        res = fuse(g, strategy=Strategy.DIRECT)
        assert res.retiming.is_identity()
        assert res.parallelism is Parallelism.DOALL

    def test_direct_refuses_fusion_preventing(self):
        with pytest.raises(FusionError):
            fuse(figure2_mldg(), strategy=Strategy.DIRECT)

    def test_direct_serial_when_inner_dependence(self):
        g = mldg_from_table({("A", "B"): [(0, 2)]}, nodes=["A", "B"])
        res = fuse(g, strategy=Strategy.DIRECT)
        assert res.parallelism is Parallelism.SERIAL

    def test_legal_only_matches_figure6(self):
        from repro.gallery.paper import figure2_expected_llofra_retiming

        res = fuse(figure2_mldg(), strategy=Strategy.LEGAL_ONLY)
        assert res.strategy is Strategy.LEGAL_ONLY
        assert res.retiming == figure2_expected_llofra_retiming()
        # LLOFRA alone leaves the fused loop serial (Figure 7)
        assert res.parallelism is Parallelism.SERIAL

    def test_forced_hyperplane_on_doallable_graph(self):
        res = fuse(figure2_mldg(), strategy=Strategy.HYPERPLANE)
        assert res.strategy is Strategy.HYPERPLANE
        # LLOFRA on figure 2 keeps a (0,k) vector, so a genuine wavefront
        assert res.hyperplane is not None

    def test_forced_acyclic_on_cyclic_raises(self):
        from repro.fusion import NotAcyclicError

        with pytest.raises(NotAcyclicError):
            fuse(figure2_mldg(), strategy=Strategy.ACYCLIC)


class TestIllegalInputs:
    def test_illegal_graph_rejected_up_front(self):
        g = mldg_from_table(
            {("A", "B"): [(0, -1)], ("B", "A"): [(0, 0)]}, nodes=["A", "B"]
        )
        for strat in Strategy:
            if strat is Strategy.AUTO:
                with pytest.raises(IllegalMLDGError):
                    fuse(g)
            else:
                with pytest.raises(IllegalMLDGError):
                    fuse(g, strategy=strat)


class TestResultSurface:
    def test_summary_readable(self):
        res = fuse(figure2_mldg())
        text = res.summary()
        assert "cyclic" in text
        assert "r(C)=(-1, 0)" in text
        assert "schedule" in text

    def test_is_doall_helper(self):
        assert fuse(figure2_mldg()).is_doall
        assert not fuse(figure14_mldg()).is_doall

    def test_original_untouched(self):
        g = figure2_mldg()
        snapshot = g.copy()
        fuse(g)
        assert g == snapshot

    def test_retimed_graph_consistent(self):
        res = fuse(figure2_mldg())
        assert res.retimed == res.retiming.apply(res.original)
