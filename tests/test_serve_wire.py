"""The repro-serve/1 envelopes (repro.serve.wire)."""

from __future__ import annotations

import json

import pytest

from repro.serve.wire import (
    SERVE_SCHEMA,
    SV006,
    CompileRequest,
    CompileResponse,
    WireError,
    error_payload,
    request_from_program,
    source_digest,
)

SRC = "for i in [0, N):\n    a[i] = a[i - 1] + 1\n"


class TestCompileRequest:
    def test_round_trip_through_json(self):
        req = request_from_program(
            "p", SRC, strategy="cyclic", resilient=True, min_rung="partition",
            deadline_ms=500.0, ladder=["doall", "none"],
        )
        wire = json.loads(json.dumps(req.to_dict()))
        back = CompileRequest.from_dict(wire)
        assert back.source == SRC
        assert back.strategy == "cyclic"
        assert back.resilient is True
        assert back.min_rung == "partition"
        assert back.deadline_ms == 500.0
        assert back.ladder == ("doall", "none")
        assert back.request_id == req.request_id

    def test_request_ids_are_minted_uniquely(self):
        a = CompileRequest(source=SRC)
        b = CompileRequest(source=SRC)
        assert a.request_id and a.request_id != b.request_id

    def test_digest_is_stable_and_text_sensitive(self):
        assert CompileRequest(source=SRC).digest == source_digest(SRC)
        assert source_digest(SRC) != source_digest(SRC + " ")

    def test_backend_round_trips_and_defaults(self):
        assert CompileRequest(source=SRC).backend == "interp"
        req = request_from_program("p", SRC, backend="numpy")
        wire = json.loads(json.dumps(req.to_dict()))
        assert wire["backend"] == "numpy"
        assert CompileRequest.from_dict(wire).backend == "numpy"
        # absent on old-client envelopes -> the wire default
        del wire["backend"]
        assert CompileRequest.from_dict(wire).backend == "interp"

    def test_backend_validated_against_registry(self):
        with pytest.raises(WireError):
            CompileRequest(source=SRC, backend="fortran")
        wire = CompileRequest(source=SRC).to_dict()
        wire["backend"] = "fortran"
        with pytest.raises(WireError):
            CompileRequest.from_dict(wire)

    @pytest.mark.parametrize(
        "mutation",
        [
            {"source": ""},
            {"source": "   "},
            {"strategy": "nope"},
            {"minRung": "basement"},
            {"deadlineMs": 0},
            {"deadlineMs": -5},
            {"deadlineMs": "fast"},
            {"ladder": ["doall", "wrong-rung"]},
            {"fault": "WorkerCrash"},
            {"schema": "repro-serve/999"},
        ],
    )
    def test_malformed_fields_raise_wire_error(self, mutation):
        wire = CompileRequest(source=SRC).to_dict()
        wire.update(mutation)
        with pytest.raises(WireError):
            CompileRequest.from_dict(wire)

    def test_non_dict_and_missing_source_raise(self):
        with pytest.raises(WireError):
            CompileRequest.from_dict([1, 2])
        with pytest.raises(WireError):
            CompileRequest.from_dict({"schema": SERVE_SCHEMA})

    def test_wire_error_carries_sv006(self):
        assert WireError.code == SV006


class TestCompileResponse:
    def test_round_trip(self):
        resp = CompileResponse(
            status="ok", name="p", strategy="auto", parallelism="doall",
            notes=["n"], attempts=2, retries=1, worker_crashes=1,
        )
        back = CompileResponse.from_dict(json.loads(json.dumps(resp.to_dict())))
        assert back.status == "ok"
        assert back.attempts == 2 and back.retries == 1
        assert back.worker_crashes == 1
        assert back.well_formed

    def test_unknown_status_rejected(self):
        with pytest.raises(WireError):
            CompileResponse(status="maybe")
        with pytest.raises(WireError):
            CompileResponse.from_dict({"notstatus": 1})

    def test_well_formed_contract_per_status(self):
        assert CompileResponse(status="ok", strategy="auto").well_formed
        assert CompileResponse(status="ok", rung="doall").well_formed
        assert not CompileResponse(status="ok").well_formed
        assert CompileResponse(
            status="degraded", rung="none", recovery={"rung": "none"}
        ).well_formed
        assert not CompileResponse(status="degraded", rung="none").well_formed
        assert CompileResponse(
            status="error", error={"type": "ParseError", "message": "x"}
        ).well_formed
        assert not CompileResponse(status="error").well_formed
        assert CompileResponse(status="shed", retry_after_ms=12.0).well_formed
        assert not CompileResponse(status="rejected").well_formed

    def test_ok_covers_degraded(self):
        assert CompileResponse(status="degraded", rung="none", recovery={}).ok
        assert not CompileResponse(status="shed", retry_after_ms=1.0).ok


class TestErrorPayload:
    def test_plain_exception(self):
        payload = error_payload(ValueError("boom"))
        assert payload == {
            "type": "ValueError", "message": "boom", "diagnostics": []
        }

    def test_hostile_str_and_diagnostics_survive(self):
        class Hostile(Exception):
            def __str__(self):
                raise RuntimeError("no message for you")

            @property
            def diagnostics(self):
                raise RuntimeError("no diagnostics either")

        payload = error_payload(Hostile())
        assert payload["type"] == "Hostile"
        assert "unprintable" in payload["message"]
        assert payload["diagnostics"] == []
        json.dumps(payload)  # must stay JSON-safe
