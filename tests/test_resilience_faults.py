"""Seeded chaos suite for the fault-injection subsystem.

The acceptance property: under ANY single injected fault, the resilient
pipeline either returns a result that re-verifies against the *pristine*
graph/program, or raises a typed :class:`FusionError` with non-empty
diagnostics.  Never a silent wrong answer, never a bare traceback.

Seed count per (target x injector) pair defaults to 50 and can be scaled
with the ``CHAOS_SEEDS`` environment variable (e.g. ``CHAOS_SEEDS=200`` for
a deeper soak, ``CHAOS_SEEDS=5`` for a quick smoke).  The heavyweight sweeps
carry the ``chaos`` marker so they can be deselected with ``-m "not chaos"``.
"""

import os
import random

import pytest

from repro.codegen import ArrayStore, run_fused, run_original
from repro.fusion import FusionError
from repro.gallery import (
    figure2_mldg,
    figure8_mldg,
    figure14_mldg,
    floyd_steinberg_mldg,
    iir2d_mldg,
)
from repro.gallery.common import iir2d_code
from repro.gallery.paper import figure2_code
from repro.loopir import parse_program
from repro.resilience import Rung, fuse_program_resilient, fuse_resilient, faults
from repro.resilience.partition import validate_partition
from repro.retiming import verify_retiming
from repro.vectors import IVec

CHAOS_SEEDS = int(os.environ.get("CHAOS_SEEDS", "50"))

GALLERY = {
    "fig2": figure2_mldg,
    "fig8": figure8_mldg,
    "fig14": figure14_mldg,
    "iir2d": iir2d_mldg,
    "sor": floyd_steinberg_mldg,
}

INJECTORS = {inj.name: inj for inj in faults.registered_injectors()}

PROGRAMS = {
    "fig2": figure2_code(),
    "iir2d": iir2d_code(),
}


def _external_verify(g, res) -> None:
    """Re-verify a ladder result against the PRISTINE graph.

    This must not trust anything the (possibly fault-ridden) pipeline
    verified internally.
    """
    rung = res.rung
    if rung is Rung.ORIGINAL:
        assert res.retiming is None or all(
            v == IVec.zero(g.dim) for v in res.retiming.as_dict().values()
        )
        return
    if rung is Rung.PARTITION:
        assert res.partition is not None
        assert validate_partition(g, res.partition) is None
        return
    assert res.retiming is not None
    v = verify_retiming(g, res.retiming)
    if rung is Rung.DOALL:
        assert v.ok_for_parallel_fusion
    else:
        assert v.ok_for_legal_fusion
    if rung is Rung.HYPERPLANE:
        s = res.schedule
        assert s is not None and any(c != 0 for c in s)
        gr = res.retiming.apply(g)
        zero = IVec.zero(g.dim)
        for e in gr.edges():
            for d in e.vectors:
                assert d == zero or s.dot(d) > 0


class TestInjectorMechanics:
    def test_registry_covers_every_point(self):
        points = {inj.point for inj in faults.registered_injectors()}
        assert points == set(faults.POINTS)

    def test_pass_through_is_identity_outside_context(self):
        g = figure2_mldg()
        assert faults.pass_through("mldg", g) is g

    def test_injection_is_deterministic_per_seed(self):
        g = figure2_mldg()
        inj = INJECTORS["EdgeWeightCorruption"]
        with faults.inject(inj, seed=7):
            a = faults.pass_through("mldg", g)
        with faults.inject(inj, seed=7):
            b = faults.pass_through("mldg", g)
        assert a is not g
        assert a.describe() == b.describe()

    def test_different_seeds_eventually_differ(self):
        g = figure2_mldg()
        inj = INJECTORS["EdgeWeightCorruption"]
        texts = set()
        for seed in range(8):
            with faults.inject(inj, seed=seed):
                texts.add(faults.pass_through("mldg", g).describe())
        assert len(texts) > 1

    def test_wrong_point_is_untouched(self):
        g = figure2_mldg()
        inj = INJECTORS["ScheduleOffByOne"]  # point "schedule"
        with faults.inject(inj, seed=0) as active:
            assert faults.pass_through("mldg", g) is g
            assert active.hits == 0

    def test_hits_count_corruptions(self):
        inj = INJECTORS["ScheduleOffByOne"]
        with faults.inject(inj, seed=0) as active:
            out = faults.pass_through("schedule", IVec(1, 0))
            assert out != IVec(1, 0)
            assert active.hits == 1

    def test_contexts_nest_and_restore(self):
        outer = INJECTORS["ScheduleOffByOne"]
        inner = INJECTORS["StatementReorder"]
        with faults.inject(outer, seed=0):
            with faults.inject(inner, seed=0):
                # inner context owns the seam: schedule passes through clean
                assert faults.pass_through("schedule", IVec(1, 0)) == IVec(1, 0)
            assert faults.pass_through("schedule", IVec(1, 0)) != IVec(1, 0)
        assert faults.pass_through("schedule", IVec(1, 0)) == IVec(1, 0)

    def test_statement_reorder_permutes(self):
        inj = INJECTORS["StatementReorder"]
        body = ("a", "b", "c")
        with faults.inject(inj, seed=3):
            out = faults.pass_through("body-order", body)
        assert sorted(out) == sorted(body) and tuple(out) != body

    def test_retiming_injectors_change_some_mapping(self):
        from repro.fusion import fuse

        r = fuse(figure2_mldg()).retiming
        for name in ("RetimingDrop", "RetimingPerturb"):
            changed = 0
            for seed in range(5):
                with faults.inject(INJECTORS[name], seed=seed):
                    out = faults.pass_through("retiming", r)
                changed += out.as_dict() != r.as_dict()
            assert changed > 0, name


@pytest.mark.chaos
class TestGraphChaos:
    """gallery MLDG x injector x CHAOS_SEEDS seeds."""

    @pytest.mark.parametrize("graph_name", sorted(GALLERY))
    @pytest.mark.parametrize("inj_name", sorted(INJECTORS))
    def test_single_fault_never_silent(self, graph_name, inj_name):
        build = GALLERY[graph_name]
        inj = INJECTORS[inj_name]
        outcomes = {"ok": 0, "typed-error": 0, "hits": 0}
        for seed in range(CHAOS_SEEDS):
            g = build()
            with faults.inject(inj, seed=seed) as active:
                try:
                    res = fuse_resilient(g)
                except FusionError as exc:
                    assert exc.diagnostics, (
                        f"{graph_name}/{inj_name}/seed={seed}: typed error "
                        "without diagnostics"
                    )
                    outcomes["typed-error"] += 1
                else:
                    _external_verify(build(), res)
                    assert res.report is not None
                    outcomes["ok"] += 1
                outcomes["hits"] += active.hits
        assert outcomes["ok"] + outcomes["typed-error"] == CHAOS_SEEDS

    def test_faults_actually_fire(self):
        """The chaos property is vacuous if injectors never trigger."""
        g = figure2_mldg()
        inj = INJECTORS["EdgeWeightCorruption"]
        total_hits = 0
        for seed in range(10):
            with faults.inject(inj, seed=seed) as active:
                try:
                    fuse_resilient(g)
                except FusionError:
                    pass
                total_hits += active.hits
        assert total_hits > 0

    def test_corruption_forces_observable_degradation_somewhere(self):
        """At least one seed must knock fig2 off its fault-free DOALL rung
        or raise -- otherwise the injected faults are not load-bearing."""
        inj = INJECTORS["EdgeWeightCorruption"]
        disturbed = 0
        for seed in range(max(CHAOS_SEEDS, 10)):  # seed 5 is the first hit
            with faults.inject(inj, seed=seed):
                try:
                    res = fuse_resilient(figure2_mldg())
                except FusionError:
                    disturbed += 1
                else:
                    disturbed += res.rung is not Rung.DOALL
        assert disturbed > 0


@pytest.mark.chaos
class TestProgramChaos:
    """End-to-end chaos through parse -> ladder -> codegen -> equivalence."""

    @pytest.mark.parametrize("prog_name", sorted(PROGRAMS))
    def test_body_order_chaos(self, prog_name):
        source = PROGRAMS[prog_name]
        inj = INJECTORS["StatementReorder"]
        nest = parse_program(source)
        n, m, seed0 = 7, 6, 2  # deliberately NOT the gate's sizes/seeds
        base = ArrayStore.for_program(nest, n, m, seed=seed0)
        ref = run_original(nest, n, m, store=base.copy())
        for seed in range(CHAOS_SEEDS):
            with faults.inject(inj, seed=seed):
                try:
                    res = fuse_program_resilient(source)
                except FusionError as exc:
                    assert exc.diagnostics
                    continue
            # whatever survived must still be bit-exact on fresh sizes
            if res.fused is not None:
                got = run_fused(res.fused, n, m, store=base.copy(), mode="serial")
            elif res.partitioned is not None:
                got = run_original(res.partitioned, n, m, store=base.copy())
            else:
                continue
            assert ref.equal(got), f"{prog_name}/seed={seed}: silent corruption"

    @pytest.mark.parametrize("inj_name", sorted(INJECTORS))
    def test_fig2_program_all_injectors(self, inj_name):
        source = PROGRAMS["fig2"]
        inj = INJECTORS[inj_name]
        seeds = max(CHAOS_SEEDS // 5, 10)
        for seed in range(seeds):
            with faults.inject(inj, seed=seed):
                try:
                    res = fuse_program_resilient(source)
                except FusionError as exc:
                    assert exc.diagnostics
                    continue
            assert res.report.final_rung is res.rung

    def test_interleaved_chaos_is_reproducible(self):
        """Same seed, same injector, same target => identical final rung."""
        inj = INJECTORS["RetimingPerturb"]
        rng = random.Random(99)
        seeds = [rng.randrange(10_000) for _ in range(10)]

        def outcome(seed):
            with faults.inject(inj, seed=seed):
                try:
                    return fuse_resilient(figure2_mldg()).rung
                except FusionError as exc:
                    return type(exc).__name__

        first = [outcome(s) for s in seeds]
        second = [outcome(s) for s in seeds]
        assert first == second
