"""Admission control and load shedding (repro.serve.admission)."""

from __future__ import annotations

import pytest

from repro.serve.admission import AdmissionController


class TestAdmission:
    def test_admits_up_to_quota_then_sheds(self):
        ctl = AdmissionController(2)
        t1 = ctl.try_admit()
        t2 = ctl.try_admit()
        assert t1 is not None and t2 is not None
        assert ctl.try_admit() is None  # quota exhausted
        t1.release(10.0)
        assert ctl.try_admit() is not None  # slot freed

    def test_ticket_release_is_idempotent(self):
        ctl = AdmissionController(1)
        ticket = ctl.try_admit()
        ticket.release(5.0)
        ticket.release(5.0)
        assert ctl.inflight == 0
        assert ctl.try_admit() is not None

    def test_ticket_carries_armed_budget(self):
        ctl = AdmissionController(1, default_deadline_ms=1234.0)
        ticket = ctl.try_admit()
        remaining = ticket.budget.remaining_ms()
        assert remaining is not None and 0 < remaining <= 1234.0
        ticket.release()
        explicit = ctl.try_admit(deadline_ms=50.0)
        assert explicit.budget.remaining_ms() <= 50.0

    def test_retry_after_scales_with_overload(self):
        ctl = AdmissionController(1, initial_service_ms=100.0)
        baseline = ctl.retry_after_ms()
        ticket = ctl.try_admit()
        overloaded = ctl.retry_after_ms()
        assert overloaded > baseline >= 1.0
        ticket.release()

    def test_service_time_ewma_tracks_releases(self):
        ctl = AdmissionController(4, initial_service_ms=50.0, ewma_alpha=0.5)
        for _ in range(8):
            ctl.try_admit().release(1000.0)
        assert ctl.snapshot()["serviceMsEwma"] > 500.0

    def test_snapshot_counts(self):
        ctl = AdmissionController(1)
        ticket = ctl.try_admit()
        assert ctl.try_admit() is None
        snap = ctl.snapshot()
        assert snap["maxInflight"] == 1
        assert snap["inflight"] == 1
        assert snap["admittedTotal"] == 1
        assert snap["shedTotal"] == 1
        ticket.release()

    def test_rejects_nonpositive_quota(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
