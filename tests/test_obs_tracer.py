"""Unit tests for repro.obs spans, the active-tracer plumbing and exporters."""

import json
import threading

import pytest

from repro.obs import (
    NOOP_TRACER,
    TRACE_FORMATS,
    TRACE_SCHEMA,
    NoopSpan,
    Tracer,
    current_tracer,
    render_trace,
    render_trace_chrome,
    render_trace_json,
    render_trace_text,
    trace_span,
    trace_to_dict,
    tracing,
    tree_shape,
    write_trace,
)

pytestmark = pytest.mark.obs


class TestSpans:
    def test_nesting_links_parent(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        outer, inner = t.spans()
        assert outer.name == "outer" and outer.parent_id is None
        assert inner.name == "inner" and inner.parent_id == outer.span_id

    def test_siblings_share_parent(self):
        t = Tracer()
        with t.span("root"):
            with t.span("a"):
                pass
            with t.span("b"):
                pass
        root, a, b = t.spans()
        assert a.parent_id == b.parent_id == root.span_id

    def test_timings_populated_on_close(self):
        t = Tracer()
        with t.span("work") as sp:
            assert sp.end_wall is None
            assert sp.wall_s == 0.0  # open span reads as zero
        assert sp.end_wall is not None and sp.end_cpu is not None
        assert sp.wall_s >= 0.0 and sp.cpu_s >= 0.0

    def test_attributes_from_kwargs_and_set(self):
        t = Tracer()
        with t.span("s", nodes=4) as sp:
            sp.set(outcome="ok").set(rounds=2)
        assert sp.attributes == {"nodes": 4, "outcome": "ok", "rounds": 2}

    def test_span_ids_unique_and_increasing(self):
        t = Tracer()
        for k in range(5):
            with t.span(f"s{k}"):
                pass
        ids = [s.span_id for s in t.spans()]
        assert ids == sorted(ids) and len(set(ids)) == 5

    def test_explicit_parent_across_threads(self):
        t = Tracer()
        with t.span("root") as root:
            def work():
                # a worker thread has no ambient stack: without parent= the
                # span would become a root
                with t.span("child", parent=root):
                    pass

            th = threading.Thread(target=work)
            th.start()
            th.join()
        child = next(s for s in t.spans() if s.name == "child")
        assert child.parent_id == root.span_id
        assert child.thread_id != root.thread_id

    def test_worker_span_without_parent_is_a_root(self):
        t = Tracer()
        with t.span("root"):
            def work():
                with t.span("orphan"):
                    pass

            th = threading.Thread(target=work)
            th.start()
            th.join()
        orphan = next(s for s in t.spans() if s.name == "orphan")
        assert orphan.parent_id is None

    def test_detail_flag(self):
        t = Tracer()
        with t.span("chunk", detail=True):
            pass
        assert t.spans()[0].detail is True

    def test_len(self):
        t = Tracer()
        assert len(t) == 0
        with t.span("a"):
            pass
        assert len(t) == 1


class TestActiveTracer:
    def test_default_is_noop(self):
        assert current_tracer() is NOOP_TRACER
        assert not NOOP_TRACER.active

    def test_trace_span_noop_yields_noop_span(self):
        with trace_span("anything", key="value") as sp:
            assert isinstance(sp, NoopSpan)
            assert sp.set(more="attrs") is sp  # chainable, drops everything

    def test_tracing_installs_and_restores(self):
        with tracing() as t:
            assert current_tracer() is t
            assert t.active
            with trace_span("captured"):
                pass
        assert current_tracer() is NOOP_TRACER
        assert [s.name for s in t.spans()] == ["captured"]

    def test_tracing_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert current_tracer() is NOOP_TRACER

    def test_nested_tracing_restores_outer(self):
        with tracing() as outer:
            with tracing() as inner:
                assert current_tracer() is inner
            assert current_tracer() is outer

    def test_trace_ids_distinct(self):
        assert Tracer().trace_id != Tracer().trace_id

    def test_noop_tracer_records_nothing(self):
        with NOOP_TRACER.span("x"):
            pass
        assert NOOP_TRACER.spans() == [] and len(NOOP_TRACER) == 0


class TestTreeShape:
    def _forest(self, order):
        t = Tracer()
        with t.span("root"):
            for name in order:
                with t.span(name):
                    pass
        return t

    def test_shape_ignores_sibling_order(self):
        assert tree_shape(self._forest(["a", "b"])) == tree_shape(
            self._forest(["b", "a"])
        )

    def test_shape_counts_multiplicity(self):
        assert tree_shape(self._forest(["a", "a"])) != tree_shape(
            self._forest(["a"])
        )

    def test_detail_excluded_by_default(self):
        t = Tracer()
        with t.span("run"):
            with t.span("chunk", detail=True):
                pass
        assert tree_shape(t) == (("run", ()),)
        assert tree_shape(t, include_detail=True) == (
            ("run", (("chunk", ()),)),
        )

    def test_accepts_span_lists(self):
        t = self._forest(["a"])
        assert tree_shape(t.spans()) == tree_shape(t)


class TestExporters:
    def _traced(self):
        t = Tracer()
        with t.span("outer", nodes=3):
            with t.span("inner", detail=True):
                pass
        return t

    def test_json_document(self):
        t = self._traced()
        doc = json.loads(render_trace_json(t))
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["traceId"] == t.trace_id
        assert [s["name"] for s in doc["spans"]] == ["outer", "inner"]
        outer, inner = doc["spans"]
        assert inner["parent"] == outer["id"]
        assert inner["detail"] is True
        assert outer["attributes"] == {"nodes": 3}
        for span in doc["spans"]:
            assert span["durUs"] >= 0 and span["startUs"] >= 0

    def test_chrome_document(self):
        t = self._traced()
        doc = json.loads(render_trace_chrome(t))
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["outer", "inner"]
        for e in events:
            assert e["ph"] == "X"
            assert isinstance(e["ts"], (int, float))
            assert isinstance(e["dur"], (int, float))
            assert e["pid"] == 1 and isinstance(e["tid"], int)
        assert events[1]["cat"] == "detail"
        assert doc["otherData"]["traceId"] == t.trace_id

    def test_text_tree(self):
        text = render_trace_text(self._traced())
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        assert lines[1].startswith("outer")
        assert lines[2].startswith("  inner")  # nested -> indented
        assert "nodes=3" in lines[1]

    def test_render_trace_dispatch(self):
        t = self._traced()
        for fmt in TRACE_FORMATS:
            assert render_trace(t, fmt)
        with pytest.raises(ValueError, match="unknown trace format"):
            render_trace(t, "yaml")

    def test_write_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        write_trace(self._traced(), str(path), "json")
        assert json.loads(path.read_text())["schema"] == TRACE_SCHEMA

    def test_trace_to_dict_roundtrips_spans(self):
        t = self._traced()
        assert len(trace_to_dict(t)["spans"]) == len(t.spans())


class TestThreadSafety:
    def test_concurrent_spans_all_recorded(self):
        t = Tracer()
        n_threads, per_thread = 8, 50

        def work(k):
            for i in range(per_thread):
                with t.span(f"t{k}", detail=True):
                    pass

        threads = [threading.Thread(target=work, args=(k,)) for k in range(n_threads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        spans = t.spans()
        assert len(spans) == n_threads * per_thread
        assert len({s.span_id for s in spans}) == len(spans)
