"""Golden shim tests: the legacy entry points are pinned to fixtures.

The fixtures under ``tests/fixtures/golden/`` were captured from the
pipeline *before* it was refactored onto the Session + PassManager core
(``tests/fixtures/golden/capture.py`` regenerates them).  These tests
re-run the same public surfaces -- ``fuse_program`` summaries, emitted
code, diagnostics, and the ``repro-fuse fuse`` / ``run`` / ``run
--resilient`` CLI outputs -- and require the outputs to match, so any
behavioral drift in the thin wrappers is a test failure, not a silent
change.

Comparison rules: plain-text records must match byte for byte.  JSON
records are parsed and compared structurally after stripping wall-clock
fields -- the seed pipeline's resilient retiming serialization was
already sensitive to hash randomization in dict key *order* (verified
against the pre-refactor tree), and structural equality is exactly the
order-insensitive contract the byte form cannot express.
"""

from __future__ import annotations

import importlib.util
import io
import json
import os
from contextlib import redirect_stdout

import pytest

HERE = os.path.dirname(os.path.abspath(__file__))
GOLDEN = os.path.join(HERE, "fixtures", "golden")

_spec = importlib.util.spec_from_file_location(
    "golden_capture", os.path.join(GOLDEN, "capture.py")
)
assert _spec is not None and _spec.loader is not None
_capture = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_capture)

normalize_timings = _capture.normalize_timings

PROGRAMS = sorted(
    name for name in os.listdir(GOLDEN)
    if os.path.isdir(os.path.join(GOLDEN, name))
)


def _split_exit(text: str):
    """``exit=N`` first line (when present) + the payload."""
    if text.startswith("exit="):
        head, _, rest = text.partition("\n")
        return int(head[len("exit="):]), rest
    return None, text


def _cli(argv):
    from repro.cli import main

    buf = io.StringIO()
    with redirect_stdout(buf):
        try:
            code = main(argv)
        except SystemExit as exc:
            code = int(exc.code or 0)
    return int(code), buf.getvalue()


def _assert_matches(fixture_path: str, got_text: str) -> None:
    with open(fixture_path, "r", encoding="utf-8") as fh:
        want_text = fh.read()
    want_code, want_payload = _split_exit(want_text)
    got_code, got_payload = _split_exit(got_text)
    assert got_code == want_code, (
        f"{os.path.basename(fixture_path)}: exit code {got_code} != {want_code}"
    )
    if fixture_path.endswith(".json"):
        want = normalize_timings(json.loads(want_payload))
        got = normalize_timings(json.loads(got_payload))
        assert got == want, f"{os.path.basename(fixture_path)} drifted"
    else:
        assert got_payload == want_payload, (
            f"{os.path.basename(fixture_path)} drifted"
        )


@pytest.fixture(scope="module")
def sources():
    return {
        name: open(
            os.path.join(GOLDEN, f"{name}.loop"), "r", encoding="utf-8"
        ).read()
        for name in PROGRAMS
    }


@pytest.mark.parametrize("name", PROGRAMS)
def test_fuse_program_shim_matches_golden(name, sources):
    from repro.pipeline import fuse_program

    outdir = os.path.join(GOLDEN, name)
    out = fuse_program(sources[name])
    _assert_matches(
        os.path.join(outdir, "summary.txt"), out.fusion.summary() + "\n"
    )
    _assert_matches(
        os.path.join(outdir, "emitted.txt"), out.emitted_code() + "\n"
    )
    _assert_matches(
        os.path.join(outdir, "diagnostics.json"),
        json.dumps([d.to_dict() for d in out.diagnostics], indent=2) + "\n",
    )


@pytest.mark.parametrize("name", PROGRAMS)
def test_cli_fuse_shim_matches_golden(name):
    path = os.path.join(GOLDEN, f"{name}.loop")
    code, text = _cli(["fuse", path])
    _assert_matches(
        os.path.join(GOLDEN, name, "cli_fuse.txt"), f"exit={code}\n{text}"
    )


@pytest.mark.parametrize("name", PROGRAMS)
def test_cli_run_json_shim_matches_golden(name):
    path = os.path.join(GOLDEN, f"{name}.loop")
    code, text = _cli(["run", path, "--format", "json"])
    _assert_matches(
        os.path.join(GOLDEN, name, "cli_run.json"), f"exit={code}\n{text}"
    )


@pytest.mark.parametrize("name", PROGRAMS)
def test_cli_run_resilient_shim_matches_golden(name):
    path = os.path.join(GOLDEN, f"{name}.loop")
    code, text = _cli(["run", path, "--resilient", "--format", "json"])
    _assert_matches(
        os.path.join(GOLDEN, name, "cli_run_resilient.json"),
        f"exit={code}\n{text}",
    )


def test_fuse_program_resilient_shim_signature_unchanged():
    """The wrapper keeps the historical signature and exception types."""
    import inspect

    from repro.resilience.pipeline import fuse_program_resilient

    params = inspect.signature(fuse_program_resilient).parameters
    assert list(params) == [
        "source", "budget", "min_rung", "verify_execution", "bounds",
    ]
    assert all(
        p.kind is inspect.Parameter.KEYWORD_ONLY
        for n, p in params.items()
        if n != "source"
    )


def test_fuse_program_shim_signature_unchanged():
    import inspect

    from repro.pipeline import fuse_program

    params = inspect.signature(fuse_program).parameters
    assert list(params) == ["source", "strategy", "budget"]
