"""The HTTP front end (repro.serve.daemon)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.gallery.paper import figure2_code
from repro.serve.daemon import MAX_BODY_BYTES, ServeDaemon, http_status_for
from repro.serve.service import CompileService, ServeConfig
from repro.serve.wire import SERVE_SCHEMA, SV001, SV002, SV006, SV007


def _post(url: str, path: str, payload) -> tuple[int, dict, dict]:
    body = json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url + path, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def _get(url: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url + path, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture(scope="module")
def daemon():
    with ServeDaemon(ServeConfig(workers=1), port=0) as d:
        yield d


class TestHttpStatusMapping:
    def test_table(self):
        assert http_status_for({"status": "ok"}) == 200
        assert http_status_for({"status": "degraded"}) == 200
        assert http_status_for({"status": "error"}) == 422
        assert http_status_for({"status": "error", "code": SV006}) == 400
        assert http_status_for({"status": "shed"}) == 429
        assert http_status_for({"status": "rejected"}) == 503
        assert http_status_for({"status": "???"}) == 500

    def test_infrastructure_errors_are_the_servers_fault(self):
        # the exhausted fallback (SV001/SV002) and internal supervisor
        # errors (SV007) are 5xx, not client errors
        assert http_status_for({"status": "error", "code": SV001}) == 500
        assert http_status_for({"status": "error", "code": SV002}) == 500
        assert http_status_for({"status": "error", "code": SV007}) == 500


class TestEndpoints:
    def test_healthz(self, daemon):
        status, doc = _get(daemon.url, "/healthz")
        assert status == 200
        assert doc["status"] == "ok" and doc["schema"] == SERVE_SCHEMA
        assert "poolGeneration" in doc

    def test_compile_ok(self, daemon):
        status, doc, _ = _post(
            daemon.url, "/v1/compile",
            {"schema": SERVE_SCHEMA, "source": figure2_code(), "name": "fig2"},
        )
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["parallelism"] == "doall"
        assert doc["traceId"]

    def test_compile_parse_error_maps_to_422(self, daemon):
        status, doc, _ = _post(
            daemon.url, "/v1/compile",
            {"schema": SERVE_SCHEMA, "source": "not a ( program"},
        )
        assert status == 422
        assert doc["status"] == "error"
        assert doc["error"]["type"] == "ParseError"

    def test_malformed_envelope_maps_to_400(self, daemon):
        status, doc, _ = _post(daemon.url, "/v1/compile", {"no": "source"})
        assert status == 400
        assert doc["code"] == SV006

    def test_invalid_json_body_maps_to_400(self, daemon):
        req = urllib.request.Request(
            daemon.url + "/v1/compile", data=b"{nope",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=60)
        assert err.value.code == 400
        assert json.loads(err.value.read())["code"] == SV006

    def test_oversized_body_is_refused(self, daemon):
        # the server answers 413 without draining the body; depending on
        # socket buffering the client either reads it or sees the reset
        try:
            status, _doc, _headers = _post(
                daemon.url, "/v1/compile",
                {"schema": SERVE_SCHEMA, "source": "x" * (MAX_BODY_BYTES + 1)},
            )
        except urllib.error.URLError:
            return  # connection torn down mid-upload: refused all the same
        assert status == 413
        # the daemon still serves after the refusal
        ok, _ = _get(daemon.url, "/healthz")
        assert ok == 200

    def test_oversized_body_closes_the_keepalive_connection(self, daemon):
        # the unread body must not be parsed as the next request on a
        # kept-alive connection: the 413 carries Connection: close and the
        # server hangs up instead of waiting for more requests
        import socket

        host, port = daemon.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.settimeout(10)
            head = (
                f"POST /v1/compile HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {MAX_BODY_BYTES + 100}\r\n\r\n"
            ).encode("ascii")
            sock.sendall(head)  # headers only; the body never arrives
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:  # EOF: the server closed the connection
                    break
                chunks.append(chunk)
            data = b"".join(chunks)
        status_line = data.split(b"\r\n", 1)[0]
        assert b" 413 " in status_line + b" "
        assert b"connection: close" in data.lower()

    def test_batch_endpoint(self, daemon):
        programs = [
            {"schema": SERVE_SCHEMA, "source": figure2_code(), "name": "a"},
            {"no": "source"},
        ]
        status, doc, _ = _post(daemon.url, "/v1/batch", {"programs": programs})
        assert status == 200
        assert doc["okCount"] == 1
        assert [r["status"] for r in doc["responses"]] == ["ok", "error"]

    def test_batch_requires_programs_list(self, daemon):
        status, doc, _ = _post(daemon.url, "/v1/batch", {"programs": "nope"})
        assert status == 400

    def test_statz_reports_serve_metrics_only(self, daemon):
        _post(
            daemon.url, "/v1/compile",
            {"schema": SERVE_SCHEMA, "source": figure2_code()},
        )
        status, doc = _get(daemon.url, "/statz")
        assert status == 200
        assert doc["service"]["workers"] == 1
        counters = doc["metrics"]["counters"]
        assert counters.get("serve.requests", 0) >= 1
        # serve.* plus the daemon-process store.* (L2 cache) families only
        assert all(
            name.startswith(("serve.", "store.")) for name in counters
        )

    def test_unknown_paths_are_404(self, daemon):
        assert _get(daemon.url, "/nope")[0] == 404
        assert _post(daemon.url, "/v1/nope", {})[0] == 404


class TestOverloadOverHttp:
    def test_shed_maps_to_429_with_retry_after(self):
        service = CompileService(ServeConfig(workers=1, max_inflight=1))
        with ServeDaemon(service=service, port=0) as d:
            ticket = service.admission.try_admit()  # occupy the only slot
            try:
                status, doc, headers = _post(
                    d.url, "/v1/compile",
                    {"schema": SERVE_SCHEMA, "source": figure2_code()},
                )
            finally:
                ticket.release()
            assert status == 429
            assert doc["status"] == "shed"
            assert int(headers["Retry-After"]) >= 1
        service.shutdown()

    def test_open_breaker_maps_to_503_with_retry_after(self):
        service = CompileService(ServeConfig(workers=1))
        with ServeDaemon(service=service, port=0) as d:
            from repro.serve.wire import source_digest

            key = service._class_key(source_digest(figure2_code()))
            for _ in range(service.config.breaker_threshold):
                service.breaker.record_failure(key)
            status, doc, headers = _post(
                d.url, "/v1/compile",
                {"schema": SERVE_SCHEMA, "source": figure2_code()},
            )
            assert status == 503
            assert doc["status"] == "rejected"
            assert int(headers["Retry-After"]) >= 1
        service.shutdown()
