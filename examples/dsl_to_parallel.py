#!/usr/bin/env python
"""The full compiler pipeline on the paper's own running example (Figure 2).

Walks every stage the library provides -- parse, dependence extraction,
legality analysis, all four fusion algorithms side by side, code
generation, and execution -- reproducing along the way the exact artifacts
printed in the paper (Figures 5, 6, 12 and 13).

Run with::

    python examples/dsl_to_parallel.py
"""

from repro.codegen import apply_fusion, emit_fused_program
from repro.depend import dependence_table, describe_dependencies, extract_mldg
from repro.fusion import (
    Strategy,
    cyclic_parallel_retiming,
    fuse,
    legal_fusion_retiming,
    llofra_constraint_graph,
)
from repro.gallery.paper import figure2_code
from repro.graph import is_fusion_legal, lemma_2_1_holds
from repro.loopir import parse_program
from repro.verify import runtime_doall_violations, verify_fusion_result


def main() -> None:
    source = figure2_code()
    print("=== source program (paper Figure 2b) ===")
    print(source)
    print()

    nest = parse_program(source)
    g = extract_mldg(nest)
    print("=== extracted MLDG (paper Figure 2a) ===")
    print(g.describe())
    print()
    print(describe_dependencies(dependence_table(nest)))
    print()
    print(f"legal 2LDG (Lemma 2.1 bound holds): {lemma_2_1_holds(g)}")
    print(f"directly fusable (Theorem 3.1): {is_fusion_legal(g)}")
    print()

    print("=== Algorithm 2 (LLOFRA) -- legal fusion only ===")
    print(llofra_constraint_graph(g).describe())
    r_legal = legal_fusion_retiming(g)
    print(f"retiming (paper Figure 6): {r_legal.describe()}")
    fused_legal = apply_fusion(nest, r_legal, mldg=g)
    rows_serial = runtime_doall_violations(fused_legal, 3, 3, limit=1000)
    print(
        f"fused loop rows carry {len(rows_serial)} dependence pairs on a 4x4 "
        "space -- serial, as in paper Figure 7"
    )
    print()

    print("=== Algorithm 4 -- legal fusion AND full parallelism ===")
    r_par = cyclic_parallel_retiming(g)
    print(f"retiming (paper Figure 12): {r_par.describe()}")
    fused_par = apply_fusion(nest, r_par, mldg=g)
    assert runtime_doall_violations(fused_par, 3, 3) == []
    print("fused loop rows carry no dependencies -- DOALL, as in Figure 13")
    print()
    print("generated program (paper Figure 12b):")
    print(emit_fused_program(fused_par))
    print()

    print("=== unified driver + end-to-end verification ===")
    result = fuse(g)
    assert result.strategy is Strategy.CYCLIC
    reports = verify_fusion_result(nest, result)
    print(
        f"fuse() chose {result.strategy.value}; "
        f"{len(reports)} randomised executions all bit-identical: "
        f"{all(r.equivalent for r in reports)}"
    )


if __name__ == "__main__":
    main()
