#!/usr/bin/env python
"""Compiling Algorithm 5's hyperplane schedule down to ordinary loops.

The paper proves a DOALL hyperplane always exists (Theorem 4.4) but leaves
the code for it "beyond the scope of this paper".  This example shows the
missing step in two equivalent ways:

1. **Unimodular view** -- the wavefront is the fused nest under the
   transformation ``T`` whose first row is the schedule vector ``s``:
   transformed first coordinates *are* the wavefront levels, so the
   transformed nest is an ordinary row-parallel loop (checked on the MLDG).
2. **Emitted code** -- ``emit_wavefront_program`` prints that skewed nest,
   and ``wavefront_iterations`` enumerates its (t, p) points exactly;
   executing the program wavefront-by-wavefront (randomised within each
   front) is verified bit-identical to the sequential original.

Run with::

    python examples/wavefront_compilation.py
"""

from repro.codegen import (
    ArrayStore,
    emit_wavefront_program,
    run_fused,
    run_original,
    wavefront_iterations,
)
from repro.pipeline import fuse_program
from repro.retiming import is_doall_after_fusion
from repro.transforms import transform_mldg, wavefront_transform
from repro.gallery.extended import extended_kernels


def main() -> None:
    kernel = next(k for k in extended_kernels() if k.key == "anisotropic-sweep")
    print(f"kernel: {kernel.title}\n")
    print(kernel.code)
    print()

    out = fuse_program(kernel.code)
    result = out.fusion
    print(f"fuse() -> {result.strategy.value}: schedule s = {result.schedule}, "
          f"hyperplane h = {result.hyperplane}")
    print(f"retiming: {result.retiming.describe()}")
    print()

    # 1. the unimodular view
    T = wavefront_transform(result.schedule)
    skewed = transform_mldg(result.retimed, T)
    print(f"wavefront transform T = {T} (det {T.det})")
    print("transformed dependence vectors:", sorted(set(skewed.all_vectors())))
    assert is_doall_after_fusion(skewed)
    print("-> every transformed vector is outermost-carried or zero: the")
    print("   skewed nest is an ordinary fused loop with DOALL rows.\n")

    # 2. the emitted skewed program
    print(emit_wavefront_program(out.fused, result.schedule))
    print()

    # 3. executable proof
    n, m = 10, 9
    base = ArrayStore.for_program(out.nest, n, m, seed=8)
    reference = run_original(out.nest, n, m, store=base.copy())
    waved = run_fused(
        out.fused, n, m, store=base.copy(), mode="hyperplane",
        schedule=result.schedule, order_seed=99,
    )
    print(f"wavefront execution vs original: "
          f"{'bit-identical' if reference.equal(waved) else 'MISMATCH'}")
    assert reference.equal(waved)

    levels = list(wavefront_iterations(out.fused, result.schedule, n, m))
    widths = [len(pts) for _t, pts in levels]
    print(f"{len(levels)} wavefronts over the {n+1}x{m+1} fused space; "
          f"widest front has {max(widths)} parallel points.")


if __name__ == "__main__":
    main()
