#!/usr/bin/env python
"""Quickstart: fuse a sequence of DOALL loops that naive fusion cannot touch.

Builds a small multi-dimensional loop dependence graph (MLDG) by hand, asks
the library for the best fusion, and prints what happened.  Run with::

    python examples/quickstart.py
"""

from repro import IVec, MLDG, fuse
from repro.baselines import direct_fusion


def main() -> None:
    # Three DOALL loops inside one outer loop.  Loop B consumes A's values
    # from two inner iterations AHEAD (vector (0, -2)): after naive fusion,
    # B at iteration j would read a value A only produces at j+2 -- a
    # fusion-preventing dependence.
    g = MLDG(dim=2)
    g.add_dependence("A", "B", IVec(0, -2))
    g.add_dependence("B", "C", IVec(0, -1))
    g.add_dependence("C", "A", IVec(1, 0))  # outermost-carried feedback

    print("input MLDG:")
    print(g.describe())
    print()

    print("naive fusion:", direct_fusion(g).describe())
    print()

    # Multi-dimensional retiming makes fusion legal AND keeps the fused
    # innermost loop fully parallel.
    result = fuse(g)
    print("retiming-based fusion:")
    print(result.summary())
    print()
    print(
        f"-> one fused loop, {result.parallelism.value} parallelism; "
        f"synchronisations drop from {g.num_nodes} per outer iteration to 1."
    )


if __name__ == "__main__":
    main()
