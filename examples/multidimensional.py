#!/usr/bin/env python
"""Fusing a three-dimensional nest: the paper's algorithms beyond 2-D.

The MLDG model (Definition 2.2) is n-dimensional, but the paper works out
its algorithms for the two-dimensional case.  This example runs the
library's n-D generalisations on a 3-D kernel (one sequential time loop
over two DOALL spatial dimensions):

* the generalised Algorithm 4 (`multidim_parallel_retiming`) makes every
  dependence outermost-carried or zero -- the whole 2-D spatial slab
  becomes DOALL per time step;
* the generalised Lemma 4.3 (`multidim_schedule_vector`) builds a strict
  wavefront schedule when that fails;
* the dimension-agnostic dataflow executor verifies both bit-exactly
  against an order-free reference semantics, with the spatial iterations
  executed in random order.

Run with::

    python examples/multidimensional.py
"""

from repro import IVec, MLDG
from repro.fusion import (
    NoParallelRetimingError,
    multidim_hyperplane_fusion,
    multidim_parallel_retiming,
)
from repro.verify import verify_retimed_execution


def heat3d_mldg() -> MLDG:
    """Three stages of a 3-D explicit scheme: stencil, flux limit, update.

    Vectors are (time, y, x).  The Flux stage reads Stencil values from
    *ahead* in both spatial directions within the same time step -- the 3-D
    analogue of the paper's fusion-preventing dependencies.
    """
    g = MLDG(dim=3)
    g.add_dependence("Stencil", "Flux", IVec(0, -1, 0), IVec(0, 0, -2))
    g.add_dependence("Flux", "Update", IVec(0, 0, 0))
    g.add_dependence("Update", "Stencil", IVec(1, 0, 1), IVec(2, -1, 0))
    g.add_dependence("Update", "Update", IVec(1, 0, 0))
    return g


def main() -> None:
    g = heat3d_mldg()
    print("3-D kernel MLDG (vectors are (t, y, x)):")
    print(g.describe())
    print()

    r = multidim_parallel_retiming(g)
    gr = r.apply(g)
    print("generalised Algorithm 4:")
    print(f"  retiming: {r.describe()}")
    print("  retimed vectors:", sorted(set(gr.all_vectors())))
    assert all(d[0] >= 1 or d.is_zero() for d in gr.all_vectors())
    print("  -> every dependence is time-carried or zero: the fused spatial")
    print("     slab is fully parallel within each time step.")
    print()

    bounds = (4, 4, 4)
    ok = verify_retimed_execution(g, r, bounds, mode="doall", order_seed=17)
    print(
        f"dataflow verification over a {bounds} box, spatial iterations in "
        f"random order: {'bit-identical to the reference' if ok else 'MISMATCH'}"
    )
    assert ok
    print()

    # a variant whose same-step coupling is circular: only a wavefront works
    g2 = MLDG(dim=3)
    g2.add_dependence("R", "U", IVec(0, 0, -1))
    g2.add_dependence("U", "R", IVec(0, 0, 3), IVec(1, -1, 0))
    print("wavefront-only variant:")
    print(g2.describe())
    try:
        multidim_parallel_retiming(g2)
        raise AssertionError("expected the parallel retiming to fail")
    except NoParallelRetimingError as exc:
        print(f"  generalised Algorithm 4 fails in phase {exc.phase!r} "
              f"(certificate {' -> '.join(exc.cycle)})")
    r2, s = multidim_hyperplane_fusion(g2)
    print(f"  generalised Lemma 4.3 schedule: s = {s}")
    ok = verify_retimed_execution(
        g2, r2, (3, 3, 6), mode="hyperplane", schedule=s, order_seed=5
    )
    print(f"  wavefront execution verified: {ok}")
    assert ok


if __name__ == "__main__":
    main()
