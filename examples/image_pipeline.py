#!/usr/bin/env python
"""An image-processing pipeline: smooth -> gradient -> enhance -> output.

The paper's introduction motivates fusion with multi-dimensional
applications like image processing: consecutive whole-image passes touch
the same arrays and pay one synchronisation per pass per row block.  This
example writes a four-stage pipeline in the loop DSL, shows that direct
fusion is illegal (the gradient reads smoothed pixels *ahead* of the
current one), fuses it with full parallelism via retiming, verifies the
generated code bit-for-bit against the original, and simulates the
synchronisation savings.

Run with::

    python examples/image_pipeline.py
"""

from repro.baselines import direct_fusion
from repro.codegen import apply_fusion, emit_fused_program
from repro.depend import dependence_table, describe_dependencies, extract_mldg
from repro.fusion import fuse
from repro.loopir import parse_program
from repro.machine import profile_fusion, unfused_profile
from repro.verify import verify_fusion_result

PIPELINE = """
do i = 0, n
  doall j = 0, m                ! loop Smooth
    s[i][j] = 0.25 * (img[i][j] + img[i-1][j] + img[i-2][j] + img[i-1][j-1])
  end
  doall j = 0, m                ! loop Grad
    g[i][j] = s[i][j+2] - s[i][j-1]
  end
  doall j = 0, m                ! loop Enhance
    h[i][j] = s[i][j] + 0.5 * g[i][j+1]
  end
  doall j = 0, m                ! loop Out
    out[i][j] = h[i][j] + 0.125 * out[i-1][j]
  end
end
"""


def main() -> None:
    nest = parse_program(PIPELINE)
    g = extract_mldg(nest)

    print("=== dependence analysis ===")
    print(g.describe())
    print()
    print(describe_dependencies(dependence_table(nest)))
    print()

    print("=== naive fusion ===")
    print(direct_fusion(g).describe())
    print()

    print("=== retiming-based fusion ===")
    result = fuse(g)
    print(result.summary())
    print()

    fused = apply_fusion(nest, result.retiming, mldg=g)
    print("=== generated fused program ===")
    print(emit_fused_program(fused))
    print()

    print("=== semantic verification ===")
    reports = verify_fusion_result(nest, result)
    ok = all(r.equivalent for r in reports)
    print(
        f"{len(reports)} executions across serial and randomised-"
        f"{result.parallelism.value} orders: "
        + ("all bit-identical to the original" if ok else "MISMATCH!")
    )
    assert ok
    print()

    print("=== simulated machine (n=480, m=640, barrier cost 25) ===")
    n, m = 480, 640
    before = unfused_profile(g, n, m)
    after = profile_fusion(result, n, m)
    print(f"{'P':>3} {'T unfused':>12} {'T fused':>12} {'improvement':>12}")
    for p in (1, 2, 4, 8, 16):
        tb = before.parallel_time(p, sync_cost=25)
        ta = after.parallel_time(p, sync_cost=25)
        print(f"{p:>3} {tb:>12} {ta:>12} {tb / ta:>11.2f}x")
    print(
        f"\nsynchronisations: {before.sync_count} -> {after.sync_count} "
        f"({before.sync_count / after.sync_count:.1f}x fewer)"
    )


if __name__ == "__main__":
    main()
