#!/usr/bin/env python
"""Weather-model relaxation sweeps: when only a wavefront is fully parallel.

Fluid mechanics and weather forecasting (the paper's motivating domains)
lean on successive-relaxation sweeps whose loops exchange values in *both*
directions within one outer time step.  Theorem 4.2's conditions then fail
-- no retiming makes the fused rows independent -- and Algorithm 5 instead
produces a schedule vector ``s`` and a DOALL *hyperplane*: all grid points
on each wavefront ``s . (i, j) = t`` update in parallel.

This example builds such a kernel as an MLDG, shows Algorithm 4's
negative-cycle certificate, computes the wavefront schedule, and simulates
both the wavefront's parallelism profile and (for a DOALL-able variant) the
row-parallel alternative.

Run with::

    python examples/weather_stencils.py
"""

from repro import IVec, MLDG, fuse
from repro.fusion import (
    NoParallelRetimingError,
    cyclic_parallel_retiming,
    hyperplane_parallel_fusion,
)
from repro.machine import hyperplane_profile, unfused_profile


def relaxation_mldg() -> MLDG:
    """Residual/update/correct sweeps with bidirectional intra-step coupling."""
    g = MLDG(dim=2)
    # residual needs this step's updates from two columns ahead ...
    g.add_dependence("Residual", "Update", IVec(0, -2))
    # ... while the update consumes residuals computed three columns back,
    # and carries state to the next outer time step
    g.add_dependence("Update", "Residual", IVec(0, 3), IVec(1, -2))
    g.add_dependence("Update", "Correct", IVec(0, 0))
    g.add_dependence("Correct", "Update", IVec(1, 1))
    return g


def main() -> None:
    g = relaxation_mldg()
    print("relaxation kernel MLDG:")
    print(g.describe())
    print()

    # Algorithm 4 provably cannot give row parallelism here:
    try:
        cyclic_parallel_retiming(g)
        raise AssertionError("unexpected: Theorem 4.2 conditions held")
    except NoParallelRetimingError as exc:
        print(f"Algorithm 4 fails as expected ({exc.phase} phase):")
        print(f"  certificate cycle: {' -> '.join(exc.cycle)}")
    print()

    # Algorithm 5 always succeeds:
    hp = hyperplane_parallel_fusion(g)
    print("Algorithm 5 (wavefront) result:")
    print(f"  retiming   : {hp.retiming.describe()}")
    print(f"  schedule s : {hp.schedule}")
    print(f"  hyperplane : {hp.hyperplane}")
    print(
        f"  -> all grid points with {hp.schedule[0]}*i + {hp.schedule[1]}*j = t "
        "update concurrently"
    )
    print()

    # The unified driver reaches the same answer:
    result = fuse(g)
    assert result.schedule == hp.schedule

    n, m = 200, 400
    wave = hyperplane_profile(g, hp.retiming, hp.schedule, n, m)
    base = unfused_profile(g, n, m)
    print(f"simulated machine, n={n}, m={m}:")
    print(
        f"  wavefronts: {wave.num_phases}; widest front "
        f"{max(wave.work)} points, mean {wave.total_work / wave.num_phases:.1f}"
    )
    for p in (4, 16, 64):
        print(
            f"  P={p:>3}: wavefront T={wave.parallel_time(p):>8} "
            f"(speedup {wave.speedup(p):5.1f}x) vs serial T={wave.total_work}"
        )
    print()
    print(
        "note: the unfused loop sequence is not even executable here -- the "
        "Update -> Residual coupling flows backwards within a time step -- "
        f"so the wavefront's {base.num_phases}-phase nominal baseline is "
        "hypothetical; the wavefront is the *only* parallel schedule."
    )


if __name__ == "__main__":
    main()
