"""Greedy typed-fusion partitioning (Kennedy & McKinley style).

Kennedy and McKinley fuse collections of conformable loops greedily,
splitting wherever fusion would be illegal; they "do not address the case
when fusion-preventing dependencies exist" (the paper's Section 1), so such
edges force a group boundary instead of being transformed away.

Model: nodes are processed in an order compatible with the
same-outer-iteration dependence DAG (vectors with first coordinate 0 --
outermost-carried dependencies neither prevent fusion nor constrain group
order, Section 3.1 case 1).  Each node lands in the smallest-numbered group
consistent with its predecessors:

* a non-preventing (0, k>=0) edge allows producer and consumer in the same
  group (``group(v) >= group(u)``);
* a fusion-preventing (0, k<0) edge forces ``group(v) >= group(u) + 1``;
* with ``preserve_parallelism=True`` any (0, k != 0) edge also splits,
  modelling the variant that refuses to serialise a parallel loop
  (loop distribution is applied after fusion for the same effect).

This is the classic O(V+E) greedy "fusion number" computation.  Groups are
executed in index order, one barrier each: synchronizations per outermost
iteration = number of groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from repro.graph.legality import VectorClass, classify_vector
from repro.graph.mldg import MLDG

__all__ = ["TypedFusionOutcome", "typed_fusion"]


@dataclass(frozen=True)
class TypedFusionOutcome:
    """A partition of the loops into fusable groups."""

    groups: Tuple[Tuple[str, ...], ...]  # execution order
    group_parallel: Tuple[bool, ...]  # is each fused group's inner loop DOALL?

    @property
    def syncs_per_outer_iteration(self) -> int:
        return len(self.groups)

    @property
    def fully_fused(self) -> bool:
        return len(self.groups) == 1

    @property
    def all_parallel(self) -> bool:
        return all(self.group_parallel)

    def describe(self) -> str:
        parts = []
        for grp, par in zip(self.groups, self.group_parallel):
            tag = "DOALL" if par else "serial"
            parts.append("{" + ",".join(grp) + f"}}[{tag}]")
        return " ; ".join(parts)


def typed_fusion(g: MLDG, *, preserve_parallelism: bool = False) -> TypedFusionOutcome:
    """Partition the loop sequence into maximal legally-fusable groups.

    Raises ``ValueError`` when the same-outer-iteration dependence relation
    is cyclic (then no loop-sequence execution order exists at all -- such
    graphs, like the paper's Figure 14, are beyond this baseline entirely).
    """
    order_graph = nx.DiGraph()
    order_graph.add_nodes_from(g.nodes)
    splitting: Dict[Tuple[str, str], bool] = {}
    for e in g.edges():
        zero_first = [d for d in e.vectors if d[0] == 0]
        if not zero_first:
            continue
        if e.src == e.dst:
            raise ValueError(
                f"self-dependence {e.src} within one outer iteration: "
                "not a valid loop sequence"
            )
        order_graph.add_edge(e.src, e.dst)
        split = any(
            classify_vector(d) == VectorClass.FUSION_PREVENTING for d in zero_first
        )
        if preserve_parallelism:
            split = split or any(d[1] != 0 for d in zero_first)
        splitting[(e.src, e.dst)] = split

    if not nx.is_directed_acyclic_graph(order_graph):
        raise ValueError(
            "same-outer-iteration dependencies are cyclic: no sequential "
            "loop order exists for this MLDG"
        )

    pos = {node: k for k, node in enumerate(g.nodes)}
    group_of: Dict[str, int] = {}
    for node in nx.lexicographical_topological_sort(order_graph, key=pos.get):
        level = 0
        for pred in order_graph.predecessors(node):
            bump = 1 if splitting[(pred, node)] else 0
            level = max(level, group_of[pred] + bump)
        group_of[node] = level

    num_groups = max(group_of.values(), default=0) + 1
    members: List[List[str]] = [[] for _ in range(num_groups)]
    for node in g.nodes:
        members[group_of[node]].append(node)

    parallel: List[bool] = []
    for grp in members:
        grp_set = set(grp)
        ok = True
        for e in g.edges():
            if e.src in grp_set and e.dst in grp_set:
                if any(d[0] == 0 and d[1] != 0 for d in e.vectors):
                    ok = False
                    break
        parallel.append(ok)

    return TypedFusionOutcome(
        groups=tuple(tuple(grp) for grp in members),
        group_parallel=tuple(parallel),
    )
