"""Naive (direct) loop fusion.

Warren's classic condition, equal to Theorem 3.1 with the zero retiming:
fusion is legal iff no dependence vector is fusion-preventing.  No
transformation is attempted -- this is the baseline every later technique
improves on, and the one that fails on the paper's Figures 2, 8 and 14.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.graph.legality import fusion_preventing_edges, is_fusion_legal
from repro.graph.mldg import MLDG
from repro.retiming.verify import is_doall_after_fusion

__all__ = ["DirectFusionOutcome", "direct_fusion"]


@dataclass(frozen=True)
class DirectFusionOutcome:
    """Result of attempting naive fusion."""

    legal: bool
    doall: bool  # meaningful only when legal
    blockers: List[str]  # fusion-preventing edges when illegal

    @property
    def syncs_per_outer_iteration(self) -> int:
        """1 when fused; callers substitute |V| when fusion failed."""
        return 1 if self.legal else -1

    def describe(self) -> str:
        if not self.legal:
            return "cannot fuse: fusion-preventing dependencies on " + ", ".join(
                self.blockers
            )
        return "fused; innermost loop " + ("DOALL" if self.doall else "serialised")


def direct_fusion(g: MLDG) -> DirectFusionOutcome:
    """Attempt to fuse all loops with no enabling transformation."""
    if is_fusion_legal(g):
        return DirectFusionOutcome(
            legal=True, doall=is_doall_after_fusion(g), blockers=[]
        )
    blockers = [f"{e.src}->{e.dst}" for e in fusion_preventing_edges(g)]
    return DirectFusionOutcome(legal=False, doall=False, blockers=blockers)
