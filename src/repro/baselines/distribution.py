"""Loop distribution: the no-fusion endpoint of the design space.

Kennedy & McKinley use distribution after fusion to recover parallelism;
fully distributed, every innermost loop runs alone.  Parallelism is maximal
(each loop was DOALL to begin with), synchronization is maximal too: one
barrier per loop per outermost iteration -- exactly the ``7n`` baseline the
paper starts from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.graph.mldg import MLDG

__all__ = ["DistributionOutcome", "loop_distribution"]


@dataclass(frozen=True)
class DistributionOutcome:
    """The fully-distributed schedule."""

    groups: Tuple[Tuple[str, ...], ...]

    @property
    def syncs_per_outer_iteration(self) -> int:
        return len(self.groups)

    @property
    def all_parallel(self) -> bool:
        return True  # each group is a single DOALL loop by the program model

    def describe(self) -> str:
        return " ; ".join("{" + g[0] + "}[DOALL]" for g in self.groups)


def loop_distribution(g: MLDG) -> DistributionOutcome:
    """One group per loop, in program order."""
    return DistributionOutcome(groups=tuple((n,) for n in g.nodes))
