"""Shift-and-peel fusion (Manjikian & Abdelrahman style).

The *shift* part aligns loops along the innermost dimension: delaying loop
``v`` by ``s_v`` inner iterations turns a same-outer-iteration dependence
``(0, k)`` from ``u`` into ``(0, k + s_v - s_u)``, so choosing

.. math::  s_v \\ge s_u - k \\quad \\forall (0, k) : u \\to v

(longest paths over the same-iteration dependence DAG) eliminates all
fusion-preventing dependencies.  The *peel* part pays for it: the first /
last ``max_shift`` inner iterations must be peeled out of the fused loop,
and when iterations are blocked across ``P`` processors, each block
boundary peels ``max_shift`` iterations that serialise between neighbouring
processors.  The paper's Section 1 notes the technique degrades "when the
number of peeled iterations exceeds the number of iterations per
processor" -- :meth:`ShiftAndPeelOutcome.efficient_for` makes that cutoff
checkable.

Unlike multi-dimensional retiming, shifting only the inner dimension cannot
help when a dependence *cycle* confines the shifts (negative cycle in the
alignment system) -- those inputs report failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.constraints import InfeasibleSystemError, ScalarConstraintSystem
from repro.graph.mldg import MLDG

__all__ = ["ShiftAndPeelOutcome", "shift_and_peel"]


@dataclass(frozen=True)
class ShiftAndPeelOutcome:
    """Alignment shifts (in inner iterations) for a legal fusion, or failure."""

    legal: bool
    shifts: Dict[str, int]  # per-loop delay, >= 0, minimal
    reason: str = ""

    @property
    def peel_count(self) -> int:
        """Iterations peeled per processor-block boundary."""
        return max(self.shifts.values(), default=0) if self.legal else 0

    @property
    def syncs_per_outer_iteration(self) -> int:
        return 1 if self.legal else -1

    def efficient_for(self, m: int, processors: int) -> bool:
        """M&A's efficiency condition: peel < iterations per processor."""
        if not self.legal:
            return False
        per_proc = (m + 1) // max(processors, 1)
        return self.peel_count < per_proc

    def describe(self) -> str:
        if not self.legal:
            return f"cannot fuse: {self.reason}"
        return f"fused with peel={self.peel_count}; shifts " + ", ".join(
            f"{k}={v}" for k, v in sorted(self.shifts.items())
        )


def shift_and_peel(g: MLDG) -> ShiftAndPeelOutcome:
    """Compute minimal inner-dimension alignment shifts for the loop nest.

    The constraint system ``s_u - s_v <= k`` for every same-outer-iteration
    vector ``(0, k) : u -> v`` is solved by Bellman-Ford; shifts are then
    normalised to be non-negative and minimal.  Outermost-carried
    dependencies are unaffected by inner shifting and impose nothing.
    """
    import networkx as nx

    system = ScalarConstraintSystem(g.nodes)
    same_iter = nx.DiGraph()
    same_iter.add_nodes_from(g.nodes)
    constrained = False
    for e in g.edges():
        for d in e.vectors:
            if d[0] == 0:
                if e.src == e.dst:
                    return ShiftAndPeelOutcome(
                        legal=False,
                        shifts={},
                        reason=f"same-iteration self-dependence on {e.src}",
                    )
                # need: d[1] + s_dst - s_src >= 0  <=>  s_src - s_dst <= d[1]
                system.add_leq(e.dst, e.src, d[1])
                same_iter.add_edge(e.src, e.dst)
                constrained = True

    if not nx.is_directed_acyclic_graph(same_iter):
        cyc = [u for (u, _v) in nx.find_cycle(same_iter)]
        return ShiftAndPeelOutcome(
            legal=False,
            shifts={},
            reason="cyclic same-iteration dependencies: " + " -> ".join(cyc),
        )

    try:
        raw = system.solve()
    except InfeasibleSystemError as exc:
        return ShiftAndPeelOutcome(
            legal=False,
            shifts={},
            reason="alignment cycle: " + " -> ".join(map(str, exc.cycle)),
        )

    if not constrained:
        return ShiftAndPeelOutcome(legal=True, shifts={n: 0 for n in g.nodes})
    base = min(raw.values())
    shifts = {node: int(raw[node] - base) for node in g.nodes}
    return ShiftAndPeelOutcome(legal=True, shifts=shifts)
