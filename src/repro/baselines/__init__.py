"""Baseline fusion techniques from the literature (Section 1's comparisons).

Reimplemented at the granularity the paper compares against (see DESIGN.md's
substitution notes): which loops each method can fuse, how many
synchronizations remain, and what parallelism survives.

* :mod:`~repro.baselines.direct` -- naive fusion: legal only without
  fusion-preventing dependencies (Warren's condition / Theorem 3.1);
* :mod:`~repro.baselines.kennedy_mckinley` -- greedy typed-fusion
  partitioning (Kennedy & McKinley): fuse what is legal, split groups at
  fusion-preventing edges, optionally also at parallelism-destroying edges;
* :mod:`~repro.baselines.shift_and_peel` -- Manjikian & Abdelrahman's
  shift-and-peel: inner-dimension alignment shifts plus boundary peeling;
* :mod:`~repro.baselines.distribution` -- full loop distribution (the
  no-fusion endpoint: maximal parallelism, maximal synchronization).
"""

from repro.baselines.direct import DirectFusionOutcome, direct_fusion
from repro.baselines.kennedy_mckinley import (
    TypedFusionOutcome,
    typed_fusion,
)
from repro.baselines.shift_and_peel import ShiftAndPeelOutcome, shift_and_peel
from repro.baselines.distribution import DistributionOutcome, loop_distribution
from repro.baselines.transform_based import TransformSearchOutcome, transform_search

__all__ = [
    "direct_fusion",
    "DirectFusionOutcome",
    "typed_fusion",
    "TypedFusionOutcome",
    "shift_and_peel",
    "ShiftAndPeelOutcome",
    "loop_distribution",
    "DistributionOutcome",
    "transform_search",
    "TransformSearchOutcome",
]
