"""Baseline: naive fusion followed by a unimodular transformation search.

The classic alternative to retiming: fuse the loops *as written* (only
possible without fusion-preventing dependencies) and then look for a
single-nest transformation -- interchange, reversal, skewing, or
compositions -- that makes the fused innermost loop parallel.

This baseline separates two failure modes the paper's technique avoids:

* when naive fusion is illegal, no amount of post-fusion transformation
  can help (there is no fused nest to transform);
* when it is legal but serialised, a bounded search over unimodular
  matrices sometimes recovers parallelism (e.g. a wavefront skew of the
  fused IIR-2D nest) -- but unlike multi-dimensional retiming it can never
  *create* legality, and the wavefront it finds is exactly what
  Algorithm 5 constructs directly, without search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.graph.legality import is_fusion_legal
from repro.graph.mldg import MLDG
from repro.retiming.verify import is_doall_after_fusion
from repro.transforms.unimodular import (
    Unimodular,
    interchange,
    reversal,
    skew,
    transform_mldg,
)

__all__ = ["TransformSearchOutcome", "transform_search"]


@dataclass(frozen=True)
class TransformSearchOutcome:
    """Result of the naive-fusion + transformation search."""

    fusable: bool  # naive fusion legal at all?
    transform: Optional[Unimodular]  # None: nothing found (or not fusable)
    reason: str = ""

    @property
    def parallel(self) -> bool:
        return self.transform is not None

    def describe(self) -> str:
        if not self.fusable:
            return f"cannot fuse naively: {self.reason}"
        if self.transform is None:
            return "fused, but no unimodular transformation parallelises it"
        return f"fused + transformed by T = {self.transform}"


def _candidates(max_skew: int) -> Iterator[Unimodular]:
    identity = Unimodular(rows=((1, 0), (0, 1)))
    basics = [identity, interchange(), reversal(1)]
    skews = [skew(f) for f in range(-max_skew, max_skew + 1) if f] + [
        skew(f, of=0) for f in range(-max_skew, max_skew + 1) if f
    ]
    seen = set()
    for first in basics + skews:
        for second in [identity] + basics + skews:
            t = second.compose(first)
            if t.rows not in seen:
                seen.add(t.rows)
                yield t


def _valid_and_parallel(g: MLDG) -> bool:
    """Sequentially valid (all non-zero vectors lexicographically positive)
    with a DOALL innermost loop (no surviving (0, k) vector)."""
    zero = (0,) * g.dim
    for d in g.all_vectors():
        if tuple(d) < zero:
            return False
    return is_doall_after_fusion(g)


def transform_search(g: MLDG, *, max_skew: int = 4) -> TransformSearchOutcome:
    """Search for a unimodular transformation parallelising the naive fusion.

    Candidates: interchange, inner reversal, skews up to ``max_skew`` in
    either direction and axis, and all pairwise compositions -- a few
    hundred matrices, the kind of bounded search a production compiler of
    the era would attempt.
    """
    if not is_fusion_legal(g):
        from repro.graph.legality import fusion_preventing_edges

        blockers = ", ".join(f"{e.src}->{e.dst}" for e in fusion_preventing_edges(g))
        return TransformSearchOutcome(
            fusable=False, transform=None, reason=f"fusion-preventing edges {blockers}"
        )
    if is_doall_after_fusion(g):
        return TransformSearchOutcome(
            fusable=True, transform=Unimodular(rows=((1, 0), (0, 1)))
        )
    for t in _candidates(max_skew):
        if _valid_and_parallel(transform_mldg(g, t)):
            return TransformSearchOutcome(fusable=True, transform=t)
    return TransformSearchOutcome(fusable=True, transform=None)
