"""Affine subscript abstraction over LoopIR array references.

The program model's accesses are *uniform*: ``a[i + c1][j + c2]``.  The
analysis layer abstracts one subscript dimension as the affine form
``coeff * index + offset`` so the dependence tests (:mod:`repro.analysis.tests`)
are stated -- and unit-tested -- for the general strided case
``a[c1*i + o1][c2*j + o2]`` even though the parser only produces
``coeff == 1`` today.  Anything the abstraction cannot express (a future
gather subscript ``a[idx[j]]``, a coupled subscript ``a[i+j]``) maps to the
sound top element :data:`UNKNOWN`: the tests then answer *may* and nothing
downstream is allowed to prune.

Lifting is total: :func:`affine_access` never fails, it degrades to
:data:`UNKNOWN` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.loopir.ast_nodes import ArrayRef, SourceSpan
from repro.vectors import IVec

__all__ = [
    "AffineSubscript",
    "AffineAccess",
    "Unknown",
    "UNKNOWN",
    "affine_access",
]


@dataclass(frozen=True)
class AffineSubscript:
    """One subscript dimension: ``coeff * index + offset``.

    ``coeff == 0`` denotes a constant subscript (the index does not appear);
    the parser's uniform accesses always have ``coeff == 1``.
    """

    coeff: int
    offset: int

    def __post_init__(self) -> None:
        if self.coeff < 0:
            # Negative strides never arise from the DSL; keeping the domain
            # non-negative keeps the Banerjee bounds below two-sided.
            raise ValueError(f"negative subscript coefficient {self.coeff}")

    def value(self, index: int) -> int:
        """The array coordinate this subscript touches at ``index``."""
        return self.coeff * index + self.offset

    def describe(self, index_name: str) -> str:
        if self.coeff == 0:
            return str(self.offset)
        head = index_name if self.coeff == 1 else f"{self.coeff}*{index_name}"
        if self.offset == 0:
            return head
        return f"{head}{self.offset:+d}"


class Unknown:
    """The top element: a subscript (or whole access) the abstraction cannot
    express.  Every dependence test answers *may* for it."""

    _instance: Optional["Unknown"] = None

    def __new__(cls) -> "Unknown":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNKNOWN"


#: The singleton top element.
UNKNOWN = Unknown()


@dataclass(frozen=True)
class AffineAccess:
    """An array access as one affine subscript per nest dimension."""

    array: str
    subscripts: Tuple[AffineSubscript, ...]
    span: Optional[SourceSpan] = None

    @property
    def dim(self) -> int:
        return len(self.subscripts)

    def cell(self, iteration: IVec) -> IVec:
        """The array cell touched at ``iteration``."""
        return IVec([s.value(iteration[k]) for k, s in enumerate(self.subscripts)])

    def describe(self, index_names: Tuple[str, ...]) -> str:
        parts = "".join(
            f"[{s.describe(index_names[k])}]" for k, s in enumerate(self.subscripts)
        )
        return f"{self.array}{parts}"


def affine_access(ref: ArrayRef) -> Union[AffineAccess, Unknown]:
    """Lift a LoopIR :class:`ArrayRef` into the affine abstraction.

    Uniform accesses (the only kind the current IR can hold) lift exactly,
    with ``coeff == 1`` per dimension.  A reference whose shape falls outside
    the abstraction returns :data:`UNKNOWN` rather than raising, so callers
    stay sound in the presence of future non-affine subscripts.
    """
    try:
        subs = tuple(AffineSubscript(coeff=1, offset=int(off)) for off in ref.offset)
    except (TypeError, ValueError):  # pragma: no cover - future-proofing
        return UNKNOWN
    return AffineAccess(array=ref.array, subscripts=subs, span=ref.span)
