"""GCD and Banerjee dependence tests with machine-checkable certificates.

A candidate dependence pairs a *writer* access with a *reader* access of the
same array inside one nest.  A producer iteration ``p`` and a consumer
iteration ``c`` conflict when they touch the same cell:

    ``w_coeff[k] * p[k] + w_off[k]  ==  r_coeff[k] * c[k] + r_off[k]``

for every dimension ``k``.  The model's subscripts are *separable* (each
dimension mentions only its own index), so the system decomposes into one
equation per dimension and the tests decide each dimension independently:

* **GCD test** -- the equation has an integer solution at all only when
  ``gcd(w_coeff, r_coeff)`` divides the constant difference.
* **Banerjee bounds test** -- over a bounded dimension, the difference
  expression ranges over a closed interval; if that interval excludes zero
  no iteration pair can conflict.
* **Exact scan** -- on concrete domains the surviving equations are swept
  directly, so every verdict on a fully bounded nest is *exact*: either a
  concrete witness pair (:data:`Verdict.MUST`) or a proof of absence
  (:data:`Verdict.ABSENT`).  Unknown subscripts and symbolic domains that
  the scan cap cannot settle degrade to :data:`Verdict.MAY`.

Every verdict ships as a :class:`DependenceEvidence` certificate carrying
the equations, the domain, the deciding test, and (for MUST) the witness --
enough for :func:`verify_evidence` to re-check the claim by brute-force
enumeration, which the differential test-suite does.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.analysis.affine import UNKNOWN, AffineAccess, AffineSubscript, Unknown
from repro.analysis.domain import Interval, IterationDomain
from repro.vectors import IVec

__all__ = [
    "Verdict",
    "DimensionEquation",
    "DependenceEvidence",
    "gcd_test",
    "banerjee_test",
    "classify",
    "enumerate_conflicts",
    "verify_evidence",
    "SCAN_CAP",
]

#: How many points of an unbounded (symbolic) dimension the witness scan
#: probes before giving up and answering *may*.
SCAN_CAP = 64


class Verdict(enum.Enum):
    """Outcome of a dependence test."""

    MUST = "must"  #: a concrete witness iteration pair conflicts
    MAY = "may"  #: cannot decide (unknown subscript / symbolic domain)
    ABSENT = "absent"  #: provably no iteration pair conflicts

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class DimensionEquation:
    """One dimension of the conflict system:
    ``writer_coeff * p + writer_offset == reader_coeff * c + reader_offset``."""

    writer_coeff: int
    writer_offset: int
    reader_coeff: int
    reader_offset: int

    @classmethod
    def of(
        cls, writer: AffineSubscript, reader: AffineSubscript
    ) -> "DimensionEquation":
        return cls(writer.coeff, writer.offset, reader.coeff, reader.offset)

    @property
    def constant(self) -> int:
        """The constant difference ``reader_offset - writer_offset``."""
        return self.reader_offset - self.writer_offset

    def describe(self, index_name: str = "x") -> str:
        w = AffineSubscript(self.writer_coeff, self.writer_offset)
        r = AffineSubscript(self.reader_coeff, self.reader_offset)
        primed = index_name + "'"
        return f"{w.describe(index_name)} == {r.describe(primed)}"

    def to_dict(self) -> Dict[str, int]:
        return {
            "writerCoeff": self.writer_coeff,
            "writerOffset": self.writer_offset,
            "readerCoeff": self.reader_coeff,
            "readerOffset": self.reader_offset,
        }


@dataclass(frozen=True)
class DependenceEvidence:
    """A machine-checkable certificate for one dependence verdict.

    ``test`` names the deciding argument: ``"gcd"`` / ``"banerjee"`` /
    ``"enumerate"`` prove :data:`Verdict.ABSENT`, ``"witness"`` proves
    :data:`Verdict.MUST`, and ``"unknown-subscript"`` / ``"scan-cap"``
    explain a :data:`Verdict.MAY`.  ``failing_dim`` points at the dimension
    the absence proof used; ``witness`` is a ``(producer, consumer)``
    iteration pair for MUST verdicts.
    """

    array: str
    verdict: Verdict
    test: str
    reason: str
    domain: IterationDomain
    equations: Tuple[DimensionEquation, ...] = ()
    witness: Optional[Tuple[IVec, IVec]] = None
    failing_dim: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "array": self.array,
            "verdict": self.verdict.value,
            "test": self.test,
            "reason": self.reason,
            "domain": self.domain.to_dict(),
            "equations": [eq.to_dict() for eq in self.equations],
        }
        if self.witness is not None:
            producer, consumer = self.witness
            payload["witness"] = {
                "producer": list(producer),
                "consumer": list(consumer),
            }
        if self.failing_dim is not None:
            payload["failingDim"] = self.failing_dim
        return payload


def gcd_test(writer: AffineSubscript, reader: AffineSubscript) -> bool:
    """Whether ``writer_coeff * p + w_off == reader_coeff * c + r_off`` has
    *any* integer solution (bounds ignored).  ``False`` proves absence."""
    g = math.gcd(writer.coeff, reader.coeff)
    diff = reader.offset - writer.offset
    if g == 0:
        return diff == 0  # both subscripts constant
    return diff % g == 0


def banerjee_test(
    writer: AffineSubscript, reader: AffineSubscript, interval: Interval
) -> bool:
    """Whether ``writer(p) - reader(c)`` can be zero for ``p, c`` in
    ``interval``.  ``False`` proves absence on that (bounded) dimension."""
    # f(p, c) = w_coeff*p + w_off - r_coeff*c - r_off is monotone in each
    # variable (coeffs >= 0), so its range over the box is [lo, hi] with the
    # endpoints below; an unbounded interval sends an endpoint to +/-inf
    # whenever the corresponding coefficient is positive.
    base = writer.coeff * interval.lo + writer.offset - reader.offset
    hi: Optional[int]
    lo: Optional[int]
    if interval.hi is None:
        hi = None if writer.coeff > 0 else base - reader.coeff * interval.lo
        lo = None if reader.coeff > 0 else base
    else:
        hi = (
            writer.coeff * interval.hi
            + writer.offset
            - reader.offset
            - reader.coeff * interval.lo
        )
        lo = base - reader.coeff * interval.hi
    if lo is not None and lo > 0:
        return False
    if hi is not None and hi < 0:
        return False
    return True


def _solve_dimension(
    writer: AffineSubscript,
    reader: AffineSubscript,
    interval: Interval,
    *,
    cap: int,
) -> Union[Optional[Tuple[int, int]], Unknown]:
    """A ``(p, c)`` solution of one dimension's equation inside ``interval``.

    Returns ``None`` when provably no solution exists (exact for bounded
    intervals), or :data:`UNKNOWN` when the scan cap ran out on an
    unbounded interval without finding one.
    """
    exhaustive = interval.bounded
    for p in interval.iterate(cap=cap):
        lhs = writer.value(p)
        if reader.coeff == 0:
            if lhs == reader.offset:
                return (p, interval.lo)
            continue
        num = lhs - reader.offset
        if num % reader.coeff != 0:
            continue
        c = num // reader.coeff
        if interval.contains(c):
            return (p, c)
    return None if exhaustive else UNKNOWN


def classify(
    writer: Union[AffineAccess, Unknown],
    reader: Union[AffineAccess, Unknown],
    domain: IterationDomain,
    *,
    array: Optional[str] = None,
    cap: int = SCAN_CAP,
) -> DependenceEvidence:
    """Classify the candidate dependence between ``writer`` and ``reader``.

    On fully bounded domains the answer is exact (MUST with a witness, or
    ABSENT with the deciding test); MAY only arises from unknown subscripts
    or a symbolic dimension the scan cap could not settle.
    """
    if isinstance(writer, Unknown) or isinstance(reader, Unknown):
        return DependenceEvidence(
            array=array or "?",
            verdict=Verdict.MAY,
            test="unknown-subscript",
            reason="a subscript falls outside the affine abstraction",
            domain=domain,
        )
    name = array or writer.array
    equations = tuple(
        DimensionEquation.of(w, r)
        for w, r in zip(writer.subscripts, reader.subscripts)
    )

    for k, (w, r) in enumerate(zip(writer.subscripts, reader.subscripts)):
        if not gcd_test(w, r):
            g = math.gcd(w.coeff, r.coeff)
            return DependenceEvidence(
                array=name,
                verdict=Verdict.ABSENT,
                test="gcd",
                reason=(
                    f"dim {k}: gcd({w.coeff}, {r.coeff}) = {g} does not divide "
                    f"{r.offset - w.offset}"
                ),
                domain=domain,
                equations=equations,
                failing_dim=k,
            )
        if not banerjee_test(w, r, domain.intervals[k]):
            bound = domain.intervals[k].describe(domain.bound_names[k])
            return DependenceEvidence(
                array=name,
                verdict=Verdict.ABSENT,
                test="banerjee",
                reason=(
                    f"dim {k}: {w.describe(domain.index_names[k])} never meets "
                    f"{r.describe(domain.index_names[k] + chr(39))} over {bound}"
                ),
                domain=domain,
                equations=equations,
                failing_dim=k,
            )

    # Both coarse tests pass everywhere: sweep each (separable) dimension.
    producer: List[int] = []
    consumer: List[int] = []
    for k, (w, r) in enumerate(zip(writer.subscripts, reader.subscripts)):
        solution = _solve_dimension(w, r, domain.intervals[k], cap=cap)
        if isinstance(solution, Unknown):
            return DependenceEvidence(
                array=name,
                verdict=Verdict.MAY,
                test="scan-cap",
                reason=(
                    f"dim {k} is symbolic and no solution surfaced within the "
                    f"first {cap} iterations"
                ),
                domain=domain,
                equations=equations,
                failing_dim=k,
            )
        if solution is None:
            return DependenceEvidence(
                array=name,
                verdict=Verdict.ABSENT,
                test="enumerate",
                reason=(
                    f"dim {k}: exhaustive sweep of "
                    f"{domain.intervals[k].describe()} finds no solution"
                ),
                domain=domain,
                equations=equations,
                failing_dim=k,
            )
        producer.append(solution[0])
        consumer.append(solution[1])

    witness = (IVec(producer), IVec(consumer))
    return DependenceEvidence(
        array=name,
        verdict=Verdict.MUST,
        test="witness",
        reason=(
            f"iterations {tuple(witness[0])} -> {tuple(witness[1])} touch the "
            f"same cell of {name}"
        ),
        domain=domain,
        equations=equations,
        witness=witness,
    )


def enumerate_conflicts(
    writer: AffineAccess,
    reader: AffineAccess,
    domain: IterationDomain,
    *,
    cap: int = 16,
) -> Iterator[Tuple[IVec, IVec]]:
    """Every ``(producer, consumer)`` iteration pair whose cells coincide,
    by brute force.  Unbounded axes probe ``cap`` points -- the differential
    tests use this as the ground truth the analytic verdicts must match."""
    box = domain.concretized(probe=cap - 1)
    for p in box.iterations():
        target = writer.cell(p)
        for c in box.iterations():
            if reader.cell(c) == target:
                yield (p, c)


def verify_evidence(
    evidence: DependenceEvidence,
    writer: Union[AffineAccess, Unknown],
    reader: Union[AffineAccess, Unknown],
    *,
    probe: int = 12,
) -> bool:
    """Re-check a certificate independently of the tests that produced it.

    * MUST -- the witness pair must lie in the domain and touch one cell.
    * ABSENT -- brute-force enumeration (bounded dims exactly, symbolic
      dims over a ``probe``-point prefix) must find no conflicting pair.
    * MAY -- makes no claim; vacuously valid.
    """
    if evidence.verdict is Verdict.MAY:
        return True
    if isinstance(writer, Unknown) or isinstance(reader, Unknown):
        return False  # MUST/ABSENT are never justified on unknown accesses
    if evidence.verdict is Verdict.MUST:
        if evidence.witness is None:
            return False
        producer, consumer = evidence.witness
        return (
            evidence.domain.contains(producer)
            and evidence.domain.contains(consumer)
            and writer.cell(producer) == reader.cell(consumer)
        )
    conflict = next(
        enumerate_conflicts(writer, reader, evidence.domain, cap=probe), None
    )
    return conflict is None
