"""The analysis driver: classify every dependence, bundle dataflow facts.

:func:`analyze_nest` runs the full engine over one nest -- domain
inference, a :class:`~repro.analysis.tests.DependenceEvidence` certificate
per dependence record, the dataflow fixpoints, and the per-array access
regions -- and packages the result as an :class:`AnalysisReport` with
``to_dict`` (schema ``repro-analysis/1``) and ``render_text`` views.  Spans
(``analysis.*``) and verdict counters flow through :mod:`repro.obs`.

The report is also the shared backend of the LF4xx lint rules
(:mod:`repro.analysis.rules`) and of the MLDG edge-pruning pass
(:mod:`repro.analysis.prune`): a vector is *prunable* exactly when every
record inducing it has a provably-absent certificate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.analysis.affine import UNKNOWN, affine_access
from repro.analysis.dataflow import (
    ArrayRegion,
    Liveness,
    ReachingDefinitions,
    access_regions,
    liveness,
    reaching_definitions,
)
from repro.analysis.domain import IterationDomain, domain_of_nest
from repro.analysis.tests import (
    SCAN_CAP,
    DependenceEvidence,
    Verdict,
    classify,
    verify_evidence,
)
from repro.depend.extract import DependenceRecord, dependence_table
from repro.loopir.ast_nodes import LoopNest
from repro.loopir.parser import parse_program
from repro.vectors import IVec

__all__ = [
    "ANALYSIS_SCHEMA",
    "ClassifiedDependence",
    "AnalysisReport",
    "classify_record",
    "analyze_nest",
    "analyze_source",
]

#: Schema tag of the JSON document produced by :meth:`AnalysisReport.to_dict`.
ANALYSIS_SCHEMA = "repro-analysis/1"


@dataclass(frozen=True)
class ClassifiedDependence:
    """One dependence record together with its evidence certificate."""

    record: DependenceRecord
    evidence: DependenceEvidence

    @property
    def verdict(self) -> Verdict:
        return self.evidence.verdict

    def check(self, *, probe: int = 12) -> bool:
        """Re-verify the certificate by enumeration (see
        :func:`repro.analysis.tests.verify_evidence`)."""
        writer = affine_access(self.record.producer.target)
        reader = (
            affine_access(self.record.ref)
            if self.record.ref is not None
            else UNKNOWN
        )
        return verify_evidence(self.evidence, writer, reader, probe=probe)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "array": self.record.array,
            "src": self.record.src,
            "dst": self.record.dst,
            "vector": list(self.record.vector),
            "evidence": self.evidence.to_dict(),
        }


def classify_record(
    rec: DependenceRecord, domain: IterationDomain, *, cap: int = SCAN_CAP
) -> DependenceEvidence:
    """Classify one extracted dependence record over ``domain``.

    A record without its consuming ``ref`` (programmatically built tables)
    classifies against :data:`UNKNOWN` and therefore stays *may* -- never
    prunable, which is the sound default.
    """
    writer = affine_access(rec.producer.target)
    reader = affine_access(rec.ref) if rec.ref is not None else UNKNOWN
    return classify(writer, reader, domain, array=rec.array, cap=cap)


@dataclass(frozen=True)
class AnalysisReport:
    """Everything the analysis engine derived from one nest."""

    nest: LoopNest
    domain: IterationDomain
    dependences: Tuple[ClassifiedDependence, ...]
    regions: Dict[str, ArrayRegion]
    reaching: ReachingDefinitions
    live: Liveness
    path: str = "<nest>"

    def by_verdict(self, verdict: Verdict) -> List[ClassifiedDependence]:
        return [d for d in self.dependences if d.verdict is verdict]

    def counts(self) -> Dict[str, int]:
        return {v.value: len(self.by_verdict(v)) for v in Verdict}

    def evidence_for(self, rec: DependenceRecord) -> Optional[DependenceEvidence]:
        for d in self.dependences:
            if d.record is rec:
                return d.evidence
        return None

    def prunable_vectors(self) -> Dict[Tuple[str, str], List[IVec]]:
        """Edge vectors every inducing record proves absent.

        A single ``(src, dst, vector)`` triple can be induced by several
        reads; it is prunable only when *all* of them certify
        :data:`Verdict.ABSENT`.
        """
        verdicts: Dict[Tuple[str, str, IVec], List[Verdict]] = {}
        for d in self.dependences:
            key = (d.record.src, d.record.dst, d.record.vector)
            verdicts.setdefault(key, []).append(d.verdict)
        prunable: Dict[Tuple[str, str], List[IVec]] = {}
        for (src, dst, vector), vs in verdicts.items():
            if all(v is Verdict.ABSENT for v in vs):
                prunable.setdefault((src, dst), []).append(vector)
        return prunable

    def to_dict(self) -> Dict[str, Any]:
        regions = {}
        for name, region in sorted(self.regions.items()):
            regions[name] = {
                "written": (
                    None
                    if region.written is None
                    else [iv.to_dict() for iv in region.written]
                ),
                "read": (
                    None
                    if region.read is None
                    else [iv.to_dict() for iv in region.read]
                ),
            }
        return {
            "schema": ANALYSIS_SCHEMA,
            "path": self.path,
            "domain": self.domain.to_dict(),
            "dependences": [d.to_dict() for d in self.dependences],
            "summary": self.counts(),
            "prunable": [
                {"src": src, "dst": dst, "vectors": [list(v) for v in vectors]}
                for (src, dst), vectors in sorted(self.prunable_vectors().items())
            ],
            "regions": regions,
        }

    def render_text(self) -> str:
        lines = [f"analysis of {self.path}"]
        lines.append(f"  domain: {self.domain.describe()}")
        counts = self.counts()
        lines.append(
            "  dependences: "
            + ", ".join(f"{counts[v.value]} {v.value}" for v in Verdict)
        )
        for d in self.dependences:
            ev = d.evidence
            mark = {"must": "!", "may": "?", "absent": "-"}[ev.verdict.value]
            lines.append(
                f"  {mark} {d.record.src} -> {d.record.dst} "
                f"{d.record.vector} via '{d.record.array}': "
                f"{ev.verdict.value} ({ev.test}) {ev.reason}"
            )
        prunable = self.prunable_vectors()
        if prunable:
            for (src, dst), vectors in sorted(prunable.items()):
                vecs = ", ".join(str(v) for v in vectors)
                lines.append(f"  prunable: {src} -> {dst} {{{vecs}}}")
        else:
            lines.append("  prunable: none")
        for name, region in sorted(self.regions.items()):
            dim = region.read_escapes_written()
            if dim is not None:
                lines.append(
                    f"  region: '{name}' reads escape the written hull in "
                    f"dim {dim} (boundary reads hit initial memory)"
                )
        return "\n".join(lines)


def analyze_nest(
    nest: LoopNest,
    *,
    records: Optional[List[DependenceRecord]] = None,
    path: str = "<nest>",
    cap: int = SCAN_CAP,
) -> AnalysisReport:
    """Run the full analysis engine over a nest.

    ``records`` defaults to the nest's own dependence table; nests that
    violate the single-writer model (LF101) analyze with an empty table
    rather than raising, so the linter can keep going.
    """
    with obs.trace_span("analysis.nest", path=path):
        domain = domain_of_nest(nest)
        if records is None:
            try:
                records = dependence_table(nest, check=False)
            except ValueError:
                records = []
        classified: List[ClassifiedDependence] = []
        with obs.trace_span("analysis.classify", records=len(records)):
            for rec in records:
                evidence = classify_record(rec, domain, cap=cap)
                obs.counter(f"analysis.verdict.{evidence.verdict.value}").inc()
                classified.append(ClassifiedDependence(rec, evidence))
        with obs.trace_span("analysis.dataflow"):
            regions = access_regions(nest, domain)
            reaching = reaching_definitions(nest)
            live = liveness(nest)
        return AnalysisReport(
            nest=nest,
            domain=domain,
            dependences=tuple(classified),
            regions=regions,
            reaching=reaching,
            live=live,
            path=path,
        )


def analyze_source(source: str, *, path: str = "<input>") -> AnalysisReport:
    """Parse DSL text and analyze it (parse errors propagate)."""
    return analyze_nest(parse_program(source), path=path)
