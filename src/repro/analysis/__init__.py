"""``repro.analysis`` -- the dataflow & dependence-test engine.

The semantic layer above the syntactic extraction in :mod:`repro.depend`:

* **affine abstraction** (:mod:`~repro.analysis.affine`): subscripts as
  ``coeff * index + offset`` with a sound ``UNKNOWN`` top element;
* **iteration domains** (:mod:`~repro.analysis.domain`): the ``[0, n] x
  [0, m]`` box, concrete when the DSL declares numeric bounds;
* **dependence tests** (:mod:`~repro.analysis.tests`): GCD and Banerjee
  bounds tests classifying each candidate dependence *must* / *may* /
  *provably-absent*, every verdict a machine-checkable
  :class:`~repro.analysis.tests.DependenceEvidence` certificate;
* **dataflow** (:mod:`~repro.analysis.dataflow`): reaching definitions,
  liveness, and per-array access-interval hulls over the nest body;
* **the driver** (:mod:`~repro.analysis.engine`): one
  :class:`~repro.analysis.engine.AnalysisReport` per nest, consumed by the
  ``repro-fuse analyze`` CLI, the LF4xx lint rules
  (:mod:`~repro.analysis.rules`), and the MLDG edge-pruning pass
  (:mod:`~repro.analysis.prune` -- imported separately, as it builds on
  :mod:`repro.core`).

See docs/ANALYSIS.md.
"""

from repro.analysis.affine import (
    UNKNOWN,
    AffineAccess,
    AffineSubscript,
    Unknown,
    affine_access,
)
from repro.analysis.dataflow import (
    ArrayRegion,
    Liveness,
    ReachingDefinitions,
    access_regions,
    liveness,
    reaching_definitions,
    statement_sites,
)
from repro.analysis.domain import (
    Interval,
    IterationDomain,
    domain_of_nest,
    subscript_interval,
)
from repro.analysis.engine import (
    ANALYSIS_SCHEMA,
    AnalysisReport,
    ClassifiedDependence,
    analyze_nest,
    analyze_source,
    classify_record,
)
from repro.analysis.rules import ANALYSIS_RULE_CODES
from repro.analysis.tests import (
    SCAN_CAP,
    DependenceEvidence,
    DimensionEquation,
    Verdict,
    banerjee_test,
    classify,
    enumerate_conflicts,
    gcd_test,
    verify_evidence,
)

__all__ = [
    # affine
    "AffineSubscript",
    "AffineAccess",
    "Unknown",
    "UNKNOWN",
    "affine_access",
    # domain
    "Interval",
    "IterationDomain",
    "domain_of_nest",
    "subscript_interval",
    # tests
    "Verdict",
    "DimensionEquation",
    "DependenceEvidence",
    "gcd_test",
    "banerjee_test",
    "classify",
    "enumerate_conflicts",
    "verify_evidence",
    "SCAN_CAP",
    # dataflow
    "ArrayRegion",
    "Liveness",
    "ReachingDefinitions",
    "access_regions",
    "liveness",
    "reaching_definitions",
    "statement_sites",
    # engine
    "ANALYSIS_SCHEMA",
    "AnalysisReport",
    "ClassifiedDependence",
    "analyze_nest",
    "analyze_source",
    "classify_record",
    # rules
    "ANALYSIS_RULE_CODES",
]
