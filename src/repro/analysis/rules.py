"""Analysis-layer lint rules (``LF4xx``).

Importing this module registers the rules in the shared lint registry
(:mod:`repro.lint.registry`), so suppression comments, exit codes, and the
SARIF ``tool.driver.rules`` table treat analysis findings exactly like the
LF1xx--LF3xx rules.  All three rules read the cached
:class:`~repro.analysis.engine.AnalysisReport` off the
:class:`~repro.lint.engine.LintContext`:

* **LF401 uninitialized-read** -- a read of a written array whose
  dependence is *provably absent*: no iteration of the producer ever
  stores the cell the read loads, so the read only sees seeded initial
  memory.  Usually a typo'd subscript offset.
* **LF402 provably-dead-write** -- an array that *is* read syntactically,
  but every one of its dependences is provably absent: no read ever
  observes the written values.  The semantic sibling of the syntactic
  LF301 dead-array rule.
* **LF403 out-of-domain-read** -- a read whose inferred access interval
  escapes the array's written hull, so boundary iterations load initial
  (seed) memory from the halo.  Informational, and only emitted on fully
  *bounded* (concrete-bound) domains: against symbolic bounds every
  outer-carried recurrence read escapes at the boundary by construction
  (the model's accepted halo idiom -- the paper's ``e[i-2][j-1]``), so the
  rule would fire on virtually every program; with declared numeric bounds
  the interval is exact and the finding actionable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List

from repro.analysis.affine import AffineSubscript, Unknown, affine_access
from repro.analysis.domain import IterationDomain, subscript_interval
from repro.analysis.tests import Verdict
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import rule

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import LintContext

__all__ = ["ANALYSIS_RULE_CODES"]

#: The analysis-layer codes this module registers.
ANALYSIS_RULE_CODES = ("LF401", "LF402", "LF403")


@rule(
    "LF401",
    "uninitialized-read",
    Severity.WARNING,
    "analysis",
    "a read of a written array can never observe the write (the dependence "
    "is provably absent), so it only sees initial memory",
)
def check_uninitialized_read(ctx: "LintContext") -> Iterator[Diagnostic]:
    report = ctx.analysis()
    if report is None:
        return
    for d in report.by_verdict(Verdict.ABSENT):
        rec = d.record
        read = str(rec.ref) if rec.ref is not None else f"a read of '{rec.array}'"
        span = None
        if rec.ref is not None and rec.ref.span is not None:
            span = rec.ref.span
        yield Diagnostic(
            code="LF401",
            severity=Severity.WARNING,
            message=(
                f"{read} in loop {rec.dst} never observes the write "
                f"{rec.producer.target} in loop {rec.src} "
                f"({d.evidence.test} test: {d.evidence.reason}); the read "
                "only sees initial memory"
            ),
            span=span or rec.consumer.span,
            hint="check the subscript offsets; if reading initial memory is "
            "intended, suppress with ! lint: disable=LF401",
        )


@rule(
    "LF402",
    "provably-dead-write",
    Severity.WARNING,
    "analysis",
    "an array is read syntactically, but every dependence on its write is "
    "provably absent: no read ever observes the written values",
)
def check_provably_dead_write(ctx: "LintContext") -> Iterator[Diagnostic]:
    report = ctx.analysis()
    if report is None:
        return
    by_array: Dict[str, List[Verdict]] = {}
    for d in report.dependences:
        by_array.setdefault(d.record.array, []).append(d.verdict)
    for array in sorted(by_array):
        verdicts = by_array[array]
        if not all(v is Verdict.ABSENT for v in verdicts):
            continue
        # All dependences on this array's write are proven away; anchor the
        # diagnostic at the writing statement.
        producer = next(
            d.record.producer
            for d in report.dependences
            if d.record.array == array
        )
        src = next(
            d.record.src for d in report.dependences if d.record.array == array
        )
        yield Diagnostic(
            code="LF402",
            severity=Severity.WARNING,
            message=(
                f"array '{array}' (written in loop {src}) is read, but every "
                "dependence on the write is provably absent: no read ever "
                "observes the stored values"
            ),
            span=producer.target.span or producer.span,
            hint="the write is semantically dead unless the array is a "
            "program output; fix the readers' offsets or delete the store",
        )


def _read_bound_text(
    sub: AffineSubscript, domain: IterationDomain, dim: int
) -> str:
    """The read interval of one subscript over ``domain``, rendered with the
    symbolic bound name when the dimension is unbounded."""
    iv = subscript_interval(sub.coeff, sub.offset, domain.intervals[dim])
    if iv.hi is not None:
        return f"[{iv.lo}, {iv.hi}]"
    bound = domain.bound_names[dim]
    head = bound if sub.coeff == 1 else f"{sub.coeff}*{bound}"
    hi = head if sub.offset == 0 else f"{head}{sub.offset:+d}"
    return f"[{iv.lo}, {hi}]"


@rule(
    "LF403",
    "out-of-domain-read",
    Severity.INFO,
    "analysis",
    "a read's inferred access interval escapes the array's written hull, so "
    "boundary iterations load initial (seed) memory from the halo",
)
def check_out_of_domain_read(ctx: "LintContext") -> Iterator[Diagnostic]:
    report = ctx.analysis()
    if report is None:
        return
    if not report.domain.bounded:
        # Symbolic bounds: every recurrence read escapes the hull at the
        # boundary by construction (the accepted halo idiom); only report
        # against declared concrete bounds, where the interval is exact.
        return
    # Reads that never see the write at all are LF401's finding, not a
    # boundary effect; skip them here.
    absent_refs = {
        id(d.record.ref)
        for d in report.by_verdict(Verdict.ABSENT)
        if d.record.ref is not None
    }
    for lp in report.nest.loops:
        for stmt in lp.statements:
            for ref in stmt.reads():
                region = report.regions.get(ref.array)
                if region is None or region.written is None:
                    continue  # input array: reads of seed data are its job
                if id(ref) in absent_refs:
                    continue
                access = affine_access(ref)
                if isinstance(access, Unknown):
                    continue
                for k, sub in enumerate(access.subscripts):
                    read_iv = subscript_interval(
                        sub.coeff, sub.offset, report.domain.intervals[k]
                    )
                    if region.written[k].contains_interval(read_iv):
                        continue
                    intervals = "".join(
                        _read_bound_text(s, report.domain, j)
                        for j, s in enumerate(access.subscripts)
                    )
                    yield Diagnostic(
                        code="LF403",
                        severity=Severity.INFO,
                        message=(
                            f"read {ref} in loop {lp.label} spans "
                            f"{ref.array}{intervals}, escaping the written "
                            f"hull in dim {k}: boundary iterations load "
                            "initial (seed) memory from the halo"
                        ),
                        span=ref.span or stmt.span,
                        hint="halo reads are valid in the program model; "
                        "widen the producer or suppress with "
                        "! lint: disable=LF403 if intended",
                    )
                    break
