"""Classic dataflow analyses over a nest's statement sequence.

The program model executes the inner-loop bodies as one statement sequence
per outer iteration ``i``; the outer loop adds a back edge from the last
statement to the first.  That gives a ring-shaped flow graph over which the
standard union/worklist analyses run:

* **Reaching definitions** -- which writes reach each statement, both in
  steady state (with the back edge) and on the *first* outer iteration
  (without it).  A read whose array has no first-iteration reaching
  definition consumes seeded initial memory at ``i = 0``.
* **Liveness** -- which arrays still have a pending read after each
  statement (exit-live set empty: liveness *within* the nest; the LF301
  hygiene rule already covers never-read arrays).
* **Access intervals** -- the per-dimension hull of cells each array reads
  and writes over the iteration domain, the basis of the out-of-domain
  (halo) read diagnostic LF403.

Everything is small and exact: the flow graph has one node per statement
and the lattices are powersets, so the fixpoints converge in a handful of
sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.affine import Unknown, affine_access
from repro.analysis.domain import Interval, IterationDomain, subscript_interval
from repro.loopir.ast_nodes import Assignment, LoopNest

__all__ = [
    "StatementSite",
    "statement_sites",
    "ReachingDefinitions",
    "reaching_definitions",
    "Liveness",
    "liveness",
    "ArrayRegion",
    "access_regions",
]


@dataclass(frozen=True)
class StatementSite:
    """One statement with its position in the nest's program order."""

    index: int
    loop: str
    stmt: Assignment


def statement_sites(nest: LoopNest) -> Tuple[StatementSite, ...]:
    """Every statement of the nest in program order."""
    sites: List[StatementSite] = []
    for lp in nest.loops:
        for stmt in lp.statements:
            sites.append(StatementSite(len(sites), lp.label, stmt))
    return tuple(sites)


def _fixpoint(
    n: int,
    predecessors: Dict[int, Tuple[int, ...]],
    gen: Callable[[int], FrozenSet[str]],
    kill: Callable[[int], FrozenSet[str]],
) -> Tuple[List[FrozenSet[str]], List[FrozenSet[str]]]:
    """Union/worklist solver: ``in[k] = U out[p]``, ``out[k] = gen U (in - kill)``.

    Works for any may-analysis once the caller orients ``predecessors``
    (forward analyses pass flow-graph predecessors, backward ones pass
    successors).  Returns ``(ins, outs)`` indexed by point.
    """
    ins: List[FrozenSet[str]] = [frozenset() for _ in range(n)]
    outs: List[FrozenSet[str]] = [frozenset() for _ in range(n)]
    work = list(range(n))
    while work:
        k = work.pop()
        in_k: FrozenSet[str] = frozenset()
        for p in predecessors[k]:
            in_k |= outs[p]
        out_k = gen(k) | (in_k - kill(k))
        if in_k == ins[k] and out_k == outs[k]:
            continue
        ins[k], outs[k] = in_k, out_k
        for j in range(n):
            if k in predecessors[j] and j not in work:
                work.append(j)
    return ins, outs


def _ring_predecessors(n: int, *, back_edge: bool) -> Dict[int, Tuple[int, ...]]:
    preds: Dict[int, Tuple[int, ...]] = {k: ((k - 1,) if k > 0 else ()) for k in range(n)}
    if back_edge and n > 0:
        preds[0] = preds[0] + (n - 1,)
    return preds


@dataclass(frozen=True)
class ReachingDefinitions:
    """Which arrays have a reaching write at each statement.

    ``steady`` includes the outer loop's back edge (all iterations after
    the first); ``first`` models the first outer iteration only.  Each
    entry is the set of array names whose (unique, single-writer) write
    reaches the statement's entry.
    """

    sites: Tuple[StatementSite, ...]
    steady: Tuple[FrozenSet[str], ...]
    first: Tuple[FrozenSet[str], ...]

    def reaches_first_iteration(self, index: int, array: str) -> bool:
        """Whether a write of ``array`` reaches statement ``index`` on the
        very first outer iteration (textually earlier write)."""
        return array in self.first[index]


def reaching_definitions(nest: LoopNest) -> ReachingDefinitions:
    sites = statement_sites(nest)
    n = len(sites)

    def gen(k: int) -> FrozenSet[str]:
        return frozenset({sites[k].stmt.target.array})

    def kill(k: int) -> FrozenSet[str]:
        return frozenset()  # single-writer model: a def never kills another

    steady_in, _ = _fixpoint(n, _ring_predecessors(n, back_edge=True), gen, kill)
    first_in, _ = _fixpoint(n, _ring_predecessors(n, back_edge=False), gen, kill)
    return ReachingDefinitions(sites, tuple(steady_in), tuple(first_in))


@dataclass(frozen=True)
class Liveness:
    """Which arrays are live (pending a later read) around each statement.

    Computed with an empty exit-live set, so ``live_out`` answers "does any
    statement of this nest -- in this or a later outer iteration -- still
    read the value?".
    """

    sites: Tuple[StatementSite, ...]
    live_in: Tuple[FrozenSet[str], ...]
    live_out: Tuple[FrozenSet[str], ...]

    def write_is_live(self, index: int) -> bool:
        """Whether statement ``index``'s written array is read afterwards."""
        return self.sites[index].stmt.target.array in self.live_out[index]


def liveness(nest: LoopNest) -> Liveness:
    sites = statement_sites(nest)
    n = len(sites)

    def gen(k: int) -> FrozenSet[str]:  # uses
        return frozenset(r.array for r in sites[k].stmt.reads())

    def kill(k: int) -> FrozenSet[str]:  # defs
        return frozenset({sites[k].stmt.target.array})

    # Backward analysis: orient the solver along flow-graph *successors*,
    # so the solver's "in" (gathered over successors) is live-out and its
    # "out" (gen | in - kill) is live-in.
    succs: Dict[int, Tuple[int, ...]] = {
        k: ((k + 1,) if k + 1 < n else ()) for k in range(n)
    }
    if n > 0:
        succs[n - 1] = succs[n - 1] + (0,)
    solver_ins, solver_outs = _fixpoint(n, succs, gen, kill)
    return Liveness(
        sites=sites, live_in=tuple(solver_outs), live_out=tuple(solver_ins)
    )


@dataclass(frozen=True)
class ArrayRegion:
    """Per-dimension hulls of the cells an array's accesses touch.

    ``written`` / ``read`` are ``None`` when the array is never written /
    never read; otherwise one :class:`Interval` per nest dimension.
    """

    array: str
    written: Optional[Tuple[Interval, ...]]
    read: Optional[Tuple[Interval, ...]]

    def read_escapes_written(self) -> Optional[int]:
        """The first dimension where the read hull leaves the written hull,
        or ``None`` when every read cell is also written (or data missing)."""
        if self.written is None or self.read is None:
            return None
        for k, (w, r) in enumerate(zip(self.written, self.read)):
            if not w.contains_interval(r):
                return k
        return None


def _hull(a: Interval, b: Interval) -> Interval:
    hi = None if a.hi is None or b.hi is None else max(a.hi, b.hi)
    return Interval(min(a.lo, b.lo), hi)


def access_regions(
    nest: LoopNest, domain: IterationDomain
) -> Dict[str, ArrayRegion]:
    """The read/write hull of every array over the iteration domain.

    Accesses outside the affine abstraction are skipped (their hull is
    unknowable); arrays whose every access is unknown report ``None`` hulls.
    """
    written: Dict[str, Tuple[Interval, ...]] = {}
    read: Dict[str, Tuple[Interval, ...]] = {}

    def fold(
        table: Dict[str, Tuple[Interval, ...]], array: str, hull: Tuple[Interval, ...]
    ) -> None:
        prev = table.get(array)
        table[array] = (
            hull if prev is None else tuple(_hull(p, h) for p, h in zip(prev, hull))
        )

    for lp in nest.loops:
        for stmt in lp.statements:
            refs = [(stmt.target, written)] + [(r, read) for r in stmt.reads()]
            for ref, table in refs:
                access = affine_access(ref)
                if isinstance(access, Unknown):
                    continue
                hull = tuple(
                    subscript_interval(s.coeff, s.offset, domain.intervals[k])
                    for k, s in enumerate(access.subscripts)
                )
                fold(table, ref.array, hull)

    return {
        array: ArrayRegion(array, written.get(array), read.get(array))
        for array in sorted(written.keys() | read.keys())
    }
