"""Iteration domains and interval arithmetic for the analysis layer.

The program model iterates the box ``0 <= i <= n``, ``0 <= j <= m``
(inclusive bounds, matching :func:`repro.codegen.interp.run_original`).
Bounds are *symbolic* names by default (the paper's ``n``/``m``), but the
DSL also accepts numeric upper bounds (``do i = 0, 6``); the dependence
tests can only *prove an edge away* on a dimension whose extent is known,
so :class:`Interval` distinguishes a concrete upper bound from an unbounded
(symbolic) one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.loopir.ast_nodes import LoopNest
from repro.vectors import IVec

__all__ = [
    "Interval",
    "IterationDomain",
    "domain_of_nest",
    "subscript_interval",
]


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]``; ``hi is None`` = unbounded above."""

    lo: int
    hi: Optional[int]

    def __post_init__(self) -> None:
        if self.hi is not None and self.hi < self.lo:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def bounded(self) -> bool:
        return self.hi is not None

    @property
    def extent(self) -> Optional[int]:
        """``hi - lo`` for bounded intervals, ``None`` otherwise."""
        return None if self.hi is None else self.hi - self.lo

    def contains(self, value: int) -> bool:
        return value >= self.lo and (self.hi is None or value <= self.hi)

    def contains_interval(self, other: "Interval") -> bool:
        """Whether every point of ``other`` lies inside this interval.

        An unbounded ``other`` fits only inside an unbounded interval; two
        unbounded intervals compare on their lower ends (both run to the
        same symbolic upper bound).
        """
        if other.lo < self.lo:
            return False
        if other.hi is None:
            return self.hi is None
        return self.hi is None or other.hi <= self.hi

    def iterate(self, *, cap: int) -> Iterator[int]:
        """All points of the interval; unbounded intervals probe ``cap`` points."""
        hi = self.hi if self.hi is not None else self.lo + cap - 1
        return iter(range(self.lo, hi + 1))

    def describe(self, symbol: Optional[str] = None) -> str:
        hi = symbol if self.hi is None else str(self.hi)
        return f"[{self.lo}, {hi}]"

    def to_dict(self) -> Dict[str, Any]:
        return {"lo": self.lo, "hi": self.hi}


@dataclass(frozen=True)
class IterationDomain:
    """The iteration box of a nest: one :class:`Interval` per index.

    ``bound_names`` keeps the source-level bound spellings (``n``/``m`` or
    the numeric literal) for reporting.
    """

    intervals: Tuple[Interval, ...]
    index_names: Tuple[str, ...]
    bound_names: Tuple[str, ...]

    @property
    def dim(self) -> int:
        return len(self.intervals)

    @property
    def bounded(self) -> bool:
        """Whether every dimension has a concrete (numeric) upper bound."""
        return all(iv.bounded for iv in self.intervals)

    def size(self) -> Optional[int]:
        """Number of iterations for fully bounded domains, else ``None``."""
        total = 1
        for iv in self.intervals:
            if iv.extent is None:
                return None
            total *= iv.extent + 1
        return total

    def contains(self, iteration: IVec) -> bool:
        return all(iv.contains(iteration[k]) for k, iv in enumerate(self.intervals))

    def iterations(self, *, cap: int = 64) -> Iterator[IVec]:
        """Every iteration point (row-major); unbounded axes probe ``cap``."""

        def rec(k: int, prefix: Tuple[int, ...]) -> Iterator[IVec]:
            if k == self.dim:
                yield IVec(prefix)
                return
            for v in self.intervals[k].iterate(cap=cap):
                yield from rec(k + 1, prefix + (v,))

        return rec(0, ())

    def concretized(self, *, probe: int) -> "IterationDomain":
        """The domain with every unbounded axis capped at ``lo + probe``.

        Used by the enumeration-based certificate checker to turn a symbolic
        domain into a finite one it can sweep.
        """
        return IterationDomain(
            intervals=tuple(
                iv if iv.bounded else Interval(iv.lo, iv.lo + probe)
                for iv in self.intervals
            ),
            index_names=self.index_names,
            bound_names=self.bound_names,
        )

    def describe(self) -> str:
        return " x ".join(
            f"{self.index_names[k]} in {iv.describe(self.bound_names[k])}"
            for k, iv in enumerate(self.intervals)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "indexNames": list(self.index_names),
            "boundNames": list(self.bound_names),
            "intervals": [iv.to_dict() for iv in self.intervals],
        }


def _bound_interval(bound: str) -> Interval:
    """``"6"`` -> ``[0, 6]``; a symbolic bound name -> ``[0, unbounded)``."""
    try:
        return Interval(0, int(bound))
    except ValueError:
        return Interval(0, None)


def domain_of_nest(nest: LoopNest) -> IterationDomain:
    """The iteration domain a nest declares.

    Numeric upper bounds become concrete intervals -- the only case in which
    the Banerjee bounds test can prove a dependence absent; symbolic bounds
    stay unbounded above (sound for every run size).
    """
    bounds = (nest.outer_bound, nest.inner_bound)
    return IterationDomain(
        intervals=tuple(_bound_interval(b) for b in bounds),
        index_names=tuple(nest.index_names),
        bound_names=bounds,
    )


def subscript_interval(coeff: int, offset: int, domain_interval: Interval) -> Interval:
    """The interval of array coordinates ``coeff * x + offset`` touches as
    ``x`` ranges over ``domain_interval`` (``coeff >= 0``)."""
    if coeff == 0:
        return Interval(offset, offset)
    lo = coeff * domain_interval.lo + offset
    hi = (
        None
        if domain_interval.hi is None
        else coeff * domain_interval.hi + offset
    )
    return Interval(lo, hi)
