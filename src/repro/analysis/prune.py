"""MLDG edge pruning: drop dependences the tests prove absent.

:func:`prune_mldg` takes a nest and its extracted MLDG and removes every
edge vector whose *every* inducing read carries a provably-absent
:class:`~repro.analysis.tests.DependenceEvidence` certificate.  Fewer
vectors means weaker ``delta_L`` minima, fewer hard-edges and fewer
fusion-preventing edges -- strictly more fusion and parallelism, justified
by a machine-checkable proof per removal.

:class:`PruneMLDGPass` is the pipeline stage (registered between
``extract-mldg`` and ``legality`` in the strict pipeline, and after
extraction in the resilient one).  It is deliberately conservative about
when it runs at all:

* **fault injection** -- under an active injector
  (:func:`repro.resilience.faults.active_fault`) the extracted graph may
  already be perturbed, so the certificates (computed against the *source*)
  would not describe the graph being pruned; the pass skips and counts
  ``analysis.prune.skipped``.
* **opt-out** -- ``SessionOptions.prune_edges = False`` disables the pass,
  which is how the equivalence tests compare pruned and unpruned output.

Every removal is certificate-carrying: the pass attaches the serialized
evidence to its trace span and counts ``analysis.prune.removed_vectors`` /
``analysis.prune.removed_edges``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro import obs
from repro.analysis.engine import AnalysisReport, analyze_nest
from repro.analysis.tests import DependenceEvidence, Verdict
from repro.core.passes import Artifact, Pass
from repro.depend.extract import DependenceRecord
from repro.graph.mldg import MLDG
from repro.loopir.ast_nodes import LoopNest
from repro.resilience.faults import active_fault
from repro.vectors import IVec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.session import Session

__all__ = ["PrunedEdge", "PruneResult", "prune_mldg", "PruneMLDGPass"]


@dataclass(frozen=True)
class PrunedEdge:
    """One pruned edge vector with its absence certificate."""

    src: str
    dst: str
    vector: IVec
    evidence: DependenceEvidence

    def to_dict(self) -> Dict[str, Any]:
        return {
            "src": self.src,
            "dst": self.dst,
            "vector": list(self.vector),
            "evidence": self.evidence.to_dict(),
        }

    def __str__(self) -> str:
        return (
            f"{self.src} -> {self.dst} {self.vector} "
            f"({self.evidence.test}: {self.evidence.reason})"
        )


@dataclass(frozen=True)
class PruneResult:
    """What one pruning run removed (empty when nothing was provable)."""

    pruned: Tuple[PrunedEdge, ...]
    removed_edges: Tuple[Tuple[str, str], ...]
    report: Optional[AnalysisReport] = None

    @property
    def removed_vector_count(self) -> int:
        return len(self.pruned)

    @property
    def removed_edge_count(self) -> int:
        return len(self.removed_edges)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pruned": [p.to_dict() for p in self.pruned],
            "removedEdges": [list(e) for e in self.removed_edges],
        }


def prune_mldg(
    nest: LoopNest,
    g: MLDG,
    *,
    records: Optional[List[DependenceRecord]] = None,
    report: Optional[AnalysisReport] = None,
) -> Tuple[MLDG, PruneResult]:
    """A copy of ``g`` with every provably-absent vector removed.

    A vector is removed only when *all* dependence records inducing it on
    that edge certify :data:`Verdict.ABSENT`; an edge disappears when its
    last vector does.  ``g`` itself is never mutated.  Pass ``report`` to
    reuse an existing analysis instead of recomputing one.
    """
    if report is None:
        report = analyze_nest(nest, records=records)
    evidence_by_key: Dict[Tuple[str, str, IVec], DependenceEvidence] = {}
    for d in report.dependences:
        if d.verdict is Verdict.ABSENT:
            key = (d.record.src, d.record.dst, d.record.vector)
            evidence_by_key.setdefault(key, d.evidence)

    pruned: List[PrunedEdge] = []
    removed_edges: List[Tuple[str, str]] = []
    out = g.copy()
    for (src, dst), vectors in sorted(report.prunable_vectors().items()):
        on_edge = [v for v in vectors if v in out.D(src, dst)]
        if not on_edge:
            continue  # the extracted graph never materialized this edge
        out.remove_dependence(src, dst, *on_edge)
        if not out.has_edge(src, dst):
            removed_edges.append((src, dst))
        for v in on_edge:
            pruned.append(PrunedEdge(src, dst, v, evidence_by_key[(src, dst, v)]))

    return out, PruneResult(
        pruned=tuple(pruned),
        removed_edges=tuple(removed_edges),
        report=report,
    )


class PruneMLDGPass(Pass):
    """Pipeline stage: certificate-carrying MLDG edge pruning."""

    name = "prune-mldg"
    span_name = "pipeline.prune"

    def run(self, artifact: Artifact, session: "Session") -> None:
        assert artifact.nest is not None and artifact.mldg is not None
        if not getattr(session.options, "prune_edges", True):
            obs.counter("analysis.prune.skipped").inc()
            return
        if active_fault() is not None:
            # An injector may have perturbed the extracted graph; the
            # certificates describe the source, not the perturbation.
            obs.counter("analysis.prune.skipped").inc()
            artifact.notes.append(
                "edge pruning skipped: fault injection is active"
            )
            return
        pruned_graph, result = prune_mldg(artifact.nest, artifact.mldg)
        artifact.prune = result
        if not result.pruned:
            return
        with obs.trace_span(
            "analysis.prune.certificates",
            removed_vectors=result.removed_vector_count,
            removed_edges=result.removed_edge_count,
            certificates=[p.to_dict() for p in result.pruned],
        ):
            pass
        obs.counter("analysis.prune.removed_vectors").inc(
            result.removed_vector_count
        )
        obs.counter("analysis.prune.removed_edges").inc(result.removed_edge_count)
        artifact.mldg = pruned_graph
        artifact.notes.append(
            "pruned "
            f"{result.removed_vector_count} provably-absent dependence "
            f"vector(s) ({result.removed_edge_count} edge(s) removed): "
            + "; ".join(str(p) for p in result.pruned)
        )
