"""Declarative difference-constraint systems (Problems ILP and 2-ILP).

These classes are the front-end the fusion algorithms use: declare unknowns,
add ``x_j - x_i <= w`` (or ``==``) constraints, call :meth:`solve`.  Solving
builds the Section-2.4 constraint graph and runs the appropriate
Bellman-Ford; infeasibility raises :class:`InfeasibleSystemError` carrying
the negative-cycle certificate.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Tuple

from repro.constraints.bellman_ford import bellman_ford
from repro.constraints.constraint_graph import SUPER_SOURCE, ConstraintGraph
from repro.constraints.vector_bellman_ford import vector_bellman_ford
from repro.resilience.budget import Budget
from repro.vectors import ExtVec, IVec

__all__ = [
    "InfeasibleSystemError",
    "ScalarConstraintSystem",
    "VectorConstraintSystem",
]


class InfeasibleSystemError(Exception):
    """The system has no solution; ``cycle`` is a negative-cycle certificate.

    The cycle is reported over the original unknowns (the super-source can
    never participate in a cycle since it has no incoming edges).
    """

    def __init__(self, cycle: List[Hashable]) -> None:
        names = " -> ".join(str(c) for c in cycle)
        super().__init__(f"infeasible difference-constraint system (cycle: {names})")
        self.cycle = cycle


class ScalarConstraintSystem:
    """Problem ILP: integer unknowns, constraints ``x_j - x_i <= a_ij``.

    >>> s = ScalarConstraintSystem(["a", "b"])
    >>> s.add_leq("a", "b", 3)      # x_b - x_a <= 3
    >>> sol = s.solve()
    >>> sol["b"] - sol["a"] <= 3
    True
    """

    def __init__(self, unknowns) -> None:
        self._unknowns = list(unknowns)
        self._constraints: List[Tuple[Hashable, Hashable, int]] = []

    def add_leq(self, i: Hashable, j: Hashable, bound: int) -> None:
        """Add ``x_j - x_i <= bound``."""
        self._constraints.append((i, j, int(bound)))

    def add_eq(self, i: Hashable, j: Hashable, value: int) -> None:
        """Add ``x_j - x_i == value`` (a pair of opposing inequalities)."""
        self.add_leq(i, j, value)
        self.add_leq(j, i, -value)

    def constraint_graph(self) -> ConstraintGraph:
        return ConstraintGraph.build(self._unknowns, self._constraints, zero=0)

    def solve(self, *, budget: Optional[Budget] = None) -> Dict[Hashable, int]:
        """Feasible values (shortest-path distances from ``v_0``).

        Unknowns untouched by any constraint get 0.  Raises
        :class:`InfeasibleSystemError` when a negative cycle exists and
        :class:`~repro.resilience.budget.BudgetExceededError` when the
        optional ``budget`` runs out mid-solve.
        """
        g = self.constraint_graph()
        result = bellman_ford(
            g.nodes, g.edges, g.source, zero=0, top=math.inf, budget=budget
        )
        if not result.feasible:
            cycle = [c for c in result.negative_cycle if c != SUPER_SOURCE]
            raise InfeasibleSystemError(cycle)
        out: Dict[Hashable, int] = {}
        for u in self._unknowns:
            d = result.dist[u]
            out[u] = 0 if d == math.inf else int(d)
        return out

    def is_feasible(self) -> bool:
        try:
            self.solve()
            return True
        except InfeasibleSystemError:
            return False


class VectorConstraintSystem:
    """Problem 2-ILP (any dimension): vector unknowns under lexicographic order.

    Constraints ``r_j - r_i <= w_ij`` with ``w_ij`` an :class:`IVec` or an
    :class:`ExtVec` (infinite components constrain only a coordinate prefix).
    Feasibility is Theorem 2.3: no constraint-graph cycle with weight
    lexicographically below the zero vector.
    """

    def __init__(self, unknowns, *, dim: int = 2) -> None:
        if dim < 1:
            raise ValueError("dimension must be >= 1")
        self._dim = dim
        self._unknowns = list(unknowns)
        self._constraints: List[Tuple[Hashable, Hashable, ExtVec]] = []

    @property
    def dim(self) -> int:
        return self._dim

    def _coerce(self, w) -> ExtVec:
        if isinstance(w, ExtVec):
            v = w
        elif isinstance(w, IVec):
            v = ExtVec.from_ivec(w)
        else:
            v = ExtVec(tuple(w))
        if v.dim != self._dim:
            raise ValueError(f"weight {v} has dimension {v.dim}, system has {self._dim}")
        return v

    def add_leq(self, i: Hashable, j: Hashable, bound) -> None:
        """Add ``r_j - r_i <= bound`` (lexicographic)."""
        self._constraints.append((i, j, self._coerce(bound)))

    def add_eq(self, i: Hashable, j: Hashable, value: IVec) -> None:
        """Add ``r_j - r_i == value``.

        Only finite values make sense for equalities, and the opposing
        inequality uses the negated vector (the paper's phase-two back-edges,
        Section 4.3).
        """
        vec = self._coerce(value)
        if not vec.is_finite():
            raise ValueError("equality constraints must have finite weights")
        self.add_leq(i, j, vec)
        self.add_leq(j, i, -vec)

    def constraint_graph(self) -> ConstraintGraph:
        return ConstraintGraph.build(
            self._unknowns, self._constraints, zero=ExtVec([0] * self._dim)
        )

    def solve(
        self, *, verify: bool = True, budget: Optional[Budget] = None
    ) -> Dict[Hashable, IVec]:
        """Feasible vector values; raises :class:`InfeasibleSystemError` if none.

        Distances whose trailing coordinates remain ``+inf`` (possible when
        weights carry infinite components, as in Algorithm 3's constraint
        graph) are unconstrained there and resolve to 0, mirroring the
        paper's "set the second component of r to 0" step.  With
        ``verify=True`` (default) the returned assignment is checked against
        every constraint; a failure indicates an unsupported mix of finite
        and infinite weights and raises ``ValueError``.
        """
        g = self.constraint_graph()
        result = vector_bellman_ford(
            g.nodes, g.edges, g.source, dim=self._dim, budget=budget
        )
        if not result.feasible:
            cycle = [c for c in result.negative_cycle if c != SUPER_SOURCE]
            raise InfeasibleSystemError(cycle)
        out: Dict[Hashable, IVec] = {}
        for u in self._unknowns:
            d = result.dist[u]
            out[u] = IVec([int(c) if isinstance(c, int) else 0 for c in d])
        if verify:
            for (i, j, w) in self._constraints:
                diff = ExtVec.from_ivec(out[j] - out[i])
                if tuple(diff) > tuple(w):
                    raise ValueError(
                        f"resolved solution violates {j!s} - {i!s} <= {w}: "
                        f"got {out[j] - out[i]} (mixed finite/infinite weights "
                        "are only supported when the infinite coordinates are "
                        "genuinely unconstrained)"
                    )
        return out

    def is_feasible(self) -> bool:
        try:
            self.solve()
            return True
        except InfeasibleSystemError:
            return False
