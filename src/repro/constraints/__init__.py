"""Difference-constraint systems and their Bellman-Ford solvers.

Section 2.4 of the paper reduces retiming-function search to systems of
inequalities ``x_j - x_i <= a_ij`` over integers (Problem ILP) and over
integer 2-vectors compared lexicographically (Problem 2-ILP).  Both are
solved on a *constraint graph*: vertex ``v_0`` connected to every unknown
with weight zero, one edge per constraint, shortest paths by Bellman-Ford.
Feasibility is exactly the absence of a (lexicographically) negative cycle
(Theorems 2.2 and 2.3).

* :func:`~repro.constraints.bellman_ford.bellman_ford` -- the generic solver
  (weights need ``+`` and ``<``), with negative-cycle certificates;
* :func:`~repro.constraints.bellman_ford.scalar_bellman_ford` -- Problem ILP;
* :func:`~repro.constraints.vector_bellman_ford.vector_bellman_ford` --
  Algorithm 1 ("TwoDimBellmanFord"), generalised to any dimension;
* :class:`~repro.constraints.system.ScalarConstraintSystem` /
  :class:`~repro.constraints.system.VectorConstraintSystem` -- declarative
  front-ends used by the fusion algorithms.
"""

from repro.constraints.bellman_ford import (
    BellmanFordResult,
    NegativeCycleError,
    bellman_ford,
    scalar_bellman_ford,
)
from repro.constraints.vector_bellman_ford import vector_bellman_ford
from repro.constraints.system import (
    InfeasibleSystemError,
    ScalarConstraintSystem,
    VectorConstraintSystem,
)
from repro.constraints.constraint_graph import ConstraintGraph

__all__ = [
    "bellman_ford",
    "scalar_bellman_ford",
    "vector_bellman_ford",
    "BellmanFordResult",
    "NegativeCycleError",
    "ConstraintGraph",
    "ScalarConstraintSystem",
    "VectorConstraintSystem",
    "InfeasibleSystemError",
]
