"""Constraint-graph construction (Section 2.4).

A difference-constraint system ``x_j - x_i <= w_ij`` maps to a graph with

* one vertex per unknown plus a super-source ``v_0``;
* one edge ``v_i -> v_j`` of weight ``w_ij`` per constraint;
* zero-weight edges ``v_0 -> v_i`` for every unknown,

and feasible solutions are the shortest-path distances from ``v_0``
(Theorem 2.2 scalar / Theorem 2.3 lexicographic-vector).  This module keeps
that construction in one place so the fusion algorithms (which each build a
slightly different constraint graph: Figures 5, 9, 11a, 11b) share it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Hashable, List, Optional, Sequence, Tuple, TypeVar

__all__ = ["ConstraintGraph", "SUPER_SOURCE"]

Node = TypeVar("Node", bound=Hashable)
W = TypeVar("W")

#: Name of the added super-source vertex.  The paper calls it ``v_0``; the
#: leading NUL keeps it from colliding with any user-supplied loop label.
SUPER_SOURCE = "\0v0"


@dataclass
class ConstraintGraph(Generic[Node, W]):
    """A constraint graph ready for Bellman-Ford.

    ``edges`` holds ``(u, v, w)`` triples encoding ``x_v - x_u <= w``.
    ``source_edges_added`` records whether the zero edges from ``v_0`` are in.
    """

    nodes: List = field(default_factory=list)
    edges: List[Tuple] = field(default_factory=list)
    source: Hashable = SUPER_SOURCE

    @classmethod
    def build(
        cls,
        unknowns: Sequence[Node],
        constraints: Sequence[Tuple[Node, Node, W]],
        *,
        zero: W,
    ) -> "ConstraintGraph":
        """Standard construction: unknowns + ``v_0`` + zero source edges.

        ``constraints`` are ``(i, j, w)`` triples meaning ``x_j - x_i <= w``,
        which become edges ``i -> j`` of weight ``w``.
        """
        seen = set()
        nodes: List = []
        for u in unknowns:
            if u in seen:
                raise ValueError(f"duplicate unknown {u!r}")
            seen.add(u)
            nodes.append(u)
        if SUPER_SOURCE in seen:
            raise ValueError("unknown collides with the super-source name")
        g = cls(nodes=nodes + [SUPER_SOURCE], edges=[], source=SUPER_SOURCE)
        for (i, j, w) in constraints:
            if i not in seen or j not in seen:
                raise ValueError(f"constraint references unknown node: {i!r} or {j!r}")
            g.edges.append((i, j, w))
        for u in nodes:
            g.edges.append((SUPER_SOURCE, u, zero))
        return g

    def add_edge(self, u: Node, v: Node, w: W) -> None:
        self.edges.append((u, v, w))

    def without_source(self) -> "ConstraintGraph":
        """A copy with the super-source and its edges removed (for display)."""
        return ConstraintGraph(
            nodes=[n for n in self.nodes if n != self.source],
            edges=[(u, v, w) for (u, v, w) in self.edges if u != self.source],
            source=self.source,
        )

    def describe(self) -> str:
        """Readable dump used by the CLI's ``--explain`` mode."""
        lines = ["constraint graph:"]
        for (u, v, w) in self.edges:
            uu = "v0" if u == self.source else str(u)
            vv = "v0" if v == self.source else str(v)
            lines.append(f"  {uu} -> {vv}  [{w}]")
        return "\n".join(lines)
