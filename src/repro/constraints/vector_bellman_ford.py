"""Algorithm 1: the multi-dimensional (lexicographic) Bellman-Ford.

The paper's ``TwoDimBellmanFord`` initialises every tentative retiming to
``(inf, inf)``, the source ``v_0`` to ``(0, 0)``, and relaxes edges under
*lexicographic* comparison with *componentwise* weight extension.  The
shortest path from ``v_0`` to ``v_i`` in the constraint graph is a feasible
solution of the 2-ILP system (Theorem 2.3); a lexicographically-negative
cycle certifies infeasibility.

We generalise to any dimension: the algorithm is unchanged, only the vector
width differs.  Weights may carry ``+inf`` components
(:class:`~repro.vectors.extended.ExtVec`) to constrain only a coordinate
prefix, as in the paper's Figure 9.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence, Tuple, TypeVar, Union

from repro import obs
from repro.constraints.bellman_ford import BellmanFordResult, bellman_ford
from repro.resilience.budget import Budget
from repro.vectors import ExtVec, IVec

__all__ = ["vector_bellman_ford"]

Node = TypeVar("Node", bound=Hashable)
_W = Union[IVec, ExtVec]


def vector_bellman_ford(
    nodes: Sequence[Node],
    edges: Sequence[Tuple[Node, Node, _W]],
    source: Node,
    *,
    dim: int,
    max_rounds: Optional[int] = None,
    budget: Optional[Budget] = None,
    algorithm: str = "slf",
) -> BellmanFordResult[Node, ExtVec]:
    """Lexicographic shortest paths from ``source`` (Algorithm 1).

    Returns a :class:`~repro.constraints.bellman_ford.BellmanFordResult`
    whose distances are :class:`ExtVec`; reachable distances are finite and
    can be converted with ``.to_ivec()``.

    ``max_rounds``/``budget`` bound the relaxation work exactly as in
    :func:`~repro.constraints.bellman_ford.bellman_ford`: a graph that has
    not stabilised within the cap raises
    :class:`~repro.resilience.budget.BudgetExceededError`, and on graphs
    that stabilise early the negative-cycle certificate scan is skipped
    (``result.rounds`` reports the rounds actually run).  ``algorithm``
    selects between the default ``"slf"`` worklist and the classic
    ``"rounds"`` sweeps; answers are identical either way.
    """
    if dim < 1:
        raise ValueError("dimension must be >= 1")
    norm_edges = []
    for (u, v, w) in edges:
        if isinstance(w, IVec):
            w = ExtVec.from_ivec(w)
        elif not isinstance(w, ExtVec):
            w = ExtVec(tuple(w))
        if w.dim != dim:
            raise ValueError(f"edge {u}->{v} weight {w} has wrong dimension")
        norm_edges.append((u, v, w))
    obs.counter("solver.vector_bellman_ford.calls").inc()
    with obs.trace_span("solver.vector_bellman_ford", dim=dim, algorithm=algorithm):
        return bellman_ford(
            nodes,
            norm_edges,
            source,
            zero=ExtVec([0] * dim),
            top=ExtVec.top(dim),
            max_rounds=max_rounds,
            budget=budget,
            algorithm=algorithm,
        )


def solve_distances_as_ivecs(
    result: BellmanFordResult, *, unreachable: IVec
) -> Dict[Hashable, IVec]:
    """Convert a feasible vector result's distances to finite ``IVec``s.

    Unreachable nodes (distance still ``top``) map to ``unreachable`` -- for
    retiming purposes an unconstrained node may take any value, and the zero
    vector is the conventional choice.
    """
    if not result.feasible:
        raise ValueError("cannot extract distances from an infeasible result")
    out: Dict[Hashable, IVec] = {}
    for node, d in result.dist.items():
        out[node] = d.to_ivec() if d.is_finite() else unreachable
    return out
