"""Generic Bellman-Ford with negative-cycle certificates.

One implementation serves both of the paper's solvers:

* Problem ILP (Section 2.4) uses integer weights;
* Algorithm 1 ("TwoDimBellmanFord") uses lexicographically-ordered vector
  weights -- see :mod:`repro.constraints.vector_bellman_ford`.

The weight domain only needs ``+`` (weight extension) and ``<`` (total
order), which both ``int``/``float`` and
:class:`~repro.vectors.extended.ExtVec` provide.  Tentative distances start
at a caller-supplied ``top`` (plus infinity) and the source at ``zero``.

Two interchangeable algorithms (``algorithm=`` parameter):

* ``"slf"`` (default) -- a deque-based worklist with the smallest-label-
  first heuristic: only vertices whose distance actually improved are
  re-examined, and a vertex whose new label beats the queue head jumps the
  queue.  On benign graphs this does near-linear work where the classic
  formulation re-scans every edge per round.  A relaxation whose
  predecessor chain reaches length ``|V|`` proves a negative cycle is
  reachable (in a feasible graph every improving walk is simple); the
  certificate is then extracted by the round-based pass below, so the
  cycle reported is exactly the classic one.
* ``"rounds"`` -- the textbook ``|V| - 1`` edge-relaxation rounds, kept as
  the differential reference and as the certificate extractor.

Work is bounded the same way in both: when the solver stabilises the
certificate scan is skipped entirely (stabilisation already proves no
improving edge remains, which a debug-only assertion re-checks) and an
explicit relaxation cap (``max_rounds`` or a
:class:`~repro.resilience.budget.Budget`) turns pathological inputs into a
typed :class:`~repro.resilience.budget.BudgetExceededError` instead of a
full ``O(V * E)`` crawl.  For the worklist, one "round" is ``|V|`` vertex
examinations -- the same amortised work as one classic edge sweep -- so a
cap of ``k`` bounds both algorithms to ``O(k)`` sweeps' worth of work and
a cap of ``0`` refuses to solve at all.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Generic, Hashable, List, Optional, Sequence, Tuple, TypeVar

from repro import obs
from repro.resilience.budget import Budget, BudgetExceededError

__all__ = [
    "bellman_ford",
    "scalar_bellman_ford",
    "BellmanFordResult",
    "NegativeCycleError",
    "ALGORITHMS",
]

Node = TypeVar("Node", bound=Hashable)
W = TypeVar("W")  # weight type: needs + and <

#: Accepted values of the ``algorithm`` parameter.
ALGORITHMS = ("slf", "rounds")


class NegativeCycleError(Exception):
    """Raised by the constraint-system front-ends on infeasible systems.

    ``cycle`` lists the nodes of one negative-weight cycle (a certificate of
    infeasibility per Theorems 2.2/2.3).
    """

    def __init__(self, cycle: List) -> None:
        super().__init__(f"negative-weight cycle: {' -> '.join(map(str, cycle))}")
        self.cycle = cycle


@dataclass
class BellmanFordResult(Generic[Node, W]):
    """Distances and predecessors from one source, or a negative cycle.

    ``negative_cycle`` is ``None`` on success.  When set, ``dist``/``pred``
    hold the (meaningless beyond diagnosis) state at detection time.
    ``rounds`` counts the relaxation rounds actually executed -- for the
    worklist algorithm, one round is ``|V|`` vertex examinations (useful to
    confirm how little work benign graphs need).  ``pops`` counts vertex
    examinations directly: actual worklist pops for ``"slf"``, and the
    equivalent ``rounds * |V|`` for the classic sweeps, so the two
    algorithms report work in the same unit.
    """

    dist: Dict[Node, W]
    pred: Dict[Node, Optional[Node]]
    negative_cycle: Optional[List[Node]]
    rounds: int = field(default=0, compare=False)
    pops: int = field(default=0, compare=False)

    @property
    def feasible(self) -> bool:
        return self.negative_cycle is None


def _trace_cycle(
    pred: Dict[Node, Optional[Node]], start: Node, num_nodes: int
) -> List[Node]:
    """Walk predecessors ``num_nodes`` times to land inside the cycle, then
    collect it (standard certificate extraction)."""
    v: Optional[Node] = start
    for _ in range(num_nodes):
        assert v is not None
        v = pred[v]
    assert v is not None
    cycle = [v]
    u = pred[v]
    while u is not None and u != v:
        cycle.append(u)
        u = pred[u]
    cycle.reverse()
    return cycle


def _improving_edge(
    dist: Dict[Node, W], edges: Sequence[Tuple[Node, Node, W]], top: W
) -> Optional[Tuple[Node, Node]]:
    """The first edge still relaxable under ``dist``, or ``None``."""
    for (u, v, w) in edges:
        du = dist[u]
        if du == top:
            continue
        if du + w < dist[v]:
            return (u, v)
    return None


def _combined_cap(max_rounds: Optional[int], budget: Optional[Budget]) -> Optional[int]:
    caps = [
        c
        for c in (max_rounds, budget.max_relaxation_rounds if budget else None)
        if c is not None
    ]
    return min(caps) if caps else None


def _round_based(
    nodes: Sequence[Node],
    edges: Sequence[Tuple[Node, Node, W]],
    source: Node,
    *,
    zero: W,
    top: W,
    cap: Optional[int],
    budget: Optional[Budget],
) -> BellmanFordResult[Node, W]:
    """The classic ``|V| - 1`` full-sweep formulation (reference + certifier)."""
    dist: Dict[Node, W] = {v: top for v in nodes}
    pred: Dict[Node, Optional[Node]] = {v: None for v in nodes}
    dist[source] = zero

    n = len(nodes)
    rounds = 0
    stabilized = False
    for _round in range(n - 1):
        if cap is not None and rounds >= cap:
            raise BudgetExceededError(
                "relaxation-rounds", cap, rounds + 1, "bellman-ford relaxation"
            )
        if budget is not None:
            budget.check_deadline("bellman-ford relaxation")
        changed = False
        for (u, v, w) in edges:
            du = dist[u]
            if du == top:
                continue
            candidate = du + w
            if candidate < dist[v]:
                dist[v] = candidate
                pred[v] = u
                changed = True
        rounds += 1
        if not changed:
            stabilized = True
            break

    if stabilized:
        # Early exit: a stabilised round proves no improving edge remains,
        # hence no negative cycle is reachable — the O(E) certificate scan
        # below is redundant.  Re-checked as a debug assertion (drop via -O).
        assert _improving_edge(dist, edges, top) is None, (
            "bellman-ford invariant violated: an improving edge survived a "
            "stabilised relaxation round (non-transitive weight ordering?)"
        )
        return BellmanFordResult(
            dist=dist, pred=pred, negative_cycle=None, rounds=rounds, pops=rounds * n
        )

    improving = _improving_edge(dist, edges, top)
    if improving is not None:
        # one more improvement possible => negative cycle reachable from source
        u, v = improving
        pred[v] = u
        cycle = _trace_cycle(pred, v, n)
        return BellmanFordResult(
            dist=dist, pred=pred, negative_cycle=cycle, rounds=rounds, pops=rounds * n
        )

    return BellmanFordResult(
        dist=dist, pred=pred, negative_cycle=None, rounds=rounds, pops=rounds * n
    )


def _slf_worklist(
    nodes: Sequence[Node],
    edges: Sequence[Tuple[Node, Node, W]],
    source: Node,
    *,
    zero: W,
    top: W,
    cap: Optional[int],
    budget: Optional[Budget],
) -> BellmanFordResult[Node, W]:
    """Deque-based SLF relaxation; certificates via the round-based pass.

    Budget accounting: one "round" is ``|V|`` vertex pops, checked at round
    boundaries exactly like the classic sweeps (a cap of 0 refuses any
    work, a cap of ``k`` allows ``k * |V|`` pops).
    """
    n = len(nodes)
    adjacency: Dict[Node, List[Tuple[Node, W]]] = {v: [] for v in nodes}
    for (u, v, w) in edges:
        adjacency[u].append((v, w))

    dist: Dict[Node, W] = {v: top for v in nodes}
    pred: Dict[Node, Optional[Node]] = {v: None for v in nodes}
    chain_len: Dict[Node, int] = {source: 0}
    dist[source] = zero

    worklist: deque = deque([source])
    queued = {source}
    pops = 0
    n_eff = max(1, n)

    while worklist:
        if pops % n_eff == 0:
            # round boundary: same cadence of budget checks as a full sweep
            round_number = pops // n_eff
            if cap is not None and round_number >= cap:
                raise BudgetExceededError(
                    "relaxation-rounds", cap, round_number + 1, "bellman-ford relaxation"
                )
            if budget is not None:
                budget.check_deadline("bellman-ford relaxation")
        u = worklist.popleft()
        queued.discard(u)
        pops += 1
        du = dist[u]
        base_len = chain_len.get(u, 0)
        for (v, w) in adjacency[u]:
            candidate = du + w
            if candidate < dist[v]:
                dist[v] = candidate
                pred[v] = u
                chain_len[v] = base_len + 1
                if chain_len[v] >= n:
                    # An improving walk of length |V| must repeat a vertex,
                    # and the repeated cycle must be negative (otherwise its
                    # removal would give an equal-or-better shorter walk) --
                    # infeasibility is certain.  Run the classic pass to
                    # extract the very certificate it has always reported.
                    return _round_based(
                        nodes, edges, source,
                        zero=zero, top=top, cap=None, budget=budget,
                    )
                if v not in queued:
                    # smallest-label-first: promising vertices jump the queue
                    if worklist and candidate < dist[worklist[0]]:
                        worklist.appendleft(v)
                    else:
                        worklist.append(v)
                    queued.add(v)

    # Empty worklist: every edge out of every improved vertex was re-checked,
    # so no improving edge remains (debug-only re-check, drop via -O).
    assert _improving_edge(dist, edges, top) is None, (
        "slf invariant violated: an improving edge survived an empty worklist "
        "(non-transitive weight ordering?)"
    )
    rounds = -(-pops // n_eff)  # ceil: partial final batches count as a round
    return BellmanFordResult(
        dist=dist, pred=pred, negative_cycle=None, rounds=rounds, pops=pops
    )


def bellman_ford(
    nodes: Sequence[Node],
    edges: Sequence[Tuple[Node, Node, W]],
    source: Node,
    *,
    zero: W,
    top: W,
    max_rounds: Optional[int] = None,
    budget: Optional[Budget] = None,
    algorithm: str = "slf",
) -> BellmanFordResult[Node, W]:
    """Shortest paths from ``source`` under any totally-ordered weight domain.

    Parameters
    ----------
    nodes, edges:
        The graph; edges are ``(u, v, w)`` triples.
    source:
        Start node (the constraint graph's ``v_0``).
    zero:
        Additive identity of the weight domain (distance of the source).
    top:
        "Unreached" sentinel; must satisfy ``d + w < top`` for reachable
        distances (e.g. ``math.inf`` or ``ExtVec.top(dim)``).
    max_rounds:
        Hard cap on relaxation rounds (worklist: ``|V|``-pop batches).  If
        the solver has not stabilised within the cap, raises
        :class:`~repro.resilience.budget.BudgetExceededError` (partial
        distances cannot distinguish a negative cycle from slow
        convergence, so there is nothing sound to return).
    budget:
        Optional :class:`~repro.resilience.budget.Budget`; its
        ``max_relaxation_rounds`` combines with ``max_rounds`` (the
        tighter wins) and its deadline is checked once per round.
    algorithm:
        ``"slf"`` (default worklist) or ``"rounds"`` (classic sweeps).
        Identical answers: same distances, same feasibility verdicts, same
        certificate cycles (the worklist delegates certificate extraction
        to the classic pass); only the work profile differs.
    """
    if source not in set(nodes):
        raise ValueError(f"source {source!r} not among nodes")
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")
    cap = _combined_cap(max_rounds, budget)
    solve = _slf_worklist if algorithm == "slf" else _round_based
    reg = obs.default_registry()
    reg.counter("solver.bellman_ford.calls").inc()
    with obs.trace_span(
        "solver.bellman_ford",
        algorithm=algorithm,
        nodes=len(nodes),
        edges=len(edges),
    ) as sp:
        try:
            result = solve(nodes, edges, source, zero=zero, top=top, cap=cap, budget=budget)
        except BudgetExceededError:
            reg.counter("solver.bellman_ford.budget_exceeded").inc()
            sp.set(outcome="budget-exceeded")
            raise
        reg.counter("solver.bellman_ford.rounds").inc(result.rounds)
        reg.counter("solver.bellman_ford.pops").inc(result.pops)
        if cap is not None:
            # budget consumption: rounds actually spent under an active cap
            reg.counter("solver.budget.rounds_consumed").inc(result.rounds)
        if result.negative_cycle is not None:
            reg.counter("solver.bellman_ford.negative_cycles").inc()
        sp.set(rounds=result.rounds, pops=result.pops, feasible=result.feasible)
    return result


def scalar_bellman_ford(
    nodes: Sequence[Node],
    edges: Sequence[Tuple[Node, Node, int]],
    source: Node,
    *,
    max_rounds: Optional[int] = None,
    budget: Optional[Budget] = None,
    algorithm: str = "slf",
) -> BellmanFordResult[Node, float]:
    """Problem ILP's solver: integer weights, ``math.inf`` as unreached."""
    return bellman_ford(
        nodes,
        edges,
        source,
        zero=0,
        top=math.inf,
        max_rounds=max_rounds,
        budget=budget,
        algorithm=algorithm,
    )
