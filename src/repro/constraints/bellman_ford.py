"""Generic Bellman-Ford with negative-cycle certificates.

One implementation serves both of the paper's solvers:

* Problem ILP (Section 2.4) uses integer weights;
* Algorithm 1 ("TwoDimBellmanFord") uses lexicographically-ordered vector
  weights -- see :mod:`repro.constraints.vector_bellman_ford`.

The weight domain only needs ``+`` (weight extension) and ``<`` (total
order), which both ``int``/``float`` and
:class:`~repro.vectors.extended.ExtVec` provide.  Tentative distances start
at a caller-supplied ``top`` (plus infinity) and the source at ``zero``.

After ``|V| - 1`` relaxation rounds a further improving edge proves a
negative cycle; the certificate cycle is recovered by walking predecessor
links ``|V|`` steps back from the improving edge's head.

Work is bounded two ways: when a round stabilises (no relaxation fired)
the certificate scan is skipped entirely — stabilisation already proves no
improving edge remains, which a debug-only assertion re-checks — and an
explicit relaxation cap (``max_rounds`` or a
:class:`~repro.resilience.budget.Budget`) turns pathological inputs into a
typed :class:`~repro.resilience.budget.BudgetExceededError` instead of a
full ``O(V * E)`` crawl.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Generic, Hashable, List, Optional, Sequence, Tuple, TypeVar

from repro.resilience.budget import Budget, BudgetExceededError

__all__ = [
    "bellman_ford",
    "scalar_bellman_ford",
    "BellmanFordResult",
    "NegativeCycleError",
]

Node = TypeVar("Node", bound=Hashable)
W = TypeVar("W")  # weight type: needs + and <


class NegativeCycleError(Exception):
    """Raised by the constraint-system front-ends on infeasible systems.

    ``cycle`` lists the nodes of one negative-weight cycle (a certificate of
    infeasibility per Theorems 2.2/2.3).
    """

    def __init__(self, cycle: List) -> None:
        super().__init__(f"negative-weight cycle: {' -> '.join(map(str, cycle))}")
        self.cycle = cycle


@dataclass
class BellmanFordResult(Generic[Node, W]):
    """Distances and predecessors from one source, or a negative cycle.

    ``negative_cycle`` is ``None`` on success.  When set, ``dist``/``pred``
    hold the (meaningless beyond diagnosis) state at detection time.
    ``rounds`` counts the relaxation rounds actually executed (useful to
    confirm early stabilisation on benign graphs).
    """

    dist: Dict[Node, W]
    pred: Dict[Node, Optional[Node]]
    negative_cycle: Optional[List[Node]]
    rounds: int = field(default=0, compare=False)

    @property
    def feasible(self) -> bool:
        return self.negative_cycle is None


def _trace_cycle(
    pred: Dict[Node, Optional[Node]], start: Node, num_nodes: int
) -> List[Node]:
    """Walk predecessors ``num_nodes`` times to land inside the cycle, then
    collect it (standard certificate extraction)."""
    v: Optional[Node] = start
    for _ in range(num_nodes):
        assert v is not None
        v = pred[v]
    assert v is not None
    cycle = [v]
    u = pred[v]
    while u is not None and u != v:
        cycle.append(u)
        u = pred[u]
    cycle.reverse()
    return cycle


def _improving_edge(
    dist: Dict[Node, W], edges: Sequence[Tuple[Node, Node, W]], top: W
) -> Optional[Tuple[Node, Node]]:
    """The first edge still relaxable under ``dist``, or ``None``."""
    for (u, v, w) in edges:
        du = dist[u]
        if du == top:
            continue
        if du + w < dist[v]:
            return (u, v)
    return None


def bellman_ford(
    nodes: Sequence[Node],
    edges: Sequence[Tuple[Node, Node, W]],
    source: Node,
    *,
    zero: W,
    top: W,
    max_rounds: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> BellmanFordResult[Node, W]:
    """Shortest paths from ``source`` under any totally-ordered weight domain.

    Parameters
    ----------
    nodes, edges:
        The graph; edges are ``(u, v, w)`` triples.
    source:
        Start node (the constraint graph's ``v_0``).
    zero:
        Additive identity of the weight domain (distance of the source).
    top:
        "Unreached" sentinel; must satisfy ``d + w < top`` for reachable
        distances (e.g. ``math.inf`` or ``ExtVec.top(dim)``).
    max_rounds:
        Hard cap on relaxation rounds.  If the distances have not
        stabilised within the cap, raises
        :class:`~repro.resilience.budget.BudgetExceededError` (partial
        distances cannot distinguish a negative cycle from slow
        convergence, so there is nothing sound to return).
    budget:
        Optional :class:`~repro.resilience.budget.Budget`; its
        ``max_relaxation_rounds`` combines with ``max_rounds`` (the
        tighter wins) and its deadline is checked once per round.
    """
    if source not in set(nodes):
        raise ValueError(f"source {source!r} not among nodes")
    dist: Dict[Node, W] = {v: top for v in nodes}
    pred: Dict[Node, Optional[Node]] = {v: None for v in nodes}
    dist[source] = zero

    caps = [
        c
        for c in (max_rounds, budget.max_relaxation_rounds if budget else None)
        if c is not None
    ]
    cap = min(caps) if caps else None

    n = len(nodes)
    rounds = 0
    stabilized = False
    for _round in range(n - 1):
        if cap is not None and rounds >= cap:
            raise BudgetExceededError(
                "relaxation-rounds", cap, rounds + 1, "bellman-ford relaxation"
            )
        if budget is not None:
            budget.check_deadline("bellman-ford relaxation")
        changed = False
        for (u, v, w) in edges:
            du = dist[u]
            if du == top:
                continue
            candidate = du + w
            if candidate < dist[v]:
                dist[v] = candidate
                pred[v] = u
                changed = True
        rounds += 1
        if not changed:
            stabilized = True
            break

    if stabilized:
        # Early exit: a stabilised round proves no improving edge remains,
        # hence no negative cycle is reachable — the O(E) certificate scan
        # below is redundant.  Re-checked as a debug assertion (drop via -O).
        assert _improving_edge(dist, edges, top) is None, (
            "bellman-ford invariant violated: an improving edge survived a "
            "stabilised relaxation round (non-transitive weight ordering?)"
        )
        return BellmanFordResult(dist=dist, pred=pred, negative_cycle=None, rounds=rounds)

    improving = _improving_edge(dist, edges, top)
    if improving is not None:
        # one more improvement possible => negative cycle reachable from source
        u, v = improving
        pred[v] = u
        cycle = _trace_cycle(pred, v, n)
        return BellmanFordResult(dist=dist, pred=pred, negative_cycle=cycle, rounds=rounds)

    return BellmanFordResult(dist=dist, pred=pred, negative_cycle=None, rounds=rounds)


def scalar_bellman_ford(
    nodes: Sequence[Node],
    edges: Sequence[Tuple[Node, Node, int]],
    source: Node,
    *,
    max_rounds: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> BellmanFordResult[Node, float]:
    """Problem ILP's solver: integer weights, ``math.inf`` as unreached."""
    return bellman_ford(
        nodes, edges, source, zero=0, top=math.inf, max_rounds=max_rounds, budget=budget
    )
