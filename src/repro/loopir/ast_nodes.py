"""AST for the Figure-1 program model.

The shapes are deliberately narrow: the paper's model is an outermost
sequential loop over ``i`` containing a sequence of DOALL loops over ``j``,
with uniform (constant-offset) array accesses ``a[i+c1][j+c2]``.  Everything
is immutable; transformations build new trees.

Expression nodes: :class:`Const`, :class:`ArrayRef`, :class:`UnaryOp`,
:class:`BinOp`.  Statement node: :class:`Assignment`.  Structure nodes:
:class:`InnerLoop` (one DOALL loop = one MLDG node) and :class:`LoopNest`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Set, Tuple, Union

from repro.vectors import IVec

__all__ = [
    "SourceSpan",
    "Expr",
    "Const",
    "ArrayRef",
    "UnaryOp",
    "BinOp",
    "Assignment",
    "InnerLoop",
    "LoopNest",
]


@dataclass(frozen=True)
class SourceSpan:
    """A region of DSL source text: 1-based line/column, inclusive end.

    Spans are carried by AST nodes built by the parser so diagnostics can
    point at the offending text; programmatically built trees have no spans.
    Spans never participate in node equality or hashing.
    """

    line: int
    col: int
    end_line: Optional[int] = None
    end_col: Optional[int] = None

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


class Expr:
    """Marker base class for expressions."""

    __slots__ = ()

    def array_refs(self) -> Iterator["ArrayRef"]:
        """All array references in the expression, left to right."""
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    """A numeric literal."""

    value: float

    def array_refs(self) -> Iterator["ArrayRef"]:
        return iter(())

    def __str__(self) -> str:
        if isinstance(self.value, int) or self.value.is_integer():
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class ArrayRef(Expr):
    """A uniform access ``array[i + offset[0]][j + offset[1]]``.

    ``offset`` has the dimension of the loop nest (2 for the paper's model).
    """

    array: str
    offset: IVec
    span: Optional[SourceSpan] = field(default=None, compare=False, repr=False)

    def array_refs(self) -> Iterator["ArrayRef"]:
        yield self

    def shifted(self, by: IVec) -> "ArrayRef":
        """The reference with every index offset shifted by ``by``.

        Retiming node ``u`` by ``r(u)`` rewrites each of its statements'
        references from ``a[i+c][j+d]`` to ``a[i+c+r0][j+d+r1]``.
        """
        return ArrayRef(self.array, self.offset + by, span=self.span)

    def index_text(self, index_names: Tuple[str, ...]) -> str:
        parts = []
        for name, off in zip(index_names, self.offset):
            if off == 0:
                parts.append(f"[{name}]")
            elif off > 0:
                parts.append(f"[{name}+{off}]")
            else:
                parts.append(f"[{name}{off}]")
        return "".join(parts)

    def __str__(self) -> str:
        return self.array + self.index_text(("i", "j"))


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary minus (the only unary operator in the DSL)."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op != "-":
            raise ValueError(f"unsupported unary operator {self.op!r}")

    def array_refs(self) -> Iterator[ArrayRef]:
        return self.operand.array_refs()

    def __str__(self) -> str:
        return f"-{self.operand}"


_BINOPS = ("+", "-", "*", "/")


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic operation."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINOPS:
            raise ValueError(f"unsupported binary operator {self.op!r}")

    def array_refs(self) -> Iterator[ArrayRef]:
        yield from self.left.array_refs()
        yield from self.right.array_refs()

    def __str__(self) -> str:
        def wrap(e: Expr) -> str:
            if isinstance(e, BinOp) and self.op in ("*", "/") and e.op in ("+", "-"):
                return f"({e})"
            return str(e)

        return f"{wrap(self.left)} {self.op} {wrap(self.right)}"


@dataclass(frozen=True)
class Assignment:
    """``target = expr`` where the target is an array reference."""

    target: ArrayRef
    expr: Expr
    span: Optional[SourceSpan] = field(default=None, compare=False, repr=False)

    def reads(self) -> Iterator[ArrayRef]:
        return self.expr.array_refs()

    def shifted(self, by: IVec) -> "Assignment":
        """The statement with all references shifted (retiming application)."""

        def shift_expr(e: Expr) -> Expr:
            if isinstance(e, ArrayRef):
                return e.shifted(by)
            if isinstance(e, UnaryOp):
                return UnaryOp(e.op, shift_expr(e.operand))
            if isinstance(e, BinOp):
                return BinOp(e.op, shift_expr(e.left), shift_expr(e.right))
            return e

        return Assignment(self.target.shifted(by), shift_expr(self.expr), span=self.span)

    def __str__(self) -> str:
        return f"{self.target} = {self.expr}"


@dataclass(frozen=True)
class InnerLoop:
    """One DOALL innermost loop: an MLDG node.

    ``label`` names the loop (the paper's A, B, C, ...); statements execute
    in order for each iteration ``j``.
    """

    label: str
    statements: Tuple[Assignment, ...]
    span: Optional[SourceSpan] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("inner loop needs a label")
        if not self.statements:
            raise ValueError(f"inner loop {self.label!r} has no statements")

    def written_arrays(self) -> Set[str]:
        return {s.target.array for s in self.statements}

    def read_arrays(self) -> Set[str]:
        return {r.array for s in self.statements for r in s.reads()}

    def __str__(self) -> str:
        body = "\n".join(f"  {s}" for s in self.statements)
        return f"{self.label}:\n{body}"


@dataclass(frozen=True)
class LoopNest:
    """The whole Figure-1 nest.

    ``outer_bound`` and ``inner_bound`` are the symbolic upper bounds (the
    paper's ``n`` and ``m``); lower bounds are 0.  ``index_names`` are the
    control indices (``i`` outermost).
    """

    loops: Tuple[InnerLoop, ...]
    outer_bound: str = "n"
    inner_bound: str = "m"
    index_names: Tuple[str, ...] = ("i", "j")

    def __post_init__(self) -> None:
        if not self.loops:
            raise ValueError("a loop nest needs at least one inner loop")
        labels = [lp.label for lp in self.loops]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate loop labels in {labels}")
        if len(self.index_names) != 2:
            raise ValueError("the program model is two-level (two indices)")

    @property
    def dim(self) -> int:
        return len(self.index_names)

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(lp.label for lp in self.loops)

    def loop(self, label: str) -> InnerLoop:
        for lp in self.loops:
            if lp.label == label:
                return lp
        raise KeyError(f"no loop labelled {label!r}")

    def writers(self) -> Dict[str, Tuple[str, Assignment]]:
        """Map array -> (loop label, writing statement).

        Raises ``ValueError`` on multiple writers (the validator gives a
        friendlier diagnosis; this is the structural accessor).
        """
        out: Dict[str, Tuple[str, Assignment]] = {}
        for lp in self.loops:
            for stmt in lp.statements:
                arr = stmt.target.array
                if arr in out:
                    raise ValueError(f"array {arr!r} written by more than one statement")
                out[arr] = (lp.label, stmt)
        return out

    def input_arrays(self) -> Set[str]:
        """Arrays read but never written (external inputs)."""
        written = {s.target.array for lp in self.loops for s in lp.statements}
        read = {r.array for lp in self.loops for s in lp.statements for r in s.reads()}
        return read - written

    def all_arrays(self) -> Set[str]:
        written = {s.target.array for lp in self.loops for s in lp.statements}
        read = {r.array for lp in self.loops for s in lp.statements for r in s.reads()}
        return written | read

    def statement_count(self) -> int:
        return sum(len(lp.statements) for lp in self.loops)
