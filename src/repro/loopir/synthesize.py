"""Synthesise a runnable loop nest realising a given MLDG.

Abstract gallery graphs and randomly generated MLDGs have no source program;
this module manufactures one whose extracted dependence graph is *exactly*
the input MLDG, so the executable-equivalence machinery can exercise any
sequence-executable graph.

Construction: node ``u`` writes array ``v_u`` and reads, for every edge
``w -> u`` and every vector ``d`` in ``D_L(w, u)``, the value
``v_w[i - d[0]][j - d[1]]`` (consumer-minus-producer inverts back to ``d``
under extraction), plus a private input array ``x_u[i][j]`` so each node
also carries fresh external data.  Reads are scaled by ``1/(k+1)`` (``k`` =
number of dependence reads) to keep values bounded over long executions.
"""

from __future__ import annotations

from typing import List

from repro.graph.legality import is_sequence_executable
from repro.graph.mldg import MLDG
from repro.loopir.ast_nodes import (
    ArrayRef,
    Assignment,
    BinOp,
    Const,
    Expr,
    InnerLoop,
    LoopNest,
)
from repro.vectors import IVec

__all__ = ["program_from_mldg"]


def program_from_mldg(
    g: MLDG, *, check: bool = True, rich_bodies: bool = False
) -> LoopNest:
    """A loop nest whose dependence extraction reproduces ``g`` exactly.

    Requires a two-dimensional, *sequence-executable* MLDG (the generated
    source must run correctly as written); pass ``check=False`` to skip that
    validation when the caller has already established it.

    With ``rich_bodies`` each loop gets a second statement that combines
    the node's output with its private input through an intra-body
    same-iteration read (``t_u[i][j] = v_u[i][j] - 0.5 * x_u[i][j]``).
    Such reads are preserved by statement order under any fusion and do
    not appear in the MLDG, so extraction still reproduces ``g`` exactly
    -- but code generation and execution must keep the statements together
    and ordered, which the equivalence suite then exercises.
    """
    if g.dim != 2:
        raise ValueError("program synthesis targets the 2-D program model")
    if check:
        report = is_sequence_executable(g)
        if not report.legal:
            raise ValueError(
                "MLDG is not sequence-executable; cannot synthesise a source "
                "program: " + "; ".join(report.violations[:3])
            )

    loops: List[InnerLoop] = []
    for node in g.nodes:
        reads: List[ArrayRef] = []
        for pred in sorted(set(g.predecessors(node)), key=g.program_index):
            for d in sorted(g.D(pred, node)):
                reads.append(ArrayRef(f"v_{pred}", IVec(-d[0], -d[1])))
        scale = 1.0 / (len(reads) + 1)
        expr: Expr = ArrayRef(f"x_{node}", IVec(0, 0))
        for ref in reads:
            expr = BinOp("+", expr, BinOp("*", Const(scale), ref))
        stmt = Assignment(target=ArrayRef(f"v_{node}", IVec(0, 0)), expr=expr)
        statements = [stmt]
        if rich_bodies:
            statements.append(
                Assignment(
                    target=ArrayRef(f"t_{node}", IVec(0, 0)),
                    expr=BinOp(
                        "-",
                        ArrayRef(f"v_{node}", IVec(0, 0)),
                        BinOp("*", Const(0.5), ArrayRef(f"x_{node}", IVec(0, 0))),
                    ),
                )
            )
        loops.append(InnerLoop(label=node, statements=tuple(statements)))
    return LoopNest(loops=tuple(loops))
