"""Model-level validation of loop nests.

The fusion framework's assumptions (Section 1: "the innermost loops are
DOALL loops that work in the same range of control indices. ... the program
contains only data dependencies with constant distances"), made checkable:

1. **single assignment per array** -- each array is written by at most one
   statement, so every read has an unambiguous producer and all dependence
   distances are constants;
2. **DOALL innermost loops** -- no loop reads its own output at a different
   inner-iteration offset within the same outermost iteration;
3. **well-ordered reads** -- every read of a written array refers to a value
   produced either in an earlier outermost iteration, or earlier in the
   same outermost iteration's textual loop/statement order.  (A violation
   would read a cell before it is written, which the original program's
   semantics cannot mean.)

Each violation is a structured :class:`ModelFinding` carrying the stable
diagnostic code of the corresponding ``repro.lint`` rule (``LF101`` multiple
assignment, ``LF102`` future-iteration read, ``LF103`` DOALL race, ``LF104``
read-before-write), the offending statement and its source span.
:func:`validate_program` remains the raise-on-error entry point;
:func:`model_findings` is the non-raising structured form the linter builds
on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.loopir.ast_nodes import Assignment, LoopNest, SourceSpan

__all__ = ["ModelFinding", "ValidationError", "model_findings", "validate_program"]


@dataclass(frozen=True)
class ModelFinding:
    """One structured program-model violation.

    ``code`` is the stable ``repro.lint`` diagnostic code; ``message`` is the
    human-readable description (exactly the string historically carried by
    :class:`ValidationError`); ``loop``/``array`` name the offending loop
    label and array; ``statement`` and ``span`` locate the violation when
    the nest came from parsed source.
    """

    code: str
    message: str
    loop: Optional[str] = None
    array: Optional[str] = None
    statement: Optional[Assignment] = None
    span: Optional[SourceSpan] = None
    hint: Optional[str] = None

    def __str__(self) -> str:
        return f"[{self.code}] {self.message}"


class ValidationError(Exception):
    """The loop nest violates the program model.

    ``problems`` lists every violation as text (the full list -- nothing is
    truncated); ``findings`` carries the same violations as structured
    :class:`ModelFinding` records for machine consumption.
    """

    def __init__(
        self, problems: List[str], findings: Optional[List[ModelFinding]] = None
    ) -> None:
        super().__init__("; ".join(problems))
        self.problems = problems
        self.findings = list(findings or [])


def model_findings(nest: LoopNest) -> List[ModelFinding]:
    """All program-model violations of ``nest`` as structured findings.

    Returns an empty list when the nest fits the model.  Never raises; this
    is the analysis behind :func:`validate_program` and the model-layer
    rules of :mod:`repro.lint`.
    """
    findings: List[ModelFinding] = []

    # 1. single writer per array (LF101)
    writers = {}
    for loop in nest.loops:
        for stmt in loop.statements:
            arr = stmt.target.array
            if arr in writers:
                findings.append(
                    ModelFinding(
                        code="LF101",
                        message=(
                            f"array '{arr}' written in both loop {writers[arr][0]} "
                            f"and loop {loop.label}: the model is "
                            "single-assignment per array"
                        ),
                        loop=loop.label,
                        array=arr,
                        statement=stmt,
                        span=stmt.span,
                        hint="write each array in exactly one statement; "
                        "introduce a second array for the second definition",
                    )
                )
            else:
                writers[arr] = (loop.label, stmt)

    loop_pos = {lp.label: k for k, lp in enumerate(nest.loops)}

    # 2 & 3: examine every read with a known writer (LF102/LF103/LF104)
    for loop in nest.loops:
        for stmt_idx, stmt in enumerate(loop.statements):
            for ref in stmt.reads():
                if ref.array not in writers:
                    continue  # external input
                w_label, w_stmt = writers[ref.array]
                # dependence distance: consumer iteration - producer iteration
                d = w_stmt.target.offset - ref.offset
                span = ref.span or stmt.span
                if d[0] < 0:
                    findings.append(
                        ModelFinding(
                            code="LF102",
                            message=(
                                f"loop {loop.label} reads {ref} before loop "
                                f"{w_label} writes it (distance {d}): dependence "
                                "on a future outermost iteration"
                            ),
                            loop=loop.label,
                            array=ref.array,
                            statement=stmt,
                            span=span,
                            hint=f"decrease the read's outer offset (or move the "
                            f"write earlier) so the distance's first coordinate "
                            f"is non-negative; currently {d}",
                        )
                    )
                elif d[0] == 0:
                    if w_label == loop.label:
                        if d[1] != 0:
                            findings.append(
                                ModelFinding(
                                    code="LF103",
                                    message=(
                                        f"loop {loop.label} reads its own output "
                                        f"at inner offset {d[1]} within one "
                                        "outermost iteration: not a DOALL loop"
                                    ),
                                    loop=loop.label,
                                    array=ref.array,
                                    statement=stmt,
                                    span=span,
                                    hint="a claimed-DOALL loop may not carry an "
                                    "inner-iteration dependence; make the "
                                    "self-dependence outermost-carried (read "
                                    f"{ref.array} at an earlier outer iteration) "
                                    "or split the loop",
                                )
                            )
                        else:
                            # same loop, same iteration: writer statement must
                            # come strictly before the reading statement
                            w_idx = loop.statements.index(w_stmt)
                            if w_idx >= stmt_idx:
                                findings.append(
                                    ModelFinding(
                                        code="LF104",
                                        message=(
                                            f"statement '{stmt}' in loop "
                                            f"{loop.label} reads {ref} before it "
                                            "is written in the same iteration"
                                        ),
                                        loop=loop.label,
                                        array=ref.array,
                                        statement=stmt,
                                        span=span,
                                        hint="move the producing statement above "
                                        "the consuming one",
                                    )
                                )
                    elif loop_pos[w_label] > loop_pos[loop.label]:
                        findings.append(
                            ModelFinding(
                                code="LF104",
                                message=(
                                    f"loop {loop.label} reads {ref}, written later "
                                    "in the same outermost iteration by loop "
                                    f"{w_label} (distance {d}): read of an "
                                    "unwritten value"
                                ),
                                loop=loop.label,
                                array=ref.array,
                                statement=stmt,
                                span=span,
                                hint=f"move loop {w_label} before loop "
                                f"{loop.label}, or read {ref.array} from an "
                                "earlier outer iteration",
                            )
                        )

    return findings


def validate_program(nest: LoopNest) -> None:
    """Raise :class:`ValidationError` unless the nest fits the program model."""
    findings = model_findings(nest)
    if findings:
        raise ValidationError([f.message for f in findings], findings=findings)
