"""Model-level validation of loop nests.

The fusion framework's assumptions (Section 1: "the innermost loops are
DOALL loops that work in the same range of control indices. ... the program
contains only data dependencies with constant distances"), made checkable:

1. **single assignment per array** -- each array is written by at most one
   statement, so every read has an unambiguous producer and all dependence
   distances are constants;
2. **DOALL innermost loops** -- no loop reads its own output at a different
   inner-iteration offset within the same outermost iteration;
3. **well-ordered reads** -- every read of a written array refers to a value
   produced either in an earlier outermost iteration, or earlier in the
   same outermost iteration's textual loop/statement order.  (A violation
   would read a cell before it is written, which the original program's
   semantics cannot mean.)
"""

from __future__ import annotations

from typing import List

from repro.loopir.ast_nodes import LoopNest

__all__ = ["ValidationError", "validate_program"]


class ValidationError(Exception):
    """The loop nest violates the program model; ``problems`` lists why."""

    def __init__(self, problems: List[str]) -> None:
        super().__init__("; ".join(problems))
        self.problems = problems


def validate_program(nest: LoopNest) -> None:
    """Raise :class:`ValidationError` unless the nest fits the program model."""
    problems: List[str] = []

    # 1. single writer per array
    writers = {}
    for loop in nest.loops:
        for stmt in loop.statements:
            arr = stmt.target.array
            if arr in writers:
                problems.append(
                    f"array '{arr}' written in both loop {writers[arr][0]} and "
                    f"loop {loop.label}: the model is single-assignment per array"
                )
            else:
                writers[arr] = (loop.label, stmt)

    loop_pos = {lp.label: k for k, lp in enumerate(nest.loops)}

    # 2 & 3: examine every read with a known writer
    for loop in nest.loops:
        for stmt_idx, stmt in enumerate(loop.statements):
            for ref in stmt.reads():
                if ref.array not in writers:
                    continue  # external input
                w_label, w_stmt = writers[ref.array]
                # dependence distance: consumer iteration - producer iteration
                d = w_stmt.target.offset - ref.offset
                if d[0] < 0:
                    problems.append(
                        f"loop {loop.label} reads {ref} before loop {w_label} "
                        f"writes it (distance {d}): dependence on a future "
                        "outermost iteration"
                    )
                elif d[0] == 0:
                    if w_label == loop.label:
                        if d[1] != 0:
                            problems.append(
                                f"loop {loop.label} reads its own output at "
                                f"inner offset {d[1]} within one outermost "
                                "iteration: not a DOALL loop"
                            )
                        else:
                            # same loop, same iteration: writer statement must
                            # come strictly before the reading statement
                            w_idx = loop.statements.index(w_stmt)
                            if w_idx >= stmt_idx:
                                problems.append(
                                    f"statement '{stmt}' in loop {loop.label} "
                                    f"reads {ref} before it is written in the "
                                    "same iteration"
                                )
                    elif loop_pos[w_label] > loop_pos[loop.label]:
                        problems.append(
                            f"loop {loop.label} reads {ref}, written later in "
                            f"the same outermost iteration by loop {w_label} "
                            f"(distance {d}): read of an unwritten value"
                        )

    if problems:
        raise ValidationError(problems)
