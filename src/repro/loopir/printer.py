"""Re-emit a loop nest as DSL source (the inverse of the parser)."""

from __future__ import annotations

from repro.loopir.ast_nodes import ArrayRef, Assignment, Expr, LoopNest

__all__ = ["format_program", "format_statement"]


def _format_ref(ref: ArrayRef, nest: LoopNest) -> str:
    return ref.array + ref.index_text(nest.index_names)


def _format_expr(e: Expr, nest: LoopNest) -> str:
    from repro.loopir.ast_nodes import BinOp, Const, UnaryOp

    if isinstance(e, ArrayRef):
        return _format_ref(e, nest)
    if isinstance(e, Const):
        return str(e)
    if isinstance(e, UnaryOp):
        return f"-{_format_expr(e.operand, nest)}"
    if isinstance(e, BinOp):

        def wrap(sub: Expr) -> str:
            text = _format_expr(sub, nest)
            if isinstance(sub, BinOp) and e.op in ("*", "/") and sub.op in ("+", "-"):
                return f"({text})"
            return text

        return f"{wrap(e.left)} {e.op} {wrap(e.right)}"
    raise TypeError(f"unknown expression node {e!r}")


def format_statement(stmt: Assignment, nest: LoopNest) -> str:
    return f"{_format_ref(stmt.target, nest)} = {_format_expr(stmt.expr, nest)}"


def format_program(nest: LoopNest) -> str:
    """DSL text that parses back to an equal loop nest."""
    i, j = nest.index_names
    lines = [f"do {i} = 0, {nest.outer_bound}"]
    for loop in nest.loops:
        lines.append(f"  {loop.label}: doall {j} = 0, {nest.inner_bound}")
        for stmt in loop.statements:
            lines.append(f"    {format_statement(stmt, nest)}")
        lines.append("  end")
    lines.append("end")
    return "\n".join(lines)
