"""Programmatic construction of loop nests.

A fluent alternative to writing DSL text::

    nest = (
        LoopNestBuilder()
        .loop("A").assign("a", (0, 0), "e[i-2][j-1]")
        .loop("B").assign("b", (0, 0), "a[i-1][j-1] + a[i-2][j-1]")
        .build()
    )

Right-hand sides are parsed with the DSL expression grammar, so the builder
and the parser accept the same expression language.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.loopir.ast_nodes import ArrayRef, Assignment, InnerLoop, LoopNest
from repro.loopir.parser import _Parser, _tokenize
from repro.vectors import IVec

__all__ = ["LoopNestBuilder"]


def _parse_expr_text(text: str, index_names: Tuple[str, str]):
    tokens, _ = _tokenize(text)
    parser = _Parser(tokens, {})
    expr = parser.parse_expr(*index_names)
    if parser.cur.kind != "eof":
        raise ValueError(f"trailing input in expression {text!r}")
    return expr


class LoopNestBuilder:
    """Accumulates DOALL loops and their statements, then builds a LoopNest."""

    def __init__(
        self,
        *,
        outer_bound: str = "n",
        inner_bound: str = "m",
        index_names: Tuple[str, str] = ("i", "j"),
    ) -> None:
        self._outer_bound = outer_bound
        self._inner_bound = inner_bound
        self._index_names = index_names
        self._loops: List[Tuple[str, List[Assignment]]] = []

    def loop(self, label: str) -> "LoopNestBuilder":
        """Start a new DOALL loop with the given label."""
        if any(lbl == label for lbl, _ in self._loops):
            raise ValueError(f"duplicate loop label {label!r}")
        self._loops.append((label, []))
        return self

    def assign(
        self,
        array: str,
        offset: Union[IVec, Sequence[int]],
        rhs: str,
    ) -> "LoopNestBuilder":
        """Add ``array[i+offset0][j+offset1] = rhs`` to the current loop."""
        if not self._loops:
            raise ValueError("call .loop(label) before .assign(...)")
        off = offset if isinstance(offset, IVec) else IVec(tuple(offset))
        expr = _parse_expr_text(rhs, self._index_names)
        stmt = Assignment(target=ArrayRef(array, off), expr=expr)
        self._loops[-1][1].append(stmt)
        return self

    def build(self, *, validate: bool = True) -> LoopNest:
        """Construct the nest; with ``validate`` (default) run the model checks."""
        loops = tuple(
            InnerLoop(label=lbl, statements=tuple(stmts)) for lbl, stmts in self._loops
        )
        nest = LoopNest(
            loops=loops,
            outer_bound=self._outer_bound,
            inner_bound=self._inner_bound,
            index_names=self._index_names,
        )
        if validate:
            from repro.loopir.validate import validate_program

            validate_program(nest)
        return nest
