"""Loop-nest intermediate representation (the paper's Figure-1 program model).

A :class:`~repro.loopir.ast_nodes.LoopNest` is one outermost sequential loop
``do i = 0, n`` whose body is a sequence of innermost DOALL loops
``doall j = 0, m`` over the same index range, each containing assignments to
arrays with constant-offset (uniform) affine accesses -- "data dependencies
with constant distances" in the paper's words.

* :mod:`~repro.loopir.ast_nodes` -- the AST;
* :mod:`~repro.loopir.parser` -- a small Fortran-flavoured DSL front-end;
* :mod:`~repro.loopir.printer` -- DSL re-emission;
* :mod:`~repro.loopir.validate` -- program-model validation (single writer
  per array, DOALL innermost loops, well-ordered reads);
* :mod:`~repro.loopir.synthesize` -- generate a loop nest realising a given
  MLDG (used to execute abstract gallery/random graphs);
* :mod:`~repro.loopir.builder` -- a programmatic construction API.
"""

from repro.loopir.ast_nodes import (
    ArrayRef,
    Assignment,
    BinOp,
    Const,
    InnerLoop,
    LoopNest,
    SourceSpan,
    UnaryOp,
)
from repro.loopir.parser import ParseError, collect_lint_suppressions, parse_program
from repro.loopir.printer import format_program
from repro.loopir.validate import (
    ModelFinding,
    ValidationError,
    model_findings,
    validate_program,
)
from repro.loopir.synthesize import program_from_mldg
from repro.loopir.builder import LoopNestBuilder

__all__ = [
    "ArrayRef",
    "Assignment",
    "BinOp",
    "Const",
    "UnaryOp",
    "InnerLoop",
    "LoopNest",
    "SourceSpan",
    "parse_program",
    "ParseError",
    "collect_lint_suppressions",
    "format_program",
    "validate_program",
    "ValidationError",
    "ModelFinding",
    "model_findings",
    "program_from_mldg",
    "LoopNestBuilder",
]
