"""Parser for the loop DSL.

The concrete syntax mirrors the paper's Fortran-style figures::

    do i = 0, n
      doall j = 0, m        ! loop A
        a[i][j] = e[i-2][j-1]
      end
      B: doall j = 0, m
        b[i][j] = a[i-1][j-1] + a[i-2][j-1]
      end
    end

* One outermost ``do`` over the first index, DOALL loops over the second.
* Loop labels come from either a ``LABEL:`` prefix or a ``! loop LABEL``
  comment on the ``doall`` line; unlabeled loops get ``L1``, ``L2``, ...
* Statements assign an array element; subscripts are the loop index plus a
  constant (uniform accesses): ``a[i-2][j+1]``.
* ``!`` (or ``#``) starts a comment.  Expressions use ``+ - * /``,
  parentheses, unary minus and numeric literals.
* ``! lint: disable=LF101,LF201`` comments suppress lint diagnostics (see
  :mod:`repro.lint`): on a code line they silence the listed codes for that
  line, on a comment-only line for the whole file.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.loopir.ast_nodes import (
    ArrayRef,
    Assignment,
    BinOp,
    Const,
    Expr,
    InnerLoop,
    LoopNest,
    SourceSpan,
    UnaryOp,
)
from repro.vectors import IVec

__all__ = ["parse_program", "ParseError", "collect_lint_suppressions", "FILE_WIDE"]


class ParseError(Exception):
    """Syntax or model error in DSL source, with a line number."""

    def __init__(self, message: str, line: int, col: int = 1) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line
        self.col = col


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op>[+\-*/=(),:\[\]])
    """,
    re.VERBOSE,
)

_LOOP_COMMENT_RE = re.compile(r"[!#]\s*loop\s+(\w+)", re.IGNORECASE)

_SUPPRESS_RE = re.compile(r"[!#]\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Key used in :func:`collect_lint_suppressions` for file-wide suppressions.
FILE_WIDE = 0


def _comment_start(line: str) -> int:
    """Index of the first comment character (``!`` or ``#``), or -1."""
    candidates = [k for k in (line.find("!"), line.find("#")) if k >= 0]
    return min(candidates) if candidates else -1


def collect_lint_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> lint codes disabled there by comment directives.

    A ``lint: disable=LF101,LF301`` directive inside a ``!``/``#`` comment on
    a line that also holds code suppresses those codes for diagnostics on
    that line; on a comment-only (or blank-code) line, the codes are
    suppressed file-wide, recorded under the key :data:`FILE_WIDE`.
    """
    suppressions: Dict[int, Set[str]] = {}
    for lineno, raw in enumerate(source.splitlines(), start=1):
        bang = _comment_start(raw)
        if bang < 0:
            continue
        m = _SUPPRESS_RE.search(raw, bang)
        if m is None:
            continue
        codes = {c.strip().upper() for c in m.group(1).split(",") if c.strip()}
        if not codes:
            continue
        key = lineno if raw[:bang].strip() else FILE_WIDE
        suppressions.setdefault(key, set()).update(codes)
    return suppressions


@dataclass(frozen=True)
class _Token:
    kind: str  # "number" | "name" | "op" | "eof"
    text: str
    line: int
    col: int = 1

    @property
    def end_col(self) -> int:
        return self.col + max(len(self.text) - 1, 0)


def _tokenize(source: str) -> Tuple[List[_Token], Dict[int, str]]:
    """Tokens plus a map of line number -> label from ``! loop X`` comments."""
    tokens: List[_Token] = []
    comment_labels: Dict[int, str] = {}
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw
        bang = _comment_start(line)
        if bang >= 0:
            m = _LOOP_COMMENT_RE.search(line)
            if m:
                comment_labels[lineno] = m.group(1)
            line = line[:bang]
        pos = 0
        while pos < len(line):
            m = _TOKEN_RE.match(line, pos)
            if m is None:
                raise ParseError(
                    f"unexpected character {line[pos]!r}", lineno, pos + 1
                )
            start = pos
            pos = m.end()
            if m.lastgroup == "ws":
                continue
            tokens.append(_Token(m.lastgroup or "", m.group(), lineno, start + 1))
    tokens.append(_Token("eof", "", len(source.splitlines()) + 1))
    return tokens, comment_labels


class _Parser:
    def __init__(self, tokens: List[_Token], comment_labels: Dict[int, str]) -> None:
        self.tokens = tokens
        self.comment_labels = comment_labels
        self.pos = 0
        self.index_names: Tuple[str, str] = ("i", "j")
        self.outer_bound = "n"
        self.inner_bound = "m"
        self._auto_label = 0

    # -------------------------------------------------------------- #
    # token helpers
    # -------------------------------------------------------------- #

    @property
    def cur(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        tok = self.cur
        self.pos += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        tok = self.cur
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, found {tok.text!r}", tok.line)
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        tok = self.cur
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def at_keyword(self, word: str) -> bool:
        return self.cur.kind == "name" and self.cur.text.lower() == word

    def span_from(self, start: _Token) -> SourceSpan:
        """Span from ``start`` through the most recently consumed token."""
        last = self.tokens[self.pos - 1] if self.pos > 0 else start
        return SourceSpan(
            line=start.line,
            col=start.col,
            end_line=last.line,
            end_col=last.end_col,
        )

    # -------------------------------------------------------------- #
    # grammar
    # -------------------------------------------------------------- #

    def parse(self) -> LoopNest:
        nest = self.parse_outer()
        if self.cur.kind != "eof":
            raise ParseError(f"trailing input {self.cur.text!r}", self.cur.line)
        return nest

    def _parse_range(self) -> Tuple[str, str]:
        """``IDENT = 0, BOUND`` -> (index name, bound symbol/number text)."""
        idx = self.expect("name")
        self.expect("op", "=")
        lo = self.expect("number")
        if lo.text != "0":
            raise ParseError("the program model requires lower bound 0", lo.line)
        self.expect("op", ",")
        if self.cur.kind in ("name", "number"):
            bound = self.advance()
        else:
            raise ParseError("expected loop upper bound", self.cur.line)
        return idx.text, bound.text

    def parse_outer(self) -> LoopNest:
        if not self.at_keyword("do"):
            raise ParseError("program must start with 'do'", self.cur.line)
        self.advance()
        outer_idx, outer_bound = self._parse_range()
        loops: List[InnerLoop] = []
        inner_idx: Optional[str] = None
        inner_bound: Optional[str] = None
        while not self.at_keyword("end"):
            label, loop_inner_idx, loop_bound, loop = self.parse_inner(outer_idx)
            if inner_idx is None:
                inner_idx, inner_bound = loop_inner_idx, loop_bound
            elif (loop_inner_idx, loop_bound) != (inner_idx, inner_bound):
                raise ParseError(
                    "all DOALL loops must share the same control index and range "
                    f"(saw '{loop_inner_idx} = 0, {loop_bound}', expected "
                    f"'{inner_idx} = 0, {inner_bound}')",
                    self.cur.line,
                )
            loops.append(loop)
        self.expect("name")  # 'end'
        if not loops:
            raise ParseError("outer loop contains no DOALL loops", self.cur.line)
        assert inner_idx is not None and inner_bound is not None
        self.index_names = (outer_idx, inner_idx)
        return LoopNest(
            loops=tuple(loops),
            outer_bound=outer_bound,
            inner_bound=inner_bound,
            index_names=(outer_idx, inner_idx),
        )

    def parse_inner(self, outer_idx: str) -> Tuple[str, str, str, InnerLoop]:
        label: Optional[str] = None
        # optional 'LABEL :' prefix
        if (
            self.cur.kind == "name"
            and self.cur.text.lower() != "doall"
            and self.tokens[self.pos + 1].kind == "op"
            and self.tokens[self.pos + 1].text == ":"
        ):
            label = self.advance().text
            self.advance()  # ':'
        if not self.at_keyword("doall"):
            raise ParseError(
                f"expected 'doall' (or 'end'), found {self.cur.text!r}",
                self.cur.line,
                self.cur.col,
            )
        doall_tok = self.cur
        doall_line = self.cur.line
        self.advance()
        inner_idx, bound = self._parse_range()
        if inner_idx == outer_idx:
            raise ParseError("inner index must differ from the outer index", doall_line)
        if label is None:
            label = self.comment_labels.get(doall_line)
        if label is None:
            self._auto_label += 1
            label = f"L{self._auto_label}"

        statements: List[Assignment] = []
        while not self.at_keyword("end"):
            statements.append(self.parse_statement(outer_idx, inner_idx))
        self.expect("name")  # 'end'
        if not statements:
            raise ParseError(f"DOALL loop {label} has no statements", doall_line)
        loop = InnerLoop(
            label=label,
            statements=tuple(statements),
            span=SourceSpan(
                line=doall_tok.line,
                col=doall_tok.col,
                end_line=doall_tok.line,
                end_col=doall_tok.end_col,
            ),
        )
        return label, inner_idx, bound, loop

    def parse_statement(self, outer_idx: str, inner_idx: str) -> Assignment:
        start = self.cur
        target = self.parse_array_ref(outer_idx, inner_idx)
        self.expect("op", "=")
        expr = self.parse_expr(outer_idx, inner_idx)
        return Assignment(target=target, expr=expr, span=self.span_from(start))

    def parse_array_ref(self, outer_idx: str, inner_idx: str) -> ArrayRef:
        name_tok = self.expect("name")
        offsets: List[int] = []
        for expected_idx in (outer_idx, inner_idx):
            self.expect("op", "[")
            offsets.append(self.parse_index(expected_idx))
            self.expect("op", "]")
        return ArrayRef(
            array=name_tok.text,
            offset=IVec(offsets),
            span=self.span_from(name_tok),
        )

    def parse_index(self, expected_idx: str) -> int:
        tok = self.expect("name")
        if tok.text != expected_idx:
            raise ParseError(
                f"subscript must use loop index {expected_idx!r}, found {tok.text!r}",
                tok.line,
            )
        if self.accept("op", "+"):
            return int(self.expect("number").text)
        if self.accept("op", "-"):
            return -int(self.expect("number").text)
        return 0

    # expression grammar: expr -> term (('+'|'-') term)*
    def parse_expr(self, outer_idx: str, inner_idx: str) -> Expr:
        node = self.parse_term(outer_idx, inner_idx)
        while self.cur.kind == "op" and self.cur.text in ("+", "-"):
            op = self.advance().text
            rhs = self.parse_term(outer_idx, inner_idx)
            node = BinOp(op, node, rhs)
        return node

    def parse_term(self, outer_idx: str, inner_idx: str) -> Expr:
        node = self.parse_factor(outer_idx, inner_idx)
        while self.cur.kind == "op" and self.cur.text in ("*", "/"):
            op = self.advance().text
            rhs = self.parse_factor(outer_idx, inner_idx)
            node = BinOp(op, node, rhs)
        return node

    def parse_factor(self, outer_idx: str, inner_idx: str) -> Expr:
        if self.accept("op", "-"):
            return UnaryOp("-", self.parse_factor(outer_idx, inner_idx))
        if self.accept("op", "("):
            node = self.parse_expr(outer_idx, inner_idx)
            self.expect("op", ")")
            return node
        if self.cur.kind == "number":
            tok = self.advance()
            return Const(float(tok.text))
        if self.cur.kind == "name":
            return self.parse_array_ref(outer_idx, inner_idx)
        raise ParseError(f"unexpected token {self.cur.text!r}", self.cur.line)


def parse_program(source: str) -> LoopNest:
    """Parse DSL source into a :class:`~repro.loopir.ast_nodes.LoopNest`.

    Raises :class:`ParseError` with a line number on malformed input.  The
    result is *syntactically* valid; run
    :func:`repro.loopir.validate.validate_program` for model-level checks.
    """
    tokens, comment_labels = _tokenize(source)
    return _Parser(tokens, comment_labels).parse()
