"""Iteration-space renderings (the paper's Figures 7, 13 and 16).

All functions work on an (already retimed) MLDG: a dependence vector ``d``
on any edge means fused iteration ``(i, j)`` consumes a value produced at
``(i, j) - d``.  Self-pairs (``d == 0``) are intra-iteration and omitted.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.graph.mldg import MLDG
from repro.vectors import IVec

__all__ = [
    "dependence_arrows",
    "intra_row_arrows",
    "format_iteration_space",
    "format_hyperplane_grid",
]

_Cell = Tuple[int, int]


def dependence_arrows(
    g_retimed: MLDG, rows: int, cols: int
) -> List[Tuple[_Cell, _Cell]]:
    """All producer -> consumer iteration pairs inside a ``rows x cols`` window.

    Iterations are ``(i, j)`` with ``0 <= i < rows`` and ``0 <= j < cols``;
    an arrow exists for every non-zero dependence vector whose endpoints
    both land in the window.  Duplicate arrows (several edges with the same
    vector) are collapsed.
    """
    vectors: Set[IVec] = {d for d in g_retimed.all_vectors() if not d.is_zero()}
    arrows: List[Tuple[_Cell, _Cell]] = []
    for d in sorted(vectors):
        for i in range(rows):
            for j in range(cols):
                pi, pj = i - d[0], j - d[1]
                if 0 <= pi < rows and 0 <= pj < cols:
                    arrows.append(((pi, pj), (i, j)))
    return sorted(set(arrows))


def intra_row_arrows(
    g_retimed: MLDG, rows: int, cols: int
) -> List[Tuple[_Cell, _Cell]]:
    """The arrows that serialise rows: producer and consumer share ``i``.

    Empty exactly when the fused innermost loop is DOALL on this window --
    the visual difference between the paper's Figure 7 (non-empty) and
    Figure 13 (empty).
    """
    return [(src, dst) for (src, dst) in dependence_arrows(g_retimed, rows, cols) if src[0] == dst[0]]


def format_iteration_space(g_retimed: MLDG, rows: int = 4, cols: int = 4) -> str:
    """A Figure-7/13-style picture of a small iteration space.

    Rows are printed top-down from the largest ``i`` (matching the paper's
    figures); cells are labelled ``i,j``.  Below the grid, each dependence
    vector is listed with an example arrow, and intra-row arrows -- the
    parallelism killers -- are called out explicitly.
    """
    lines: List[str] = []
    for i in range(rows - 1, -1, -1):
        lines.append("   " + "   ".join(f"{i},{j}" for j in range(cols)))
    lines.append("")

    vectors = sorted({d for d in g_retimed.all_vectors() if not d.is_zero()})
    if not vectors:
        lines.append("no inter-iteration dependencies")
        return "\n".join(lines)

    lines.append("dependence vectors (consumer - producer):")
    for d in vectors:
        kind = "INTRA-ROW (serialises the row)" if d[0] == 0 else "crosses rows"
        example_src = (max(d[0], 0), max(d[1], 0))
        example_dst = (example_src[0] + d[0], example_src[1] + d[1])
        lines.append(
            f"  {d}: {example_src[0]},{example_src[1]} -> "
            f"{example_dst[0]},{example_dst[1]}  [{kind}]"
        )
    intra = intra_row_arrows(g_retimed, rows, cols)
    if intra:
        lines.append(
            f"rows carry {len(intra)} dependence pair(s) on this window: "
            "the innermost loop is SERIAL (as in the paper's Figure 7)"
        )
    else:
        lines.append(
            "rows carry no dependencies: the innermost loop is DOALL "
            "(as in the paper's Figure 13)"
        )
    return "\n".join(lines)


def format_hyperplane_grid(schedule: IVec, rows: int = 4, cols: int = 8) -> str:
    """A Figure-16-style picture: each cell shows its wavefront level.

    Cells with equal ``t = s . (i, j)`` execute concurrently; the grid makes
    the skew of the hyperplane ``h`` perpendicular to ``s`` visible.
    """
    if schedule.dim != 2:
        raise ValueError("hyperplane grids are two-dimensional")
    width = max(
        len(str(schedule[0] * i + schedule[1] * j))
        for i in range(rows)
        for j in range(cols)
    )
    lines = [f"wavefront levels t = {schedule[0]}*i + {schedule[1]}*j:"]
    for i in range(rows - 1, -1, -1):
        cells = [f"{schedule[0] * i + schedule[1] * j:>{width}}" for j in range(cols)]
        lines.append(f"  i={i}: " + "  ".join(cells))
    lines.append("  (equal numbers run in parallel; levels execute in order)")
    return "\n".join(lines)
