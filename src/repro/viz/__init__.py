"""Text renderings of iteration spaces, dependencies and wavefronts.

The paper's Figures 7, 13 and 16 are drawings of small iteration spaces:
which iterations depend on which (Figs. 7/13) and where the equitemporal
hyperplanes fall (Fig. 16).  This package renders the same artifacts as
text, for the benchmark reports, the CLI and the examples.
"""

from repro.viz.iterspace import (
    dependence_arrows,
    format_hyperplane_grid,
    format_iteration_space,
    intra_row_arrows,
)

__all__ = [
    "dependence_arrows",
    "intra_row_arrows",
    "format_iteration_space",
    "format_hyperplane_grid",
]
