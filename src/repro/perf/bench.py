"""The performance-trajectory harness.

Times the execution backends (tree-walking interpreter, compiled
numpy kernels, parallel DOALL/wavefront), the fusion memo cache, and the
constraint solvers on gallery workloads, and renders the measurements as
machine-readable records -- the same shape ``BENCH_perf.json`` archives and
``repro-fuse bench --format json`` prints.

Every record carries the benchmark name, backend, iteration-space size,
median wall-clock seconds over ``repeats`` runs with a spread estimate
(half the min-max range), and any backend-specific extras (job count,
cache statistics, speedup vs the serial interpreter).  Medians rather than
means keep one preempted run from skewing a record.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BenchRecord",
    "time_callable",
    "bench_backends",
    "bench_backend_sweep",
    "bench_fusion_cache",
    "bench_plan",
    "bench_solvers",
    "bench_store",
    "bench_store_gallery",
    "parse_sizes",
    "platform_block",
    "run_bench_suite",
    "render_records_text",
    "records_to_json",
]


@dataclass
class BenchRecord:
    """One timed configuration."""

    name: str
    backend: str
    median_s: float
    err_s: float
    repeats: int
    n: Optional[int] = None
    m: Optional[int] = None
    jobs: Optional[int] = None
    speedup_vs_interp: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "backend": self.backend,
            "medianSeconds": self.median_s,
            "errSeconds": self.err_s,
            "repeats": self.repeats,
        }
        if self.n is not None:
            out["n"] = self.n
        if self.m is not None:
            out["m"] = self.m
        if self.jobs is not None:
            out["jobs"] = self.jobs
        if self.speedup_vs_interp is not None:
            out["speedupVsInterp"] = round(self.speedup_vs_interp, 3)
        if self.extra:
            out.update(self.extra)
        return out


def time_callable(
    fn: Callable[[], Any], *, repeats: int = 3, warmup: int = 1
) -> Tuple[float, float]:
    """Median and half-range of ``repeats`` timed runs of ``fn``."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    median = statistics.median(samples)
    err = (max(samples) - min(samples)) / 2.0
    return median, err


# ------------------------------------------------------------------ #
# workload setup
# ------------------------------------------------------------------ #

_EXAMPLES: Dict[str, Callable[[], str]] = {}


def _example_source(name: str) -> str:
    """Loop-IR source for a named gallery example."""
    from repro.gallery.common import floyd_steinberg_code, iir2d_code
    from repro.gallery.extended import extended_kernels
    from repro.gallery.paper import figure2_code

    sources: Dict[str, Optional[str]] = {
        "fig2": figure2_code(),
        "iir2d": iir2d_code(),
        "sor": floyd_steinberg_code(),
    }
    for k in extended_kernels():
        sources[k.key] = k.code
    try:
        src = sources[name]
    except KeyError:
        raise ValueError(
            f"unknown bench example {name!r}; choose from {sorted(sources)}"
        ) from None
    if src is None:
        raise ValueError(f"example {name!r} has no runnable source")
    return src


def bench_examples() -> List[str]:
    """Names accepted by :func:`bench_backends` (stable order)."""
    from repro.gallery.extended import extended_kernels

    return ["fig2", "iir2d", "sor"] + [k.key for k in extended_kernels()]


# ------------------------------------------------------------------ #
# backend benchmarks
# ------------------------------------------------------------------ #


def _kernel_cache_delta(before: Any, after: Any) -> Dict[str, int]:
    """Hits/misses attributable to one backend phase (satellite of the
    global counters, which smear all phases together)."""
    return {
        "hits": after.hits - before.hits,
        "misses": after.misses - before.misses,
    }


def bench_backends(
    example: str = "fig2",
    *,
    n: int = 256,
    m: int = 256,
    jobs: Sequence[int] = (1, 2, 4),
    backends: Sequence[str] = ("interp", "compiled", "parallel"),
    pool: str = "thread",
    repeats: int = 3,
    verify: bool = True,
) -> List[BenchRecord]:
    """Time the execution backends on one gallery example.

    When ``verify`` is set (default) each backend's result is checked
    bit-identical against the serial interpreter before it is timed --
    a benchmark of a wrong answer is worthless.

    Timing is *kernel-only* and uniform across backends: every backend
    runs over one pre-copied store reused across the timed repeats (the
    operation count is size-determined, not value-determined, so reusing
    the mutated store is fair), and the input-copy cost every end-to-end
    caller also pays is reported once as a separate ``store-copy`` record.
    Kernel-compiling backends report the kernel-cache hits/misses their
    own phase produced (``kernelCache``), so a warm cache is visible per
    backend instead of as one smeared global ratio.
    """
    from repro.codegen import ArrayStore, apply_fusion, run_fused
    from repro.codegen.nplower import compile_numpy
    from repro.codegen.pycompile import compile_fused, kernel_cache_info
    from repro.depend import extract_mldg
    from repro.fusion import fuse
    from repro.loopir import parse_program
    from repro.perf.parallel import ParallelExecutor

    nest = parse_program(_example_source(example))
    g = extract_mldg(nest)
    result = fuse(g)
    fp = apply_fusion(nest, result.retiming, mldg=g)
    base = ArrayStore.for_program(nest, n, m, seed=0)
    is_doall = result.is_doall
    mode = "doall" if is_doall else "hyperplane"
    schedule = None if is_doall else result.schedule

    reference = run_fused(fp, n, m, store=base.copy(), mode="serial")
    records: List[BenchRecord] = []
    copy_median, copy_err = time_callable(lambda: base.copy(), repeats=repeats)
    records.append(
        BenchRecord(
            name=f"{example}-fused", backend="store-copy", median_s=copy_median,
            err_s=copy_err, repeats=repeats, n=n, m=m,
            extra={"note": "input-copy cost excluded from the backend rows"},
        )
    )

    interp_median: Optional[float] = None
    compiled_median: Optional[float] = None
    if "interp" in backends:
        work = base.copy()
        median, err = time_callable(
            lambda: run_fused(fp, n, m, store=work, mode="serial"),
            repeats=repeats,
            warmup=0,
        )
        interp_median = median
        records.append(
            BenchRecord(
                name=f"{example}-fused", backend="interp", median_s=median,
                err_s=err, repeats=repeats, n=n, m=m,
                extra={"parallelism": result.parallelism.value},
            )
        )

    if "compiled" in backends:
        snap = kernel_cache_info()
        kernel = compile_fused(fp)
        if verify:
            got = base.copy()
            kernel(got, n, m)
            if not reference.equal(got):  # pragma: no cover - correctness guard
                raise AssertionError("compiled backend diverged from the interpreter")
        work = base.copy()
        compiled_median, err = time_callable(
            lambda: kernel(work, n, m), repeats=repeats
        )
        records.append(
            BenchRecord(
                name=f"{example}-fused", backend="compiled",
                median_s=compiled_median,
                err_s=err, repeats=repeats, n=n, m=m,
                speedup_vs_interp=(interp_median / compiled_median)
                if interp_median else None,
                extra={"kernelCache": _kernel_cache_delta(snap, kernel_cache_info())},
            )
        )

    if "numpy" in backends:
        snap = kernel_cache_info()
        np_kernel = compile_numpy(fp, schedule=result.schedule)
        if verify:
            got = base.copy()
            np_kernel(got, n, m)
            if not reference.equal(got):  # pragma: no cover - correctness guard
                raise AssertionError("numpy backend diverged from the interpreter")
        work = base.copy()
        median, err = time_callable(
            lambda: np_kernel(work, n, m), repeats=repeats
        )
        extra: Dict[str, Any] = {
            "kernelCache": _kernel_cache_delta(snap, kernel_cache_info()),
            "plan": np_kernel.plan,  # type: ignore[attr-defined]
        }
        if compiled_median:
            extra["speedupVsCompiled"] = round(compiled_median / median, 3)
        records.append(
            BenchRecord(
                name=f"{example}-fused", backend="numpy", median_s=median,
                err_s=err, repeats=repeats, n=n, m=m,
                speedup_vs_interp=(interp_median / median) if interp_median else None,
                extra=extra,
            )
        )

    if "parallel" in backends:
        for j in jobs:
            with ParallelExecutor(j, pool=pool) as ex:
                if verify:
                    got = ex.run(fp, n, m, store=base.copy(), mode=mode, schedule=schedule)
                    if not reference.equal(got):  # pragma: no cover - correctness guard
                        raise AssertionError(
                            f"parallel backend (jobs={j}) diverged from the interpreter"
                        )
                work = base.copy()
                median, err = time_callable(
                    lambda: ex.run(
                        fp, n, m, store=work, mode=mode, schedule=schedule
                    ),
                    repeats=repeats,
                )
            records.append(
                BenchRecord(
                    name=f"{example}-fused", backend=f"parallel-{pool}",
                    median_s=median, err_s=err, repeats=repeats, n=n, m=m, jobs=j,
                    speedup_vs_interp=(interp_median / median) if interp_median else None,
                    extra={"mode": mode},
                )
            )
    return records


def parse_sizes(spec: str) -> List[Tuple[int, int]]:
    """Parse a ``--sizes``-style sweep spec: ``N1xM1,N2xM2,...``."""
    sizes: List[Tuple[int, int]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            n_s, m_s = part.lower().split("x")
            sizes.append((int(n_s), int(m_s)))
        except ValueError:
            raise ValueError(
                f"bad size {part!r} in sweep spec; expected NxM (e.g. 64x64)"
            ) from None
    if not sizes:
        raise ValueError("empty size sweep spec")
    return sizes


def bench_backend_sweep(
    example: str = "fig2",
    *,
    sizes: Sequence[Tuple[int, int]],
    jobs: Sequence[int] = (1, 2, 4),
    backends: Sequence[str] = ("interp", "compiled", "numpy"),
    pool: str = "thread",
    repeats: int = 3,
    verify: bool = True,
) -> List[BenchRecord]:
    """:func:`bench_backends` across an iteration-space size sweep.

    The interp/compiled/numpy crossover points move with size (fixed
    per-call overhead vs per-element work), so backend selection needs
    the curve, not one point.
    """
    records: List[BenchRecord] = []
    for n, m in sizes:
        records += bench_backends(
            example, n=n, m=m, jobs=jobs, backends=backends,
            pool=pool, repeats=repeats, verify=verify,
        )
    return records


def bench_fusion_cache(
    example: str = "fig2", *, repeats: int = 5
) -> List[BenchRecord]:
    """Time a cold ``fuse()`` against memo-cache hits on the same MLDG."""
    from repro.depend import extract_mldg
    from repro.fusion import fuse
    from repro.loopir import parse_program
    from repro.perf.memo import fusion_cache

    nest = parse_program(_example_source(example))
    g = extract_mldg(nest)

    cache = fusion_cache()
    cache.clear()
    median_cold, err_cold = time_callable(
        lambda: (cache.clear(), fuse(g)), repeats=repeats, warmup=1
    )
    fuse(g)  # prime
    median_hot, err_hot = time_callable(lambda: fuse(g), repeats=repeats)
    info = cache.cache_info()
    return [
        BenchRecord(
            name=f"{example}-fuse", backend="solver", median_s=median_cold,
            err_s=err_cold, repeats=repeats,
        ),
        BenchRecord(
            name=f"{example}-fuse", backend="memo-cache", median_s=median_hot,
            err_s=err_hot, repeats=repeats,
            speedup_vs_interp=None,
            extra={"cache": info.to_dict(),
                   "speedupVsSolver": round(median_cold / median_hot, 1)
                   if median_hot else None},
        ),
    ]


def bench_store(
    example: str = "fig2",
    *,
    repeats: int = 5,
    store_path: Optional[str] = None,
) -> List[BenchRecord]:
    """Cold vs warm compile latency through the persistent store (L2).

    Three configurations, each with a private (session-owned) L1 cleared
    before every timed run so the L1 never shadows what is being measured:

    - ``no-store``: the solver alone -- the cold-compile baseline.
    - ``store-cold``: solver plus write-through to a fresh store file, the
      persistence overhead a first compile pays.
    - ``store-warm``: the store primed, every run served from disk after
      re-verification -- what a second process (or serve worker) pays.

    The warm record's ``store`` extra carries the L2 hit ratio observed
    during the warm phase.  With ``store_path=None`` a temporary file is
    used and removed afterwards.
    """
    import os
    import shutil
    import tempfile

    from repro.core.session import Session, SessionCaches, SessionOptions
    from repro.depend import extract_mldg
    from repro.fusion import fuse
    from repro.loopir import parse_program

    nest = parse_program(_example_source(example))
    g = extract_mldg(nest)
    records: List[BenchRecord] = []

    tmpdir: Optional[str] = None
    if store_path is None:
        tmpdir = tempfile.mkdtemp(prefix="repro-bench-store-")
        store_path = os.path.join(tmpdir, "bench-store.db")
    try:
        # cold baseline: private L1, no store in scope -- mask the env
        # default so a `bench --store` invocation cannot leak into it
        saved_env = os.environ.pop("REPRO_FUSE_STORE", None)
        try:
            bare = Session(caches=SessionCaches.private())
            with bare.activate():
                cold_median, cold_err = time_callable(
                    lambda: (
                        bare.caches.fusion.clear(),
                        bare.caches.retiming.clear(),
                        fuse(g),
                    ),
                    repeats=repeats,
                )
        finally:
            if saved_env is not None:
                os.environ["REPRO_FUSE_STORE"] = saved_env
        records.append(
            BenchRecord(
                name=f"{example}-pipeline", backend="no-store",
                median_s=cold_median, err_s=cold_err, repeats=repeats,
            )
        )

        session = Session(
            options=SessionOptions(store_path=store_path),
            caches=SessionCaches.private(),
        )
        store = session.caches.store
        assert store is not None
        with session.activate():
            # store-cold: every run clears both tiers, so the row is
            # recomputed and re-persisted each time
            sc_median, sc_err = time_callable(
                lambda: (
                    session.caches.fusion.clear(),
                    session.caches.retiming.clear(),
                    store.clear(),
                    fuse(g),
                ),
                repeats=repeats,
            )
            records.append(
                BenchRecord(
                    name=f"{example}-pipeline", backend="store-cold",
                    median_s=sc_median, err_s=sc_err, repeats=repeats,
                    extra={
                        "overheadVsNoStore": round(sc_median / cold_median, 3)
                        if cold_median else None,
                    },
                )
            )

            # store-warm: prime once, then only the L1 is cleared -- each
            # run is an L2 load + verify
            fuse(g)
            before = store.stats()
            sw_median, sw_err = time_callable(
                lambda: (session.caches.fusion.clear(), fuse(g)),
                repeats=repeats,
            )
            after = store.stats()
            delta_hits = after.hits - before.hits
            delta_misses = after.misses - before.misses
            looked_up = delta_hits + delta_misses
            records.append(
                BenchRecord(
                    name=f"{example}-pipeline", backend="store-warm",
                    median_s=sw_median, err_s=sw_err, repeats=repeats,
                    speedup_vs_interp=None,
                    extra={
                        "speedupVsSolver": round(cold_median / sw_median, 1)
                        if sw_median else None,
                        "store": {
                            "hits": delta_hits,
                            "misses": delta_misses,
                            "hitRatio": round(delta_hits / looked_up, 3)
                            if looked_up else 0.0,
                            "entries": after.entries,
                        },
                    },
                )
            )
    finally:
        if tmpdir is not None:
            # the handle reopens lazily if anything touches this path again,
            # but the temp path is unique so closing it here is final
            from repro.store import open_store

            open_store(store_path).close()
            shutil.rmtree(tmpdir, ignore_errors=True)
    return records


def bench_store_gallery(*, store_path: Optional[str] = None) -> List[BenchRecord]:
    """Compile the whole gallery twice through one shared store.

    The cold pass populates the store; the warm pass runs with a fresh
    private L1 against the same file, so every compile must be served from
    disk (after re-verification).  Records per-pass wall clock, the warm
    pass's L2 hit ratio, and whether the warm results are bit-identical to
    the cold ones -- the acceptance row archived in ``BENCH_perf.json``.
    """
    import os
    import shutil
    import tempfile

    from repro.core.session import Session, SessionCaches, SessionOptions
    from repro.depend import extract_mldg
    from repro.fusion import fuse
    from repro.loopir import parse_program

    graphs = []
    for name in bench_examples():
        try:
            source = _example_source(name)
        except ValueError:  # gallery entry with no runnable loop-IR source
            continue
        graphs.append((name, extract_mldg(parse_program(source))))

    def outcome(result: Any) -> Tuple[Any, ...]:
        """Everything a fusion result pins down, in comparable form."""
        return (
            result.strategy.value,
            tuple(sorted(
                (k, tuple(v)) for k, v in result.retiming.as_dict().items()
            )),
            tuple(result.schedule),
            tuple(result.hyperplane) if result.hyperplane is not None else None,
        )

    tmpdir: Optional[str] = None
    if store_path is None:
        tmpdir = tempfile.mkdtemp(prefix="repro-bench-store-")
        store_path = os.path.join(tmpdir, "gallery-store.db")
    try:
        cold = Session(
            options=SessionOptions(store_path=store_path),
            caches=SessionCaches.private(),
        )
        with cold.activate():
            t0 = time.perf_counter()
            cold_out = {name: outcome(fuse(g)) for name, g in graphs}
            cold_s = time.perf_counter() - t0
        store = cold.caches.store
        assert store is not None
        before = store.stats()

        warm = Session(
            options=SessionOptions(store_path=store_path),
            caches=SessionCaches.private(),
        )
        with warm.activate():
            t0 = time.perf_counter()
            warm_out = {name: outcome(fuse(g)) for name, g in graphs}
            warm_s = time.perf_counter() - t0
        after = store.stats()
        delta_hits = after.hits - before.hits
        delta_misses = after.misses - before.misses
        looked_up = delta_hits + delta_misses
        return [
            BenchRecord(
                name="gallery-store", backend="cold-pass", median_s=cold_s,
                err_s=0.0, repeats=1,
                extra={"examples": len(graphs), "entries": before.entries},
            ),
            BenchRecord(
                name="gallery-store", backend="warm-pass", median_s=warm_s,
                err_s=0.0, repeats=1,
                extra={
                    "examples": len(graphs),
                    "speedupVsSolver": round(cold_s / warm_s, 1) if warm_s else None,
                    "bitIdentical": cold_out == warm_out,
                    "store": {
                        "hits": delta_hits,
                        "misses": delta_misses,
                        "hitRatio": round(delta_hits / looked_up, 3)
                        if looked_up else 0.0,
                    },
                },
            ),
        ]
    finally:
        if tmpdir is not None:
            from repro.store import open_store

            open_store(store_path).close()
            shutil.rmtree(tmpdir, ignore_errors=True)


def bench_plan(
    example: str = "fig2",
    *,
    sizes: Sequence[Tuple[int, int]] = ((24, 24),),
    jobs: Sequence[int] = (1, 2),
    repeats: int = 3,
    store_path: Optional[str] = None,
) -> List[BenchRecord]:
    """Planner-driven ``auto`` execution against every static backend.

    Per size: every static config runs through ``Session.execute_fused``
    first -- each run feeding the planner's profile tier in a private
    store -- then ``auto`` runs on the now-warm profile.  The ``auto``
    record archives the planner's pick (backend/jobs/source/rationale)
    and its median against the best and worst static config, so
    ``BENCH_perf.json`` shows whether the planner lands on the measured
    winner (``vsBestStatic`` ~ 1.0) and stays off the loser
    (``vsWorstStatic`` well under 1.0 wherever the spread is real).
    """
    import os
    import shutil
    import tempfile

    from repro.codegen import ArrayStore
    from repro.core.session import Session, SessionCaches, SessionOptions

    tmpdir: Optional[str] = None
    if store_path is None:
        tmpdir = tempfile.mkdtemp(prefix="repro-bench-plan-")
        store_path = os.path.join(tmpdir, "plan-store.db")
    records: List[BenchRecord] = []
    try:
        session = Session(
            options=SessionOptions(backend="auto", store_path=store_path),
            caches=SessionCaches.private(),
        )
        out = session.fuse_program(_example_source(example))
        fp = out.fused
        if fp is None:
            raise ValueError(f"example {example!r} emitted no fused program")
        schedule = out.fusion.schedule
        is_doall = out.fusion.is_doall
        static: List[Tuple[str, Optional[int]]] = [
            ("interp", None), ("compiled", None), ("numpy", None),
        ] + [("parallel", j) for j in jobs]

        def run(
            _n: int, _m: int, backend: Optional[str], j: Optional[int], store: Any
        ) -> Any:
            return session.execute_fused(
                fp, _n, _m, store=store, backend=backend,
                schedule=schedule, is_doall=is_doall, jobs=j,
            )

        for _n, _m in sizes:
            base = ArrayStore.for_program(out.nest, _n, _m, seed=0)
            reference = session.execute_fused(
                fp, _n, _m, store=base.copy(), backend="interp",
                schedule=schedule, is_doall=is_doall,
            )
            timings: Dict[Tuple[str, int], float] = {}
            for backend, j in static:
                median, err = time_callable(
                    lambda: run(_n, _m, backend, j, base.copy()), repeats=repeats
                )
                timings[(backend, j if j is not None else 1)] = median
                records.append(
                    BenchRecord(
                        name=f"{example}-plan", backend=backend,
                        median_s=median, err_s=err, repeats=repeats,
                        n=_n, m=_m, jobs=j,
                    )
                )
            # the decision auto will make on the warm profile (pure
            # function of the rows; re-deriving it here costs nothing)
            plan = session.planner.plan_execution(
                fp, _n, _m, schedule=schedule, is_doall=is_doall,
                session_backend="auto",
            )
            got = run(_n, _m, None, None, base.copy())
            if not reference.equal(got):  # pragma: no cover - correctness guard
                raise AssertionError(
                    f"auto backend diverged from the interpreter at {_n}x{_m}"
                )
            auto_median, auto_err = time_callable(
                lambda: run(_n, _m, None, None, base.copy()), repeats=repeats
            )
            best_key = min(timings, key=lambda k: timings[k])
            worst_key = max(timings, key=lambda k: timings[k])
            records.append(
                BenchRecord(
                    name=f"{example}-plan", backend="auto",
                    median_s=auto_median, err_s=auto_err, repeats=repeats,
                    n=_n, m=_m,
                    extra={
                        "chosen": {
                            "backend": plan.backend, "jobs": plan.jobs,
                            "source": plan.source, "rationale": plan.rationale,
                        },
                        "bestStatic": {
                            "backend": best_key[0], "jobs": best_key[1],
                            "medianSeconds": timings[best_key],
                        },
                        "worstStatic": {
                            "backend": worst_key[0], "jobs": worst_key[1],
                            "medianSeconds": timings[worst_key],
                        },
                        "vsBestStatic": round(auto_median / timings[best_key], 3)
                        if timings[best_key] else None,
                        "vsWorstStatic": round(auto_median / timings[worst_key], 3)
                        if timings[worst_key] else None,
                        "bitIdentical": True,
                    },
                )
            )
    finally:
        if tmpdir is not None:
            from repro.store import open_store

            open_store(store_path).close()
            shutil.rmtree(tmpdir, ignore_errors=True)
    return records


def bench_solvers(*, chain: int = 400, repeats: int = 3) -> List[BenchRecord]:
    """SLF worklist vs round-based relaxation on an adversarial chain.

    The chain's edge list is reversed against propagation direction, the
    round-based solver's worst case (one node converges per O(E) round);
    the SLF worklist only re-relaxes touched vertices.
    """
    from repro.constraints.bellman_ford import scalar_bellman_ford

    nodes = ["s"] + [f"x{i}" for i in range(chain)]
    edges = [(f"x{i - 1}" if i else "s", f"x{i}", -1) for i in range(chain)]
    edges.reverse()

    records = []
    slf_median, slf_err = time_callable(
        lambda: scalar_bellman_ford(nodes, edges, "s"), repeats=repeats
    )
    rounds_median, rounds_err = time_callable(
        lambda: scalar_bellman_ford(nodes, edges, "s", algorithm="rounds"),
        repeats=repeats,
    )
    records.append(
        BenchRecord(
            name=f"bellman-ford-chain-{chain}", backend="slf",
            median_s=slf_median, err_s=slf_err, repeats=repeats,
            extra={"speedupVsRounds": round(rounds_median / slf_median, 1)
                   if slf_median else None},
        )
    )
    records.append(
        BenchRecord(
            name=f"bellman-ford-chain-{chain}", backend="rounds",
            median_s=rounds_median, err_s=rounds_err, repeats=repeats,
        )
    )
    return records


# ------------------------------------------------------------------ #
# suite + rendering
# ------------------------------------------------------------------ #


def run_bench_suite(
    example: str = "fig2",
    *,
    n: int = 256,
    m: int = 256,
    sizes: Optional[Sequence[Tuple[int, int]]] = None,
    jobs: Sequence[int] = (1, 2, 4),
    backends: Sequence[str] = ("interp", "compiled", "parallel"),
    pool: str = "thread",
    repeats: int = 3,
    include_cache: bool = True,
    include_solver: bool = True,
    include_store: bool = True,
    include_plan: bool = True,
    store_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the full suite; returns the ``BENCH_perf.json``-shaped document.

    ``sizes`` (a sweep of ``(n, m)`` pairs) overrides the single ``n``/``m``.
    """
    records = bench_backend_sweep(
        example, sizes=sizes if sizes is not None else [(n, m)],
        jobs=jobs, backends=backends, pool=pool, repeats=repeats,
    )
    if include_cache:
        records += bench_fusion_cache(example)
    if include_store:
        records += bench_store(example, repeats=repeats, store_path=store_path)
    if include_plan:
        records += bench_plan(
            example, sizes=sizes if sizes is not None else [(n, m)],
            jobs=jobs, repeats=repeats,
        )
    if include_solver:
        records += bench_solvers()
    return records_to_json(records)


def platform_block() -> Dict[str, Any]:
    """The ``platform`` object stamped into benchmark documents.

    Includes the array/graph library versions (``numpy``, ``networkx``):
    perf trajectories are uninterpretable without them.
    """
    import os

    import networkx
    import numpy

    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpuCount": os.cpu_count(),
        "numpy": numpy.__version__,
        "networkx": networkx.__version__,
    }


def records_to_json(records: Sequence[BenchRecord]) -> Dict[str, Any]:
    from repro import obs
    from repro.codegen.pycompile import kernel_cache_info
    from repro.perf.memo import fusion_cache, retiming_cache

    return {
        "schema": "repro-bench-perf/1",
        "platform": platform_block(),
        "caches": {
            "fusion": fusion_cache().cache_info().to_dict(),
            "retiming": retiming_cache().cache_info().to_dict(),
            "kernels": kernel_cache_info().to_dict(),
        },
        # additive since repro.obs: solver/cache/execution counters observed
        # while the benchmarked code ran (relaxation rounds, worklist pops,
        # chunk counts, ...); readers of repro-bench-perf/1 may ignore it
        "metrics": obs.default_registry().to_dict(),
        "benchmarks": [r.to_dict() for r in records],
    }


def render_records_text(doc: Dict[str, Any]) -> str:
    """A fixed-width table of a :func:`records_to_json` document."""
    headers = ["name", "backend", "jobs", "n x m", "median", "err", "speedup"]
    rows: List[List[str]] = []
    for r in doc["benchmarks"]:
        size = f"{r['n']}x{r['m']}" if "n" in r else "-"
        rows.append(
            [
                r["name"],
                r["backend"],
                str(r.get("jobs", "-")),
                size,
                f"{r['medianSeconds'] * 1e3:.2f} ms",
                f"{r['errSeconds'] * 1e3:.2f} ms",
                str(r.get("speedupVsInterp", r.get("speedupVsSolver", "-"))),
            ]
        )
    widths = [max(len(h), *(len(row[k]) for row in rows)) if rows else len(h)
              for k, h in enumerate(headers)]
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "-+-".join("-" * w for w in widths)]
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    caches = doc.get("caches", {})
    if caches:
        lines.append("")
        for name, info in caches.items():
            lines.append(
                f"cache {name}: {info['hits']} hits / {info['misses']} misses "
                f"/ {info['evictions']} evictions (size {info['currsize']})"
            )
    return "\n".join(lines)


def write_json(doc: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
