"""Parallel execution backends for fused programs.

The paper's payoff claims are about *parallelism of the fused innermost
loop*: a DOALL fusion (Property 4.1) lets every iteration of a row run
concurrently, and a hyperplane schedule (Lemma 4.3) lets every iteration on
a wavefront run concurrently.  The interpreter demonstrates this with
randomised orders; this module actually *executes* it:

* **DOALL**: each fused row's ``j`` range is partitioned into chunks; every
  chunk executes the fused body statement-major over numpy row slices, and
  chunks of one row run concurrently on a thread (or forked-process) pool
  with a barrier between rows.  Valid because a DOALL-fused body has no
  same-row cross-iteration dependencies at all, and chunk-local
  statement-major order preserves the intra-iteration ``(0, ..., 0)``
  ordering (the body is topologically sorted).
* **Hyperplane**: iterations are grouped by ``t = s . (i, j)``; each
  wavefront's cells are blocked into cache-friendly tiles executed
  concurrently, with a barrier between wavefronts (Lemma 4.3 guarantees
  cells on one wavefront are independent).

Every statement instance computes the same expression over the same values
as the serial interpreter -- there are no reductions, so results are
**bit-identical**, not merely close; the test suite asserts exactly that
across the gallery.

The process pool shares the arrays through POSIX shared memory
(``multiprocessing.shared_memory``) so workers mutate the same pages the
parent reads back -- no result marshalling.  The thread pool shares them
trivially; numpy releases the GIL for slice kernels, and on machines with a
single core the win over the tree-walking interpreter still comes from the
row-vectorised chunk kernels.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.codegen.fused import FusedProgram
from repro.codegen.interp import ArrayStore, ExecutionOrderError, _exec_statement
from repro.loopir.ast_nodes import ArrayRef, Assignment, BinOp, Const, Expr, UnaryOp
from repro.obs.tracer import SpanLike
from repro.retiming.verify import is_doall_after_fusion
from repro.vectors import IVec

__all__ = ["ParallelExecutor", "run_parallel", "split_range", "wavefront_tiles"]

#: One body node, flattened for the hot loop: (shift0, shift1, statements).
_BodySpec = Tuple[Tuple[Tuple[int, int, Tuple[Assignment, ...]], ...]]


def split_range(lo: int, hi: int, parts: int) -> List[Tuple[int, int]]:
    """Split the inclusive range ``[lo, hi]`` into up to ``parts`` chunks.

    Chunks are contiguous, non-overlapping, cover the range exactly, and
    differ in size by at most one -- the partition is deterministic, so the
    work distribution (though not the results, which are order-independent)
    is reproducible.
    """
    if hi < lo:
        return []
    width = hi - lo + 1
    parts = max(1, min(parts, width))
    base, extra = divmod(width, parts)
    chunks: List[Tuple[int, int]] = []
    start = lo
    for k in range(parts):
        size = base + (1 if k < extra else 0)
        chunks.append((start, start + size - 1))
        start += size
    return chunks


def wavefront_tiles(
    cells: Sequence[Tuple[int, int]], tile: int
) -> List[Sequence[Tuple[int, int]]]:
    """Block one wavefront's cells into contiguous tiles of ``tile`` cells."""
    return [cells[k : k + tile] for k in range(0, len(cells), max(1, tile))]


# ------------------------------------------------------------------ #
# row-slice evaluation (numpy, bit-identical to the scalar interpreter)
# ------------------------------------------------------------------ #


def _row_value(
    expr: Expr,
    arrays: Dict[str, np.ndarray],
    origins: Dict[str, Tuple[int, int]],
    oi: int,
    a: int,
    b: int,
):
    """Evaluate ``expr`` over original row ``oi`` for ``oj`` in ``[a, b]``.

    Returns a numpy slice expression (or a scalar for constant subtrees);
    every elementwise IEEE operation matches the scalar interpreter exactly.
    """
    if isinstance(expr, ArrayRef):
        o0, o1 = origins[expr.array]
        row = oi + expr.offset[0] - o0
        return arrays[expr.array][row, a + expr.offset[1] - o1 : b + expr.offset[1] - o1 + 1]
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, UnaryOp):
        return -_row_value(expr.operand, arrays, origins, oi, a, b)
    if isinstance(expr, BinOp):
        left = _row_value(expr.left, arrays, origins, oi, a, b)
        right = _row_value(expr.right, arrays, origins, oi, a, b)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        return left / right
    raise TypeError(f"unknown expression node {expr!r}")


def _exec_row_slice(
    stmt: Assignment,
    arrays: Dict[str, np.ndarray],
    origins: Dict[str, Tuple[int, int]],
    oi: int,
    a: int,
    b: int,
) -> None:
    """Execute one statement over original row ``oi``, ``oj`` in ``[a, b]``."""
    value = _row_value(stmt.expr, arrays, origins, oi, a, b)
    t = stmt.target
    o0, o1 = origins[t.array]
    arrays[t.array][oi + t.offset[0] - o0, a + t.offset[1] - o1 : b + t.offset[1] - o1 + 1] = value


def _body_spec(fp: FusedProgram) -> Tuple[Tuple[int, int, Tuple[Assignment, ...]], ...]:
    return tuple(
        (node.shift[0], node.shift[1], node.statements) for node in fp.body
    )


def _exec_doall_chunk(
    body: Tuple[Tuple[int, int, Tuple[Assignment, ...]], ...],
    arrays: Dict[str, np.ndarray],
    origins: Dict[str, Tuple[int, int]],
    i: int,
    j_lo: int,
    j_hi: int,
    n: int,
    m: int,
) -> None:
    """Execute the whole fused body for fused ``(i, j)``, ``j`` in the chunk.

    Statement-major over the chunk's ``j`` slice; each node is clipped to
    the fused ``j`` values where its original instance is in bounds.
    """
    for (s0, s1, statements) in body:
        oi = i + s0
        if not (0 <= oi <= n):
            continue
        lo = max(j_lo, -s1)
        hi = min(j_hi, m - s1)
        if lo > hi:
            continue
        a, b = lo + s1, hi + s1  # original column range
        for stmt in statements:
            _exec_row_slice(stmt, arrays, origins, oi, a, b)


def _chunk_task(
    parent: SpanLike,
    body: Tuple[Tuple[int, int, Tuple[Assignment, ...]], ...],
    arrays: Dict[str, np.ndarray],
    origins: Dict[str, Tuple[int, int]],
    i: int,
    j_lo: int,
    j_hi: int,
    n: int,
    m: int,
) -> None:
    """One chunk wrapped in a ``detail`` span (pool workers have no ambient
    span stack, so the submitting span is passed explicitly as the parent)."""
    with obs.trace_span(
        "exec.parallel.chunk", parent=parent, detail=True, i=i, j_lo=j_lo, j_hi=j_hi
    ):
        _exec_doall_chunk(body, arrays, origins, i, j_lo, j_hi, n, m)


def _exec_cells(
    body: Tuple[Tuple[int, int, Tuple[Assignment, ...]], ...],
    store: ArrayStore,
    cells: Sequence[Tuple[int, int]],
    n: int,
    m: int,
) -> None:
    """Execute the fused body scalar at each fused cell (wavefront tiles)."""
    for (i, j) in cells:
        for (s0, s1, statements) in body:
            oi, oj = i + s0, j + s1
            if 0 <= oi <= n and 0 <= oj <= m:
                for stmt in statements:
                    _exec_statement(stmt, store, oi, oj)


def _tile_task(
    parent: SpanLike,
    body: Tuple[Tuple[int, int, Tuple[Assignment, ...]], ...],
    store: ArrayStore,
    cells: Sequence[Tuple[int, int]],
    n: int,
    m: int,
    t: int,
) -> None:
    """One wavefront tile wrapped in a ``detail`` span (see :func:`_chunk_task`)."""
    with obs.trace_span(
        "exec.parallel.tile", parent=parent, detail=True, t=t, cells=len(cells)
    ):
        _exec_cells(body, store, cells, n, m)


# ------------------------------------------------------------------ #
# process-pool plumbing (fork + POSIX shared memory)
# ------------------------------------------------------------------ #

_WORKER: Dict[str, object] = {}


def _proc_init(meta, body, origins) -> None:  # pragma: no cover - subprocess
    """Attach the worker to the parent's shared-memory arrays."""
    from multiprocessing import shared_memory

    arrays: Dict[str, np.ndarray] = {}
    segments = []
    for (name, shm_name, shape, dtype_str) in meta:
        shm = shared_memory.SharedMemory(name=shm_name)
        segments.append(shm)
        arrays[name] = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm.buf)
    _WORKER["arrays"] = arrays
    _WORKER["segments"] = segments  # keep alive for the worker's lifetime
    _WORKER["body"] = body
    _WORKER["origins"] = origins


def _proc_doall_chunk(i: int, j_lo: int, j_hi: int, n: int, m: int) -> None:  # pragma: no cover
    _exec_doall_chunk(
        _WORKER["body"], _WORKER["arrays"], _WORKER["origins"], i, j_lo, j_hi, n, m
    )


class _SharedStore:
    """The store's arrays mirrored into named shared-memory segments."""

    def __init__(self, arrays: Dict[str, np.ndarray]) -> None:
        from multiprocessing import shared_memory

        self.segments: Dict[str, object] = {}
        self.views: Dict[str, np.ndarray] = {}
        self.meta: List[Tuple[str, str, tuple, str]] = []
        for name, arr in sorted(arrays.items()):
            shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[...] = arr
            self.segments[name] = shm
            self.views[name] = view
            self.meta.append((name, shm.name, arr.shape, arr.dtype.str))

    def copy_back(self, arrays: Dict[str, np.ndarray]) -> None:
        for name, arr in arrays.items():
            arr[...] = self.views[name]

    def close(self) -> None:
        for shm in self.segments.values():
            shm.close()  # type: ignore[attr-defined]
            try:
                shm.unlink()  # type: ignore[attr-defined]
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


# ------------------------------------------------------------------ #
# the executor
# ------------------------------------------------------------------ #


class ParallelExecutor:
    """Runs fused programs with the parallelism their schedule exposes.

    Parameters
    ----------
    jobs:
        Worker count (chunks per row / concurrent tiles).  Defaults to
        ``os.cpu_count()``.  ``jobs=1`` executes inline through the exact
        same chunking code path, so results never depend on ``jobs``.
    pool:
        ``"thread"`` (default; shared address space, numpy releases the GIL
        in slice kernels) or ``"process"`` (forked workers over POSIX
        shared memory).
    tile:
        Cells per wavefront tile for hyperplane execution.  ``None``
        takes :data:`repro.plan.model.DEFAULT_TILE` (the planner chooses
        a fitted tile per shape; see docs/PLANNING.md).

    Usable as a context manager; :meth:`close` shuts the pool down.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        pool: str = "thread",
        tile: Optional[int] = None,
    ) -> None:
        from repro.plan.model import DEFAULT_TILE

        if pool not in ("thread", "process"):
            raise ValueError(f"unknown pool kind {pool!r} (use 'thread' or 'process')")
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        if tile is None:
            tile = DEFAULT_TILE
        if tile < 1:
            raise ValueError("tile must be >= 1")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.pool = pool
        self.tile = tile
        self._executor: Optional[Executor] = None

    # -- lifecycle -------------------------------------------------- #

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _thread_pool(self) -> Executor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="repro-perf"
            )
        return self._executor

    # -- entry point ------------------------------------------------ #

    def run(
        self,
        fp: FusedProgram,
        n: int,
        m: int,
        *,
        store: Optional[ArrayStore] = None,
        seed: int = 0,
        mode: Optional[str] = None,
        schedule: Optional[IVec] = None,
    ) -> ArrayStore:
        """Execute ``fp`` on an ``(n, m)`` space; returns the mutated store.

        ``mode`` defaults to ``"doall"`` when the fusion is DOALL, else
        ``"hyperplane"`` when a ``schedule`` is supplied, else ``"serial"``.
        Results are bit-identical to ``run_fused(..., mode="serial")``.
        """
        if store is None:
            store = ArrayStore.for_program(fp.original, n, m, seed=seed)
        if mode is None:
            if is_doall_after_fusion(fp.retimed_mldg):
                mode = "doall"
            elif schedule is not None:
                mode = "hyperplane"
            else:
                mode = "serial"

        obs.counter("exec.parallel.runs").inc()
        with obs.trace_span(
            "exec.parallel.run", mode=mode, jobs=self.jobs, pool=self.pool
        ):
            if mode == "doall":
                if not is_doall_after_fusion(fp.retimed_mldg):
                    raise ExecutionOrderError(
                        "parallel doall execution requested for a non-DOALL fusion"
                    )
                self._run_doall(fp, store, n, m)
                return store
            if mode == "hyperplane":
                if schedule is None:
                    raise ExecutionOrderError("hyperplane mode needs a schedule vector")
                self._run_wavefront(fp, store, n, m, schedule)
                return store
            if mode == "serial":
                from repro.codegen.interp import run_fused

                return run_fused(fp, n, m, store=store, mode="serial")
        raise ExecutionOrderError(f"unknown execution mode {mode!r}")

    # -- DOALL ------------------------------------------------------ #

    def _run_doall(self, fp: FusedProgram, store: ArrayStore, n: int, m: int) -> None:
        body = _body_spec(fp)
        origins = dict(store._origins)  # noqa: SLF001 - deliberate internal use
        arrays = store.arrays()
        lo_i, hi_i = fp.full_outer_range(n)
        lo_j, hi_j = fp.full_inner_range(m)
        chunks = split_range(lo_j, hi_j, self.jobs)
        rows = max(0, hi_i - lo_i + 1)

        reg = obs.default_registry()
        reg.counter("exec.parallel.rows").inc(rows)
        reg.counter("exec.parallel.chunks").inc(rows * len(chunks))
        with obs.trace_span(
            "exec.parallel.doall", rows=rows, chunks_per_row=len(chunks)
        ) as sp:
            if self.jobs == 1 or len(chunks) <= 1:
                for i in range(lo_i, hi_i + 1):
                    for (j_lo, j_hi) in chunks:
                        _chunk_task(sp, body, arrays, origins, i, j_lo, j_hi, n, m)
                return

            if self.pool == "process":
                # forked workers cannot reach the parent's tracer; chunk
                # counters above still account for the submitted work
                self._run_doall_processes(
                    body, arrays, origins, chunks, lo_i, hi_i, n, m
                )
                return

            pool = self._thread_pool()
            for i in range(lo_i, hi_i + 1):
                futures = [
                    pool.submit(
                        _chunk_task, sp, body, arrays, origins, i, j_lo, j_hi, n, m
                    )
                    for (j_lo, j_hi) in chunks
                ]
                for f in futures:  # barrier between rows; re-raise worker errors
                    f.result()

    def _run_doall_processes(
        self, body, arrays, origins, chunks, lo_i, hi_i, n, m
    ) -> None:
        import multiprocessing

        shared = _SharedStore(arrays)
        executor = None
        try:
            executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_proc_init,
                initargs=(shared.meta, body, origins),
            )
            for i in range(lo_i, hi_i + 1):
                futures = [
                    executor.submit(_proc_doall_chunk, i, j_lo, j_hi, n, m)
                    for (j_lo, j_hi) in chunks
                ]
                for f in futures:
                    f.result()
            shared.copy_back(arrays)
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
            shared.close()

    # -- hyperplane / wavefront ------------------------------------- #

    def _run_wavefront(
        self, fp: FusedProgram, store: ArrayStore, n: int, m: int, schedule: IVec
    ) -> None:
        body = _body_spec(fp)
        lo_i, hi_i = fp.full_outer_range(n)
        lo_j, hi_j = fp.full_inner_range(m)
        s0, s1 = schedule[0], schedule[1]

        phases: Dict[int, List[Tuple[int, int]]] = {}
        for i in range(lo_i, hi_i + 1):
            t_row = s0 * i + s1 * lo_j
            for j in range(lo_j, hi_j + 1):
                phases.setdefault(t_row, []).append((i, j))
                t_row += s1

        reg = obs.default_registry()
        reg.counter("exec.parallel.wavefronts").inc(len(phases))
        with obs.trace_span(
            "exec.parallel.wavefront", wavefronts=len(phases), tile=self.tile
        ) as sp:
            if self.jobs == 1 or self.pool == "process":
                # Scalar wavefront work is dominated by Python bytecode, which
                # forked workers cannot share cheaply per tile; run tiles inline
                # (identical results -- tiling never affects values).
                for t in sorted(phases):
                    tiles = wavefront_tiles(phases[t], self.tile)
                    reg.counter("exec.parallel.tiles").inc(len(tiles))
                    for cells in tiles:
                        _tile_task(sp, body, store, cells, n, m, t)
                return

            pool = self._thread_pool()
            for t in sorted(phases):
                tiles = wavefront_tiles(phases[t], self.tile)
                reg.counter("exec.parallel.tiles").inc(len(tiles))
                if len(tiles) == 1:
                    _tile_task(sp, body, store, tiles[0], n, m, t)
                    continue
                futures = [
                    pool.submit(_tile_task, sp, body, store, cells, n, m, t)
                    for cells in tiles
                ]
                for f in futures:  # barrier between wavefronts
                    f.result()


def run_parallel(
    fp: FusedProgram,
    n: int,
    m: int,
    *,
    store: Optional[ArrayStore] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
    pool: str = "thread",
    mode: Optional[str] = None,
    schedule: Optional[IVec] = None,
    tile: int = 256,
) -> ArrayStore:
    """One-shot convenience wrapper around :class:`ParallelExecutor`."""
    with ParallelExecutor(jobs, pool=pool, tile=tile) as ex:
        return ex.run(fp, n, m, store=store, seed=seed, mode=mode, schedule=schedule)
