"""Canonical structural hashing and memo caches for repeated fusion queries.

Fusion is a pure function of MLDG *structure*: two graphs that differ only
in node names (and in the incidental order edges were inserted) have the
same retimings up to the renaming.  :func:`canonical_mldg_key` quotients an
MLDG by exactly that equivalence -- nodes are replaced by their program-order
index and edges are sorted -- so isomorphic-but-relabelled queries share one
cache entry, while anything semantic (dimension, program order, dependence
vector sets) stays in the key.

Two LRU caches are built on it:

* the **fusion cache** (consumed by :func:`repro.fusion.fuse`) stores whole
  name-free fusion outcomes;
* the **retiming cache** (consumed by the resilience ladder) stores raw
  per-strategy retimings, so `fuse_resilient` skips the constraint solvers
  on repeats while still running every verification gate.

Both are bypassed whenever the answer could legitimately differ from the
pure structural query: a *limiting* :class:`~repro.resilience.budget.Budget`
(the caller is probing resource behaviour, and a cache hit consumes no
solver budget) or an active fault injector (the algorithms must see the
corrupted values).  ``REPRO_FUSE_MEMO=0`` disables memoization globally.

The same predicate (:func:`memoization_applicable`) also gates the L2
disk tier (:mod:`repro.store`): when it says no, neither tier is read or
written, so a chaos run can never persist a fault-corrupted retiming.
The retiming cache's L2 path re-verifies every disk row with
:func:`repro.retiming.verify.verify_retiming` before returning it --
even though L1 callers re-run their own gates -- because disk rows cross
process and version boundaries and must never propagate garbage into the
ladder's search order.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Hashable,
    NamedTuple,
    Optional,
    Tuple,
    TypeVar,
)

from repro import obs
from repro.core.context import current_session
from repro.graph.mldg import MLDG
from repro.resilience.budget import Budget
from repro.retiming.retiming import Retiming
from repro.vectors import IVec

__all__ = [
    "CacheInfo",
    "MemoCache",
    "canonical_mldg_key",
    "structural_hash",
    "fusion_cache",
    "retiming_cache",
    "memoization_enabled",
    "memoization_applicable",
    "cached_retiming",
    "cached_schedule_retiming",
    "clear_all_caches",
]

T = TypeVar("T")

#: Canonical key: (dim, node count, sorted edge tuples over node indices).
CanonicalKey = Tuple[int, int, Tuple[Tuple[int, int, Tuple[Tuple[int, ...], ...]], ...]]


class CacheInfo(NamedTuple):
    """Cache statistics, in the spirit of ``functools.lru_cache``."""

    hits: int
    misses: int
    evictions: int
    currsize: int
    maxsize: int

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "currsize": self.currsize,
            "maxsize": self.maxsize,
            "hitRatio": round(self.hit_ratio, 4),
        }


class MemoCache:
    """A thread-safe LRU cache with hit/miss/eviction accounting.

    ``get`` returns ``None`` on a miss (cached values are never ``None`` by
    construction here) and refreshes recency on a hit; ``put`` evicts the
    least-recently-used entry once ``maxsize`` is exceeded.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self._maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __getstate__(self) -> dict:
        """Pickle support (``fork``-started workers inherit warm caches;
        ``spawn`` and explicit snapshots pickle them).  The lock is
        process-local and recreated on load; entries and counters travel."""
        with self._lock:
            state = self.__dict__.copy()
            state["_data"] = OrderedDict(self._data)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        if value is None:
            raise ValueError("MemoCache cannot store None (None means 'miss')")
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def cache_info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                currsize=len(self._data),
                maxsize=self._maxsize,
            )

    def clear(self) -> None:
        """Drop all entries and reset the statistics."""
        with self._lock:
            self._data.clear()
            self._hits = self._misses = self._evictions = 0

    def resize(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        with self._lock:
            self._maxsize = maxsize
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


# ------------------------------------------------------------------ #
# canonical structural hashing
# ------------------------------------------------------------------ #


def canonical_mldg_key(g: MLDG) -> CanonicalKey:
    """A hashable canonical form of ``g``, invariant under node renaming.

    Nodes are mapped to their program-order index (program order *is*
    semantic: body emission and legality both use it), dependence-vector
    sets are sorted, and the edge list is sorted -- so the key does not
    depend on node names or on the order nodes/edges were added.
    """
    index = {name: k for k, name in enumerate(g.nodes)}
    edges = sorted(
        (index[e.src], index[e.dst], tuple(sorted(tuple(v) for v in e.vectors)))
        for e in g.edges()
    )
    return (g.dim, g.num_nodes, tuple(edges))


def structural_hash(g: MLDG) -> str:
    """A short stable hex digest of :func:`canonical_mldg_key` (for logs/JSON)."""
    return hashlib.sha256(repr(canonical_mldg_key(g)).encode()).hexdigest()[:16]


# ------------------------------------------------------------------ #
# module-level caches and gating
# ------------------------------------------------------------------ #

_FUSION_CACHE = MemoCache(maxsize=256)
_RETIMING_CACHE = MemoCache(maxsize=512)


def fusion_cache() -> MemoCache:
    """The cache of whole fusion outcomes.

    When a :class:`repro.core.Session` with private caches is active in
    this context, its fusion cache; otherwise the process-wide default.
    """
    session = current_session()
    if session is not None and session.caches.fusion is not None:
        return session.caches.fusion
    return _FUSION_CACHE


def retiming_cache() -> MemoCache:
    """The cache of per-strategy retimings (ladder hot path).

    Session-scoped when the active :class:`repro.core.Session` carries a
    private retiming cache; the process-wide default otherwise.
    """
    session = current_session()
    if session is not None and session.caches.retiming is not None:
        return session.caches.retiming
    return _RETIMING_CACHE


def clear_all_caches() -> None:
    """Clear the caches visible from this context (session-scoped ones
    when a session with private caches is active, plus the globals)."""
    fusion_cache().clear()
    retiming_cache().clear()
    _FUSION_CACHE.clear()
    _RETIMING_CACHE.clear()


def memoization_enabled() -> bool:
    """Global switch: ``REPRO_FUSE_MEMO=0`` (or ``false``/``off``) disables."""
    return os.environ.get("REPRO_FUSE_MEMO", "1").lower() not in ("0", "false", "off")


def memoization_applicable(budget: Optional[Budget]) -> bool:
    """May this query be served from (and inserted into) a cache tier?

    This is the single gate for *both* tiers -- the in-memory memo caches
    and the disk store (:mod:`repro.store`) -- so no bypass condition can
    ever apply to one tier and not the other.  A *work-limiting* budget
    means the caller is measuring resource consumption -- a cache hit
    would consume none and change observable behaviour (e.g. a
    ``max_relaxation_rounds=0`` probe must still trip).  A deadline-only
    budget does NOT bypass: it is an SLO, and a hit is the best way to
    meet it (serve workers always compile under one).  An active fault
    injector means the algorithms must run on the corrupted inputs -- and,
    just as importantly, that nothing computed under it may be persisted.
    """
    if not memoization_enabled():
        return False
    if budget is not None and budget.is_work_limiting:
        return False
    from repro.resilience.faults import active_fault

    return active_fault() is None


# ------------------------------------------------------------------ #
# retiming-level memoization (used by the resilience ladder)
# ------------------------------------------------------------------ #


def _store_shifts(raw: Any, g: MLDG) -> Optional[Tuple[Tuple[int, ...], ...]]:
    """Shape-check a JSON shift table from the disk store for ``g``."""
    try:
        shifts = tuple(tuple(int(x) for x in shift) for shift in raw)
    except (TypeError, ValueError):
        return None
    if len(shifts) != g.num_nodes:
        return None
    if any(len(shift) != g.dim for shift in shifts):
        return None
    return shifts


def _verified_store_retiming(
    g: MLDG, shifts: Tuple[Tuple[int, ...], ...]
) -> Optional[Retiming]:
    """Rebind a disk shift table to ``g`` and re-verify it, or ``None``."""
    from repro.retiming.verify import verify_retiming

    r = Retiming(
        {name: IVec(*shift) for name, shift in zip(g.nodes, shifts)}, dim=g.dim
    )
    try:
        if not verify_retiming(g, r, cycle_limit=100).ok_for_legal_fusion:
            return None
    except Exception:
        return None
    return r


def _active_store_for_memo() -> Optional[Any]:
    from repro.store import active_store

    return active_store()


def cached_retiming(
    label: str,
    g: MLDG,
    compute: Callable[[], Retiming],
    *,
    budget: Optional[Budget] = None,
) -> Retiming:
    """Memoize ``compute()`` (a retiming algorithm run on ``g``) by structure.

    On an L1 hit the cached name-free shift table is rebound to ``g``'s
    node names.  Callers are expected to re-run their verification gates on
    the returned retiming -- the cache removes solver work, not checking.
    On an L1 miss, a configured disk store (:mod:`repro.store`) is tried
    next; disk rows are additionally re-verified here before being
    returned, and demoted (evicted + ``store.verify_fail``) otherwise.
    """
    reg = obs.default_registry()
    if not memoization_applicable(budget):
        reg.counter("retiming.cache.bypassed").inc()
        return compute()
    cache = retiming_cache()
    key = (label, canonical_mldg_key(g))
    shifts = cache.get(key)
    if shifts is not None:
        reg.counter("retiming.cache.hits").inc()
        return Retiming(
            {name: IVec(*shift) for name, shift in zip(g.nodes, shifts)}, dim=g.dim
        )
    reg.counter("retiming.cache.misses").inc()
    store = _active_store_for_memo()
    skey = f"retiming:{label}:{structural_hash(g)}"
    fingerprint = ""
    if store is not None:
        from repro.store import current_fingerprint

        fingerprint = current_fingerprint()
        raw = store.get(skey, fingerprint)
        if raw is not None:
            checked = _store_shifts(raw, g)
            r2 = _verified_store_retiming(g, checked) if checked is not None else None
            if r2 is None:
                store.demote(skey, fingerprint)
            else:
                assert checked is not None
                cache.put(key, checked)  # promote to L1
                return r2
    r = compute()
    dehydrated = tuple(tuple(r[name]) for name in g.nodes)
    cache.put(key, dehydrated)
    if store is not None:
        store.put(skey, fingerprint, dehydrated)
    return r


def cached_schedule_retiming(
    label: str,
    g: MLDG,
    compute: Callable[[], Tuple[Retiming, Any]],
    *,
    budget: Optional[Budget] = None,
) -> Tuple[Retiming, Any]:
    """Like :func:`cached_retiming` for algorithms that also pick a schedule.

    ``compute()`` returns ``(retiming, schedule)`` where the schedule is an
    integer vector; both are stored name-free and rebound on a hit.
    """
    reg = obs.default_registry()
    if not memoization_applicable(budget):
        reg.counter("retiming.cache.bypassed").inc()
        return compute()
    cache = retiming_cache()
    key = (label, canonical_mldg_key(g))
    entry = cache.get(key)
    if entry is not None:
        shifts, sched = entry
        reg.counter("retiming.cache.hits").inc()
        return (
            Retiming(
                {name: IVec(*shift) for name, shift in zip(g.nodes, shifts)},
                dim=g.dim,
            ),
            IVec(*sched),
        )
    reg.counter("retiming.cache.misses").inc()
    store = _active_store_for_memo()
    skey = f"sched:{label}:{structural_hash(g)}"
    fingerprint = ""
    if store is not None:
        from repro.store import current_fingerprint

        fingerprint = current_fingerprint()
        raw = store.get(skey, fingerprint)
        if raw is not None:
            decoded = _decode_store_schedule_entry(raw, g)
            if decoded is None:
                store.demote(skey, fingerprint)
            else:
                shifts2, sched2 = decoded
                r2 = _verified_store_retiming(g, shifts2)
                if r2 is None:
                    store.demote(skey, fingerprint)
                else:
                    cache.put(key, (shifts2, sched2))  # promote to L1
                    return r2, IVec(*sched2)
    r, s = compute()
    dehydrated = (tuple(tuple(r[name]) for name in g.nodes), tuple(s))
    cache.put(key, dehydrated)
    if store is not None:
        store.put(skey, fingerprint, dehydrated)
    return r, s


def _decode_store_schedule_entry(
    raw: Any, g: MLDG
) -> Optional[Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...]]]:
    """Shape-check a JSON ``(shifts, schedule)`` row for ``g``."""
    try:
        raw_shifts, raw_sched = raw
    except (TypeError, ValueError):
        return None
    shifts = _store_shifts(raw_shifts, g)
    if shifts is None:
        return None
    try:
        sched = tuple(int(x) for x in raw_sched)
    except (TypeError, ValueError):
        return None
    if len(sched) != g.dim:
        return None
    return shifts, sched
