"""The performance layer: parallel backends, memo caches, bench harness.

Three pillars (see ``docs/PERFORMANCE.md``):

* :mod:`repro.perf.parallel` -- a :class:`ParallelExecutor` that actually
  runs the parallelism the paper's schedules expose (DOALL rows chunked
  over a thread/process pool, hyperplane wavefronts tiled), bit-identical
  to the serial interpreter;
* :mod:`repro.perf.memo` -- canonical structural hashing of MLDGs feeding
  LRU caches so repeated and isomorphic ``fuse()`` queries are O(1);
* :mod:`repro.perf.bench` -- the measured-perf harness behind
  ``repro-fuse bench`` and ``BENCH_perf.json``.

Submodules are loaded lazily so that low-level packages (e.g. the fusion
driver, which consumes :mod:`repro.perf.memo`) can import this package
without dragging in the execution backends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "ParallelExecutor",
    "run_parallel",
    "MemoCache",
    "CacheInfo",
    "canonical_mldg_key",
    "structural_hash",
    "fusion_cache",
    "retiming_cache",
    "clear_all_caches",
    "run_bench_suite",
    "BenchRecord",
]

_LAZY = {
    "ParallelExecutor": "repro.perf.parallel",
    "run_parallel": "repro.perf.parallel",
    "MemoCache": "repro.perf.memo",
    "CacheInfo": "repro.perf.memo",
    "canonical_mldg_key": "repro.perf.memo",
    "structural_hash": "repro.perf.memo",
    "fusion_cache": "repro.perf.memo",
    "retiming_cache": "repro.perf.memo",
    "clear_all_caches": "repro.perf.memo",
    "run_bench_suite": "repro.perf.bench",
    "BenchRecord": "repro.perf.bench",
}

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers
    from repro.perf.bench import BenchRecord, run_bench_suite  # noqa: F401
    from repro.perf.memo import (  # noqa: F401
        CacheInfo,
        MemoCache,
        canonical_mldg_key,
        clear_all_caches,
        fusion_cache,
        retiming_cache,
        structural_hash,
    )
    from repro.perf.parallel import ParallelExecutor, run_parallel  # noqa: F401


def __getattr__(name: str):
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
