"""Algorithm 2: the Legal Loop Fusion Retiming Algorithm (LLOFRA).

Theorem 3.2: for any legal 2LDG there is a retiming ``r`` with every retimed
edge weight ``delta_Lr(e) >= (0, 0)``, after which loop fusion is legal
(Theorem 3.1).  The retiming solves the difference-constraint system

.. math::  r(v_j) - r(v_i) \\le \\delta_L(e) \\qquad \\forall e : v_i \\to v_j

on the Section-2.4 constraint graph (the paper's Figure 5 for the running
example) using the lexicographic Bellman-Ford of Algorithm 1.  The system is
feasible because every cycle of a legal MLDG has weight lexicographically
greater than ``(0, 0)``.

Complexity: ``O(|V| * |E|)`` vector operations -- one Bellman-Ford run.
"""

from __future__ import annotations

from typing import Optional

from repro.constraints import InfeasibleSystemError, VectorConstraintSystem
from repro.constraints.constraint_graph import ConstraintGraph
from repro.fusion.errors import IllegalMLDGError
from repro.graph.legality import check_legal
from repro.graph.mldg import MLDG
from repro.resilience.budget import Budget
from repro.retiming import Retiming

__all__ = ["legal_fusion_retiming", "llofra", "llofra_constraint_graph"]


def _llofra_system(g: MLDG) -> VectorConstraintSystem:
    system = VectorConstraintSystem(g.nodes, dim=g.dim)
    for e in g.edges():
        system.add_leq(e.src, e.dst, e.delta)
    return system


def llofra_constraint_graph(g: MLDG) -> ConstraintGraph:
    """The LLOFRA constraint graph (Figure 5 shape), for inspection."""
    return _llofra_system(g).constraint_graph()


def legal_fusion_retiming(
    g: MLDG, *, check: bool = True, budget: Optional[Budget] = None
) -> Retiming:
    """Algorithm 2: a retiming making loop fusion legal.

    Parameters
    ----------
    g:
        The MLDG to retime.
    check:
        When true (default), validate structural legality first and raise
        :class:`~repro.fusion.errors.IllegalMLDGError` with diagnostics
        instead of surfacing a bare infeasible-system error.
    budget:
        Optional :class:`~repro.resilience.budget.Budget` bounding the
        Bellman-Ford solve; exhaustion raises
        :class:`~repro.resilience.budget.BudgetExceededError`.

    Returns the retiming whose values are the shortest-path distances from
    ``v_0`` -- exactly the function the paper reports in Figure 6
    (``r(C) = (0,-2)``, ``r(D) = (0,-3)`` for the running example).
    """
    if check:
        report = check_legal(g)
        if not report.legal:
            from repro.lint.engine import diagnostics_from_legality

            raise IllegalMLDGError(
                report.violations, diagnostics=diagnostics_from_legality(report)
            )
    try:
        solution = _llofra_system(g).solve(budget=budget)
    except InfeasibleSystemError as exc:
        # unreachable for structurally legal graphs (Theorem 3.2); reachable
        # when check=False on an illegal graph
        raise IllegalMLDGError(
            [f"LLOFRA system infeasible; negative cycle {exc.cycle}"]
        ) from exc
    return Retiming(solution, dim=g.dim)


#: Paper-style alias.
llofra = legal_fusion_retiming
