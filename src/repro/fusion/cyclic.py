"""Algorithm 4: legal fusion with full parallelism for cyclic 2LDGs.

Theorem 4.2: a legal 2LDG admits a retiming after which the fused innermost
loop is DOALL **iff** neither of two constraint graphs has a negative cycle.
The retiming is computed in two phases (Section 4.3):

**Phase one (x-coordinates).**  Solve the scalar system

.. math::
   r_x(v_j) - r_x(v_i) \\le \\begin{cases}
       \\delta_L(e)[0] - 1 & e \\text{ a hard-edge} \\\\
       \\delta_L(e)[0]     & \\text{otherwise}
   \\end{cases}

(Figure 11a).  Hard-edges -- whose vector sets mix second coordinates at a
common first coordinate -- are forced to a strictly positive retimed first
coordinate, because no second-coordinate retiming could simultaneously zero
their differing vectors.

**Phase two (y-coordinates).**  For every non-hard edge whose phase-one
retimed first coordinate is exactly zero, the retimed vector must become
exactly ``(0, 0)``, so the y-coordinates satisfy the *equality*

.. math::  r_y(v_j) - r_y(v_i) = \\delta_L(e)[1],

encoded as the edge plus a negated back-edge (Figure 11b).  All other edges
are already ``>= (1, -1)`` whatever the y-coordinates do.

Either phase's negative cycle proves no DOALL retiming exists
(:class:`~repro.fusion.errors.NoParallelRetimingError`); callers then fall
back to Algorithm 5.

The construction is two-dimensional by nature (the paper's setting); the
module rejects other dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.constraints import (
    InfeasibleSystemError,
    ScalarConstraintSystem,
)
from repro.constraints.constraint_graph import ConstraintGraph
from repro.fusion.errors import IllegalMLDGError, NoParallelRetimingError
from repro.graph.legality import check_legal
from repro.graph.mldg import MLDG
from repro.resilience.budget import Budget
from repro.retiming import Retiming

__all__ = ["cyclic_parallel_retiming", "cyclic_phase_graphs", "CyclicPhaseGraphs"]


def _check_2d(g: MLDG) -> None:
    if g.dim != 2:
        raise ValueError(
            f"Algorithm 4 is defined for two-dimensional MLDGs, got dim={g.dim}"
        )


def _phase_one_system(g: MLDG) -> ScalarConstraintSystem:
    system = ScalarConstraintSystem(g.nodes)
    for e in g.edges():
        bound = e.delta[0] - (1 if e.is_hard else 0)
        system.add_leq(e.src, e.dst, bound)
    return system


def _phase_two_system(g: MLDG, r_x: Dict[str, int]) -> ScalarConstraintSystem:
    system = ScalarConstraintSystem(g.nodes)
    for e in g.edges():
        if e.is_hard:
            continue
        retimed_x = e.delta[0] + r_x[e.src] - r_x[e.dst]
        if retimed_x == 0:
            system.add_eq(e.src, e.dst, e.delta[1])
    return system


@dataclass
class CyclicPhaseGraphs:
    """Both constraint graphs of Algorithm 4, for inspection (Figure 11)."""

    x_graph: ConstraintGraph
    y_graph: ConstraintGraph


def cyclic_phase_graphs(g: MLDG) -> CyclicPhaseGraphs:
    """Build the x and y constraint graphs without solving.

    The y-graph depends on phase one's solution; when phase one is
    infeasible this raises :class:`NoParallelRetimingError`.
    """
    _check_2d(g)
    phase_one = _phase_one_system(g)
    try:
        r_x = phase_one.solve()
    except InfeasibleSystemError as exc:
        raise NoParallelRetimingError("x", exc.cycle) from exc
    return CyclicPhaseGraphs(
        x_graph=phase_one.constraint_graph(),
        y_graph=_phase_two_system(g, r_x).constraint_graph(),
    )


def cyclic_parallel_retiming(
    g: MLDG, *, check: bool = True, budget: Optional[Budget] = None
) -> Retiming:
    """Algorithm 4: a retiming giving a DOALL fused innermost loop.

    Succeeds exactly when Theorem 4.2's conditions hold; otherwise raises
    :class:`~repro.fusion.errors.NoParallelRetimingError` identifying the
    failing phase and its negative-cycle certificate.

    On the paper's running example (Figure 2) this returns
    ``r(A)=r(B)=(0,0)``, ``r(C)=(-1,0)``, ``r(D)=(-1,-1)`` (Figure 12).
    """
    _check_2d(g)
    if check:
        report = check_legal(g)
        if not report.legal:
            from repro.lint.engine import diagnostics_from_legality

            raise IllegalMLDGError(
                report.violations, diagnostics=diagnostics_from_legality(report)
            )

    try:
        r_x = _phase_one_system(g).solve(budget=budget)
    except InfeasibleSystemError as exc:
        raise NoParallelRetimingError("x", exc.cycle) from exc

    try:
        r_y = _phase_two_system(g, r_x).solve(budget=budget)
    except InfeasibleSystemError as exc:
        raise NoParallelRetimingError("y", exc.cycle) from exc

    return Retiming.from_components(r_x, r_y, dim=2)
