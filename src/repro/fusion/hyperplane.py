"""Algorithm 5: full hyperplane parallelism for cyclic 2LDGs.

When Theorem 4.2's conditions fail -- some cycle forces a same-outer-
iteration dependence to survive -- full *row* parallelism is impossible, but
Theorem 4.4 shows a wavefront execution always exists: retime with LLOFRA so
every dependence vector is ``>= (0, 0)``, then pick the Lemma-4.3 schedule
vector ``s`` and hyperplane ``h`` perpendicular to it.  Every iteration on a
common hyperplane ``s . (i, j) = t`` can execute in parallel.

On the paper's Figure 14 this yields ``s = (5, 1)`` and ``h = (1, -5)``
(Figure 16), with the retiming of Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.fusion.errors import IllegalMLDGError
from repro.fusion.legal import legal_fusion_retiming
from repro.graph.mldg import MLDG
from repro.resilience.budget import Budget
from repro.retiming import Retiming, hyperplane_for_schedule, schedule_vector_for
from repro.vectors import IVec

__all__ = ["HyperplaneFusion", "hyperplane_parallel_fusion"]


@dataclass(frozen=True)
class HyperplaneFusion:
    """Result of Algorithm 5.

    Attributes
    ----------
    retiming:
        The LLOFRA retiming making fusion legal.
    schedule:
        The strict schedule vector ``s`` for the retimed dependence set.
    hyperplane:
        ``h = (s[1], -s[0])``, the DOALL hyperplane direction.
    retimed_vectors:
        All retimed dependence vectors (for reporting and verification).
    """

    retiming: Retiming
    schedule: IVec
    hyperplane: IVec
    retimed_vectors: List[IVec]

    @property
    def is_row_parallel(self) -> bool:
        """True when the wavefront degenerates to plain row parallelism."""
        return self.schedule == IVec(1, 0)


def hyperplane_parallel_fusion(
    g: MLDG, *, check: bool = True, budget: Optional[Budget] = None
) -> HyperplaneFusion:
    """Algorithm 5: LLOFRA retiming plus wavefront schedule and hyperplane.

    Always succeeds on a legal 2-D MLDG (Theorem 4.4).  Raises
    :class:`~repro.fusion.errors.IllegalMLDGError` otherwise, and
    ``ValueError`` for non-2-D graphs (the hyperplane construction is
    two-dimensional).
    """
    if g.dim != 2:
        raise ValueError("Algorithm 5's hyperplane construction is two-dimensional")
    r = legal_fusion_retiming(g, check=check, budget=budget)
    gr = r.apply(g)
    retimed = sorted(gr.all_vectors())
    s = schedule_vector_for(retimed)
    h = hyperplane_for_schedule(s)
    return HyperplaneFusion(
        retiming=r, schedule=s, hyperplane=h, retimed_vectors=retimed
    )
