"""n-dimensional generalisations of the paper's 2-D algorithms.

The MLDG model (Definition 2.2) is n-dimensional, but the paper "focuses on
two-dimensional cases".  Two of its algorithms generalise directly and are
provided here for deeper nests:

**Full parallelism for n-D MLDGs** (generalising Algorithm 4).  The 2-D
invariant -- every retimed vector is outermost-carried or exactly zero --
makes the whole inner nest DOALL and extends naturally:

* *phase one* solves the scalar first-coordinate system with hard-edges
  (vector sets mixing later coordinates at a shared first coordinate)
  tightened by one, exactly as in 2-D;
* *phases two..n* replace the single y-equality system with one scalar
  equality system **per remaining coordinate** -- for a non-hard edge whose
  retimed first coordinate is zero, all its relevant vectors share one
  tail, and forcing that tail to zero decouples componentwise.

Feasibility of every system is necessary and sufficient, mirroring
Theorem 4.2; failures carry the phase index and negative-cycle certificate.

**n-D wavefront schedules** (generalising Lemma 4.3).  For retimed vectors
that are all lexicographically non-negative, a strict schedule is built
right-to-left: the last coordinate gets weight 1, and each earlier
coordinate's weight is chosen to dominate the worst negative tail of the
vectors whose first non-zero position it is:

.. math::
   s_k = \\max\\left(1,\\; 1 + \\max_{d : \\mathrm{fnz}(d) = k}
          \\left\\lfloor -\\frac{\\sum_{j>k} s_j d_j}{d_k} \\right\\rfloor\\right)

(For ``n = 2`` this agrees with Lemma 4.3 up to clamping ``s_0 >= 1``; the
paper permits negative skews, which are valid but gratuitous.)
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.constraints import InfeasibleSystemError, ScalarConstraintSystem
from repro.fusion.errors import IllegalMLDGError, NoParallelRetimingError
from repro.fusion.legal import legal_fusion_retiming
from repro.graph.legality import check_legal
from repro.graph.mldg import MLDG
from repro.retiming import Retiming
from repro.vectors import IVec

__all__ = [
    "multidim_parallel_retiming",
    "multidim_schedule_vector",
    "multidim_hyperplane_fusion",
]


def multidim_parallel_retiming(g: MLDG, *, check: bool = True) -> Retiming:
    """A retiming making every vector outermost-carried or zero (any dim).

    For 2-D inputs this computes the same answers as Algorithm 4 (the test
    suite pins that); for higher dimensions it chains one equality phase
    per extra coordinate.  Raises
    :class:`~repro.fusion.errors.NoParallelRetimingError` with the failing
    phase name (``"x"`` for phase one, ``"tail[k]"`` for coordinate ``k``).
    """
    if check:
        report = check_legal(g)
        if not report.legal:
            raise IllegalMLDGError(report.violations)

    # phase one: first coordinates, hard-edges tightened
    phase_one = ScalarConstraintSystem(g.nodes)
    for e in g.edges():
        bound = e.delta[0] - (1 if e.is_hard else 0)
        phase_one.add_leq(e.src, e.dst, bound)
    try:
        r0 = phase_one.solve()
    except InfeasibleSystemError as exc:
        raise NoParallelRetimingError("x", exc.cycle) from exc

    # phases two..n: zero the tails of surviving same-first-coordinate edges
    tails: List[Dict[str, int]] = []
    for axis in range(1, g.dim):
        system = ScalarConstraintSystem(g.nodes)
        for e in g.edges():
            if e.is_hard:
                continue
            if e.delta[0] + r0[e.src] - r0[e.dst] == 0:
                system.add_eq(e.src, e.dst, e.delta[axis])
        try:
            tails.append(system.solve())
        except InfeasibleSystemError as exc:
            raise NoParallelRetimingError(f"tail[{axis}]", exc.cycle) from exc

    mapping = {
        node: IVec([r0[node]] + [t[node] for t in tails]) for node in g.nodes
    }
    return Retiming(mapping, dim=g.dim)


def _first_nonzero(d: IVec) -> int:
    for k, c in enumerate(d):
        if c != 0:
            return k
    raise ValueError("zero vector has no first non-zero coordinate")


def multidim_schedule_vector(dependence_vectors: Iterable[IVec]) -> IVec:
    """A strict schedule vector for lex-non-negative vectors of any dimension.

    Every non-zero input must be lexicographically non-negative (retime with
    LLOFRA first); the result ``s`` satisfies ``s . d > 0`` for all of them.
    """
    vecs = [d for d in dependence_vectors if not d.is_zero()]
    if not vecs:
        raise ValueError("need at least one non-zero dependence vector")
    dim = vecs[0].dim
    for d in vecs:
        if d.dim != dim:
            raise ValueError("mixed dimensions in schedule construction")
        if tuple(d) < tuple([0] * dim):
            raise ValueError(f"vector {d} is lexicographically negative")

    weights = [0] * dim
    weights[dim - 1] = 1
    for k in range(dim - 2, -1, -1):
        worst = 1
        for d in vecs:
            if _first_nonzero(d) != k:
                continue
            tail = sum(weights[j] * d[j] for j in range(k + 1, dim))
            worst = max(worst, (-tail) // d[k] + 1)
        weights[k] = worst
    s = IVec(weights)
    for d in vecs:
        if s.dot(d) <= 0:
            raise AssertionError(f"constructed schedule {s} fails on {d}")
    return s


def multidim_hyperplane_fusion(g: MLDG, *, check: bool = True):
    """Generalised Algorithm 5: LLOFRA plus an n-D strict schedule.

    Returns ``(retiming, schedule)``.  In n > 2 dimensions there is a whole
    (n-1)-dimensional DOALL hyperplane orthogonal to ``s`` rather than a
    single direction vector, so no ``h`` is returned; iterate levels
    ``t = s . x`` and run each level in parallel.
    """
    r = legal_fusion_retiming(g, check=check)
    gr = r.apply(g)
    vecs = [d for d in gr.all_vectors() if not d.is_zero()]
    if not vecs:
        s = IVec([1] + [0] * (g.dim - 1))
    else:
        s = multidim_schedule_vector(vecs)
    return r, s
