"""Exception types for the fusion algorithms.

Exceptions raised on *input* problems (rather than internal errors) carry
the full structured diagnostic story: :class:`FusionError.diagnostics` holds
:class:`repro.lint.Diagnostic` records, so callers -- the CLI, the pipeline,
CI tooling -- can render codes, severities and spans instead of parsing
truncated exception text.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - avoid an import cycle at runtime
    from repro.lint.diagnostics import Diagnostic

__all__ = [
    "FusionError",
    "IllegalMLDGError",
    "NotAcyclicError",
    "NoParallelRetimingError",
]


class FusionError(Exception):
    """Base class for fusion failures.

    ``diagnostics`` carries the structured findings behind the failure (empty
    for internal errors); the exception *message* may summarise, but nothing
    is lost.
    """

    def __init__(
        self, message: str, diagnostics: Optional[Sequence["Diagnostic"]] = None
    ) -> None:
        super().__init__(message)
        self.diagnostics: List["Diagnostic"] = list(diagnostics or [])

    def __str__(self) -> str:
        base = super().__str__()
        codes = sorted({d.code for d in self.diagnostics})
        if codes:
            return f"{base} [{', '.join(codes)}]"
        return base


class IllegalMLDGError(FusionError):
    """The input MLDG does not model an executable nested loop.

    The message stays short (at most five violations quoted), but the *full*
    lists survive on the exception: ``violations`` has every violation as
    text and ``diagnostics`` the same findings as structured records.
    """

    def __init__(
        self,
        violations: List[str],
        diagnostics: Optional[Sequence["Diagnostic"]] = None,
    ) -> None:
        detail = "; ".join(violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        super().__init__(f"illegal MLDG: {detail}{more}", diagnostics)
        self.violations = violations


class NotAcyclicError(FusionError):
    """Algorithm 3 was invoked on a cyclic MLDG."""

    def __init__(self, cycle: Optional[List[str]] = None) -> None:
        extra = f" (cycle: {' -> '.join(cycle)})" if cycle else ""
        super().__init__(f"Algorithm 3 requires an acyclic MLDG{extra}")
        self.cycle = cycle


class NoParallelRetimingError(FusionError):
    """Algorithm 4's Theorem-4.2 conditions fail: no DOALL retiming exists.

    ``phase`` names the failing constraint graph (``"x"`` or ``"y"``) and
    ``cycle`` is the negative-cycle certificate.  Callers should fall back to
    Algorithm 5 (hyperplane parallelism), which always succeeds.
    """

    def __init__(self, phase: str, cycle: List[str]) -> None:
        super().__init__(
            f"no fully-parallel fusion exists: negative cycle in the {phase} "
            f"constraint graph ({' -> '.join(map(str, cycle))})"
        )
        self.phase = phase
        self.cycle = cycle
