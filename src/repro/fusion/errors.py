"""Exception types for the fusion algorithms."""

from __future__ import annotations

from typing import List, Optional

__all__ = [
    "FusionError",
    "IllegalMLDGError",
    "NotAcyclicError",
    "NoParallelRetimingError",
]


class FusionError(Exception):
    """Base class for fusion failures."""


class IllegalMLDGError(FusionError):
    """The input MLDG does not model an executable nested loop.

    Carries the structural violations from
    :func:`repro.graph.legality.check_legal`.
    """

    def __init__(self, violations: List[str]) -> None:
        detail = "; ".join(violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        super().__init__(f"illegal MLDG: {detail}{more}")
        self.violations = violations


class NotAcyclicError(FusionError):
    """Algorithm 3 was invoked on a cyclic MLDG."""

    def __init__(self, cycle: Optional[List[str]] = None) -> None:
        extra = f" (cycle: {' -> '.join(cycle)})" if cycle else ""
        super().__init__(f"Algorithm 3 requires an acyclic MLDG{extra}")
        self.cycle = cycle


class NoParallelRetimingError(FusionError):
    """Algorithm 4's Theorem-4.2 conditions fail: no DOALL retiming exists.

    ``phase`` names the failing constraint graph (``"x"`` or ``"y"``) and
    ``cycle`` is the negative-cycle certificate.  Callers should fall back to
    Algorithm 5 (hyperplane parallelism), which always succeeds.
    """

    def __init__(self, phase: str, cycle: List[str]) -> None:
        super().__init__(
            f"no fully-parallel fusion exists: negative cycle in the {phase} "
            f"constraint graph ({' -> '.join(map(str, cycle))})"
        )
        self.phase = phase
        self.cycle = cycle
