"""The paper's fusion algorithms (the primary contribution).

Four polynomial-time algorithms, all reductions to difference-constraint
systems solved by Bellman-Ford on a constraint graph:

* **Algorithm 2 (LLOFRA)** -- :func:`~repro.fusion.legal.legal_fusion_retiming`:
  retime so every edge weight is ``>= (0,0)``; fusion becomes legal.  Always
  succeeds on a legal MLDG (Theorem 3.2).
* **Algorithm 3** -- :func:`~repro.fusion.acyclic.acyclic_parallel_retiming`:
  for acyclic MLDGs, retime so the fused innermost loop is DOALL.  Always
  succeeds on a legal acyclic MLDG (Theorem 4.1).
* **Algorithm 4** -- :func:`~repro.fusion.cyclic.cyclic_parallel_retiming`:
  two-phase retiming for cyclic MLDGs; succeeds iff the x- and y-constraint
  graphs have no negative cycle (Theorem 4.2), and then the fused loop is
  DOALL.
* **Algorithm 5** -- :func:`~repro.fusion.hyperplane.hyperplane_parallel_fusion`:
  the general fallback; LLOFRA plus a wavefront schedule vector and DOALL
  hyperplane (Lemma 4.3, Theorem 4.4).  Always succeeds on a legal MLDG.

:func:`~repro.fusion.driver.fuse` picks the strongest applicable guarantee
automatically and verifies the result.
"""

from repro.fusion.errors import (
    FusionError,
    IllegalMLDGError,
    NoParallelRetimingError,
    NotAcyclicError,
)
from repro.fusion.legal import legal_fusion_retiming, llofra, llofra_constraint_graph
from repro.fusion.acyclic import (
    acyclic_constraint_graph,
    acyclic_parallel_retiming,
)
from repro.fusion.cyclic import (
    CyclicPhaseGraphs,
    cyclic_parallel_retiming,
    cyclic_phase_graphs,
)
from repro.fusion.hyperplane import HyperplaneFusion, hyperplane_parallel_fusion
from repro.fusion.multidim import (
    multidim_hyperplane_fusion,
    multidim_parallel_retiming,
    multidim_schedule_vector,
)
from repro.fusion.driver import (
    FusionResult,
    Parallelism,
    Strategy,
    fuse,
)

__all__ = [
    "FusionError",
    "IllegalMLDGError",
    "NotAcyclicError",
    "NoParallelRetimingError",
    "legal_fusion_retiming",
    "llofra",
    "llofra_constraint_graph",
    "acyclic_parallel_retiming",
    "acyclic_constraint_graph",
    "cyclic_parallel_retiming",
    "cyclic_phase_graphs",
    "CyclicPhaseGraphs",
    "hyperplane_parallel_fusion",
    "HyperplaneFusion",
    "multidim_parallel_retiming",
    "multidim_schedule_vector",
    "multidim_hyperplane_fusion",
    "fuse",
    "FusionResult",
    "Parallelism",
    "Strategy",
]
