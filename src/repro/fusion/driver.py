"""The unified fusion driver.

:func:`fuse` applies the strongest applicable algorithm of the paper and
returns a verified :class:`FusionResult`:

* acyclic MLDG -> Algorithm 3, DOALL fused loop (Theorem 4.1);
* cyclic MLDG satisfying Theorem 4.2 -> Algorithm 4, DOALL fused loop;
* any other legal MLDG -> Algorithm 5, DOALL hyperplane (Theorem 4.4).

Every result is re-verified against the paper's invariants
(:func:`repro.retiming.verify.verify_retiming`) before being returned --
the algorithms are trusted, but the verification is cheap and turns any
latent bug into a loud error.

Successful outcomes are memoized by canonical MLDG structure
(:mod:`repro.perf.memo`): a repeated -- or isomorphic-but-relabelled --
query skips the constraint solvers and only re-runs the verification gate
on the rehydrated retiming.  When an L2 disk store is configured
(:mod:`repro.store`), misses fall through to it before compiling and
successful compiles are written through, so warm results survive process
boundaries; disk rows re-enter through exactly the same rehydrate +
re-verify gate, and rows that fail it are evicted and recompiled.
Limiting budgets and active fault injectors bypass *both* tiers through
one shared predicate, so resource probes and chaos tests always measure
real solver work and can never persist corrupted results.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro import obs
from repro.fusion.errors import FusionError, IllegalMLDGError
from repro.graph.legality import check_legal
from repro.graph.mldg import MLDG
from repro.perf.memo import (
    canonical_mldg_key,
    fusion_cache,
    memoization_applicable,
    structural_hash,
)
from repro.resilience.budget import Budget
from repro.retiming import Retiming
from repro.retiming.verify import RetimingVerification, verify_retiming
from repro.store import CompileStore, active_store, current_fingerprint
from repro.vectors import IVec

__all__ = ["Strategy", "Parallelism", "FusionResult", "fuse"]


class Strategy(enum.Enum):
    """Which algorithm produced (or should produce) the fusion."""

    AUTO = "auto"
    DIRECT = "direct"  # no retiming; Theorem 3.1 check only
    LEGAL_ONLY = "legal-only"  # Algorithm 2 (LLOFRA)
    ACYCLIC = "acyclic"  # Algorithm 3
    CYCLIC = "cyclic"  # Algorithm 4
    HYPERPLANE = "hyperplane"  # Algorithm 5


class Parallelism(enum.Enum):
    """Parallelism of the fused innermost loop."""

    DOALL = "doall"  # all iterations of a row in parallel
    HYPERPLANE = "hyperplane"  # all iterations on a wavefront in parallel
    SERIAL = "serial"  # fused loop carries dependencies


@dataclass
class FusionResult:
    """Everything the caller needs to apply and report a fusion."""

    strategy: Strategy
    parallelism: Parallelism
    retiming: Retiming
    original: MLDG
    retimed: MLDG
    schedule: IVec
    hyperplane: Optional[IVec]
    verification: RetimingVerification
    notes: List[str] = field(default_factory=list)

    @property
    def is_doall(self) -> bool:
        return self.parallelism is Parallelism.DOALL

    def summary(self) -> str:
        lines = [
            f"strategy     : {self.strategy.value}",
            f"parallelism  : {self.parallelism.value}",
            f"retiming     : {self.retiming.describe()}",
            f"schedule s   : {self.schedule}",
        ]
        if self.hyperplane is not None:
            lines.append(f"hyperplane h : {self.hyperplane}")
        for e in self.retimed.edges():
            lines.append(f"  retimed {e}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _result(
    g: MLDG,
    r: Retiming,
    strategy: Strategy,
    *,
    schedule: IVec,
    hyperplane: Optional[IVec],
    notes: Optional[List[str]] = None,
) -> FusionResult:
    gr = r.apply(g)
    # Cycle-weight preservation is a telescoping identity, so sampling a
    # bounded number of cycles keeps verification O(small) on dense graphs.
    verification = verify_retiming(g, r, cycle_limit=100)
    if not verification.ok_for_legal_fusion:
        raise FusionError(
            f"internal error: {strategy.value} produced an invalid retiming: "
            + "; ".join(verification.problems)
        )
    if verification.doall:
        parallelism = Parallelism.DOALL
    elif hyperplane is not None:
        parallelism = Parallelism.HYPERPLANE
    else:
        parallelism = Parallelism.SERIAL
    return FusionResult(
        strategy=strategy,
        parallelism=parallelism,
        retiming=r,
        original=g,
        retimed=gr,
        schedule=schedule,
        hyperplane=hyperplane,
        verification=verification,
        notes=list(notes or []),
    )


def _rehydrate(g: MLDG, payload: tuple) -> FusionResult:
    """Rebuild a :class:`FusionResult` for ``g`` from a name-free cache entry.

    The retiming shifts are rebound to ``g``'s node names positionally
    (canonical keys quotient by exactly that renaming) and the full
    verification gate re-runs inside :func:`_result` -- the cache removes
    solver work, never checking.
    """
    strategy_value, shifts, schedule, hyperplane, notes = payload
    r = Retiming(
        {name: IVec(*shift) for name, shift in zip(g.nodes, shifts)}, dim=g.dim
    )
    return _result(
        g,
        r,
        Strategy(strategy_value),
        schedule=IVec(*schedule),
        hyperplane=IVec(*hyperplane) if hyperplane is not None else None,
        notes=list(notes),
    )


def _dehydrate(result: FusionResult) -> tuple:
    """The name-free, immutable view of ``result`` stored in the fusion cache."""
    g = result.original
    return (
        result.strategy.value,
        tuple(tuple(result.retiming[name]) for name in g.nodes),
        tuple(result.schedule),
        tuple(result.hyperplane) if result.hyperplane is not None else None,
        tuple(result.notes),
    )


def _payload_from_store(raw: object, g: MLDG) -> Optional[tuple]:
    """Shape-check a JSON row from the L2 store into a ``_rehydrate`` payload.

    Disk rows crossed a process (and possibly a version) boundary, so
    unlike L1 entries they are untrusted: anything that does not decode to
    exactly the dehydrated shape for *this* graph -- right node count,
    right dimension, integer shifts -- is rejected (``None``), which the
    caller turns into an eviction and a cold compile.
    """
    try:
        strategy_value, shifts, schedule, hyperplane, notes = raw  # type: ignore[misc]
        if not isinstance(strategy_value, str):
            return None
        Strategy(strategy_value)
        if len(shifts) != g.num_nodes:
            return None
        shifts_t = tuple(tuple(int(x) for x in shift) for shift in shifts)
        if any(len(shift) != g.dim for shift in shifts_t):
            return None
        schedule_t = tuple(int(x) for x in schedule)
        if len(schedule_t) != g.dim:
            return None
        hyperplane_t = (
            tuple(int(x) for x in hyperplane) if hyperplane is not None else None
        )
        if hyperplane_t is not None and len(hyperplane_t) != g.dim:
            return None
        notes_t = tuple(str(n) for n in notes)
    except (TypeError, ValueError):
        return None
    return (strategy_value, shifts_t, schedule_t, hyperplane_t, notes_t)


def fuse(
    g: MLDG,
    strategy: Strategy | str = Strategy.AUTO,
    *,
    budget: Optional[Budget] = None,
) -> FusionResult:
    """Fuse the loop nest modelled by ``g``, maximising parallelism.

    ``strategy`` forces a specific algorithm; the default ``AUTO`` picks:
    Algorithm 3 for DAGs, else Algorithm 4, else Algorithm 5.  Raises
    :class:`~repro.fusion.errors.FusionError` subclasses on illegal inputs
    or when a forced strategy does not apply.

    ``budget`` bounds the run: node/edge caps are checked up front and the
    relaxation/deadline limits are enforced inside the solvers, raising
    :class:`~repro.resilience.budget.BudgetExceededError` on exhaustion
    (callers wanting degradation instead of an error should use
    :func:`repro.resilience.fuse_resilient`).

    Successful results are memoized by canonical structure and requested
    strategy: a repeat (or isomorphic relabelling) of a previous query
    skips the solvers and re-verifies a rehydrated retiming.  Queries
    under a limiting budget or an active fault injector bypass the cache
    (see :func:`repro.perf.memo.memoization_applicable`); set
    ``REPRO_FUSE_MEMO=0`` to disable memoization entirely.
    """
    if isinstance(strategy, str):
        strategy = Strategy(strategy)
    if budget is not None:
        budget.start()
        budget.check_graph(g.num_nodes, g.num_edges, "fuse entry")

    reg = obs.default_registry()
    reg.counter("fusion.fuse.calls").inc()
    with obs.trace_span(
        "fusion.fuse",
        strategy=strategy.value,
        nodes=g.num_nodes,
        edges=g.num_edges,
    ) as sp:
        # one predicate gates both tiers: if memoization is inapplicable
        # (limiting budget, fault injector, REPRO_FUSE_MEMO=0) neither the
        # in-memory cache nor the disk store is read *or* written
        memo_ok = memoization_applicable(budget)
        store = active_store() if memo_ok else None
        if memo_ok:
            key = (strategy.value, canonical_mldg_key(g))
            cached = fusion_cache().get(key)
            if cached is not None:
                reg.counter("fusion.cache.hits").inc()
                sp.set(cache="hit")
                result = _rehydrate(g, cached)
                reg.counter(f"fusion.strategy.{result.strategy.value}").inc()
                sp.set(strategy_used=result.strategy.value)
                return result
            reg.counter("fusion.cache.misses").inc()
            sp.set(cache="miss")
            if store is not None:
                skey = f"fuse:{strategy.value}:{structural_hash(g)}"
                fingerprint = current_fingerprint()
                result = _fuse_from_store(g, store, skey, fingerprint)
                if result is not None:
                    fusion_cache().put(key, _dehydrate(result))  # promote to L1
                    sp.set(cache="hit-l2")
                    reg.counter(f"fusion.strategy.{result.strategy.value}").inc()
                    sp.set(strategy_used=result.strategy.value)
                    return result
        else:
            reg.counter("fusion.cache.bypassed").inc()
            reg.counter("store.bypassed").inc()
            sp.set(cache="bypassed")

        result = _fuse_uncached(g, strategy, budget)
        if memo_ok:
            payload = _dehydrate(result)
            fusion_cache().put(key, payload)
            if store is not None:
                store.put(skey, fingerprint, payload)
        reg.counter(f"fusion.strategy.{result.strategy.value}").inc()
        sp.set(strategy_used=result.strategy.value)
        return result


def _fuse_from_store(
    g: MLDG, store: "CompileStore", skey: str, fingerprint: str
) -> Optional[FusionResult]:
    """Try the L2 row for ``(skey, fingerprint)``; ``None`` means cold.

    A row that decodes but fails shape checks or the full re-verification
    gate is *demoted*: deleted from the store, counted under
    ``store.verify_fail``, and reported as a miss -- never raised.
    """
    raw = store.get(skey, fingerprint)
    if raw is None:
        return None
    payload = _payload_from_store(raw, g)
    if payload is None:
        store.demote(skey, fingerprint)
        return None
    try:
        # _rehydrate re-runs verify_retiming (and re-derives parallelism
        # and diagnostics) -- the store removes solver work, not checking
        return _rehydrate(g, payload)
    except FusionError:
        store.demote(skey, fingerprint)
        return None


def _make_result(
    g: MLDG,
    r: Retiming,
    strategy_name: str,
    *,
    schedule: IVec,
    hyperplane: Optional[IVec],
    notes: Optional[List[str]] = None,
) -> FusionResult:
    """The ``make_result`` callback handed to the strategy passes: binds
    the string strategy name back to the enum and verifies via :func:`_result`."""
    return _result(
        g, r, Strategy(strategy_name),
        schedule=schedule, hyperplane=hyperplane, notes=notes,
    )


def _fuse_uncached(
    g: MLDG, strategy: Strategy, budget: Optional[Budget]
) -> FusionResult:
    """The strategy dispatch behind :func:`fuse` (no memoization).

    Legality is checked here once; the algorithms themselves dispatch
    through the registered strategy passes (:mod:`repro.core.strategies`),
    each of which returns through :func:`_make_result` so the verification
    gate still guards every exit.
    """
    report = check_legal(g)
    if not report.legal:
        # structured diagnostics ride along so callers see codes and spans
        from repro.lint.engine import diagnostics_from_legality

        raise IllegalMLDGError(
            report.violations, diagnostics=diagnostics_from_legality(report)
        )

    # Function-local import: repro.core.strategies imports the algorithm
    # modules, which sit beside this driver in the package graph.
    from repro.core.strategies import run_strategy

    result = run_strategy(g, strategy.value, _make_result, budget=budget)
    assert isinstance(result, FusionResult)
    return result
