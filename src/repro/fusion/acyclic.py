"""Algorithm 3: legal fusion with full parallelism for acyclic 2LDGs.

Theorem 4.1: any legal *acyclic* MLDG admits a retiming after which the
fused innermost loop is DOALL.  The constraint system pushes every edge's
retimed weight to a strictly positive first coordinate:

.. math::  r(v_j)[0] - r(v_i)[0] \\le \\delta_L(e)[0] - 1

The paper's Figure 9 draws these constraints as vector weights with an
infinite second component, e.g. ``(-1, inf)`` -- the second coordinate is
genuinely unconstrained, because once every dependence vector is carried by
the outermost loop (first coordinate >= 1), no ``(0, k)`` dependence can
remain and Property 4.1 applies regardless of second coordinates.  Algorithm
3 accordingly zeroes the second component of the solution.

We solve the system exactly in that form (ExtVec weights with ``+inf``),
which on a DAG is trivially feasible: the constraint graph has no cycles at
all (Theorem 2.3).
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.constraints import VectorConstraintSystem
from repro.constraints.constraint_graph import ConstraintGraph
from repro.fusion.errors import IllegalMLDGError, NotAcyclicError
from repro.graph.analysis import is_acyclic
from repro.graph.legality import check_legal
from repro.graph.mldg import MLDG
from repro.resilience.budget import Budget
from repro.retiming import Retiming
from repro.vectors import ExtVec, IVec, POS_INF

__all__ = ["acyclic_parallel_retiming", "acyclic_constraint_graph"]


def _acyclic_system(g: MLDG) -> VectorConstraintSystem:
    system = VectorConstraintSystem(g.nodes, dim=g.dim)
    for e in g.edges():
        delta = e.delta
        # first coordinate tightened by 1; the rest unconstrained (Figure 9)
        bound = ExtVec([delta[0] - 1] + [POS_INF] * (g.dim - 1))
        system.add_leq(e.src, e.dst, bound)
    return system


def acyclic_constraint_graph(g: MLDG) -> ConstraintGraph:
    """The Figure-9-shaped constraint graph, for inspection."""
    return _acyclic_system(g).constraint_graph()


def acyclic_parallel_retiming(
    g: MLDG, *, check: bool = True, budget: Optional[Budget] = None
) -> Retiming:
    """Algorithm 3: retiming giving a DOALL fused innermost loop (DAGs only).

    Raises :class:`~repro.fusion.errors.NotAcyclicError` on cyclic inputs and
    :class:`~repro.fusion.errors.IllegalMLDGError` on structurally illegal
    ones (when ``check`` is true).

    After this retiming every dependence vector has first coordinate >= 1,
    so the fused loop runs under the strict row schedule ``(1, 0)``.
    """
    if check:
        report = check_legal(g)
        if not report.legal:
            from repro.lint.engine import diagnostics_from_legality

            raise IllegalMLDGError(
                report.violations, diagnostics=diagnostics_from_legality(report)
            )
    if not is_acyclic(g):
        cycle = next(iter(nx.simple_cycles(g.structure_digraph())), None)
        raise NotAcyclicError(list(cycle) if cycle else None)

    solution = _acyclic_system(g).solve(budget=budget)
    # Algorithm 3's final step: zero every coordinate after the first (the
    # solver already resolves the unconstrained infinite coordinates to 0).
    fixed = {
        node: IVec([vec[0]] + [0] * (g.dim - 1)) for node, vec in solution.items()
    }
    return Retiming(fixed, dim=g.dim)
