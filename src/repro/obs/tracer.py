"""Nested, thread-safe tracing spans.

A :class:`Span` measures one named region of work: wall-clock time
(``time.perf_counter``), CPU time (``time.thread_time`` where available),
free-form attributes, and a link to its parent span.  A :class:`Tracer`
collects spans; nesting is tracked per thread, so spans opened on a worker
thread attach to whatever parent the caller passed explicitly (worker
threads have no ambient stack of their own).

The **default tracer is a no-op** (:data:`NOOP_TRACER`): every
instrumented path in the library calls :func:`trace_span`, which costs one
attribute read and one reusable context manager when tracing is off --
results are bit-identical either way, because spans only *observe*.
Activate collection with :func:`tracing`::

    with tracing() as tracer:
        fuse(g)
    print(render_trace(tracer, "text"))

Span trees are deterministic by construction for a fixed workload: span
names, nesting and counts depend only on the work performed, never on
thread interleaving (span *ordering* in the flat list may vary, which is
why comparisons go through :func:`tree_shape`, a canonical sorted form).
Spans whose *multiplicity* legitimately varies with the worker count
(per-chunk / per-tile execution detail) are flagged ``detail=True`` and
excluded from the default shape.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, ContextManager, Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Span",
    "NoopSpan",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "SpanLike",
    "TracerLike",
    "current_tracer",
    "overriding_tracer",
    "set_tracer",
    "tracing",
    "trace_span",
    "tree_shape",
]

#: Canonical span-tree shape: ``(name, sorted child shapes)``, recursively.
Shape = Tuple[str, Tuple["Shape", ...]]


def _thread_cpu() -> float:
    """Per-thread CPU seconds (falls back to process CPU where unsupported)."""
    try:
        return time.thread_time()
    except (AttributeError, OSError):  # pragma: no cover - non-POSIX fallback
        return time.process_time()


@dataclass
class Span:
    """One timed, attributed region of work.

    ``detail`` marks execution-detail spans (per-chunk, per-tile) whose
    count legitimately depends on the worker configuration; they are
    excluded from the deterministic tree skeleton (:func:`tree_shape`).
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    start_wall: float
    start_cpu: float
    thread_id: int
    end_wall: Optional[float] = None
    end_cpu: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    detail: bool = False

    @property
    def wall_s(self) -> float:
        """Wall-clock duration in seconds (0.0 while the span is open)."""
        return (self.end_wall - self.start_wall) if self.end_wall is not None else 0.0

    @property
    def cpu_s(self) -> float:
        """CPU duration in seconds (0.0 while the span is open)."""
        return (self.end_cpu - self.start_cpu) if self.end_cpu is not None else 0.0

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attributes.update(attributes)
        return self


class NoopSpan:
    """The do-nothing span every no-op ``trace_span`` yields (a singleton)."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "NoopSpan":
        return self


NOOP_SPAN = NoopSpan()

SpanLike = Union[Span, NoopSpan]


class _NoopContext:
    """A reusable context manager yielding :data:`NOOP_SPAN` (zero allocation)."""

    __slots__ = ()

    def __enter__(self) -> NoopSpan:
        return NOOP_SPAN

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


_NOOP_CM = _NoopContext()


class Tracer:
    """Collects nested spans, thread-safely.

    Per-thread nesting: each thread keeps its own stack of open spans, and
    a span opened with no explicit ``parent`` attaches to the top of the
    opening thread's stack.  Work fanned out to pool workers passes the
    submitting span explicitly (``parent=``) so cross-thread children land
    in the right subtree.
    """

    active = True

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or os.urandom(8).hex()
        self.epoch_wall = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._next_id = 1
        self._local = threading.local()

    # -- span lifecycle --------------------------------------------- #

    def _stack(self) -> List[Span]:
        stack: Optional[List[Span]] = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def _span_cm(
        self, name: str, parent: Optional[SpanLike], detail: bool, attributes: Dict[str, Any]
    ) -> Iterator[Span]:
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        parent_id = parent.span_id if isinstance(parent, Span) else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(
                name=name,
                span_id=span_id,
                parent_id=parent_id,
                start_wall=time.perf_counter(),
                start_cpu=_thread_cpu(),
                thread_id=threading.get_ident(),
                attributes=attributes,
                detail=detail,
            )
            self._spans.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            span.end_wall = time.perf_counter()
            span.end_cpu = _thread_cpu()

    def span(
        self,
        name: str,
        *,
        parent: Optional[SpanLike] = None,
        detail: bool = False,
        **attributes: Any,
    ) -> ContextManager[SpanLike]:
        """Open a span; use as ``with tracer.span("fuse") as sp: ...``."""
        return self._span_cm(name, parent, detail, dict(attributes))

    # -- introspection ---------------------------------------------- #

    def spans(self) -> List[Span]:
        """A snapshot of every span recorded so far (start order)."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class NoopTracer:
    """The overhead-free default: records nothing, yields :data:`NOOP_SPAN`."""

    active = False
    trace_id: Optional[str] = None
    epoch_wall = 0.0

    def span(
        self,
        name: str,
        *,
        parent: Optional[SpanLike] = None,
        detail: bool = False,
        **attributes: Any,
    ) -> ContextManager[SpanLike]:
        return _NOOP_CM

    def spans(self) -> List[Span]:
        return []

    def __len__(self) -> int:
        return 0


NOOP_TRACER = NoopTracer()

TracerLike = Union[Tracer, NoopTracer]

_active_tracer: TracerLike = NOOP_TRACER
_active_lock = threading.Lock()

#: Context-local override consulted before the process-wide tracer, so a
#: :class:`repro.core.Session` (or a batch worker compiling one program)
#: can scope its tracer without touching other threads' tracing.
_tracer_override: "ContextVar[Optional[TracerLike]]" = ContextVar(
    "repro_tracer_override", default=None
)


def current_tracer() -> TracerLike:
    """The active tracer: the context-local override when one is set
    (session-scoped tracing), else the process-wide tracer
    (:data:`NOOP_TRACER` by default)."""
    override = _tracer_override.get()
    return override if override is not None else _active_tracer


@contextmanager
def overriding_tracer(tracer: TracerLike) -> Iterator[TracerLike]:
    """Route this context's spans to ``tracer`` (other threads unaffected).

    Unlike :func:`tracing`/:func:`set_tracer`, which swap the process-wide
    tracer, the override is a :class:`contextvars.ContextVar`: concurrent
    sessions in different threads each see only their own tracer, and a
    fresh worker thread starts with no override.
    """
    token = _tracer_override.set(tracer)
    try:
        yield tracer
    finally:
        _tracer_override.reset(token)


def set_tracer(tracer: TracerLike) -> TracerLike:
    """Install ``tracer`` as the active tracer; returns the previous one."""
    global _active_tracer
    with _active_lock:
        previous = _active_tracer
        _active_tracer = tracer
    return previous


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Activate a (fresh, unless given) :class:`Tracer` for the block."""
    t = tracer if tracer is not None else Tracer()
    previous = set_tracer(t)
    try:
        yield t
    finally:
        set_tracer(previous)


def trace_span(
    name: str,
    *,
    parent: Optional[SpanLike] = None,
    detail: bool = False,
    **attributes: Any,
) -> ContextManager[SpanLike]:
    """Open a span on whatever tracer is active (no-op by default).

    This is the library-internal instrumentation entry point: when no
    tracer is active it returns a shared no-op context manager, so the
    instrumented hot paths stay overhead-free and bit-identical.
    """
    return current_tracer().span(name, parent=parent, detail=detail, **attributes)


def tree_shape(
    spans: Union[TracerLike, Sequence[Span]], *, include_detail: bool = False
) -> Tuple[Shape, ...]:
    """The canonical shape of a span forest: names, nesting and counts.

    Timestamps, attributes and sibling *ordering* are excluded (children
    are sorted), so two runs of the same workload compare equal regardless
    of thread interleaving.  ``detail`` spans -- whose multiplicity depends
    on the worker configuration -- are excluded unless ``include_detail``;
    with them included the shape additionally pins the exact chunk/tile
    fan-out of one configuration.
    """
    span_list = spans.spans() if isinstance(spans, (Tracer, NoopTracer)) else list(spans)
    kept = [s for s in span_list if include_detail or not s.detail]
    kept_ids = {s.span_id for s in kept}
    children: Dict[Optional[int], List[Span]] = {}
    for s in kept:
        parent = s.parent_id if s.parent_id in kept_ids else None
        children.setdefault(parent, []).append(s)

    def build(span: Span) -> Shape:
        subs = tuple(sorted(build(c) for c in children.get(span.span_id, [])))
        return (span.name, subs)

    return tuple(sorted(build(r) for r in children.get(None, [])))
