"""Trace exporters: text tree, JSON (``repro-trace/1``), Chrome trace events.

Three renderings of one :class:`~repro.obs.tracer.Tracer`:

* ``text`` -- an indented tree with wall/CPU durations and attributes, for
  terminals;
* ``json`` -- schema ``repro-trace/1``: the flat span table with parent
  links, microsecond offsets from the trace epoch, and the trace id;
* ``chrome`` -- the Chrome trace-event format (``{"traceEvents": [...]}``
  of complete ``"ph": "X"`` events).  Load the file at ``chrome://tracing``
  or https://ui.perfetto.dev to get a zoomable per-thread flame chart.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.tracer import Span, Tracer

__all__ = [
    "TRACE_SCHEMA",
    "TRACE_FORMATS",
    "trace_to_dict",
    "render_trace_text",
    "render_trace_json",
    "render_trace_chrome",
    "render_trace",
    "write_trace",
]

TRACE_SCHEMA = "repro-trace/1"

#: Formats accepted by :func:`render_trace` (and the CLI ``--trace-format``).
TRACE_FORMATS = ("text", "json", "chrome")


def _span_to_dict(span: Span, epoch: float) -> Dict[str, Any]:
    return {
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "startUs": round((span.start_wall - epoch) * 1e6, 1),
        "durUs": round(span.wall_s * 1e6, 1),
        "cpuUs": round(span.cpu_s * 1e6, 1),
        "thread": span.thread_id,
        "detail": span.detail,
        "attributes": dict(span.attributes),
    }


def trace_to_dict(tracer: Tracer) -> Dict[str, Any]:
    """The ``repro-trace/1`` document for ``tracer``'s spans."""
    return {
        "schema": TRACE_SCHEMA,
        "traceId": tracer.trace_id,
        "spans": [_span_to_dict(s, tracer.epoch_wall) for s in tracer.spans()],
    }


def render_trace_json(tracer: Tracer) -> str:
    return json.dumps(trace_to_dict(tracer), indent=2)


def render_trace_chrome(tracer: Tracer) -> str:
    """Chrome trace-event JSON (complete events, microsecond timestamps)."""
    events: List[Dict[str, Any]] = []
    for span in tracer.spans():
        events.append(
            {
                "name": span.name,
                "cat": "detail" if span.detail else "repro",
                "ph": "X",
                "ts": round((span.start_wall - tracer.epoch_wall) * 1e6, 1),
                "dur": round(span.wall_s * 1e6, 1),
                "pid": 1,
                "tid": span.thread_id,
                "args": dict(span.attributes),
            }
        )
    return json.dumps(
        {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"traceId": tracer.trace_id, "schema": TRACE_SCHEMA},
        },
        indent=2,
    )


def render_trace_text(tracer: Tracer) -> str:
    """An indented span tree with durations and attributes."""
    spans = tracer.spans()
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    lines = [f"trace {tracer.trace_id} ({len(spans)} spans)"]

    def walk(span: Span, depth: int) -> None:
        attrs = ", ".join(f"{k}={v}" for k, v in span.attributes.items())
        line = (
            f"{'  ' * depth}{span.name}  "
            f"[wall {span.wall_s * 1e3:.3f} ms, cpu {span.cpu_s * 1e3:.3f} ms]"
        )
        if attrs:
            line += f"  {{{attrs}}}"
        lines.append(line)
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)


def render_trace(tracer: Tracer, fmt: str = "json") -> str:
    """Render ``tracer`` in one of :data:`TRACE_FORMATS`."""
    if fmt == "text":
        return render_trace_text(tracer)
    if fmt == "json":
        return render_trace_json(tracer)
    if fmt == "chrome":
        return render_trace_chrome(tracer)
    raise ValueError(f"unknown trace format {fmt!r}; choose from {TRACE_FORMATS}")


def write_trace(tracer: Tracer, path: str, fmt: str = "json") -> None:
    """Render and write the trace to ``path``."""
    text = render_trace(tracer, fmt)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.write("\n")
