"""Bridges between the observability layer and the rest of the library.

:mod:`repro.obs` proper imports nothing from the rest of :mod:`repro`, so
every subsystem can instrument itself without import cycles.  The glue
that *does* need to look across subsystems -- snapshotting the memo/kernel
caches into the registry, and assembling the ``repro-fuse stats``
document -- lives here, behind function-local imports.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = [
    "STATS_SCHEMA",
    "cache_snapshot",
    "snapshot_caches",
    "stats_document",
    "render_stats_text",
]

STATS_SCHEMA = "repro-stats/1"


def cache_snapshot() -> Dict[str, Dict[str, Any]]:
    """Current hit/miss/eviction statistics of every cache tier in scope.

    The three L1 memo caches are always present; the ``store`` block (the
    L2 disk tier, :mod:`repro.store`) appears when one is configured for
    this context -- its dict carries the same hits/misses/evictions/
    currsize core plus file-level fields (``sizeBytes``, ``storedHits``).
    """
    from repro.codegen.pycompile import kernel_cache_info
    from repro.perf.memo import fusion_cache, retiming_cache
    from repro.store import active_store

    snap = {
        "fusion": fusion_cache().cache_info().to_dict(),
        "retiming": retiming_cache().cache_info().to_dict(),
        "kernels": kernel_cache_info().to_dict(),
    }
    store = active_store()
    if store is not None:
        snap["store"] = store.stats().to_dict()
    return snap


def snapshot_caches(registry: Optional[MetricsRegistry] = None) -> None:
    """Mirror the cache statistics into gauges (``cache.<name>.<stat>``).

    The live hit/miss *counters* are incremented at the caches' call sites
    as they happen; this snapshot adds the caches' own cumulative view
    (including activity from before the registry was last reset).
    """
    reg = registry if registry is not None else default_registry()
    for name, info in cache_snapshot().items():
        for stat in ("hits", "misses", "evictions", "currsize"):
            reg.gauge(f"cache.{name}.{stat}").set(info[stat])


def stats_document(registry: Optional[MetricsRegistry] = None) -> Dict[str, Any]:
    """The ``repro-stats/1`` document ``repro-fuse stats`` prints."""
    from repro.plan import plan_snapshot

    reg = registry if registry is not None else default_registry()
    return {
        "schema": STATS_SCHEMA,
        "metrics": reg.to_dict(),
        "caches": cache_snapshot(),
        "plan": plan_snapshot(),
    }


def render_stats_text(doc: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`stats_document`."""
    metrics = doc.get("metrics", {})
    rows = []
    for name, value in metrics.get("counters", {}).items():
        rows.append((name, str(value)))
    for name, value in metrics.get("gauges", {}).items():
        rows.append((name, str(value)))
    for name, h in metrics.get("histograms", {}).items():
        rows.append(
            (name, f"count={h['count']} sum={h['sum']:.6g} mean={h['mean']:.6g}")
        )
    lines = []
    if rows:
        width = max(len(name) for name, _ in rows)
        lines.extend(f"{name.ljust(width)}  {value}" for name, value in sorted(rows))
    else:
        lines.append("(no metrics recorded)")
    caches = doc.get("caches", {})
    if caches:
        lines.append("")
        for name, info in caches.items():
            lines.append(
                f"cache {name}: {info['hits']} hits / {info['misses']} misses "
                f"/ {info['evictions']} evictions (size {info['currsize']})"
            )
    recent = (doc.get("plan") or {}).get("recent") or []
    if recent:
        lines.append("")
        for p in recent:
            lines.append(
                f"plan {p['backend']}/j{p['jobs']} [{p['source']}] "
                f"{p.get('bucket') or '?'}: {p['rationale']}"
            )
    return "\n".join(lines)
