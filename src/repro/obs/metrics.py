"""Counters, gauges and histograms behind a process-wide default registry.

Unlike tracing (off by default), metrics are **always on**: instrumented
code increments counters unconditionally, because a dict lookup plus an
integer add is cheap at the granularity instrumented here (per solver
call, per cache probe, per execution run -- never per iteration).  The
default registry is process-wide, injectable and resettable, so tests
isolate themselves with :func:`use_registry`::

    with use_registry() as reg:
        fuse(g)
        assert reg.counter("solver.bellman_ford.calls").value > 0

Metric names are dotted lowercase paths (``solver.bellman_ford.rounds``,
``fusion.cache.hits``); the full taxonomy lives in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "overriding_registry",
    "set_default_registry",
    "use_registry",
    "counter",
    "gauge",
    "histogram",
]

Number = Union[int, float]


class Counter:
    """A monotonically increasing value (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge for ups and downs")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value that can move both ways (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: Number = 0

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: Number) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value


class Histogram:
    """A streaming summary: count, sum, min, max (thread-safe).

    Deliberately bucket-free -- the consumers here want totals and
    extremes, and a fixed-memory summary keeps ``observe`` O(1) with no
    tuning knob to misconfigure.
    """

    __slots__ = ("_count", "_lock", "_max", "_min", "_sum")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: Number) -> None:
        v = float(value)
        with self._lock:
            self._count += 1
            self._sum += v
            self._min = v if self._min is None else min(self._min, v)
            self._max = v if self._max is None else max(self._max, v)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            mean = (self._sum / self._count) if self._count else 0.0
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": mean,
            }


class MetricsRegistry:
    """A namespace of metrics, created on first use (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter()
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge()
            return g

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram()
            return h

    def reset(self) -> None:
        """Drop every metric (names and values)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    @property
    def empty(self) -> bool:
        with self._lock:
            return not (self._counters or self._gauges or self._histograms)

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters) + len(self._gauges) + len(self._histograms)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dump: ``{"counters": ..., "gauges": ..., "histograms": ...}``."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: counters[k].value for k in sorted(counters)},
            "gauges": {k: gauges[k].value for k in sorted(gauges)},
            "histograms": {k: histograms[k].to_dict() for k in sorted(histograms)},
        }

    def render_text(self) -> str:
        """An aligned, sorted, human-readable dump."""
        doc = self.to_dict()
        rows = [(name, str(value)) for name, value in doc["counters"].items()]
        rows += [(name, str(value)) for name, value in doc["gauges"].items()]
        rows += [
            (name, f"count={h['count']} sum={h['sum']:.6g} "
                   f"min={h['min']} max={h['max']} mean={h['mean']:.6g}")
            for name, h in doc["histograms"].items()
        ]
        if not rows:
            return "(no metrics recorded)"
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name.ljust(width)}  {value}" for name, value in sorted(rows))


_default = MetricsRegistry()
_registry_lock = threading.Lock()

#: Context-local override consulted before the process-wide registry, so a
#: :class:`repro.core.Session` can own its metrics without affecting other
#: threads (unlike :func:`use_registry`, which swaps the global).
_registry_override: "ContextVar[Optional[MetricsRegistry]]" = ContextVar(
    "repro_registry_override", default=None
)


def default_registry() -> MetricsRegistry:
    """The registry library instrumentation writes to: the context-local
    override when one is set (session-scoped metrics), else the
    process-wide default."""
    override = _registry_override.get()
    return override if override is not None else _default


@contextmanager
def overriding_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Route this context's metrics to ``registry`` (other threads unaffected).

    The override is a :class:`contextvars.ContextVar`: concurrent sessions
    in different threads each see only their own registry, and fresh worker
    threads start with no override.
    """
    token = _registry_override.set(registry)
    try:
        yield registry
    finally:
        _registry_override.reset(token)


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one."""
    global _default
    with _registry_lock:
        previous = _default
        _default = registry
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Route default-registry writes to a (fresh, unless given) registry."""
    reg = registry if registry is not None else MetricsRegistry()
    previous = set_default_registry(reg)
    try:
        yield reg
    finally:
        set_default_registry(previous)


def counter(name: str) -> Counter:
    """Shorthand for ``default_registry().counter(name)``."""
    return _default.counter(name)


def gauge(name: str) -> Gauge:
    """Shorthand for ``default_registry().gauge(name)``."""
    return _default.gauge(name)


def histogram(name: str) -> Histogram:
    """Shorthand for ``default_registry().histogram(name)``."""
    return _default.histogram(name)
