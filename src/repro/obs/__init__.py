"""repro.obs -- tracing, metrics and profiling across the fusion pipeline.

A zero-dependency observability layer (docs/OBSERVABILITY.md):

* **Tracing** (:mod:`repro.obs.tracer`): nested, thread-safe spans with
  wall and CPU time, attributes and parent links.  Off by default -- the
  instrumented paths go through a shared no-op context manager and stay
  overhead-free and bit-identical.  Activate with :func:`tracing`.
* **Metrics** (:mod:`repro.obs.metrics`): counters, gauges and histograms
  in a process-wide default registry, always on, injectable and
  resettable (:func:`use_registry`) for tests.
* **Exporters** (:mod:`repro.obs.export`): text tree, JSON
  (schema ``repro-trace/1``) and Chrome ``chrome://tracing`` events.
* **Bridges** (:mod:`repro.obs.bridge`): cache-statistics snapshots and
  the ``repro-fuse stats`` document (schema ``repro-stats/1``).

The instrumented layers: ``fuse()``/``fuse_program()`` strategy selection,
every resilience ladder rung (``resilience.rung.*`` spans + ``RS###``
diagnostic counters), both Bellman-Ford solvers (relaxation rounds and
worklist pops as counters), the fusion/retiming/kernel memo caches
(hit/miss counters at the call sites), and all three execution backends
(per-run spans; per-chunk and per-tile ``detail`` spans under the
parallel backend).
"""

from repro.obs.bridge import (
    STATS_SCHEMA,
    cache_snapshot,
    render_stats_text,
    snapshot_caches,
    stats_document,
)
from repro.obs.export import (
    TRACE_FORMATS,
    TRACE_SCHEMA,
    render_trace,
    render_trace_chrome,
    render_trace_json,
    render_trace_text,
    trace_to_dict,
    write_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    default_registry,
    gauge,
    histogram,
    overriding_registry,
    set_default_registry,
    use_registry,
)
from repro.obs.tracer import (
    NOOP_TRACER,
    NoopSpan,
    NoopTracer,
    Span,
    Tracer,
    current_tracer,
    overriding_tracer,
    set_tracer,
    trace_span,
    tracing,
    tree_shape,
)

__all__ = [
    # tracer
    "Span",
    "NoopSpan",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "current_tracer",
    "overriding_tracer",
    "set_tracer",
    "tracing",
    "trace_span",
    "tree_shape",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "overriding_registry",
    "set_default_registry",
    "use_registry",
    "counter",
    "gauge",
    "histogram",
    # export
    "TRACE_SCHEMA",
    "TRACE_FORMATS",
    "trace_to_dict",
    "render_trace",
    "render_trace_text",
    "render_trace_json",
    "render_trace_chrome",
    "write_trace",
    # bridge
    "STATS_SCHEMA",
    "cache_snapshot",
    "snapshot_caches",
    "stats_document",
    "render_stats_text",
]
