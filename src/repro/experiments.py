"""Programmatic regeneration of the paper's experiment tables.

The benchmark harness (``pytest benchmarks/ --benchmark-only``) times the
algorithms and archives these same tables; this module exposes the table
*builders* as a plain API so users (and ``repro-fuse report``) can
regenerate any experiment without pytest.  Every function returns
``(headers, rows)`` ready for :func:`format_table`.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.baselines import (
    direct_fusion,
    loop_distribution,
    shift_and_peel,
    transform_search,
    typed_fusion,
)
from repro.fusion import Parallelism, fuse
from repro.gallery import all_section5_examples
from repro.gallery.extended import extended_kernels
from repro.machine import profile_fusion, unfused_profile
from repro.machine.peel_model import shift_and_peel_time

__all__ = [
    "format_table",
    "section5_table",
    "sync_sweep_table",
    "speedup_table",
    "baseline_table",
    "extended_table",
    "peel_crossover_table",
    "full_report",
]

Table = Tuple[Sequence[str], List[Sequence]]


def format_table(title: str, table: Table) -> str:
    """Fixed-width text rendering (same layout as the benchmark reports)."""
    headers, rows = table
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [f"== {title} ==", " | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    out += [" | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in str_rows]
    return "\n".join(out)


def _parallelism_text(res) -> str:
    if res.parallelism is Parallelism.DOALL:
        return "full (DOALL rows)"
    if res.parallelism is Parallelism.HYPERPLANE:
        return f"full (wavefront s={res.schedule})"
    return "none"


def section5_table(n: int = 100, m: int = 63) -> Table:
    """The Section-5 synchronization-reduction table (experiment E5)."""
    headers = [
        "example", "|V|", "|E|", "algorithm",
        "syncs before", "syncs after", "parallelism",
    ]
    rows: List[Sequence] = []
    for ex in all_section5_examples():
        g = ex.mldg()
        res = fuse(g)
        before = unfused_profile(g, n, m)
        after = profile_fusion(res, n, m)
        rows.append(
            (
                ex.key + (" *" if ex.reconstructed else ""),
                g.num_nodes,
                g.num_edges,
                res.strategy.value,
                before.sync_count,
                after.sync_count,
                _parallelism_text(res),
            )
        )
    return headers, rows


def sync_sweep_table(
    ns: Iterable[int] = (10, 50, 100, 500, 1000), m: int = 63
) -> Table:
    """Section 4.2's 7n -> n-2 accounting for Figure 8 (experiment E3)."""
    from repro.gallery import figure8_mldg
    from repro.machine import fused_doall_profile

    g = figure8_mldg()
    res = fuse(g)
    headers = ["n", "paper 7n", "measured unfused", "paper n-2", "measured fused"]
    rows: List[Sequence] = []
    for n in ns:
        before = unfused_profile(g, n, m).sync_count
        core = fused_doall_profile(g, res.retiming, n, m, include_boundary=False)
        rows.append((n, 7 * n, before, n - 2, core.sync_count))
    return headers, rows


def speedup_table(
    n: int = 100, m: int = 63, sync_cost: int = 25,
    processors: Iterable[int] = (1, 2, 4, 8, 16),
) -> Table:
    """Simulated makespans before/after fusion (experiment E7)."""
    headers = ["example", "P", "T unfused", "T fused", "improvement"]
    rows: List[Sequence] = []
    for ex in all_section5_examples():
        g = ex.mldg()
        res = fuse(g)
        before = unfused_profile(g, n, m)
        after = profile_fusion(res, n, m)
        for p in processors:
            tb = before.parallel_time(p, sync_cost=sync_cost)
            ta = after.parallel_time(p, sync_cost=sync_cost)
            rows.append((ex.key, p, tb, ta, f"{tb / ta:.2f}x"))
    return headers, rows


def baseline_table() -> Table:
    """Technique comparison on the Section-5 set (experiment E8)."""
    headers = ["example", "technique", "fused into", "innermost parallelism"]
    rows: List[Sequence] = []
    for ex in all_section5_examples():
        g = ex.mldg()
        d = direct_fusion(g)
        rows.append(
            (ex.key, "naive fusion",
             "1 loop" if d.legal else "fails",
             ("DOALL" if d.doall else "serial") if d.legal else "-")
        )
        try:
            t = typed_fusion(g)
            rows.append(
                (ex.key, "Kennedy-McKinley", f"{t.syncs_per_outer_iteration} loops",
                 "all DOALL" if t.all_parallel else "some serial")
            )
        except ValueError:
            rows.append((ex.key, "Kennedy-McKinley", "fails", "-"))
        sp = shift_and_peel(g)
        rows.append(
            (ex.key, "shift-and-peel",
             "1 loop" if sp.legal else "fails",
             f"blocked, peel={sp.peel_count}" if sp.legal else "-")
        )
        ts = transform_search(g)
        rows.append(
            (ex.key, "naive + unimodular",
             "1 loop" if ts.fusable else "fails",
             ("DOALL via T" if ts.parallel else "no transform found")
             if ts.fusable else "-")
        )
        dist = loop_distribution(g)
        rows.append(
            (ex.key, "distribution", f"{dist.syncs_per_outer_iteration} loops",
             "all DOALL")
        )
        res = fuse(g)
        rows.append((ex.key, "this paper (retiming)", "1 loop", _parallelism_text(res)))
    return headers, rows


def extended_table(n: int = 100, m: int = 63) -> Table:
    """The extended six-kernel evaluation (experiment E11)."""
    headers = ["kernel", "domain", "|V|", "algorithm", "syncs before", "syncs after"]
    rows: List[Sequence] = []
    for kernel in extended_kernels():
        g = kernel.mldg()
        res = fuse(g)
        before = unfused_profile(g, n, m)
        after = profile_fusion(res, n, m)
        rows.append(
            (kernel.key, kernel.domain, g.num_nodes, res.strategy.value,
             before.sync_count, after.sync_count)
        )
    return headers, rows


def peel_crossover_table(
    n: int = 100, m: int = 63, processors: Iterable[int] = (1, 4, 16, 64)
) -> Table:
    """Shift-and-peel vs retiming makespans on Figure 8 (the §1 claim)."""
    from repro.gallery import figure8_mldg

    g = figure8_mldg()
    sp = shift_and_peel(g)
    res = fuse(g)
    retimed = profile_fusion(res, n, m)
    headers = ["P", "iters/proc", "T shift-and-peel", "T retiming", "slowdown"]
    rows: List[Sequence] = []
    for p in processors:
        t_sp = shift_and_peel_time(g, sp, n, m, p)
        t_rt = retimed.parallel_time(p)
        rows.append((p, (m + 1) // p, t_sp, t_rt, f"{t_sp / t_rt:.2f}x"))
    return headers, rows


def full_report(n: int = 100, m: int = 63) -> str:
    """Every table, formatted, in experiment order."""
    sections = [
        ("Section 5: synchronization reduction (E5)", section5_table(n, m)),
        ("Section 4.2: Figure-8 sweep (E3)", sync_sweep_table(m=m)),
        ("Simulated speedup (E7)", speedup_table(n, m)),
        ("Baseline comparison (E8)", baseline_table()),
        ("Extended evaluation (E11)", extended_table(n, m)),
        ("Shift-and-peel crossover (Section 1)", peel_crossover_table(n, m)),
    ]
    return "\n\n".join(format_table(title, table) for title, table in sections)
