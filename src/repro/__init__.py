"""repro -- polynomial-time nested loop fusion with full parallelism.

A production-quality reproduction of Sha, O'Neil & Passos,
*Efficient Polynomial-Time Nested Loop Fusion with Full Parallelism*
(ICPP 1996).  The library fuses a sequence of DOALL innermost loops nested
in one outermost loop -- even in the presence of fusion-preventing
dependencies -- and recovers full parallelism of the fused innermost loop
via multi-dimensional retiming.

Quick start::

    from repro import IVec, MLDG, fuse

    g = MLDG(dim=2)
    g.add_dependence("A", "B", IVec(0, -2))   # fusion-preventing
    g.add_dependence("B", "C", IVec(1, 1))
    result = fuse(g)                          # picks Algorithm 3/4/5
    print(result.summary())

Package map (see DESIGN.md for the full inventory):

====================  ====================================================
``repro.vectors``     lexicographic integer-vector algebra
``repro.graph``       the MLDG model, legality, serialization, generators
``repro.constraints`` difference-constraint systems and Bellman-Ford
``repro.retiming``    multi-dimensional retiming, schedules, hyperplanes
``repro.fusion``      Algorithms 2-5 and the unified ``fuse()`` driver
``repro.loopir``      loop-nest AST, DSL parser, printer, synthesis
``repro.depend``      dependence extraction: program -> MLDG
``repro.codegen``     retimed/fused code generation and execution
``repro.machine``     abstract parallel machine simulator (syncs, speedup)
``repro.baselines``   comparison fusion techniques from the literature
``repro.verify``      semantic-equivalence and DOALL runtime checking
``repro.gallery``     the paper's figures, Section-5 set, extended kernels
``repro.transforms``  unimodular interchange/reversal/skew, wavefront map
``repro.viz``         iteration-space and wavefront text renderings
``repro.pipeline``    one-call fuse_program / fuse_and_verify
``repro.core``        Session + PassManager pipeline, batch compilation
``repro.experiments`` programmatic regeneration of every evaluation table
====================  ====================================================
"""

from repro.vectors import ExtVec, IVec
from repro.graph import (
    MLDG,
    DependenceEdge,
    check_legal,
    is_fusion_legal,
    is_legal,
    mldg_from_json,
    mldg_from_table,
    mldg_to_dot,
    mldg_to_json,
)
from repro.retiming import Retiming
from repro.pipeline import PipelineResult, fuse_and_verify, fuse_program
from repro.fusion import (
    FusionError,
    FusionResult,
    Parallelism,
    Strategy,
    acyclic_parallel_retiming,
    cyclic_parallel_retiming,
    fuse,
    hyperplane_parallel_fusion,
    legal_fusion_retiming,
)

__version__ = "1.0.0"


def __getattr__(name: str):
    # Session pulls in repro.core lazily (PEP 562): repro.core imports the
    # pipeline stages, which import back into this package at module level.
    if name == "Session":
        from repro.core.session import Session

        return Session
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "IVec",
    "ExtVec",
    "MLDG",
    "DependenceEdge",
    "Retiming",
    "fuse",
    "fuse_program",
    "fuse_and_verify",
    "PipelineResult",
    "Session",
    "FusionResult",
    "FusionError",
    "Strategy",
    "Parallelism",
    "legal_fusion_retiming",
    "acyclic_parallel_retiming",
    "cyclic_parallel_retiming",
    "hyperplane_parallel_fusion",
    "check_legal",
    "is_legal",
    "is_fusion_legal",
    "mldg_from_table",
    "mldg_to_json",
    "mldg_from_json",
    "mldg_to_dot",
    "__version__",
]
