"""Invariant verification for retimings.

The paper's correctness arguments rest on three checkable facts; this module
makes each one a predicate so tests, the fusion driver and the CLI can verify
every produced retiming rather than trust the algorithm:

1. **cycle-weight invariance** (Section 2.3): ``delta_Lr(c) == delta_L(c)``
   for every cycle ``c`` -- the per-node shifts telescope around a cycle;
2. **fusion legality** (Theorem 3.1): every retimed edge has
   ``delta_Lr(e) >= (0, ..., 0)``;
3. **DOALL-ness after fusion** (Property 4.1): the fused innermost loop is
   DOALL iff no retimed dependence vector has the form ``(0, k)``, ``k != 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.graph.analysis import cycle_weight, enumerate_cycles
from repro.graph.mldg import MLDG
from repro.retiming.retiming import Retiming
from repro.vectors import lex_nonnegative

__all__ = [
    "cycle_weights_preserved",
    "edges_all_nonnegative",
    "is_doall_after_fusion",
    "RetimingVerification",
    "verify_retiming",
]


def cycle_weights_preserved(g: MLDG, r: Retiming, *, limit: int | None = 2_000) -> bool:
    """Check ``delta_Lr(c) == delta_L(c)`` over (up to ``limit``) simple cycles."""
    gr = r.apply(g)
    for cyc in enumerate_cycles(g, limit=limit):
        if cycle_weight(g, cyc) != cycle_weight(gr, cyc):
            return False
    return True


def edges_all_nonnegative(g: MLDG) -> bool:
    """Theorem 3.1's hypothesis on an (already retimed) graph."""
    return all(lex_nonnegative(e.delta) for e in g.edges())


def is_doall_after_fusion(g: MLDG) -> bool:
    """Property 4.1 on an (already retimed) graph.

    The fused innermost loop is DOALL iff no dependence vector ``d`` has
    ``d[0] == 0`` with some non-zero later coordinate -- equivalently, every
    vector either is outermost-loop-carried or is exactly zero.
    """
    for d in g.all_vectors():
        if d[0] == 0 and not d.is_zero():
            return False
    return True


@dataclass
class RetimingVerification:
    """Full verification outcome from :func:`verify_retiming`."""

    cycles_preserved: bool
    fusion_legal: bool
    doall: bool
    problems: List[str] = field(default_factory=list)

    @property
    def ok_for_legal_fusion(self) -> bool:
        return self.cycles_preserved and self.fusion_legal

    @property
    def ok_for_parallel_fusion(self) -> bool:
        return self.ok_for_legal_fusion and self.doall


def verify_retiming(g: MLDG, r: Retiming, *, cycle_limit: int | None = 2_000) -> RetimingVerification:
    """Run all three invariant checks and collect readable diagnostics."""
    gr = r.apply(g)
    problems: List[str] = []

    cycles_ok = cycle_weights_preserved(g, r, limit=cycle_limit)
    if not cycles_ok:
        problems.append("cycle weights changed under retiming")

    legal = True
    for e in gr.edges():
        if not lex_nonnegative(e.delta):
            legal = False
            problems.append(f"retimed edge {e.src}->{e.dst} has delta {e.delta} < 0")

    doall = True
    for e in gr.edges():
        for d in e.vectors:
            if d[0] == 0 and not d.is_zero():
                doall = False
                problems.append(
                    f"retimed vector {d} on {e.src}->{e.dst} serialises the "
                    "fused innermost loop"
                )

    return RetimingVerification(
        cycles_preserved=cycles_ok, fusion_legal=legal, doall=doall, problems=problems
    )
