"""Multi-dimensional retiming (Section 2.3) and schedule vectors.

A retiming ``r : V -> Z^n`` shifts each loop's iteration space; dependence
vectors transform as ``d -> d + r(u) - r(v)`` on edge ``u -> v`` while cycle
weights stay invariant.  This package provides:

* :class:`~repro.retiming.retiming.Retiming` -- the function object, with
  application to MLDGs and composition;
* :mod:`~repro.retiming.verify` -- invariant checks (cycle-weight
  preservation, Theorem 3.1 fusion legality, Property 4.1 DOALL-ness);
* :mod:`~repro.retiming.schedule` -- strict schedule vectors and the DOALL
  hyperplane construction of Lemma 4.3.
"""

from repro.retiming.retiming import Retiming
from repro.retiming.schedule import (
    ROW_SCHEDULE,
    doall_hyperplane,
    hyperplane_for_schedule,
    schedule_vector_for,
)
from repro.retiming.verify import (
    cycle_weights_preserved,
    edges_all_nonnegative,
    is_doall_after_fusion,
    verify_retiming,
)

__all__ = [
    "Retiming",
    "ROW_SCHEDULE",
    "schedule_vector_for",
    "hyperplane_for_schedule",
    "doall_hyperplane",
    "cycle_weights_preserved",
    "edges_all_nonnegative",
    "is_doall_after_fusion",
    "verify_retiming",
]
