"""The retiming function object.

Section 2.3: a two-dimensional retiming ``r`` of a 2LDG is a function from
``V`` to ``Z^2``; ``r(u)`` is the offset between loop ``u``'s original
iteration space and its retimed one.  In the generated code, node ``u``'s
statement instance executed at fused iteration ``(i, j)`` performs original
iteration ``(i, j) + r(u)`` (so Figure 3's ``r(C) = (-1, 0)`` produces
``c[i-1][j] = ...`` in the fused body).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.graph.mldg import MLDG
from repro.vectors import IVec

__all__ = ["Retiming"]


class Retiming:
    """An immutable retiming function ``r : V -> Z^n``.

    Missing nodes default to the zero vector, so partial maps are fine.

    >>> r = Retiming({"C": IVec(-1, 0)}, dim=2)
    >>> r["C"]
    IVec(-1, 0)
    >>> r["A"]
    IVec(0, 0)
    """

    def __init__(self, mapping: Mapping[str, IVec], *, dim: int) -> None:
        if dim < 1:
            raise ValueError("retiming dimension must be >= 1")
        self._dim = dim
        items: Dict[str, IVec] = {}
        for node, vec in mapping.items():
            if not isinstance(vec, IVec):
                vec = IVec(tuple(vec))
            if vec.dim != dim:
                raise ValueError(
                    f"retiming of {node!r} has dimension {vec.dim}, expected {dim}"
                )
            items[node] = vec
        self._map = items
        self._zero = IVec.zero(dim)

    # ------------------------------------------------------------------ #

    @classmethod
    def zero(cls, *, dim: int) -> "Retiming":
        """The identity retiming."""
        return cls({}, dim=dim)

    @classmethod
    def from_components(
        cls, first: Mapping[str, int], second: Mapping[str, int], *, dim: int = 2
    ) -> "Retiming":
        """Combine per-coordinate scalar solutions (Algorithm 4's phase three)."""
        if dim != 2:
            raise ValueError("from_components builds 2-D retimings")
        nodes = set(first) | set(second)
        return cls(
            {n: IVec(first.get(n, 0), second.get(n, 0)) for n in nodes}, dim=dim
        )

    # ------------------------------------------------------------------ #

    @property
    def dim(self) -> int:
        return self._dim

    def __getitem__(self, node: str) -> IVec:
        return self._map.get(node, self._zero)

    def get(self, node: str, default: IVec | None = None) -> IVec:
        return self._map.get(node, default if default is not None else self._zero)

    def items(self) -> Iterator[Tuple[str, IVec]]:
        return iter(sorted(self._map.items()))

    def nodes(self) -> Iterable[str]:
        return self._map.keys()

    def as_dict(self) -> Dict[str, IVec]:
        return dict(self._map)

    def is_identity(self) -> bool:
        return all(v.is_zero() for v in self._map.values())

    # ------------------------------------------------------------------ #

    def apply(self, g: MLDG) -> MLDG:
        """The retimed graph ``G_r`` (Section 2.3)."""
        if g.dim != self._dim:
            raise ValueError(f"graph dim {g.dim} != retiming dim {self._dim}")
        return g.retimed(self._map)

    def compose(self, other: "Retiming") -> "Retiming":
        """Pointwise sum: applying ``self`` then ``other`` equals applying
        the composition (dependence shifts are additive in ``r``)."""
        if other.dim != self._dim:
            raise ValueError("cannot compose retimings of different dimensions")
        nodes = set(self._map) | set(other._map)
        return Retiming(
            {n: self[n] + other[n] for n in nodes}, dim=self._dim
        )

    def normalized(self, g: MLDG) -> "Retiming":
        """Explicit zero entries for every node of ``g`` (for display)."""
        return Retiming({n: self[n] for n in g.nodes}, dim=self._dim)

    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Retiming):
            return NotImplemented
        if self._dim != other._dim:
            return False
        nodes = set(self._map) | set(other._map)
        return all(self[n] == other[n] for n in nodes)

    def __hash__(self) -> int:
        frozen = frozenset(
            (n, v) for n, v in self._map.items() if not v.is_zero()
        )
        return hash((self._dim, frozen))

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}: {v}" for n, v in sorted(self._map.items()))
        return f"Retiming({{{inner}}}, dim={self._dim})"

    def describe(self) -> str:
        """Paper-style dump: ``r(A)=(0,0)  r(B)=(0,-4) ...``"""
        parts = [f"r({n})={v}" for n, v in sorted(self._map.items())]
        return "  ".join(parts) if parts else "r = 0"
