"""Schedule vectors and DOALL hyperplanes (Section 2.3 and Lemma 4.3).

A *schedule vector* ``s`` is the normal of a family of equitemporal
hyperplanes; it is *strict* for a dependence set when ``s . d > 0`` for
every non-zero dependence vector ``d``.  Two constructions matter here:

* the **row schedule** ``s = (1, 0)``: strict exactly when the fused
  innermost loop is DOALL (Property 4.1);
* Lemma 4.3's wavefront schedule for a retimed graph whose dependence
  vectors are all ``>= (0, 0)``:

  - if every non-zero vector has first coordinate 0 (hence positive second
    coordinate), ``s = (0, 1)``;
  - otherwise ``s = (max(floor(-d[1] / d[0])) + 1, 1)`` over vectors with
    ``d[0] > 0``, which guarantees ``s[0] * d[0] + d[1] > 0`` for those and
    ``d[1] > 0`` handles the rest.

  The DOALL hyperplane is ``h = (s[1], -s[0])``, perpendicular to ``s``.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.vectors import IVec, is_strict_schedule_vector

__all__ = [
    "ROW_SCHEDULE",
    "schedule_vector_for",
    "hyperplane_for_schedule",
    "doall_hyperplane",
]

#: The schedule of a row-by-row DOALL execution (Property 4.1).
ROW_SCHEDULE = IVec(1, 0)


def schedule_vector_for(dependence_vectors: Iterable[IVec]) -> IVec:
    """Lemma 4.3's strict schedule vector for a set of vectors ``>= (0,0)``.

    Raises ``ValueError`` if any vector is lexicographically negative (the
    caller must retime with LLOFRA first) or not two-dimensional.
    """
    vecs: List[IVec] = [d for d in dependence_vectors if not d.is_zero()]
    for d in vecs:
        if d.dim != 2:
            raise ValueError("Lemma 4.3 schedule construction is two-dimensional")
        if tuple(d) < (0, 0):
            raise ValueError(
                f"dependence vector {d} is lexicographically negative; retime first"
            )
    if not vecs:
        # no non-zero dependencies at all: any schedule works; pick the row one
        return ROW_SCHEDULE

    max_d = max(vecs)
    if max_d[0] == 0:
        # every non-zero vector is (0, k) with k > 0
        s = IVec(0, 1)
    else:
        carried = [d for d in vecs if d[0] > 0]
        s0 = max((-d[1]) // d[0] for d in carried) + 1
        s = IVec(s0, 1)
    if not is_strict_schedule_vector(s, vecs):
        raise AssertionError(
            f"Lemma 4.3 construction produced a non-strict schedule {s} for {vecs}"
        )
    return s


def hyperplane_for_schedule(s: IVec) -> IVec:
    """The hyperplane direction perpendicular to a 2-D schedule vector.

    Lemma 4.3 picks ``h = (s[1], -s[0])``; iterations with equal ``s . (i,j)``
    lie on a common line in direction ``h`` and can run in parallel.
    """
    if s.dim != 2:
        raise ValueError("hyperplane construction is two-dimensional")
    return IVec(s[1], -s[0])


def doall_hyperplane(dependence_vectors: Iterable[IVec]) -> Tuple[IVec, IVec]:
    """Convenience: ``(s, h)`` per Lemma 4.3 for an already-retimed vector set."""
    s = schedule_vector_for(dependence_vectors)
    return s, hyperplane_for_schedule(s)
