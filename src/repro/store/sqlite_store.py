"""The L2 disk tier: a sqlite-backed, process-safe compilation cache.

One :class:`CompileStore` is one sqlite file in WAL mode.  Many processes
(serve workers, ``fuse_many`` children, successive CLI runs) open the same
path independently and share rows; sqlite's own locking serialises writers
and WAL keeps readers unblocked.  The design constraints, in order:

1. **Never wrong.**  Rows are *candidates*, not answers: the integration
   layer re-verifies every hit through the normal rehydrate path before
   returning it, and calls :meth:`CompileStore.demote` when verification
   fails.  Inside the store, every row carries a checksum and a payload
   schema stamp; anything that fails to round-trip is deleted and reported
   as a miss.
2. **Never raise.**  A cache must not take the compiler down.  All sqlite
   errors are caught: operational hiccups (locked, disk I/O) degrade the
   single call to a miss, while structural corruption (truncated or
   garbage file, foreign schema) disables this handle entirely -- every
   later call is a cheap miss.  Counters (``store.*``) record each path.
3. **Bounded.**  Write-through inserts enforce entry-count and
   payload-byte caps by least-recently-*used* eviction, so a long-lived
   daemon's store cannot grow without bound.

Fork safety: connections are opened lazily and re-opened when the pid
changes, so a store handle created before ``fork`` (e.g. held by a serve
pool parent) never shares a sqlite connection with its children.  A
worker crash mid-write is safe by sqlite's WAL journaling -- the
transaction simply never commits.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.plan.profile import ProfileRow
from repro.store.fingerprint import PAYLOAD_SCHEMA, STORE_SCHEMA_VERSION

__all__ = ["CompileStore", "StoreStats", "DEFAULT_MAX_ENTRIES", "DEFAULT_MAX_BYTES"]

DEFAULT_MAX_ENTRIES = 4096
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class StoreStats:
    """A point-in-time view of one store file plus this handle's counters.

    ``hits``/``misses``/... are *this handle's* (process-local) traffic;
    ``stored_hits`` is the SUM of per-row hit counts in the file itself and
    is therefore visible across processes -- it is how a daemon parent
    observes warm hits taken inside its worker children.
    """

    path: str
    entries: int
    size_bytes: int
    payload_bytes: int
    stored_hits: int
    fingerprints: int
    schema_version: Optional[int]
    max_entries: int
    max_bytes: int
    hits: int
    misses: int
    puts: int
    evictions: int
    disabled: bool
    profile_rows: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        # keys hits/misses/evictions/currsize mirror CacheInfo.to_dict so
        # obs.snapshot_caches can treat every tier uniformly
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "currsize": self.entries,
            "maxsize": self.max_entries,
            "hitRatio": round(self.hit_ratio, 4),
            "puts": self.puts,
            "path": self.path,
            "sizeBytes": self.size_bytes,
            "payloadBytes": self.payload_bytes,
            "maxBytes": self.max_bytes,
            "storedHits": self.stored_hits,
            "fingerprints": self.fingerprints,
            "profileRows": self.profile_rows,
            "schemaVersion": self.schema_version,
            "disabled": self.disabled,
        }


_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS entries (
    skey        TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    payload     TEXT NOT NULL,
    checksum    TEXT NOT NULL,
    created_s   REAL NOT NULL,
    last_used_s REAL NOT NULL,
    hits        INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (skey, fingerprint)
);
CREATE INDEX IF NOT EXISTS entries_lru ON entries (last_used_s);
CREATE TABLE IF NOT EXISTS profiles (
    skey        TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    bucket      TEXT NOT NULL,
    backend     TEXT NOT NULL,
    jobs        INTEGER NOT NULL,
    runs        INTEGER NOT NULL DEFAULT 0,
    total_s     REAL NOT NULL DEFAULT 0,
    best_s      REAL NOT NULL,
    last_used_s REAL NOT NULL,
    PRIMARY KEY (skey, fingerprint, bucket, backend, jobs)
);
CREATE INDEX IF NOT EXISTS profiles_lru ON profiles (last_used_s);
"""


def _checksum(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class CompileStore:
    """One handle on one sqlite cache file (see module docstring).

    Handles are thread-safe (one connection guarded by a lock; WAL makes
    cross-process access safe) and picklable: the connection and lock are
    dropped on pickle and lazily rebuilt in the receiving process.
    """

    def __init__(
        self,
        path: str,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if max_entries < 1:
            raise ValueError("store max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("store max_bytes must be >= 1")
        self.path = os.path.abspath(path)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._conn: Optional[sqlite3.Connection] = None
        self._pid: Optional[int] = None
        self._lock = threading.RLock()
        self._disabled = False
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0

    # -------------------------------------------------------------- #
    # pickling / forking
    # -------------------------------------------------------------- #

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state["_conn"] = None
        state["_pid"] = None
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # -------------------------------------------------------------- #
    # connection management
    # -------------------------------------------------------------- #

    def _connection(self) -> Optional[sqlite3.Connection]:
        """The live connection for *this* process, or ``None`` if disabled.

        Must be called (and the returned connection used) under ``_lock``.
        """
        if self._disabled:
            return None
        pid = os.getpid()
        if self._conn is not None and self._pid == pid:
            return self._conn
        if self._conn is not None:
            # inherited across fork: do not touch the parent's connection
            # state beyond dropping our reference to it
            self._conn = None
        try:
            conn = sqlite3.connect(
                self.path,
                timeout=5.0,
                isolation_level=None,  # autocommit; explicit txns where needed
                check_same_thread=False,
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=5000")
            self._ensure_schema(conn)
        except sqlite3.Error as exc:
            self._note_error(exc)
            return None
        if self._disabled:  # foreign (newer) schema found by _ensure_schema
            conn.close()
            return None
        self._conn = conn
        self._pid = pid
        return conn

    def _ensure_schema(self, conn: sqlite3.Connection) -> None:
        row = None
        try:
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.OperationalError:
            pass  # fresh file: meta does not exist yet
        if row is not None:
            try:
                found = int(row[0])
            except (TypeError, ValueError):
                found = -1
            if found == STORE_SCHEMA_VERSION:
                # same version: still apply the (idempotent) DDL, so files
                # written before an additive table existed gain it on open
                conn.executescript(_SCHEMA_SQL)
                return
            if found > STORE_SCHEMA_VERSION:
                # a newer writer owns this file; leave it alone entirely
                obs.default_registry().counter("store.schema_mismatch").inc()
                self._disabled = True
                return
            # older (or unreadable) schema: it is a cache, wipe and rebuild
            obs.default_registry().counter("store.schema_mismatch").inc()
            conn.executescript(
                "DROP TABLE IF EXISTS entries; DROP TABLE IF EXISTS profiles;"
                " DROP TABLE IF EXISTS meta;"
            )
        conn.executescript(_SCHEMA_SQL)
        conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
            (str(STORE_SCHEMA_VERSION),),
        )

    def _note_error(self, exc: sqlite3.Error) -> None:
        """Record a sqlite failure and decide whether this handle survives.

        Operational noise (locked database, transient I/O) costs one miss;
        structural corruption (``file is not a database``, malformed pages)
        disables the handle so every later call is a cheap miss.
        """
        reg = obs.default_registry()
        reg.counter("store.errors").inc()
        if isinstance(exc, sqlite3.DatabaseError) and not isinstance(
            exc, sqlite3.OperationalError
        ):
            reg.counter("store.corrupt").inc()
            self._disabled = True
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    @property
    def disabled(self) -> bool:
        return self._disabled

    def close(self) -> None:
        with self._lock:
            if self._conn is not None and self._pid == os.getpid():
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
            self._conn = None
            self._pid = None

    # -------------------------------------------------------------- #
    # the cache protocol: get / put / demote
    # -------------------------------------------------------------- #

    def get(self, skey: str, fingerprint: str) -> Optional[Any]:
        """The decoded payload for ``(skey, fingerprint)``, or ``None``.

        A hit bumps the row's recency and persistent hit count.  Rows that
        fail the checksum or payload-schema check are deleted and counted
        under ``store.corrupt``; sqlite failures degrade to a miss.
        """
        reg = obs.default_registry()
        with obs.trace_span("store.get", key=skey), self._lock:
            conn = self._connection()
            if conn is None:
                self._misses += 1
                reg.counter("store.misses").inc()
                return None
            try:
                row = conn.execute(
                    "SELECT payload, checksum FROM entries"
                    " WHERE skey = ? AND fingerprint = ?",
                    (skey, fingerprint),
                ).fetchone()
                if row is None:
                    self._misses += 1
                    reg.counter("store.misses").inc()
                    return None
                payload_text, checksum = row
                value = self._decode(payload_text, checksum)
                if value is None:
                    conn.execute(
                        "DELETE FROM entries WHERE skey = ? AND fingerprint = ?",
                        (skey, fingerprint),
                    )
                    reg.counter("store.corrupt").inc()
                    self._misses += 1
                    reg.counter("store.misses").inc()
                    return None
                conn.execute(
                    "UPDATE entries SET last_used_s = ?, hits = hits + 1"
                    " WHERE skey = ? AND fingerprint = ?",
                    (time.time(), skey, fingerprint),
                )
                self._hits += 1
                reg.counter("store.hits").inc()
                return value
            except sqlite3.Error as exc:
                self._note_error(exc)
                self._misses += 1
                reg.counter("store.misses").inc()
                return None

    def put(self, skey: str, fingerprint: str, value: Any) -> bool:
        """Write-through insert; enforces the LRU caps.  Returns success."""
        reg = obs.default_registry()
        with obs.trace_span("store.put", key=skey), self._lock:
            conn = self._connection()
            if conn is None:
                return False
            doc = {"schema": PAYLOAD_SCHEMA, "value": value}
            try:
                payload_text = json.dumps(doc, sort_keys=True)
            except (TypeError, ValueError):
                reg.counter("store.errors").inc()
                return False
            now = time.time()
            try:
                conn.execute(
                    "INSERT OR REPLACE INTO entries"
                    " (skey, fingerprint, payload, checksum,"
                    "  created_s, last_used_s, hits)"
                    " VALUES (?, ?, ?, ?, ?, ?, 0)",
                    (skey, fingerprint, payload_text, _checksum(payload_text), now, now),
                )
                self._puts += 1
                reg.counter("store.puts").inc()
                self._enforce_caps(conn)
                return True
            except sqlite3.Error as exc:
                self._note_error(exc)
                return False

    def demote(self, skey: str, fingerprint: str) -> None:
        """Delete a row whose payload failed *semantic* verification.

        Called by the integration layer when a decoded row rehydrates but
        does not survive re-verification (``verify_retiming`` or payload
        shape checks).  Counted separately from raw corruption.
        """
        obs.default_registry().counter("store.verify_fail").inc()
        with self._lock:
            conn = self._connection()
            if conn is None:
                return
            try:
                conn.execute(
                    "DELETE FROM entries WHERE skey = ? AND fingerprint = ?",
                    (skey, fingerprint),
                )
            except sqlite3.Error as exc:
                self._note_error(exc)

    def _decode(self, payload_text: Any, checksum: Any) -> Optional[Any]:
        """Round-trip one row; ``None`` means 'treat as corrupt'."""
        # sqlite columns are dynamically typed: a tampered or torn row can
        # hold a BLOB/int where text belongs, and that too must be a miss.
        if not isinstance(payload_text, str) or not isinstance(checksum, str):
            return None
        if _checksum(payload_text) != checksum:
            return None
        try:
            doc = json.loads(payload_text)
        except (ValueError, TypeError):
            return None
        if not isinstance(doc, dict) or doc.get("schema") != PAYLOAD_SCHEMA:
            return None
        if "value" not in doc or doc["value"] is None:
            return None
        return doc["value"]

    # -------------------------------------------------------------- #
    # caps / maintenance
    # -------------------------------------------------------------- #

    def _enforce_caps(self, conn: sqlite3.Connection) -> None:
        removed = self._prune_locked(conn, self.max_entries, self.max_bytes)
        if removed:
            self._evictions += removed
            obs.default_registry().counter("store.evictions").inc(removed)

    def _prune_locked(
        self, conn: sqlite3.Connection, max_entries: int, max_bytes: int
    ) -> int:
        removed = 0
        while True:
            count, payload_bytes = conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(LENGTH(payload)), 0) FROM entries"
            ).fetchone()
            if count <= max_entries and payload_bytes <= max_bytes:
                return removed
            over_entries = max(0, count - max_entries)
            # drop the oldest-used rows; at least one, at most the overage
            batch = max(1, over_entries)
            cur = conn.execute(
                "DELETE FROM entries WHERE (skey, fingerprint) IN"
                " (SELECT skey, fingerprint FROM entries"
                "  ORDER BY last_used_s ASC LIMIT ?)",
                (batch,),
            )
            if cur.rowcount <= 0:
                return removed
            removed += cur.rowcount

    def prune(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Evict LRU rows down to the given (or configured) caps."""
        limit_entries = max_entries if max_entries is not None else self.max_entries
        limit_bytes = max_bytes if max_bytes is not None else self.max_bytes
        with self._lock:
            conn = self._connection()
            if conn is None:
                return 0
            try:
                removed = self._prune_locked(conn, limit_entries, limit_bytes)
            except sqlite3.Error as exc:
                self._note_error(exc)
                return 0
        if removed:
            self._evictions += removed
            obs.default_registry().counter("store.evictions").inc(removed)
        return removed

    def clear(self) -> int:
        """Delete every entry and profile row (the meta table survives).
        Returns the entry count removed."""
        with self._lock:
            conn = self._connection()
            if conn is None:
                return 0
            try:
                cur = conn.execute("DELETE FROM entries")
                conn.execute("DELETE FROM profiles")
                return int(cur.rowcount)
            except sqlite3.Error as exc:
                self._note_error(exc)
                return 0

    # -------------------------------------------------------------- #
    # execution profiles (the planner's online tier; docs/PLANNING.md)
    # -------------------------------------------------------------- #

    def profile_record(
        self,
        skey: str,
        fingerprint: str,
        bucket: str,
        backend: str,
        jobs: int,
        elapsed_s: float,
    ) -> bool:
        """Fold one observed kernel timing into its aggregate row.

        Rows aggregate per ``(skey, fingerprint, bucket, backend, jobs)``:
        run count, total and best seconds.  Same failure contract as
        :meth:`put` -- sqlite trouble degrades to a no-op, never raises.
        """
        reg = obs.default_registry()
        with self._lock:
            conn = self._connection()
            if conn is None:
                return False
            now = time.time()
            try:
                conn.execute(
                    "INSERT INTO profiles"
                    " (skey, fingerprint, bucket, backend, jobs,"
                    "  runs, total_s, best_s, last_used_s)"
                    " VALUES (?, ?, ?, ?, ?, 1, ?, ?, ?)"
                    " ON CONFLICT(skey, fingerprint, bucket, backend, jobs)"
                    " DO UPDATE SET runs = runs + 1,"
                    "  total_s = total_s + excluded.total_s,"
                    "  best_s = MIN(best_s, excluded.best_s),"
                    "  last_used_s = excluded.last_used_s",
                    (skey, fingerprint, bucket, backend, int(jobs),
                     float(elapsed_s), float(elapsed_s), now),
                )
                reg.counter("store.profile_puts").inc()
                self._enforce_profile_cap(conn)
                return True
            except sqlite3.Error as exc:
                self._note_error(exc)
                return False

    def profile_rows(
        self, skey: str, fingerprint: str, bucket: str
    ) -> List["ProfileRow"]:
        """The aggregate rows for one planning key, (backend, jobs)-sorted.

        Returns :class:`repro.plan.profile.ProfileRow` objects so the
        planner treats the disk tier and the in-memory fallback
        uniformly.  A readable result bumps recency; failures are empty.
        """
        from repro.plan.profile import ProfileRow

        reg = obs.default_registry()
        with self._lock:
            conn = self._connection()
            if conn is None:
                reg.counter("store.profile_misses").inc()
                return []
            try:
                rows = conn.execute(
                    "SELECT backend, jobs, runs, total_s, best_s FROM profiles"
                    " WHERE skey = ? AND fingerprint = ? AND bucket = ?"
                    " ORDER BY backend, jobs",
                    (skey, fingerprint, bucket),
                ).fetchall()
                if rows:
                    conn.execute(
                        "UPDATE profiles SET last_used_s = ?"
                        " WHERE skey = ? AND fingerprint = ? AND bucket = ?",
                        (time.time(), skey, fingerprint, bucket),
                    )
                    reg.counter("store.profile_hits").inc()
                else:
                    reg.counter("store.profile_misses").inc()
                out = []
                for backend, jobs, runs, total_s, best_s in rows:
                    try:
                        out.append(ProfileRow(
                            str(backend), int(jobs), int(runs),
                            float(total_s), float(best_s),
                        ))
                    except (TypeError, ValueError):
                        continue  # a torn row must not take the planner down
                return out
            except sqlite3.Error as exc:
                self._note_error(exc)
                reg.counter("store.profile_misses").inc()
                return []

    def profile_count(self) -> int:
        """Total profile rows in the file (0 on any failure)."""
        with self._lock:
            conn = self._connection()
            if conn is None:
                return 0
            try:
                return int(conn.execute("SELECT COUNT(*) FROM profiles").fetchone()[0])
            except sqlite3.Error as exc:
                self._note_error(exc)
                return 0

    def _enforce_profile_cap(self, conn: sqlite3.Connection) -> None:
        """Keep the profile table bounded like the entry table (LRU)."""
        (count,) = conn.execute("SELECT COUNT(*) FROM profiles").fetchone()
        if count <= self.max_entries:
            return
        conn.execute(
            "DELETE FROM profiles WHERE rowid IN"
            " (SELECT rowid FROM profiles ORDER BY last_used_s ASC LIMIT ?)",
            (count - self.max_entries,),
        )
        obs.default_registry().counter("store.profile_evictions").inc(
            count - self.max_entries
        )

    def verify(self, *, repair: bool = False) -> Dict[str, Any]:
        """Audit every row: checksum, JSON round-trip, payload schema.

        Returns ``{"ok", "checked", "corrupt": [...], "repaired"}``; with
        ``repair=True`` the offending rows are deleted.  A store that
        cannot be opened at all reports ``ok=False`` with zero rows.
        """
        bad: List[Tuple[str, str]] = []
        checked = 0
        with self._lock:
            conn = self._connection()
            if conn is None:
                return {
                    "ok": False,
                    "checked": 0,
                    "corrupt": [],
                    "repaired": 0,
                    "disabled": True,
                }
            try:
                rows = conn.execute(
                    "SELECT skey, fingerprint, payload, checksum FROM entries"
                ).fetchall()
                for skey, fingerprint, payload_text, checksum in rows:
                    checked += 1
                    if self._decode(payload_text, checksum) is None:
                        bad.append((skey, fingerprint))
                repaired = 0
                if repair and bad:
                    for skey, fingerprint in bad:
                        conn.execute(
                            "DELETE FROM entries"
                            " WHERE skey = ? AND fingerprint = ?",
                            (skey, fingerprint),
                        )
                        repaired += 1
            except sqlite3.Error as exc:
                self._note_error(exc)
                return {
                    "ok": False,
                    "checked": checked,
                    "corrupt": [list(pair) for pair in bad],
                    "repaired": 0,
                    "disabled": self._disabled,
                }
        if bad:
            obs.default_registry().counter("store.corrupt").inc(len(bad))
        return {
            "ok": not bad,
            "checked": checked,
            "corrupt": [list(pair) for pair in bad],
            "repaired": repaired if repair else 0,
            "disabled": False,
        }

    # -------------------------------------------------------------- #
    # statistics
    # -------------------------------------------------------------- #

    def stats(self) -> StoreStats:
        entries = 0
        payload_bytes = 0
        stored_hits = 0
        fingerprints = 0
        profile_rows = 0
        schema_version: Optional[int] = None
        with self._lock:
            conn = self._connection()
            if conn is not None:
                try:
                    entries, payload_bytes, stored_hits, fingerprints = conn.execute(
                        "SELECT COUNT(*), COALESCE(SUM(LENGTH(payload)), 0),"
                        " COALESCE(SUM(hits), 0), COUNT(DISTINCT fingerprint)"
                        " FROM entries"
                    ).fetchone()
                    (profile_rows,) = conn.execute(
                        "SELECT COUNT(*) FROM profiles"
                    ).fetchone()
                    row = conn.execute(
                        "SELECT value FROM meta WHERE key = 'schema_version'"
                    ).fetchone()
                    if row is not None:
                        schema_version = int(row[0])
                except sqlite3.Error as exc:
                    self._note_error(exc)
            size_bytes = 0
            for suffix in ("", "-wal", "-shm"):
                try:
                    size_bytes += os.path.getsize(self.path + suffix)
                except OSError:
                    pass
            return StoreStats(
                path=self.path,
                entries=int(entries),
                size_bytes=size_bytes,
                payload_bytes=int(payload_bytes),
                stored_hits=int(stored_hits),
                fingerprints=int(fingerprints),
                schema_version=schema_version,
                max_entries=self.max_entries,
                max_bytes=self.max_bytes,
                hits=self._hits,
                misses=self._misses,
                puts=self._puts,
                evictions=self._evictions,
                disabled=self._disabled,
                profile_rows=int(profile_rows),
            )

    def cache_info(self) -> StoreStats:
        """Alias so the store quacks like :class:`repro.perf.memo.MemoCache`."""
        return self.stats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompileStore({self.path!r}, disabled={self._disabled})"
