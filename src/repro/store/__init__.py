"""repro.store -- the persistent L2 tier under the in-memory memo caches.

The lookup path for a fusion (or ladder retiming) query is::

    L1  MemoCache          per-process, per-session, nanoseconds
    L2  CompileStore       one sqlite file, shared across processes
    --  compile            the real solvers

Both tiers sit behind the *same* admissibility predicate
(:func:`repro.perf.memo.memoization_applicable`): a limiting budget, an
active fault injector or ``REPRO_FUSE_MEMO=0`` bypasses memory and disk
alike, so chaos runs can neither read nor persist anything.  Every L2 hit
is re-verified through the normal rehydrate path before it is returned;
see :mod:`repro.store.sqlite_store` for the corruption policy and
:mod:`repro.store.fingerprint` for the invalidation key.

Configuration:

* ``REPRO_FUSE_STORE=<path>`` -- the default store file (CLI ``--store``
  and :class:`repro.core.SessionOptions.store_path` override per run);
* ``REPRO_FUSE_STORE_MAX_ENTRIES`` / ``REPRO_FUSE_STORE_MAX_MB`` -- LRU
  caps for stores opened via the environment default.

Full subsystem documentation: ``docs/CACHING.md``.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional

from repro.store.fingerprint import (
    PAYLOAD_SCHEMA,
    STORE_SCHEMA_VERSION,
    current_fingerprint,
    env_fingerprint,
    fingerprint_parts,
)
from repro.store.sqlite_store import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_ENTRIES,
    CompileStore,
    StoreStats,
)

__all__ = [
    "CompileStore",
    "StoreStats",
    "PAYLOAD_SCHEMA",
    "STORE_SCHEMA_VERSION",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_MAX_BYTES",
    "env_fingerprint",
    "current_fingerprint",
    "fingerprint_parts",
    "open_store",
    "default_store",
    "active_store",
    "set_default_store_path",
    "reset_open_stores",
]

_OPEN: Dict[str, CompileStore] = {}
_OPEN_LOCK = threading.Lock()


def _env_caps() -> Dict[str, int]:
    caps = {"max_entries": DEFAULT_MAX_ENTRIES, "max_bytes": DEFAULT_MAX_BYTES}
    raw = os.environ.get("REPRO_FUSE_STORE_MAX_ENTRIES")
    if raw:
        try:
            caps["max_entries"] = max(1, int(raw))
        except ValueError:
            pass
    raw = os.environ.get("REPRO_FUSE_STORE_MAX_MB")
    if raw:
        try:
            caps["max_bytes"] = max(1, int(float(raw) * 1024 * 1024))
        except ValueError:
            pass
    return caps


def open_store(
    path: str,
    *,
    max_entries: Optional[int] = None,
    max_bytes: Optional[int] = None,
) -> CompileStore:
    """One :class:`CompileStore` handle per absolute path per process.

    Sharing the handle shares its sqlite connection and its process-local
    hit/miss counters; the connection itself is opened lazily on first
    use, so it is safe to open a store before forking a worker pool.
    """
    caps = _env_caps()
    if max_entries is not None:
        caps["max_entries"] = max_entries
    if max_bytes is not None:
        caps["max_bytes"] = max_bytes
    key = os.path.abspath(path)
    with _OPEN_LOCK:
        store = _OPEN.get(key)
        if store is None:
            store = CompileStore(
                key, max_entries=caps["max_entries"], max_bytes=caps["max_bytes"]
            )
            _OPEN[key] = store
        else:
            store.max_entries = caps["max_entries"]
            store.max_bytes = caps["max_bytes"]
        return store


def set_default_store_path(path: Optional[str]) -> None:
    """Set (or, with ``None``, clear) the process-default store path.

    Written through to ``REPRO_FUSE_STORE`` so spawned/forked worker
    pools inherit the same file.
    """
    if path is None:
        os.environ.pop("REPRO_FUSE_STORE", None)
    else:
        os.environ["REPRO_FUSE_STORE"] = os.path.abspath(path)


def default_store() -> Optional[CompileStore]:
    """The store named by ``REPRO_FUSE_STORE``, or ``None``."""
    path = os.environ.get("REPRO_FUSE_STORE")
    if not path:
        return None
    return open_store(path)


def active_store() -> Optional[CompileStore]:
    """The L2 store visible from this context, or ``None``.

    A session carrying a store (``SessionOptions.store_path``) wins;
    otherwise the environment default.  Mirrors the session-first
    resolution of :func:`repro.perf.memo.fusion_cache`.
    """
    from repro.core.context import current_session

    session = current_session()
    if session is not None and session.caches.store is not None:
        return session.caches.store
    return default_store()


def reset_open_stores() -> None:
    """Drop the per-process handle registry (tests; closes connections)."""
    with _OPEN_LOCK:
        for store in _OPEN.values():
            store.close()
        _OPEN.clear()
