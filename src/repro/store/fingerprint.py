"""Environment fingerprints: the invalidation half of the store key.

Every store row is keyed on ``(entry key, env fingerprint)``.  The entry
key quotients the *query* (strategy + canonical MLDG structure); the
fingerprint quotients the *environment that computed the answer*.  Two
processes share a row only when nothing that could change the answer --
or the meaning of the serialized payload -- differs between them:

* the ``repro`` package version (any algorithm change ships as a version
  bump, so stale retimings can never cross an upgrade);
* the store payload-schema version (:data:`STORE_SCHEMA_VERSION`);
* the python and numpy versions (solver arithmetic and kernel behavior);
* the session's compilation settings that are not already part of the
  entry key: the degradation-ladder variant and the edge-pruning switch
  (the fused strategy itself *is* in the entry key).

The fingerprint is deliberately coarse: a mismatch only costs a cold
compile, never a wrong answer -- and rows written under other
fingerprints stay in the file, so rolling upgrades across a worker fleet
keep both generations warm until the pruner reclaims the old rows.
"""

from __future__ import annotations

import hashlib
import json
import platform
from functools import lru_cache
from typing import Optional, Tuple

__all__ = [
    "STORE_SCHEMA_VERSION",
    "PAYLOAD_SCHEMA",
    "env_fingerprint",
    "current_fingerprint",
    "fingerprint_parts",
]

#: Version of the sqlite table layout *and* of the JSON payload encoding.
#: Bump on any incompatible change; older files are wiped and rebuilt,
#: newer files are left untouched and the store disables itself.
STORE_SCHEMA_VERSION = 1

#: ``schema`` field stamped into every JSON payload row.
PAYLOAD_SCHEMA = "repro-store/1"


def fingerprint_parts(
    *,
    ladder: Optional[Tuple[str, ...]] = None,
    prune_edges: bool = True,
) -> dict:
    """The JSON-able dict the fingerprint digests (exposed for ``cache stats``)."""
    from repro import __version__

    try:
        import numpy

        numpy_version = str(numpy.__version__)
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "absent"
    return {
        "repro": __version__,
        "storeSchema": STORE_SCHEMA_VERSION,
        "python": platform.python_version(),
        "numpy": numpy_version,
        "ladder": list(ladder) if ladder is not None else None,
        "pruneEdges": bool(prune_edges),
    }


@lru_cache(maxsize=64)
def env_fingerprint(
    ladder: Optional[Tuple[str, ...]] = None,
    prune_edges: bool = True,
) -> str:
    """A short stable digest of :func:`fingerprint_parts`."""
    blob = json.dumps(
        fingerprint_parts(ladder=ladder, prune_edges=prune_edges),
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def current_fingerprint() -> str:
    """The fingerprint of the ambient compilation context.

    Reads the active :class:`repro.core.Session`'s options when one is
    activated (batch workers and serve workers always run under one);
    bare :func:`repro.fusion.fuse` calls get the default settings.
    """
    from repro.core.context import current_session

    session = current_session()
    if session is None:
        return env_fingerprint()
    options = session.options
    return env_fingerprint(
        ladder=options.ladder_labels(),
        prune_edges=options.prune_edges,
    )
