"""Barrier-synchronised machine model.

An execution is a sequence of *phases*; all iterations inside a phase are
independent and run concurrently on ``P`` processors, and a barrier
(synchronization) separates consecutive phases.  Work is measured in
statement-instance units (``costs`` maps node -> units per iteration,
default 1).

Phase shapes:

* **unfused** (the original Figure-1 nest): one phase per (outer iteration,
  innermost loop) pair -- ``|V| * (n+1)`` phases;
* **fused DOALL** (Algorithms 3/4): one phase per fused outer iteration,
  including the prologue/epilogue rows;
* **hyperplane** (Algorithm 5): one phase per non-empty wavefront
  ``t = s . (i, j)``.

Synchronization counts are ``phases - 1`` (no barrier after the last
phase), which reproduces the paper's ``7n`` -> ``n - 2`` accounting for
Figure 8 when restricted to the core loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.fusion.driver import FusionResult, Parallelism
from repro.graph.mldg import MLDG
from repro.retiming import Retiming
from repro.vectors import IVec

__all__ = [
    "PhaseProfile",
    "unfused_profile",
    "fused_doall_profile",
    "hyperplane_profile",
    "profile_fusion",
]


@dataclass(frozen=True)
class PhaseProfile:
    """Work per phase plus derived machine metrics."""

    label: str
    work: tuple  # units of work per phase, in execution order

    @property
    def num_phases(self) -> int:
        return len(self.work)

    @property
    def sync_count(self) -> int:
        """Barriers between phases."""
        return max(len(self.work) - 1, 0)

    @property
    def total_work(self) -> int:
        return int(sum(self.work))

    def parallel_time(self, processors: int, *, sync_cost: int = 0) -> int:
        """Makespan on ``P`` processors.

        Sum of per-phase ``ceil(work / P)`` plus ``sync_cost`` work-units per
        barrier -- the synchronization overhead whose reduction is the whole
        point of fusion (Section 1).
        """
        if processors < 1:
            raise ValueError("need at least one processor")
        compute = int(sum((w + processors - 1) // processors for w in self.work))
        return compute + sync_cost * self.sync_count

    def speedup(self, processors: int, *, sync_cost: int = 0) -> float:
        """T(1, no barriers) / T(P) for this phase sequence."""
        t_p = self.parallel_time(processors, sync_cost=sync_cost)
        return self.total_work / t_p if t_p else 1.0

    def efficiency(self, processors: int, *, sync_cost: int = 0) -> float:
        return self.speedup(processors, sync_cost=sync_cost) / processors

    def __repr__(self) -> str:
        return (
            f"PhaseProfile({self.label!r}, phases={self.num_phases}, "
            f"syncs={self.sync_count}, work={self.total_work})"
        )


def _costs(g: MLDG, costs: Optional[Mapping[str, int]]) -> Dict[str, int]:
    out = {node: 1 for node in g.nodes}
    if costs:
        for node, c in costs.items():
            if node not in out:
                raise KeyError(f"cost given for unknown node {node!r}")
            if c < 1:
                raise ValueError(f"cost of {node!r} must be >= 1")
            out[node] = int(c)
    return out


def unfused_profile(
    g: MLDG, n: int, m: int, *, costs: Optional[Mapping[str, int]] = None
) -> PhaseProfile:
    """The original loop sequence: ``|V|`` barriers per outer iteration."""
    c = _costs(g, costs)
    row = [(m + 1) * c[node] for node in g.nodes]
    return PhaseProfile(label="unfused", work=tuple(row * (n + 1)))


def fused_doall_profile(
    g: MLDG,
    retiming: Retiming,
    n: int,
    m: int,
    *,
    costs: Optional[Mapping[str, int]] = None,
    include_boundary: bool = True,
) -> PhaseProfile:
    """DOALL-fused execution: one phase per fused outer iteration.

    With ``include_boundary`` (default) the prologue/epilogue rows count as
    phases; without it only the core fused loop is profiled (the paper's
    ``n - 2`` accounting).
    """
    c = _costs(g, costs)
    shifts = {node: retiming[node] for node in g.nodes}
    if include_boundary:
        lo = min(-s[0] for s in shifts.values())
        hi = n - min(s[0] for s in shifts.values())
    else:
        lo = max(-s[0] for s in shifts.values())
        hi = n - max(s[0] for s in shifts.values())
    work: List[int] = []
    for i in range(lo, hi + 1):
        units = 0
        for node in g.nodes:
            oi = i + shifts[node][0]
            if 0 <= oi <= n:
                units += (m + 1) * c[node]
        if units:
            work.append(units)
    return PhaseProfile(label="fused-doall", work=tuple(work))


def hyperplane_profile(
    g: MLDG,
    retiming: Retiming,
    schedule: IVec,
    n: int,
    m: int,
    *,
    costs: Optional[Mapping[str, int]] = None,
) -> PhaseProfile:
    """Wavefront execution: one phase per non-empty hyperplane level.

    Aggregated with numpy per node rectangle, so large iteration spaces stay
    cheap.
    """
    if schedule.dim != 2:
        raise ValueError("hyperplane profiling is two-dimensional")
    c = _costs(g, costs)
    buckets: Dict[int, int] = {}
    s0, s1 = schedule[0], schedule[1]
    for node in g.nodes:
        r = retiming[node]
        # fused cells where this node is in bounds form a rectangle
        i_vals = np.arange(-r[0], n - r[0] + 1, dtype=np.int64)
        j_vals = np.arange(-r[1], m - r[1] + 1, dtype=np.int64)
        t = (s0 * i_vals)[:, None] + (s1 * j_vals)[None, :]
        levels, counts = np.unique(t, return_counts=True)
        for level, count in zip(levels.tolist(), counts.tolist()):
            buckets[level] = buckets.get(level, 0) + int(count) * c[node]
    return PhaseProfile(
        label="fused-hyperplane",
        work=tuple(buckets[t] for t in sorted(buckets)),
    )


def profile_fusion(
    result: FusionResult,
    n: int,
    m: int,
    *,
    costs: Optional[Mapping[str, int]] = None,
    include_boundary: bool = True,
) -> PhaseProfile:
    """Profile a fusion result in its claimed execution mode."""
    if result.parallelism is Parallelism.DOALL:
        return fused_doall_profile(
            result.original,
            result.retiming,
            n,
            m,
            costs=costs,
            include_boundary=include_boundary,
        )
    if result.parallelism is Parallelism.HYPERPLANE:
        assert result.hyperplane is not None
        return hyperplane_profile(
            result.original, result.retiming, result.schedule, n, m, costs=costs
        )
    # serial fused loop: every iteration is its own phase within a row --
    # model as one phase per statement row with width-1 parallelism
    c = _costs(result.original, costs)
    shifts = {node: result.retiming[node] for node in result.original.nodes}
    lo = min(-s[0] for s in shifts.values())
    hi = n - min(s[0] for s in shifts.values())
    work: List[int] = []
    for i in range(lo, hi + 1):
        for node in result.original.nodes:
            oi = i + shifts[node][0]
            if 0 <= oi <= n:
                work.extend([c[node]] * (m + 1))
    return PhaseProfile(label="fused-serial", work=tuple(work))
