"""Data-locality model: producer-consumer reuse distance under fusion.

Section 1 motivates fusion with *data locality* as well as synchronization:
"because of array reuse, it reduces the references to main memory".  The
paper does not quantify this; following DESIGN.md's substitution policy we
model it explicitly so the claim becomes measurable.

Model.  Execution is a sequence of statement instances (``cost`` work units
per node per iteration).  Each execution shape defines a global *instance
index*; the reuse distance of a dependence is the index gap between the
producing and consuming instances, evaluated at a representative interior
instance (boundary effects ignored).  A consumer hits fast memory when its
distance is at most the capacity ``C`` (idealised fully-associative LRU
over values).

With ``W = m + 1`` iterations per row, per-node costs ``c``, ``S = sum c``
and ``before[u]`` the body cost preceding node ``u``:

* **unfused** (loop-by-loop):
  ``index(u, i, j) = i*W*S + W*before[u] + j*c[u]``
  -- consecutive loops are a whole row sweep apart, so every
  same-outer-iteration dependence costs O(W);
* **fused** (row-major over the fused space, retimed coordinates):
  ``index(u, i, j) = i*W*S + j*S + before[u]``
  -- a retimed ``(0,0)`` dependence costs only the couple of statements
  between producer and consumer inside one iteration.

Fusion's locality win is exactly this collapse of O(W) separations to O(S)
ones -- the values are consumed immediately instead of making a round trip
through main memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.graph.mldg import MLDG
from repro.retiming import Retiming

__all__ = ["ReuseProfile", "reuse_distances", "locality_report"]


@dataclass(frozen=True)
class ReuseProfile:
    """Reuse distances (in work units) for one execution shape."""

    label: str
    distances: Tuple[Tuple[str, str, int], ...]  # (src, dst, distance) per vector

    def hit_ratio(self, capacity: int) -> float:
        """Fraction of dependence uses served from fast memory of size ``capacity``."""
        if not self.distances:
            return 1.0
        hits = sum(1 for (_s, _d, dist) in self.distances if dist <= capacity)
        return hits / len(self.distances)

    def mean_distance(self) -> float:
        if not self.distances:
            return 0.0
        return sum(d for (_s, _d, d) in self.distances) / len(self.distances)

    def max_distance(self) -> int:
        return max((d for (_s, _d, d) in self.distances), default=0)


def _costs(g: MLDG, costs: Optional[Mapping[str, int]]) -> Dict[str, int]:
    out = {n: 1 for n in g.nodes}
    if costs:
        out.update({k: int(v) for k, v in costs.items()})
    return out


def reuse_distances(
    g: MLDG,
    m: int,
    *,
    retiming: Optional[Retiming] = None,
    body_order: Optional[List[str]] = None,
    costs: Optional[Mapping[str, int]] = None,
) -> ReuseProfile:
    """Per-dependence-vector reuse distances for one execution shape.

    Without ``retiming``: the unfused loop-by-loop execution (program
    order).  With ``retiming``: the fused row-major execution, body in
    ``body_order`` (defaults to program order).  Dependencies that flow
    backwards in the shape's execution order (possible pre-transformation:
    that is what "fusion-preventing" means, and what Figure 14's backward
    couplings do to the unfused sequence) cannot be served by a producing
    instance at all and are charged one full outer sweep ``W * S``.
    """
    c = _costs(g, costs)
    width = m + 1
    order = list(body_order) if body_order is not None else list(g.nodes)
    total = sum(c[n] for n in g.nodes)
    before: Dict[str, int] = {}
    acc = 0
    for n in order:
        before[n] = acc
        acc += c[n]

    # representative interior consumer instance: far enough from every edge
    i0 = 1 + max((abs(d[0]) for d in g.all_vectors()), default=0)
    j0 = width // 2

    def unfused_index(node: str, i: int, j: int) -> int:
        return i * width * total + width * before[node] + j * c[node]

    def fused_index(node: str, i: int, j: int) -> int:
        return i * width * total + j * total + before[node]

    out: List[Tuple[str, str, int]] = []
    for e in g.edges():
        for d in e.vectors:
            if retiming is None:
                consumer = unfused_index(e.dst, i0, j0)
                producer = unfused_index(e.src, i0 - d[0], j0 - d[1])
            else:
                dr = d + retiming[e.src] - retiming[e.dst]
                consumer = fused_index(e.dst, i0, j0)
                producer = fused_index(e.src, i0 - dr[0], j0 - dr[1])
            dist = consumer - producer
            if dist <= 0:
                dist = width * total  # backward flow: full-sweep round trip
            out.append((e.src, e.dst, int(dist)))
    label = "fused" if retiming is not None else "unfused"
    return ReuseProfile(label=label, distances=tuple(sorted(out)))


def locality_report(
    g: MLDG,
    m: int,
    retiming: Retiming,
    *,
    body_order: Optional[List[str]] = None,
    capacities: Tuple[int, ...] = (8, 64, 512),
    costs: Optional[Mapping[str, int]] = None,
) -> List[Tuple]:
    """Rows ``(shape, mean dist, max dist, hit@cap...)`` for both shapes."""
    rows: List[Tuple] = []
    for profile in (
        reuse_distances(g, m, costs=costs),
        reuse_distances(g, m, retiming=retiming, body_order=body_order, costs=costs),
    ):
        rows.append(
            (
                profile.label,
                profile.mean_distance(),
                profile.max_distance(),
                *(profile.hit_ratio(cap) for cap in capacities),
            )
        )
    return rows
