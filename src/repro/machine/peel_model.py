"""Execution-cost model for shift-and-peel fusion.

Section 1 dismisses shift-and-peel with a precise claim: "when the number
of peeled iterations exceeds the number of iterations per processor, this
method is not efficient".  To reproduce that claim as a measurement we
model the blocked execution Manjikian & Abdelrahman describe:

* each fused row of ``W = m + 1`` iterations is split into ``P`` blocks;
* the ``peel`` iterations straddling every block boundary depend on the
  neighbouring block and execute *after* the bulk phase, serially per
  boundary pair -- adding ``peel`` extra steps to each row whenever
  ``peel > 0`` and ``P > 1``;
* one barrier per row, as for any fused loop.

Per-row time on ``P`` processors with per-iteration cost ``S`` (the body
cost):

.. math::
   T_{row} = \\lceil (W - peel\\,(P-1)) / P \\rceil \\cdot S + peel \\cdot S
   \\quad (P > 1)

which degrades towards serial once ``peel`` approaches ``W / P`` -- the
paper's inefficiency threshold.  The retiming-fused DOALL row costs
``ceil(W / P) * S`` with no peel term, so the crossover is directly
visible (``benchmarks/bench_peel_crossover.py``).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.baselines.shift_and_peel import ShiftAndPeelOutcome
from repro.graph.mldg import MLDG
from repro.machine.simulator import PhaseProfile, _costs

__all__ = ["shift_and_peel_time", "shift_and_peel_profile"]


def shift_and_peel_time(
    g: MLDG,
    outcome: ShiftAndPeelOutcome,
    n: int,
    m: int,
    processors: int,
    *,
    costs: Optional[Mapping[str, int]] = None,
    sync_cost: int = 0,
) -> int:
    """Makespan of the shift-and-peel fused loop on ``P`` processors.

    Raises ``ValueError`` when the outcome reports fusion impossible.
    """
    if not outcome.legal:
        raise ValueError("shift-and-peel failed on this graph; no schedule exists")
    c = _costs(g, costs)
    body = sum(c.values())
    width = m + 1
    peel = outcome.peel_count
    rows = n + 1
    if processors <= 1:
        per_row = width * body
    else:
        bulk = max(width - peel * (processors - 1), 0)
        per_row = ((bulk + processors - 1) // processors) * body + peel * body
    return rows * per_row + sync_cost * max(rows - 1, 0)


def shift_and_peel_profile(
    g: MLDG,
    outcome: ShiftAndPeelOutcome,
    n: int,
    m: int,
    *,
    costs: Optional[Mapping[str, int]] = None,
) -> PhaseProfile:
    """A :class:`PhaseProfile` view (phase = one fused row's bulk work).

    The peel overhead is inherently per-processor, so prefer
    :func:`shift_and_peel_time` for makespans; this profile exists for
    synchronization accounting (one barrier per row, like any fusion).
    """
    if not outcome.legal:
        raise ValueError("shift-and-peel failed on this graph; no schedule exists")
    c = _costs(g, costs)
    body = sum(c.values())
    width = m + 1
    return PhaseProfile(
        label="shift-and-peel", work=tuple([width * body] * (n + 1))
    )
