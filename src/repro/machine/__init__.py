"""Abstract parallel machine simulation.

The paper's performance claims are about *synchronization*: an unfused nest
needs one barrier per innermost loop per outermost iteration (``7n`` for
Figure 8), a DOALL-fused nest one per outermost iteration (``n - 2``), and
a wavefront execution one per hyperplane.  This package models a
barrier-synchronised ``P``-processor machine executing those phase
sequences and measures synchronization counts, parallel makespan and
speedup -- a documented substitution for the multiprocessor the paper
reasons about analytically (see DESIGN.md).

* :class:`~repro.machine.simulator.PhaseProfile` -- the phase/work sequence
  of one execution with its derived metrics;
* :func:`~repro.machine.simulator.unfused_profile`,
  :func:`~repro.machine.simulator.fused_doall_profile`,
  :func:`~repro.machine.simulator.hyperplane_profile` -- the three execution
  shapes, derived from an MLDG + retiming (no source program required);
* :func:`~repro.machine.simulator.profile_fusion` -- dispatch on a
  :class:`repro.fusion.FusionResult`.
"""

from repro.machine.locality import ReuseProfile, locality_report, reuse_distances
from repro.machine.peel_model import shift_and_peel_profile, shift_and_peel_time
from repro.machine.simulator import (
    PhaseProfile,
    fused_doall_profile,
    hyperplane_profile,
    profile_fusion,
    unfused_profile,
)

__all__ = [
    "PhaseProfile",
    "ReuseProfile",
    "reuse_distances",
    "locality_report",
    "shift_and_peel_time",
    "shift_and_peel_profile",
    "unfused_profile",
    "fused_doall_profile",
    "hyperplane_profile",
    "profile_fusion",
]
