"""Seeded, deterministic fault injection for the resilient pipeline.

Each :class:`FaultInjector` corrupts one kind of intermediate value at a
named *injection point*.  The pipeline threads its intermediates through
:func:`pass_through`; outside an :func:`inject` context that is an identity
function, inside it the active injector gets a chance to corrupt the value.

The injected faults simulate *latent algorithm bugs*: the fusion algorithms
compute on the corrupted values while the verification gates judge the
result against the pristine input.  The chaos suite
(``tests/test_resilience_faults.py``) asserts that under any single fault
the resilient pipeline still returns a verified-correct (possibly degraded)
program or raises a typed error with diagnostics.

Injection points:

- ``"mldg"`` — the dependence graph handed to a fusion algorithm
- ``"retiming"`` — the retiming an algorithm produced
- ``"schedule"`` — the wavefront schedule vector
- ``"body-order"`` — the fused-body statement sequence before emission
- ``"worker"`` — the compile request inside a pool worker *process*
  (:mod:`repro.serve.worker`).  The injectors at this point simulate
  infrastructure faults rather than algorithm bugs: :class:`WorkerCrash`
  SIGKILLs the worker mid-request, :class:`WorkerHang` stalls it past any
  reasonable deadline.  The point is only ever reached inside serve
  worker processes, so the in-process chaos matrix composes with these
  injectors without risk (their hit count simply stays zero there).

All corruption draws from one ``random.Random(seed)`` shared across the
context, so a (injector, seed) pair replays exactly.

>>> from repro.resilience import faults
>>> from repro.gallery import figure2_mldg
>>> g = figure2_mldg()
>>> with faults.inject(faults.EdgeWeightCorruption(), seed=7) as fault:
...     g_bad = faults.pass_through("mldg", g)
>>> g_bad == g
False
>>> fault.hits
1
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.graph.mldg import MLDG
from repro.retiming.retiming import Retiming
from repro.vectors import IVec

__all__ = [
    "FaultInjector",
    "EdgeWeightCorruption",
    "RetimingDrop",
    "RetimingPerturb",
    "ScheduleOffByOne",
    "StatementReorder",
    "WorkerCrash",
    "WorkerHang",
    "ActiveFault",
    "inject",
    "pass_through",
    "active_fault",
    "registered_injectors",
    "process_fault_injectors",
    "injector_from_spec",
    "injector_spec",
    "perturb_retiming",
]

POINTS = ("mldg", "retiming", "schedule", "body-order", "worker")


def perturb_retiming(retiming: Retiming, node: str, delta: IVec) -> Retiming:
    """Return ``retiming`` with ``delta`` added to one node's offset.

    The canonical way to build a *slightly wrong* retiming for checker
    tests (promoted from ``tests/test_failure_injection.py``).
    """
    mapping = retiming.as_dict()
    mapping[node] = mapping.get(node, IVec.zero(retiming.dim)) + delta
    return Retiming(mapping, dim=retiming.dim)


# ---------------------------------------------------------------------- #
# injectors
# ---------------------------------------------------------------------- #


class FaultInjector:
    """One deterministic corruption applied at one injection point.

    Subclasses set :attr:`point` and implement :meth:`corrupt`, which must
    return a *new* value (never mutate its argument) drawing all randomness
    from ``rng``.  Returning the value unchanged is allowed when there is
    nothing to corrupt (e.g. an empty retiming).
    """

    point: str = ""

    @property
    def name(self) -> str:
        return type(self).__name__

    def corrupt(self, value: Any, rng: random.Random) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{self.name}(point={self.point!r})"


class EdgeWeightCorruption(FaultInjector):
    """Nudge one coordinate of one dependence vector by ±1."""

    point = "mldg"

    def corrupt(self, value: MLDG, rng: random.Random) -> MLDG:
        edges = list(value.edges())
        if not edges:
            return value
        e = rng.choice(edges)
        vectors = sorted(e.vectors)
        victim = rng.choice(vectors)
        axis = rng.randrange(value.dim)
        nudge = rng.choice((-1, 1))
        corrupted = victim.with_component(axis, victim[axis] + nudge)
        g = MLDG(dim=value.dim)
        for n in value.nodes:
            g.add_node(n)
        for edge in value.edges():
            new_vecs = [
                corrupted if (edge.src, edge.dst) == (e.src, e.dst) and v == victim else v
                for v in sorted(edge.vectors)
            ]
            g.add_dependence(edge.src, edge.dst, *new_vecs)
        return g


class RetimingDrop(FaultInjector):
    """Drop one node's retiming entry (it silently reverts to zero)."""

    point = "retiming"

    def corrupt(self, value: Retiming, rng: random.Random) -> Retiming:
        mapping = value.as_dict()
        nonzero = sorted(n for n, v in mapping.items() if v != IVec.zero(value.dim))
        if not nonzero:
            return value
        del mapping[rng.choice(nonzero)]
        return Retiming(mapping, dim=value.dim)


class RetimingPerturb(FaultInjector):
    """Add ±1 to one coordinate of one node's retiming offset."""

    point = "retiming"

    def corrupt(self, value: Retiming, rng: random.Random) -> Retiming:
        mapping = value.as_dict()
        if not mapping:
            return value
        node = rng.choice(sorted(mapping))
        axis = rng.randrange(value.dim)
        delta = IVec.zero(value.dim).with_component(axis, rng.choice((-1, 1)))
        return perturb_retiming(value, node, delta)


class ScheduleOffByOne(FaultInjector):
    """Off-by-one on one coordinate of the wavefront schedule vector."""

    point = "schedule"

    def corrupt(self, value: IVec, rng: random.Random) -> IVec:
        axis = rng.randrange(value.dim)
        return value.with_component(axis, value[axis] + rng.choice((-1, 1)))


class StatementReorder(FaultInjector):
    """Shuffle the fused-body statement/node sequence before emission."""

    point = "body-order"

    def corrupt(self, value: Sequence[Any], rng: random.Random) -> Tuple[Any, ...]:
        items = list(value)
        if len(items) < 2:
            return tuple(items)
        while True:
            rng.shuffle(items)
            if list(items) != list(value):
                return tuple(items)


class WorkerCrash(FaultInjector):
    """SIGKILL the current *process* — the worker-crash chaos injector.

    Fires with ``probability`` per :func:`pass_through` hit, drawing from
    the context rng so a ``(seed, attempt)`` pair replays exactly.  The
    supervisor observes the crash as a broken pool, replaces the pool and
    re-dispatches; a lower probability lets seeded retries survive.

    Only the ``"worker"`` point inside serve worker processes ever reaches
    this injector, so it is safe to register in the global matrix.
    """

    point = "worker"

    def __init__(self, probability: float = 1.0) -> None:
        self.probability = float(probability)

    def corrupt(self, value: Any, rng: random.Random) -> Any:
        if rng.random() >= self.probability:
            return value
        import os
        import signal

        sigkill = getattr(signal, "SIGKILL", None)
        if sigkill is not None:  # pragma: no branch - posix everywhere we run
            os.kill(os.getpid(), sigkill)
        os._exit(1)  # pragma: no cover - non-posix hard exit


class WorkerHang(FaultInjector):
    """Stall the current worker for ``hang_s`` seconds — the hung-worker
    chaos injector.  The supervisor observes a request timeout, kills the
    pool generation (SIGKILL beats any sleep) and re-dispatches survivors.

    Returns a shallow copy of the value when it fired so the context's
    ``hits`` accounting registers the stall.
    """

    point = "worker"

    def __init__(self, hang_s: float = 30.0, probability: float = 1.0) -> None:
        self.hang_s = float(hang_s)
        self.probability = float(probability)

    def corrupt(self, value: Any, rng: random.Random) -> Any:
        if rng.random() >= self.probability:
            return value
        import time

        time.sleep(self.hang_s)
        if isinstance(value, dict):
            return dict(value)
        return value


def registered_injectors() -> List[FaultInjector]:
    """Fresh instances of every built-in injector (the chaos matrix)."""
    return [
        EdgeWeightCorruption(),
        RetimingDrop(),
        RetimingPerturb(),
        ScheduleOffByOne(),
        StatementReorder(),
        WorkerCrash(),
        WorkerHang(),
    ]


def process_fault_injectors() -> List[FaultInjector]:
    """Fresh instances of the process-level (``"worker"`` point) injectors."""
    return [WorkerCrash(), WorkerHang()]


#: Constructor keyword arguments each injector accepts in a wire spec.
_SPEC_PARAMS = {
    "WorkerCrash": ("probability",),
    "WorkerHang": ("hang_s", "probability"),
}


def injector_spec(injector: FaultInjector, seed: int) -> dict:
    """The picklable/JSON spec for ``injector`` (inverse of
    :func:`injector_from_spec`)."""
    spec: dict = {"injector": injector.name, "seed": int(seed)}
    for param in _SPEC_PARAMS.get(injector.name, ()):
        spec[param] = getattr(injector, param)
    return spec


def injector_from_spec(spec: dict) -> Tuple[FaultInjector, int]:
    """Rebuild ``(injector, seed)`` from a wire spec like
    ``{"injector": "WorkerCrash", "seed": 3, "probability": 0.5}``.

    Raises :class:`ValueError` on unknown injector names or parameters so
    transports can turn it into a typed malformed-request error.
    """
    name = spec.get("injector")
    classes = {type(inj).__name__: type(inj) for inj in registered_injectors()}
    if name not in classes:
        raise ValueError(
            f"unknown fault injector {name!r}; known: {sorted(classes)}"
        )
    kwargs = {
        k: v
        for k, v in spec.items()
        if k not in ("injector", "seed")
    }
    allowed = set(_SPEC_PARAMS.get(name, ()))
    unknown = set(kwargs) - allowed
    if unknown:
        raise ValueError(
            f"injector {name} does not accept parameters {sorted(unknown)}"
        )
    return classes[name](**kwargs), int(spec.get("seed", 0))


# ---------------------------------------------------------------------- #
# context-manager API
# ---------------------------------------------------------------------- #


class ActiveFault:
    """Book-keeping for one :func:`inject` context.

    ``hits`` counts how many values were actually corrupted — a chaos test
    can distinguish "pipeline survived the fault" from "the faulted point
    was never reached on this path".
    """

    def __init__(self, injector: FaultInjector, seed: int) -> None:
        self.injector = injector
        self.seed = seed
        self.rng = random.Random(seed)
        self.hits = 0

    def apply(self, point: str, value: Any) -> Any:
        if point != self.injector.point:
            return value
        corrupted = self.injector.corrupt(value, self.rng)
        if corrupted is not value:
            self.hits += 1
        return corrupted

    def __repr__(self) -> str:
        return f"ActiveFault({self.injector!r}, seed={self.seed}, hits={self.hits})"


_state = threading.local()


def active_fault() -> Optional[ActiveFault]:
    """The innermost active fault in this thread, or ``None``."""
    return getattr(_state, "fault", None)


@contextmanager
def inject(injector: FaultInjector, *, seed: int) -> Iterator[ActiveFault]:
    """Activate ``injector`` for the dynamic extent of the ``with`` block.

    Contexts nest (innermost wins) and are thread-local.
    """
    if injector.point not in POINTS:
        raise ValueError(
            f"unknown injection point {injector.point!r}; expected one of {POINTS}"
        )
    fault = ActiveFault(injector, seed)
    previous = active_fault()
    _state.fault = fault
    try:
        yield fault
    finally:
        _state.fault = previous


def pass_through(point: str, value: Any) -> Any:
    """Identity outside :func:`inject`; the corruption seam inside it."""
    fault = active_fault()
    if fault is None:
        return value
    return fault.apply(point, value)
