"""The verified degradation ladder.

:func:`fuse_resilient` tries the paper's strategies strongest-first:

====  ===========  ==============================================
rung  label        strategy
====  ===========  ==============================================
4     doall        Algorithm 3 (acyclic) / Algorithm 4 (cyclic)
3     hyperplane   Algorithm 5 (LLOFRA + wavefront schedule)
2     legal-only   Algorithm 2 (LLOFRA, serial fused loop)
1     partition    greedy direct fusion of legally-fusible runs
0     none         original program unchanged
====  ===========  ==============================================

Every rung is *gated*: its answer is re-verified against the pristine
input graph (``verify_retiming`` plus, by default, operational dataflow
execution against the order-free reference), so a rung whose algorithm
misbehaves — an exception, a budget exhaustion, or a computed-but-wrong
answer — is degraded past, never returned.  The descent is recorded in a
:class:`~repro.resilience.report.RecoveryReport`.

The fault seams (:func:`repro.resilience.faults.pass_through`) feed each
rung's *algorithm* the possibly-corrupted intermediates while the gates
always judge against the true input: under fault injection the ladder
either returns a verified-correct (possibly degraded) answer or raises a
typed error, by construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.codegen.fused import DeadlockError
from repro.constraints import InfeasibleSystemError
from repro.fusion.acyclic import acyclic_parallel_retiming
from repro.fusion.cyclic import cyclic_parallel_retiming
from repro.fusion.driver import Parallelism
from repro.fusion.errors import FusionError, IllegalMLDGError
from repro.fusion.hyperplane import hyperplane_parallel_fusion
from repro.fusion.legal import legal_fusion_retiming
from repro.graph.analysis import is_acyclic
from repro.graph.legality import check_legal
from repro.graph.mldg import MLDG
from repro.perf.memo import cached_retiming, cached_schedule_retiming
from repro.resilience import faults
from repro.resilience.budget import Budget, BudgetExceededError
from repro.resilience.partition import PartitionedFusion, greedy_partition, validate_partition
from repro.resilience.report import (
    RS001,
    RS002,
    RS003,
    RS004,
    RecoveryReport,
    Rung,
    RungAttempt,
    rung_diagnostic,
    rung_from_label,
)
from repro.retiming import ROW_SCHEDULE, Retiming, hyperplane_for_schedule
from repro.retiming.verify import verify_retiming
from repro.vectors import IVec
from repro.verify.dataflow import OrderViolation, verify_retimed_execution

__all__ = [
    "ResilienceError",
    "RungRejected",
    "ResilientFusionResult",
    "fuse_resilient",
]

#: A program-level gate: called with the rung's verified graph-level answer,
#: returns ``(artifact, notes)`` or raises :class:`RungRejected`.
Gate = Callable[..., Tuple[Any, List[str]]]

_DESCENT = (Rung.DOALL, Rung.HYPERPLANE, Rung.LEGAL_FUSION, Rung.PARTITION, Rung.ORIGINAL)


def _descent() -> Tuple[Rung, ...]:
    """The rung sequence to walk, strongest-first.

    The active :class:`repro.core.Session` may select a ladder variant
    (``SessionOptions.ladder``); otherwise the full built-in descent.
    """
    from repro.core.context import current_session

    session = current_session()
    if session is not None:
        labels = session.ladder_descent()
        if labels is not None:
            return tuple(rung_from_label(label) for label in labels)
    return _DESCENT


class ResilienceError(FusionError):
    """The ladder came to rest below the caller's ``min_rung``.

    ``report`` carries the full descent; ``diagnostics`` is never empty
    (at minimum the RS004 record, plus everything the failed rungs left).
    """

    def __init__(self, message: str, report: RecoveryReport) -> None:
        diags = report.diagnostics
        super().__init__(message, diags)
        self.report = report


class RungRejected(Exception):
    """Internal control flow: a rung's answer failed a verification gate."""

    def __init__(self, message: str, notes: Optional[Sequence[str]] = None) -> None:
        super().__init__(message)
        self.notes = list(notes or [])


@dataclass
class ResilientFusionResult:
    """Where the ladder came to rest, plus everything it computed there.

    ``report`` is attached by :func:`fuse_resilient` just before returning
    (the rung runners don't own the descent record).
    """

    rung: Rung
    report: Optional[RecoveryReport] = None
    retiming: Optional[Retiming] = None
    schedule: Optional[IVec] = None
    hyperplane: Optional[IVec] = None
    partition: Optional[PartitionedFusion] = None
    artifact: Any = None
    notes: List[str] = field(default_factory=list)

    @property
    def parallelism(self) -> Parallelism:
        if self.rung is Rung.DOALL:
            return Parallelism.DOALL
        if self.rung is Rung.HYPERPLANE:
            return Parallelism.HYPERPLANE
        return Parallelism.SERIAL

    @property
    def degraded(self) -> bool:
        return self.rung is not _DESCENT[0]


def _exec_ok(
    g: MLDG,
    retiming: Retiming,
    bounds: Tuple[int, ...],
    *,
    mode: str,
    schedule: Optional[IVec] = None,
) -> Tuple[bool, Optional[str]]:
    """Operational execution check, folded to (accepted, note).

    A deadlocked reference (zero-weight cycle) is fatal for serial/doall
    claims — the fused loop could never run in those orders — but *not*
    for the hyperplane claim: the paper's Figure 14 is exactly a legal
    wavefront fusion whose row-serial execution deadlocks, so there the
    graph-level guarantees (cycle preservation, legality, schedule
    strictness) stand alone and we accept with a note.
    """
    try:
        ok = verify_retimed_execution(g, retiming, bounds, mode=mode, schedule=schedule)
    except OrderViolation as exc:
        return False, f"execution order violation: {exc}"
    except ValueError as exc:
        text = str(exc)
        if "deadlock" in text or "no fused body order" in text:
            if mode == "hyperplane":
                return True, f"execution check skipped ({text})"
            return False, text
        return False, text
    if not ok:
        return False, f"{mode} execution does not match the order-free reference"
    return True, None


def _strictness_violation(g: MLDG, r: Retiming, s: IVec) -> Optional[str]:
    """Check Lemma 4.3 strictness of ``s`` on the *true* retimed vectors."""
    if all(c == 0 for c in s):
        return f"schedule {s} is the zero vector"
    for d in sorted(set(r.apply(g).all_vectors())):
        if any(c != 0 for c in d) and s.dot(d) <= 0:
            return f"schedule {s} is not strict for retimed dependence vector {d}"
    return None


def fuse_resilient(
    g: MLDG,
    *,
    budget: Optional[Budget] = None,
    min_rung: Union[Rung, str] = Rung.ORIGINAL,
    verify_execution: bool = True,
    bounds: Optional[Sequence[int]] = None,
    gate: Optional[Gate] = None,
) -> ResilientFusionResult:
    """Fuse ``g`` with graceful, verified degradation.

    Parameters
    ----------
    g:
        The MLDG to fuse.  Structurally illegal inputs raise
        :class:`~repro.fusion.errors.IllegalMLDGError` (with diagnostics)
        up front — no transformation of an illegal program is meaningful.
    budget:
        Optional resource budget; exhaustion degrades instead of crashing.
    min_rung:
        Lowest acceptable rung (a :class:`Rung` or its label).  If every
        rung at or above it fails, raises :class:`ResilienceError`.
    verify_execution:
        Gate each rung with operational dataflow execution against the
        order-free reference (strongest check; costs
        ``O(prod(bounds) * |V|)`` per rung).
    bounds:
        Iteration box for the execution check (default 4 per dimension).
    gate:
        Optional program-level hook called as ``gate(rung, retiming=...,
        schedule=..., partition=...)`` after the graph-level gates accept;
        it returns ``(artifact, notes)`` or raises :class:`RungRejected`
        to degrade past the rung.  Used by
        :func:`repro.resilience.pipeline.fuse_program_resilient` to run
        codegen + bit-exact equivalence per rung.
    """
    if isinstance(min_rung, str):
        min_rung = rung_from_label(min_rung)
    budget = (budget or Budget()).start()
    report = RecoveryReport(budget=budget)
    tracer = obs.current_tracer()
    if tracer.active:
        report.trace_id = tracer.trace_id
    reg = obs.default_registry()
    reg.counter("resilience.ladder.runs").inc()
    t_start = time.perf_counter()

    oversize: Optional[BudgetExceededError] = None
    try:
        budget.check_graph(g.num_nodes, g.num_edges, "ladder entry")
    except BudgetExceededError as exc:
        oversize = exc
        report.notes.append(f"graph exceeds budget caps: {exc}")

    if oversize is None:
        legality = check_legal(g)
        if not legality.legal:
            from repro.lint.engine import diagnostics_from_legality

            raise IllegalMLDGError(
                legality.violations, diagnostics=diagnostics_from_legality(legality)
            )

    box = tuple(int(b) for b in bounds) if bounds is not None else (4,) * g.dim

    result: Optional[ResilientFusionResult] = None
    with obs.trace_span(
        "resilience.ladder",
        nodes=g.num_nodes,
        edges=g.num_edges,
        min_rung=min_rung.label,
    ) as ladder_span:
        for rung in _descent():
            if rung < min_rung:
                break
            attempt = _attempt_rung(
                g,
                rung,
                report,
                budget=budget,
                oversize=oversize,
                verify_execution=verify_execution,
                box=box,
                gate=gate,
            )
            if attempt.status == "ok":
                result = getattr(attempt, "_result")
                result.notes = list(attempt.notes)
                report.final_rung = rung
                break

        report.total_ms = (time.perf_counter() - t_start) * 1000.0
        if result is None:
            reg.counter(f"resilience.diagnostic.{RS004}").inc()
            ladder_span.set(outcome="exhausted")
            report.record(
                RungAttempt(
                    rung=min_rung,
                    status="rejected",
                    message="no rung at or above min_rung succeeded",
                    diagnostics=[
                        rung_diagnostic(
                            RS004,
                            f"ladder exhausted: no strategy at or above "
                            f"{min_rung.label!r} produced a verified result",
                            error=True,
                        )
                    ],
                )
            )
            raise ResilienceError(
                f"resilient fusion failed: no strategy at or above rung "
                f"{min_rung.label!r} produced a verified result",
                report,
            )
        reg.counter(f"resilience.final_rung.{report.final_rung.label}").inc()
        ladder_span.set(final_rung=report.final_rung.label)
    result.report = report
    report.parallelism = result.parallelism.value
    return result


def _attempt_rung(
    g: MLDG,
    rung: Rung,
    report: RecoveryReport,
    *,
    budget: Budget,
    oversize: Optional[BudgetExceededError],
    verify_execution: bool,
    box: Tuple[int, ...],
    gate: Optional[Gate],
) -> RungAttempt:
    """Span- and counter-wrapped :func:`_attempt_rung_inner`."""
    reg = obs.default_registry()
    reg.counter(f"resilience.rung.{rung.label}").inc()
    with obs.trace_span(f"resilience.rung.{rung.label}") as sp:
        attempt = _attempt_rung_inner(
            g,
            rung,
            report,
            budget=budget,
            oversize=oversize,
            verify_execution=verify_execution,
            box=box,
            gate=gate,
        )
        reg.counter(f"resilience.rung.{rung.label}.{attempt.status}").inc()
        for diag in attempt.diagnostics:
            reg.counter(f"resilience.diagnostic.{diag.code}").inc()
        sp.set(status=attempt.status)
    return attempt


def _attempt_rung_inner(
    g: MLDG,
    rung: Rung,
    report: RecoveryReport,
    *,
    budget: Budget,
    oversize: Optional[BudgetExceededError],
    verify_execution: bool,
    box: Tuple[int, ...],
    gate: Optional[Gate],
) -> RungAttempt:
    t0 = time.perf_counter()
    attempt = RungAttempt(rung=rung, status="skipped")
    report.record(attempt)

    if rung is not Rung.ORIGINAL:
        if oversize is not None:
            attempt.message = f"skipped: {oversize}"
            attempt.diagnostics.append(
                rung_diagnostic(RS003, f"{rung.label}: {oversize}")
            )
            return attempt
        if budget.deadline_exceeded():
            attempt.message = "skipped: deadline exhausted"
            attempt.diagnostics.append(
                rung_diagnostic(
                    RS003,
                    f"{rung.label}: deadline of {budget.deadline_ms:g} ms "
                    f"exhausted after {budget.elapsed_ms():.1f} ms",
                )
            )
            return attempt

    try:
        result = _run_rung(
            g, rung, budget=budget, verify_execution=verify_execution, box=box, gate=gate
        )
    except RungRejected as exc:
        attempt.status = "rejected"
        attempt.message = str(exc)
        attempt.notes.extend(exc.notes)
        attempt.diagnostics.append(rung_diagnostic(RS002, f"{rung.label}: {exc}"))
    except (
        FusionError,
        BudgetExceededError,
        InfeasibleSystemError,
        DeadlockError,
        OrderViolation,
        ValueError,
    ) as exc:
        attempt.status = "failed"
        attempt.error = type(exc).__name__
        attempt.message = str(exc)
        attempt.diagnostics.append(
            rung_diagnostic(RS001, f"{rung.label}: {type(exc).__name__}: {exc}")
        )
        attempt.diagnostics.extend(getattr(exc, "diagnostics", []))
    else:
        attempt.status = "ok"
        attempt.notes.extend(result.notes)
        result.notes = []
        attempt._result = result  # type: ignore[attr-defined]
    finally:
        attempt.wall_ms = (time.perf_counter() - t0) * 1000.0
    return attempt


def _run_rung(
    g: MLDG,
    rung: Rung,
    *,
    budget: Budget,
    verify_execution: bool,
    box: Tuple[int, ...],
    gate: Optional[Gate],
) -> ResilientFusionResult:
    """Compute one rung's answer and push it through every gate.

    Raises :class:`RungRejected` when a verification gate refuses the
    computed answer; lets algorithm errors propagate for the caller to
    classify.  Note the asymmetry that makes fault injection sound: the
    algorithms run on the fault seams' outputs, the gates on ``g`` itself.
    """
    if rung is Rung.ORIGINAL:
        artifact, notes = (None, [])
        if gate is not None:
            artifact, notes = gate(rung)
        return ResilientFusionResult(
            rung=rung,
            retiming=Retiming.zero(dim=g.dim),
            artifact=artifact,
            notes=["original program returned unchanged"] + notes,
        )

    if rung is Rung.PARTITION:
        g_alg = faults.pass_through("mldg", g)
        partition = greedy_partition(g_alg)
        reason = validate_partition(g, partition)
        if reason is not None:
            raise RungRejected(reason)
        if verify_execution:
            for cluster in partition.fused_clusters:
                sub = g.restricted_to(cluster.labels)
                mode = "doall" if cluster.doall else "serial"
                ok, note = _exec_ok(sub, Retiming.zero(dim=g.dim), box, mode=mode)
                if not ok:
                    raise RungRejected(
                        f"cluster {'+'.join(cluster.labels)}: {note}"
                    )
        artifact, notes = (None, [])
        if gate is not None:
            artifact, notes = gate(rung, partition=partition)
        return ResilientFusionResult(
            rung=rung,
            retiming=Retiming.zero(dim=g.dim),
            partition=partition,
            artifact=artifact,
            notes=[f"partition: {partition.describe()}"] + notes,
        )

    # retiming rungs ---------------------------------------------------- #
    g_alg = faults.pass_through("mldg", g)
    schedule: Optional[IVec] = None
    hyperplane: Optional[IVec] = None
    notes: List[str] = []

    # The solver calls are memoized by canonical structure (repro.perf.memo):
    # a structural repeat skips the constraint solving but every gate below
    # still runs against the true graph.  Limiting budgets and active fault
    # injectors bypass the cache, so probes and chaos tests see real work.
    if rung is Rung.DOALL:
        if is_acyclic(g_alg):
            r = cached_retiming(
                "acyclic",
                g_alg,
                lambda: acyclic_parallel_retiming(g_alg, budget=budget),
                budget=budget,
            )
            notes.append("Algorithm 3 (acyclic DOALL fusion)")
        else:
            r = cached_retiming(
                "cyclic",
                g_alg,
                lambda: cyclic_parallel_retiming(g_alg, budget=budget),
                budget=budget,
            )
            notes.append("Algorithm 4 (cyclic DOALL fusion)")
        r = faults.pass_through("retiming", r)
        schedule = ROW_SCHEDULE
    elif rung is Rung.HYPERPLANE:
        def _hyperplane() -> Tuple[Retiming, IVec]:
            hp = hyperplane_parallel_fusion(g_alg, budget=budget)
            return hp.retiming, hp.schedule

        hp_r, hp_s = cached_schedule_retiming(
            "hyperplane", g_alg, _hyperplane, budget=budget
        )
        r = faults.pass_through("retiming", hp_r)
        schedule = faults.pass_through("schedule", hp_s)
        hyperplane = hyperplane_for_schedule(schedule)
        notes.append("Algorithm 5 (hyperplane/wavefront fusion)")
    else:  # Rung.LEGAL_FUSION
        r = cached_retiming(
            "legal",
            g_alg,
            lambda: legal_fusion_retiming(g_alg, budget=budget),
            budget=budget,
        )
        r = faults.pass_through("retiming", r)
        notes.append("Algorithm 2 (LLOFRA, serial fused loop)")

    # gates: always against the TRUE graph ------------------------------ #
    verification = verify_retiming(g, r, cycle_limit=100)
    if rung is Rung.DOALL:
        if not verification.ok_for_parallel_fusion:
            raise RungRejected(
                "verification rejected the DOALL retiming: "
                + "; ".join(verification.problems)
            )
    elif not verification.ok_for_legal_fusion:
        raise RungRejected(
            f"verification rejected the {rung.label} retiming: "
            + "; ".join(verification.problems)
        )
    if rung is Rung.HYPERPLANE:
        assert schedule is not None
        strictness = _strictness_violation(g, r, schedule)
        if strictness is not None:
            raise RungRejected(strictness)

    if verify_execution:
        mode = {
            Rung.DOALL: "doall",
            Rung.HYPERPLANE: "hyperplane",
            Rung.LEGAL_FUSION: "serial",
        }[rung]
        ok, note = _exec_ok(g, r, box, mode=mode, schedule=schedule)
        if not ok:
            raise RungRejected(note or "execution check failed")
        if note:
            notes.append(note)

    artifact, gate_notes = (None, [])
    if gate is not None:
        artifact, gate_notes = gate(rung, retiming=r, schedule=schedule)

    return ResilientFusionResult(
        rung=rung,
        retiming=r,
        schedule=schedule,
        hyperplane=hyperplane,
        artifact=artifact,
        notes=notes + gate_notes,
    )
