"""Greedy partition of an MLDG into maximal legally-fusible clusters.

The second-weakest ladder rung: when no whole-graph fusion succeeds, split
the loop sequence along fusion-preventing edges into maximal runs of
consecutive loops whose induced subgraph is still legally fusible with the
*identity* retiming, and fuse each run directly.  Because no loop instance
moves (the retiming is zero), correctness only needs the original sequence
to be executable and every cluster's zero-dependence subgraph to order its
bodies — both checked here against the pristine graph.

This is the classic non-retiming baseline the paper improves on (its
"traditional fusion" of Section 1): weaker than LLOFRA, but it never moves
computation, so it survives conditions that reject every retiming rung.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.graph.legality import (
    is_fusion_legal,
    is_sequence_executable,
    zero_weight_cycle,
)
from repro.graph.mldg import MLDG
from repro.retiming.verify import is_doall_after_fusion

__all__ = ["Cluster", "PartitionedFusion", "greedy_partition", "validate_partition"]


@dataclass(frozen=True)
class Cluster:
    """One maximal run of consecutive loops fused directly (zero retiming)."""

    labels: Tuple[str, ...]
    doall: bool = False

    @property
    def fused(self) -> bool:
        return len(self.labels) > 1


@dataclass
class PartitionedFusion:
    """The partition rung's answer: clusters covering the program in order."""

    original: MLDG
    clusters: List[Cluster] = field(default_factory=list)

    @property
    def fused_clusters(self) -> List[Cluster]:
        return [c for c in self.clusters if c.fused]

    @property
    def num_fused(self) -> int:
        return len(self.fused_clusters)

    def describe(self) -> str:
        parts = []
        for c in self.clusters:
            text = "+".join(c.labels)
            if c.fused and c.doall:
                text += " (doall)"
            parts.append(text)
        return " | ".join(parts)


def _cluster_fusible(sub: MLDG) -> bool:
    """Direct fusion of ``sub`` is legal: all vectors lex-nonnegative and the
    zero-dependence subgraph acyclic (a fused body order exists)."""
    return is_fusion_legal(sub) and zero_weight_cycle(sub) is None


def greedy_partition(g: MLDG) -> PartitionedFusion:
    """Split program order greedily into maximal directly-fusible runs.

    Greedy left-to-right growth is optimal for interval partitioning of a
    sequence: a run is closed exactly when extending it by the next loop
    would make the induced subgraph illegal to fuse directly.
    """
    result = PartitionedFusion(original=g)
    run: List[str] = []
    for node in g.nodes:
        if not run:
            run = [node]
            continue
        if _cluster_fusible(g.restricted_to(run + [node])):
            run.append(node)
        else:
            result.clusters.append(_close(g, run))
            run = [node]
    if run:
        result.clusters.append(_close(g, run))
    return result


def _close(g: MLDG, run: List[str]) -> Cluster:
    sub = g.restricted_to(run)
    doall = len(run) > 1 and is_doall_after_fusion(sub)
    return Cluster(labels=tuple(run), doall=doall)


def validate_partition(g: MLDG, partition: PartitionedFusion) -> Optional[str]:
    """Re-check a partition against the pristine graph.

    Returns ``None`` when the partition is provably safe to execute, or a
    human-readable reason to reject it.  Used as the verification gate of
    the partition rung, so it must not trust anything ``greedy_partition``
    computed (the partition may have been built from a corrupted graph).
    """
    if not is_sequence_executable(g).legal:
        return "original sequence is not executable; no direct fusion is safe"
    covered = [label for c in partition.clusters for label in c.labels]
    if covered != list(g.nodes):
        return (
            f"clusters {covered!r} do not cover the program order {list(g.nodes)!r}"
        )
    for c in partition.clusters:
        if not c.fused:
            continue
        sub = g.restricted_to(c.labels)
        if not is_fusion_legal(sub):
            return f"cluster {'+'.join(c.labels)} is not legal to fuse directly"
        if zero_weight_cycle(sub) is not None:
            return f"cluster {'+'.join(c.labels)} has no fused body order"
        if c.doall and not is_doall_after_fusion(sub):
            return f"cluster {'+'.join(c.labels)} is not DOALL as claimed"
    if partition.num_fused == 0:
        return "no fusible clusters: partition is all singletons"
    return None
