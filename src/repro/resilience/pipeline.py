"""Source-to-parallel pipeline with verified degradation.

:func:`fuse_program_resilient` is the hardened sibling of
:func:`repro.pipeline.fuse_program`: instead of raising on the first
failure it walks the degradation ladder
(:func:`repro.resilience.ladder.fuse_resilient`) and gates every rung at
the *program* level too — code generation, fused-body ordering, and
bit-exact execution equivalence against the original program on concrete
sizes.  A rung whose generated code misbehaves is degraded past exactly
like a rung whose retiming fails verification.

The returned :class:`ResilientPipelineResult` always carries a runnable
program (:meth:`ResilientPipelineResult.emitted_code` falls back to the
original source text when no transformation survived) plus the full
:class:`~repro.resilience.report.RecoveryReport`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.codegen import ArrayStore, apply_fusion, emit_fused_program, run_fused, run_original
from repro.codegen.fused import DeadlockError, FusedProgram, _zero_dependence_order
from repro.graph.mldg import MLDG
from repro.lint.diagnostics import Diagnostic
from repro.loopir import LoopNest
from repro.loopir.ast_nodes import InnerLoop
from repro.loopir.printer import format_program
from repro.resilience import faults
from repro.resilience.budget import Budget
from repro.resilience.ladder import ResilientFusionResult, RungRejected
from repro.resilience.report import RecoveryReport, Rung
from repro.retiming import Retiming
from repro.vectors import IVec

__all__ = ["ResilientPipelineResult", "fuse_program_resilient", "program_gate"]

#: Concrete (n, m) sizes and seeds for the bit-exact equivalence gate.
_EQUIV_SIZES: Tuple[Tuple[int, int], ...] = ((6, 5),)
_EQUIV_SEEDS: Tuple[int, ...] = (0, 1)


@dataclass
class ResilientPipelineResult:
    """Everything one resilient pipeline run produced."""

    nest: LoopNest
    mldg: MLDG
    resilient: ResilientFusionResult
    fused: Optional[FusedProgram] = None
    partitioned: Optional[LoopNest] = None
    notes: List[str] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def report(self) -> RecoveryReport:
        assert self.resilient.report is not None
        return self.resilient.report

    @property
    def rung(self) -> Rung:
        return self.resilient.rung

    @property
    def retiming(self) -> Optional[Retiming]:
        return self.resilient.retiming

    def emitted_code(self) -> str:
        """The best runnable program text the ladder produced.

        Falls back to the (reformatted) original program when no code
        transformation survived — the resilient pipeline never leaves the
        caller without something to run.
        """
        if self.fused is not None:
            return emit_fused_program(self.fused)
        if self.partitioned is not None:
            return format_program(self.partitioned)
        return format_program(self.nest)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary used by ``repro-fuse run --format json``."""
        return {
            "rung": self.rung.label,
            "parallelism": self.resilient.parallelism.value,
            "retiming": (
                {k: list(v) for k, v in self.retiming.as_dict().items()}
                if self.retiming is not None
                else None
            ),
            "schedule": (
                list(self.resilient.schedule)
                if self.resilient.schedule is not None
                else None
            ),
            "hyperplane": (
                list(self.resilient.hyperplane)
                if self.resilient.hyperplane is not None
                else None
            ),
            "report": self.report.to_dict(),
            "notes": list(self.notes),
            "emitted": self.emitted_code(),
        }


class _ProgramGate:
    """Per-rung program-level verification: codegen + bit-exact equivalence.

    Everything is judged against the pristine ``nest``/``g``; the fused
    body passes through the ``body-order`` fault seam first, so an injected
    statement reorder must survive both the zero-dependence order check and
    the concrete equivalence runs to go unnoticed — and if it does survive
    both, it was a legal order all along.
    """

    def __init__(self, nest: LoopNest, g: MLDG) -> None:
        self.nest = nest
        self.g = g

    def __call__(
        self,
        rung: Rung,
        *,
        retiming: Optional[Retiming] = None,
        schedule: Optional[IVec] = None,
        partition: Any = None,
    ) -> Tuple[Any, List[str]]:
        if rung is Rung.ORIGINAL:
            return self.nest, []
        if rung is Rung.PARTITION:
            assert partition is not None
            return self._partitioned_nest(partition)
        assert retiming is not None
        return self._fused_program(rung, retiming)

    # -------------------------------------------------------------- #
    # fused rungs (doall / hyperplane / legal-only)
    # -------------------------------------------------------------- #

    def _fused_program(
        self, rung: Rung, retiming: Retiming
    ) -> Tuple[Optional[FusedProgram], List[str]]:
        notes: List[str] = []
        try:
            fp = apply_fusion(self.nest, retiming, mldg=self.g)
        except DeadlockError as exc:
            if rung is Rung.HYPERPLANE:
                # the paper's Figure 14: a legal wavefront fusion whose
                # fused text cannot be emitted; the claim stands on the
                # graph-level guarantees and the original text is kept
                return None, [f"no fused body order exists ({exc}); "
                              "wavefront runs on the unfused text"]
            raise RungRejected(f"no fused body order exists: {exc}") from exc
        except ValueError as exc:
            raise RungRejected(str(exc)) from exc

        body = faults.pass_through("body-order", fp.body)
        if tuple(body) != fp.body:
            fp = dataclasses.replace(fp, body=tuple(body))
        reason = self._body_order_violation(fp)
        if reason is not None:
            raise RungRejected(reason)
        self._check_equivalence(fp)
        return fp, notes

    def _body_order_violation(self, fp: FusedProgram) -> Optional[str]:
        expected = sorted(self.nest.labels)
        got = sorted(node.label for node in fp.body)
        if got != expected:
            return f"fused body covers {got}, program has {expected}"
        pos = {node.label: k for k, node in enumerate(fp.body)}
        zero = IVec.zero(self.g.dim)
        for e in fp.retimed_mldg.edges():
            if e.src != e.dst and zero in e.vectors and pos[e.src] > pos[e.dst]:
                return (
                    f"fused body order breaks the zero-vector dependence "
                    f"{e.src} -> {e.dst}"
                )
        return None

    def _check_equivalence(self, fp: FusedProgram) -> None:
        for (n, m) in _EQUIV_SIZES:
            for seed in _EQUIV_SEEDS:
                base = ArrayStore.for_program(self.nest, n, m, seed=seed)
                ref = run_original(self.nest, n, m, store=base.copy())
                got = run_fused(fp, n, m, store=base.copy(), mode="serial")
                if not ref.equal(got):
                    raise RungRejected(
                        f"fused program diverges from the original "
                        f"(n={n}, m={m}, seed={seed})"
                    )

    # -------------------------------------------------------------- #
    # partition rung
    # -------------------------------------------------------------- #

    def _partitioned_nest(self, partition: Any) -> Tuple[LoopNest, List[str]]:
        loops: List[InnerLoop] = []
        for cluster in partition.clusters:
            if len(cluster.labels) == 1:
                loops.append(self.nest.loop(cluster.labels[0]))
                continue
            sub = self.g.restricted_to(cluster.labels)
            try:
                order = _zero_dependence_order(sub, list(cluster.labels))
            except DeadlockError as exc:
                raise RungRejected(
                    f"cluster {'+'.join(cluster.labels)} has no body order: {exc}"
                ) from exc
            order = list(faults.pass_through("body-order", tuple(order)))
            reason = self._cluster_order_violation(sub, cluster.labels, order)
            if reason is not None:
                raise RungRejected(reason)
            statements = tuple(
                stmt for label in order for stmt in self.nest.loop(label).statements
            )
            loops.append(
                InnerLoop(
                    label="".join(cluster.labels),
                    statements=statements,
                    span=self.nest.loop(cluster.labels[0]).span,
                )
            )
        pnest = LoopNest(
            loops=tuple(loops),
            outer_bound=self.nest.outer_bound,
            inner_bound=self.nest.inner_bound,
            index_names=self.nest.index_names,
        )
        for (n, m) in _EQUIV_SIZES:
            for seed in _EQUIV_SEEDS:
                base = ArrayStore.for_program(self.nest, n, m, seed=seed)
                ref = run_original(self.nest, n, m, store=base.copy())
                got = run_original(pnest, n, m, store=base.copy())
                if not ref.equal(got):
                    raise RungRejected(
                        f"partitioned program diverges from the original "
                        f"(n={n}, m={m}, seed={seed})"
                    )
        return pnest, [f"partitioned program: {partition.describe()}"]

    def _cluster_order_violation(
        self, sub: MLDG, labels: Sequence[str], order: Sequence[str]
    ) -> Optional[str]:
        if sorted(order) != sorted(labels):
            return (
                f"cluster body order {list(order)} does not cover "
                f"cluster {list(labels)}"
            )
        pos = {label: k for k, label in enumerate(order)}
        zero = IVec.zero(sub.dim)
        for e in sub.edges():
            if e.src != e.dst and zero in e.vectors and pos[e.src] > pos[e.dst]:
                return (
                    f"cluster body order breaks the zero-vector dependence "
                    f"{e.src} -> {e.dst}"
                )
        return None


def program_gate(nest: LoopNest, g: MLDG) -> _ProgramGate:
    """The per-rung program-level verification gate for ``nest``/``g``.

    Public factory consumed by the core pipeline's resilient fuse pass
    (:class:`repro.core.passes.ResilientFusePass`).
    """
    return _ProgramGate(nest, g)


def fuse_program_resilient(
    source: Union[str, LoopNest],
    *,
    budget: Optional[Budget] = None,
    min_rung: Union[Rung, str] = Rung.ORIGINAL,
    verify_execution: bool = True,
    bounds: Optional[Sequence[int]] = None,
) -> ResilientPipelineResult:
    """Parse, analyse and fuse a loop-DSL program with verified degradation.

    Raises :class:`~repro.loopir.ParseError` /
    :class:`~repro.loopir.ValidationError` on malformed or model-violating
    input (no transformation of an invalid program is meaningful),
    :class:`~repro.fusion.errors.IllegalMLDGError` on illegal dependence
    graphs, and :class:`~repro.resilience.ladder.ResilienceError` when no
    rung at or above ``min_rung`` survives verification.  Every other
    failure mode degrades and is accounted for in the recovery report.

    This is a thin shim over an ephemeral :class:`repro.core.Session`
    sharing the process-wide caches and observability -- behavior and
    output are identical to the historical inline pipeline.
    """
    from repro.core.session import Session

    return Session(budget=budget).fuse_program_resilient(
        source,
        min_rung=min_rung,
        verify_execution=verify_execution,
        bounds=bounds,
    )
