"""Hardened execution layer: degradation ladder, budgets, fault injection.

``repro.resilience`` wraps the fusion pipeline in a *verified degradation
ladder* — strategies are tried strongest-first and every rung's output is
re-checked against the untouched input graph before it may be returned.
A rung that fails (exception, budget exhaustion, or verification rejecting
its answer) is degraded past, down to returning the original program
unchanged, and the whole descent is recorded in a :class:`RecoveryReport`.

Public surface:

- :class:`Budget` / :class:`BudgetExceededError`  (``repro.resilience.budget``)
- :func:`fuse_resilient`, :class:`ResilientFusionResult`,
  :class:`ResilienceError`  (``repro.resilience.ladder``)
- :func:`fuse_program_resilient`, :class:`ResilientPipelineResult`
  (``repro.resilience.pipeline``)
- :class:`Rung`, :class:`RungAttempt`, :class:`RecoveryReport`
  (``repro.resilience.report``)
- :mod:`repro.resilience.faults` — seeded deterministic fault injectors

Only ``budget`` is imported eagerly: the low-level solvers in
``repro.constraints`` import it, so pulling in the ladder (which imports
``repro.fusion`` → ``repro.constraints``) here would create an import
cycle.  Everything else is exported lazily via PEP 562.
"""

from __future__ import annotations

from typing import Any

from repro.resilience.budget import Budget, BudgetExceededError

__all__ = [
    "Budget",
    "BudgetExceededError",
    "Rung",
    "RungAttempt",
    "RecoveryReport",
    "ResilienceError",
    "ResilientFusionResult",
    "fuse_resilient",
    "ResilientPipelineResult",
    "fuse_program_resilient",
    "faults",
]

_LAZY = {
    "Rung": "repro.resilience.report",
    "RungAttempt": "repro.resilience.report",
    "RecoveryReport": "repro.resilience.report",
    "ResilienceError": "repro.resilience.ladder",
    "ResilientFusionResult": "repro.resilience.ladder",
    "fuse_resilient": "repro.resilience.ladder",
    "ResilientPipelineResult": "repro.resilience.pipeline",
    "fuse_program_resilient": "repro.resilience.pipeline",
    "faults": "repro.resilience.faults",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = module if name == "faults" else getattr(module, name)
    globals()[name] = value
    return value
