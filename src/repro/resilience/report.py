"""Recovery reports: the structured account of a degradation-ladder run.

Every :func:`repro.resilience.ladder.fuse_resilient` call returns a
:class:`RecoveryReport` alongside its result: which rungs were attempted,
why each failed rung failed (as :class:`repro.lint.Diagnostic` records with
``RS***`` codes), how long each took, and where the ladder came to rest.

Diagnostic codes:

- ``RS001`` — a rung's algorithm raised a typed error (budget, infeasible
  constraint system, deadlock, ...).
- ``RS002`` — a rung computed an answer but verification *rejected* it;
  the answer was discarded, never returned.
- ``RS003`` — a rung was skipped because the budget was already exhausted.
- ``RS004`` — the ladder came to rest below the caller's ``min_rung``
  (severity ERROR; the ladder raises in this case).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.lint.diagnostics import Diagnostic, Severity
from repro.resilience.budget import Budget

__all__ = [
    "Rung",
    "RungAttempt",
    "RecoveryReport",
    "RS001",
    "RS002",
    "RS003",
    "RS004",
    "rung_from_label",
]

RS001 = "RS001"
RS002 = "RS002"
RS003 = "RS003"
RS004 = "RS004"


class Rung(enum.IntEnum):
    """Ladder rungs, ordered weakest (0) to strongest (4).

    The ladder tries them strongest-first; comparisons (``final >= min_rung``)
    use the integer ordering.
    """

    ORIGINAL = 0
    PARTITION = 1
    LEGAL_FUSION = 2
    HYPERPLANE = 3
    DOALL = 4

    @property
    def label(self) -> str:
        return _LABELS[self]


_LABELS = {
    Rung.ORIGINAL: "none",
    Rung.PARTITION: "partition",
    Rung.LEGAL_FUSION: "legal-only",
    Rung.HYPERPLANE: "hyperplane",
    Rung.DOALL: "doall",
}

_BY_LABEL = {label: rung for rung, label in _LABELS.items()}


def rung_from_label(label: str) -> Rung:
    """Parse a CLI-facing rung label (``doall``, ``hyperplane``, ...)."""
    try:
        return _BY_LABEL[label]
    except KeyError:
        raise ValueError(
            f"unknown rung {label!r}; expected one of {sorted(_BY_LABEL)}"
        ) from None


@dataclass
class RungAttempt:
    """One rung of the ladder: what happened and how long it took.

    ``status`` is one of ``"ok"`` (rung succeeded and its answer was
    verified), ``"failed"`` (the algorithm raised), ``"rejected"``
    (verification refused the computed answer) or ``"skipped"`` (budget
    already exhausted).
    """

    rung: Rung
    status: str
    wall_ms: float = 0.0
    error: Optional[str] = None
    message: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rung": self.rung.label,
            "status": self.status,
            "wallMs": round(self.wall_ms, 3),
            "error": self.error,
            "message": self.message,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "notes": list(self.notes),
        }


@dataclass
class RecoveryReport:
    """The full account of one ladder descent."""

    attempts: List[RungAttempt] = field(default_factory=list)
    final_rung: Rung = Rung.ORIGINAL
    parallelism: str = "serial"
    total_ms: float = 0.0
    budget: Optional[Budget] = None
    notes: List[str] = field(default_factory=list)
    #: The :class:`repro.obs.Tracer` trace id when the descent ran under an
    #: active tracer, so a report can be joined with its exported trace.
    trace_id: Optional[str] = None

    def record(self, attempt: RungAttempt) -> RungAttempt:
        self.attempts.append(attempt)
        return attempt

    @property
    def diagnostics(self) -> List[Diagnostic]:
        """All diagnostics across all attempts, in ladder order."""
        out: List[Diagnostic] = []
        for attempt in self.attempts:
            out.extend(attempt.diagnostics)
        return out

    def attempt_for(self, rung: Rung) -> Optional[RungAttempt]:
        for attempt in self.attempts:
            if attempt.rung is rung:
                return attempt
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "finalRung": self.final_rung.label,
            "parallelism": self.parallelism,
            "totalMs": round(self.total_ms, 3),
            "budget": self.budget.to_dict() if self.budget is not None else None,
            "attempts": [a.to_dict() for a in self.attempts],
            "notes": list(self.notes),
            "traceId": self.trace_id,
        }

    def describe(self) -> str:
        """A multi-line human-readable dump used by ``repro-fuse run``."""
        lines = [
            f"final rung   : {self.final_rung.label}",
            f"parallelism  : {self.parallelism}",
            f"total time   : {self.total_ms:.1f} ms",
        ]
        lines.append("ladder:")
        for attempt in self.attempts:
            line = f"  {attempt.rung.label:<11} {attempt.status}"
            line += f"  ({attempt.wall_ms:.1f} ms)"
            if attempt.message:
                line += f"  {attempt.message}"
            lines.append(line)
            for diag in attempt.diagnostics:
                lines.append(
                    f"    {diag.severity.name.lower()}[{diag.code}] {diag.message}"
                )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def rung_diagnostic(code: str, message: str, *, error: bool = False) -> Diagnostic:
    """Build one resilience diagnostic (span-free; these are not source lints)."""
    return Diagnostic(
        code=code,
        severity=Severity.ERROR if error else Severity.WARNING,
        message=message,
    )


__all__.append("rung_diagnostic")
