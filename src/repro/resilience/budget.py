"""Resource budgets for the hardened pipeline.

A :class:`Budget` bounds what one fusion run may consume: wall-clock time
(``deadline_ms``), input size (``max_nodes``/``max_edges``) and Bellman-Ford
work (``max_relaxation_rounds``).  The solvers and fusion algorithms accept
an optional budget and call its ``check_*`` methods at their loop heads;
exhaustion raises :class:`BudgetExceededError`.

The error is a *degradation trigger*, not a crash: the resilience ladder
(:mod:`repro.resilience.ladder`) treats it like any other rung failure and
falls back to a cheaper strategy, down to returning the original program
unchanged.  Callers outside the ladder see it as an ordinary typed error.

This module deliberately imports nothing from the rest of :mod:`repro` so
the low-level solvers can depend on it without import cycles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["Budget", "BudgetExceededError"]


class BudgetExceededError(RuntimeError):
    """A resource budget was exhausted.

    ``resource`` names the exhausted dimension (``"deadline-ms"``,
    ``"nodes"``, ``"edges"``, ``"relaxation-rounds"``), ``limit``/``used``
    quantify it, and ``context`` says where the check fired.
    """

    def __init__(
        self, resource: str, limit: float, used: float, context: str = ""
    ) -> None:
        where = f" during {context}" if context else ""
        super().__init__(
            f"budget exceeded{where}: {resource} used {used:g} of limit {limit:g}"
        )
        self.resource = resource
        self.limit = limit
        self.used = used
        self.context = context


@dataclass
class Budget:
    """Resource limits for one pipeline run.  ``None`` means unlimited.

    The deadline clock starts at the first :meth:`start` call (idempotent),
    so a budget can be built eagerly and armed when work begins.

    >>> b = Budget(max_nodes=2).start()
    >>> b.check_graph(2, 10)          # within limits: no-op
    >>> b.check_graph(3, 0)
    Traceback (most recent call last):
        ...
    repro.resilience.budget.BudgetExceededError: budget exceeded: nodes used 3 of limit 2
    """

    deadline_ms: Optional[float] = None
    max_nodes: Optional[int] = None
    max_edges: Optional[int] = None
    max_relaxation_rounds: Optional[int] = None
    _t0: Optional[float] = field(default=None, repr=False, compare=False)

    def start(self) -> "Budget":
        """Arm the deadline clock (first call wins) and return ``self``."""
        if self._t0 is None:
            self._t0 = time.monotonic()
        return self

    # ------------------------------------------------------------------ #
    # clock
    # ------------------------------------------------------------------ #

    def elapsed_ms(self) -> float:
        """Milliseconds since :meth:`start` (0 before the clock is armed)."""
        if self._t0 is None:
            return 0.0
        return (time.monotonic() - self._t0) * 1000.0

    def remaining_ms(self) -> Optional[float]:
        """Milliseconds left before the deadline, or ``None`` if unlimited."""
        if self.deadline_ms is None:
            return None
        return self.deadline_ms - self.elapsed_ms()

    def deadline_exceeded(self) -> bool:
        remaining = self.remaining_ms()
        return remaining is not None and remaining <= 0

    @property
    def is_limiting(self) -> bool:
        """Whether any cap is set (deadline included)."""
        return self.deadline_ms is not None or self.is_work_limiting

    @property
    def is_work_limiting(self) -> bool:
        """Whether a *solver-work* cap is set (deadline excluded).

        A work-limiting budget makes the query about resource consumption,
        not just the answer -- the memo caches and the disk store
        (:mod:`repro.perf.memo`, :mod:`repro.store`) refuse to serve such
        queries so capped probes still measure real work.  A deadline-only
        budget is the opposite case: it states an SLO on the *answer*, and
        serving it from cache is exactly how the deadline gets met -- so
        serve-worker requests (which always carry deadlines) stay
        cacheable.
        """
        return any(
            cap is not None
            for cap in (
                self.max_nodes,
                self.max_edges,
                self.max_relaxation_rounds,
            )
        )

    # ------------------------------------------------------------------ #
    # checks (raise BudgetExceededError)
    # ------------------------------------------------------------------ #

    def check_deadline(self, context: str = "") -> None:
        if self.deadline_exceeded():
            assert self.deadline_ms is not None
            raise BudgetExceededError(
                "deadline-ms", self.deadline_ms, self.elapsed_ms(), context
            )

    def check_graph(self, num_nodes: int, num_edges: int, context: str = "") -> None:
        if self.max_nodes is not None and num_nodes > self.max_nodes:
            raise BudgetExceededError("nodes", self.max_nodes, num_nodes, context)
        if self.max_edges is not None and num_edges > self.max_edges:
            raise BudgetExceededError("edges", self.max_edges, num_edges, context)

    def check_rounds(self, rounds: int, context: str = "") -> None:
        if (
            self.max_relaxation_rounds is not None
            and rounds > self.max_relaxation_rounds
        ):
            raise BudgetExceededError(
                "relaxation-rounds", self.max_relaxation_rounds, rounds, context
            )

    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view used by the recovery report."""
        return {
            "deadlineMs": self.deadline_ms,
            "maxNodes": self.max_nodes,
            "maxEdges": self.max_edges,
            "maxRelaxationRounds": self.max_relaxation_rounds,
            "elapsedMs": round(self.elapsed_ms(), 3),
        }
