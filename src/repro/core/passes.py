"""The compilation pipeline as small, first-class passes.

An :class:`Artifact` is the mutable unit of work flowing through a
:class:`~repro.core.manager.PassManager`: the request (source text or an
already-built nest, the strategy, the resilience knobs) plus every product
the passes attach (nest, MLDG, fusion result, fused program, notes,
diagnostics).  Each :class:`Pass` is a named class with a ``run(artifact,
session)`` method; the manager adds the uniform span/metrics/error
envelope so the passes themselves stay one-screen small.

The standard sequences (:func:`strict_passes`, :func:`resilient_passes`)
reproduce the historical ``fuse_program`` / ``fuse_program_resilient``
behavior bit for bit -- the golden shim tests in
``tests/test_golden_shims.py`` hold them to that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

from repro.codegen import apply_fusion
from repro.codegen.fused import DeadlockError, FusedProgram
from repro.depend import extract_mldg
from repro.fusion.driver import FusionResult, Strategy, fuse
from repro.fusion.errors import FusionError, IllegalMLDGError
from repro.graph.legality import check_legal
from repro.graph.mldg import MLDG
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import diagnostics_from_legality, lint_nest
from repro.loopir import LoopNest, parse_program
from repro.loopir.validate import ValidationError, model_findings

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.analysis.prune import PruneResult
    from repro.core.session import Session
    from repro.resilience.ladder import ResilientFusionResult

__all__ = [
    "Artifact",
    "Pass",
    "ParsePass",
    "ValidatePass",
    "LintPass",
    "ExtractMLDGPass",
    "LegalityPass",
    "FusePass",
    "VerifyRetimingPass",
    "CodegenPass",
    "ResilientFusePass",
    "strict_passes",
    "resilient_passes",
]


@dataclass
class Artifact:
    """One compilation unit: the request plus everything passes attach."""

    # request ---------------------------------------------------------- #
    source: Optional[str] = None
    strategy: Union[Strategy, str] = Strategy.AUTO
    min_rung: Union[str, object] = "none"
    verify_execution: bool = True
    bounds: Optional[Sequence[int]] = None

    # products --------------------------------------------------------- #
    nest: Optional[LoopNest] = None
    mldg: Optional[MLDG] = None
    fusion: Optional[FusionResult] = None
    fused: Optional[FusedProgram] = None
    resilient: Optional["ResilientFusionResult"] = None
    partitioned: Optional[LoopNest] = None
    prune: Optional["PruneResult"] = None
    notes: List[str] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)


class Pass:
    """One stage of the pipeline.

    ``name`` identifies the pass in metrics (``core.pass.<name>.*``) and
    diagnostics; ``span_name`` is the trace span the manager opens around
    ``run`` (the historical ``pipeline.*`` names are kept so existing
    trace consumers keep working).
    """

    name: str = "?"
    span_name: str = "pipeline.?"

    def run(self, artifact: Artifact, session: "Session") -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class ParsePass(Pass):
    """DSL text -> :class:`LoopNest` (no-op when a nest was handed in)."""

    name = "parse"
    span_name = "pipeline.parse"

    def run(self, artifact: Artifact, session: "Session") -> None:
        if artifact.nest is None:
            assert artifact.source is not None, "no source and no nest"
            artifact.nest = parse_program(artifact.source)


class ValidatePass(Pass):
    """The §1 model gate: error findings raise :class:`ValidationError`."""

    name = "validate"
    span_name = "pipeline.validate"

    def run(self, artifact: Artifact, session: "Session") -> None:
        assert artifact.nest is not None
        findings = model_findings(artifact.nest)
        if findings:
            raise ValidationError([f.message for f in findings], findings=findings)


class LintPass(Pass):
    """Non-blocking static diagnostics; ride along on the artifact."""

    name = "lint"
    span_name = "pipeline.lint"

    def run(self, artifact: Artifact, session: "Session") -> None:
        assert artifact.nest is not None
        result = lint_nest(artifact.nest, source=artifact.source)
        artifact.diagnostics = result.diagnostics
        session.extend_diagnostics(result.diagnostics)


class ExtractMLDGPass(Pass):
    """Dependence extraction: program -> MLDG."""

    name = "extract-mldg"
    span_name = "pipeline.extract"

    def run(self, artifact: Artifact, session: "Session") -> None:
        assert artifact.nest is not None
        artifact.mldg = extract_mldg(artifact.nest, check=False)


class LegalityPass(Pass):
    """Theorem 3.1 structural legality; illegal graphs stop the pipeline."""

    name = "legality"
    span_name = "pipeline.legality"

    def run(self, artifact: Artifact, session: "Session") -> None:
        assert artifact.mldg is not None
        report = check_legal(artifact.mldg)
        if not report.legal:
            raise IllegalMLDGError(
                report.violations, diagnostics=diagnostics_from_legality(report)
            )


class FusePass(Pass):
    """Strategy dispatch: the registered strategy passes behind ``fuse()``."""

    name = "fuse"
    span_name = "pipeline.fuse"

    def run(self, artifact: Artifact, session: "Session") -> None:
        assert artifact.mldg is not None
        artifact.fusion = fuse(
            artifact.mldg, strategy=artifact.strategy, budget=session.effective_budget
        )
        artifact.notes.extend(artifact.fusion.notes)


class VerifyRetimingPass(Pass):
    """Re-assert the verification certificate carried by the fusion result.

    ``fuse()`` never returns an unverified retiming, so this pass is a
    cheap invariant check -- but as a first-class stage it makes the
    pipeline's contract explicit and gives reordered/custom pipelines a
    place to hang stronger checks.
    """

    name = "verify-retiming"
    span_name = "pipeline.verify-retiming"

    def run(self, artifact: Artifact, session: "Session") -> None:
        assert artifact.fusion is not None
        verification = artifact.fusion.verification
        if not verification.ok_for_legal_fusion:
            raise FusionError(
                "internal error: fusion result carries a failing verification: "
                + "; ".join(verification.problems)
            )


class CodegenPass(Pass):
    """Apply the retiming to the program text (Figure-12b shape)."""

    name = "codegen"
    span_name = "pipeline.codegen"

    def run(self, artifact: Artifact, session: "Session") -> None:
        assert artifact.nest is not None and artifact.fusion is not None
        try:
            artifact.fused = apply_fusion(
                artifact.nest, artifact.fusion.retiming, mldg=artifact.mldg
            )
        except DeadlockError as exc:
            artifact.fused = None
            artifact.notes.append(f"no fused body order exists: {exc}")


class ResilientFusePass(Pass):
    """The degradation ladder as the fuse stage (docs/RESILIENCE.md).

    The rung descent itself is selected by the session
    (:meth:`Session.ladder_descent`), making the ladder a pass-sequence
    variant rather than a hard-coded list; every rung is still gated at
    graph *and* program level before it may come to rest.
    """

    name = "resilient-fuse"
    span_name = "pipeline.fuse"

    def run(self, artifact: Artifact, session: "Session") -> None:
        from repro.resilience.ladder import fuse_resilient
        from repro.resilience.pipeline import program_gate

        assert artifact.nest is not None and artifact.mldg is not None
        gate = program_gate(artifact.nest, artifact.mldg)
        resilient = fuse_resilient(
            artifact.mldg,
            budget=session.effective_budget,
            min_rung=artifact.min_rung,
            verify_execution=artifact.verify_execution,
            bounds=artifact.bounds,
            gate=gate,
        )
        artifact.resilient = resilient
        artifact.notes.extend(resilient.notes)

        from repro.resilience.report import Rung

        fused_artifact = resilient.artifact
        artifact.fused = (
            fused_artifact if isinstance(fused_artifact, FusedProgram) else None
        )
        artifact.partitioned = (
            fused_artifact
            if resilient.rung is Rung.PARTITION and isinstance(fused_artifact, LoopNest)
            else None
        )


def strict_passes() -> Tuple[Pass, ...]:
    """The strict pipeline: any stage failure raises its typed error.

    Edge pruning sits between extraction and legality so the structural
    check -- and everything downstream -- sees the already-proven-minimal
    graph.  (Imported lazily: :mod:`repro.analysis.prune` subclasses
    :class:`Pass` from this module.)
    """
    from repro.analysis.prune import PruneMLDGPass

    return (
        ParsePass(),
        ValidatePass(),
        LintPass(),
        ExtractMLDGPass(),
        PruneMLDGPass(),
        LegalityPass(),
        FusePass(),
        VerifyRetimingPass(),
        CodegenPass(),
    )


def resilient_passes() -> Tuple[Pass, ...]:
    """The hardened pipeline: the fuse stage degrades instead of raising.

    No separate legality pass: the ladder owns legality so that a graph
    over budget caps can still degrade to the original program without
    paying (or requiring) the structural check.
    """
    from repro.analysis.prune import PruneMLDGPass

    return (
        ParsePass(),
        ValidatePass(),
        LintPass(),
        ExtractMLDGPass(),
        PruneMLDGPass(),
        ResilientFusePass(),
    )
