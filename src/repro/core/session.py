"""The Session: one object owning all cross-cutting compilation context.

Four subsystems used to thread their state through the ``fuse_program``
call chains ad hoc -- lint diagnostics, resilience budgets, perf memo
caches, obs tracer/metrics.  A :class:`Session` owns all of it:

* ``options`` -- default strategy, ladder variant, resilience knobs;
* ``budget`` -- the :class:`~repro.resilience.budget.Budget` every solver
  call runs under;
* ``tracer`` / ``registry`` -- session-scoped observability (``None``
  keeps the process-wide defaults);
* ``caches`` -- fusion/retiming/kernel memo caches
  (:meth:`SessionCaches.private` isolates them per session);
* ``diagnostics`` -- every structured finding the session's pipelines
  accumulated, thread-safe.

While a session is :meth:`activate`-d, the module-level cache accessors
(:func:`repro.perf.memo.fusion_cache` and friends) and the obs globals
resolve through it, so the whole library becomes session-aware without
threading a parameter through every signature.  The legacy entry points
(``repro.pipeline.fuse_program`` etc.) are thin wrappers over an
ephemeral default session and remain bit-identical.

:meth:`Session.fuse_many` is batch compilation: a thread pool over
independent programs with per-program diagnostics and trace ids and one
aggregated :class:`~repro.core.batch.BatchReport` -- the first step
toward a serving layer (exposed as ``repro-fuse batch``).
"""

from __future__ import annotations

import threading
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.core import context as _context
from repro.core.manager import PassManager
from repro.core.passes import Artifact, resilient_passes, strict_passes
from repro.fusion.driver import FusionResult, Strategy, fuse as _fuse
from repro.graph.mldg import MLDG
from repro.lint.diagnostics import Diagnostic
from repro.loopir import LoopNest
from repro.perf.memo import MemoCache
from repro.resilience.budget import Budget
from repro.store import CompileStore, open_store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.batch import BatchReport
    from repro.pipeline import PipelineResult
    from repro.resilience.pipeline import ResilientPipelineResult

__all__ = ["LADDER_VARIANTS", "Session", "SessionCaches", "SessionOptions"]


#: Named degradation-ladder variants: rung-label sequences the resilient
#: fuse stage walks strongest-first.  Selected per session via
#: ``SessionOptions.ladder`` (a variant name or an explicit label tuple).
LADDER_VARIANTS = {
    # the full descent (the default; docs/RESILIENCE.md)
    "full": ("doall", "hyperplane", "legal-only", "partition", "none"),
    # skip the wavefront rung (callers that cannot run hyperplane loops)
    "row-parallel": ("doall", "legal-only", "partition", "none"),
    # never emit a parallel loop: serial fusion or bust
    "serial": ("legal-only", "partition", "none"),
    # cheapest possible answers only
    "conservative": ("partition", "none"),
}


@dataclass
class SessionOptions:
    """Per-session compilation defaults (overridable per call)."""

    #: Default fusion strategy for :meth:`Session.fuse_program`.
    strategy: Union[Strategy, str] = Strategy.AUTO
    #: Weakest acceptable rung for resilient compilation.
    min_rung: str = "none"
    #: Gate resilient rungs with operational dataflow execution.
    verify_execution: bool = True
    #: Iteration box for the resilient execution gate (``None`` = default).
    bounds: Optional[Sequence[int]] = None
    #: Degradation-ladder variant: a :data:`LADDER_VARIANTS` name, an
    #: explicit tuple of rung labels, or ``None`` for the built-in descent.
    ladder: Optional[Union[str, Sequence[str]]] = None
    #: Default worker count for :meth:`Session.fuse_many` and for the
    #: ``parallel`` execution backend.  ``None`` delegates the choice to
    #: the execution planner (:mod:`repro.plan`): batch compilation takes
    #: :data:`repro.plan.model.DEFAULT_BATCH_JOBS`, kernel execution the
    #: planner's per-shape pick.
    jobs: Optional[int] = None
    #: Execution backend for :meth:`Session.execute_fused`
    #: (:mod:`repro.core.backends`: interp / compiled / numpy / parallel,
    #: or ``"auto"`` to let the planner decide per shape; docs/PLANNING.md).
    backend: str = "interp"
    #: Run the certificate-carrying MLDG edge-pruning pass
    #: (:mod:`repro.analysis.prune`).  Off: the pipeline compiles the
    #: fully syntactic graph -- how the equivalence tests compare pruned
    #: and unpruned output.
    prune_edges: bool = True
    #: Seeded fault injector active while the session is (chaos testing;
    #: ``repro.resilience.faults``).  Injection is thread-local, so batch
    #: worker threads re-enter it per program.
    injector: Optional[Any] = None
    #: Seed for :attr:`injector`.
    fault_seed: int = 0
    #: Path of the persistent L2 compile store (:mod:`repro.store`) this
    #: session reads through and writes through.  ``None`` falls back to
    #: the ``REPRO_FUSE_STORE`` environment default (itself optional).
    store_path: Optional[str] = None

    def ladder_labels(self) -> Optional[Tuple[str, ...]]:
        """The rung-label descent this options object selects, if any."""
        if self.ladder is None:
            return None
        if isinstance(self.ladder, str):
            try:
                return LADDER_VARIANTS[self.ladder]
            except KeyError:
                raise KeyError(
                    f"unknown ladder variant {self.ladder!r}; "
                    f"known: {sorted(LADDER_VARIANTS)}"
                ) from None
        return tuple(self.ladder)


@dataclass
class SessionCaches:
    """The memo caches one session resolves through.

    ``None`` fields fall back to the process-wide caches, so a default
    session shares state with the legacy module-global behavior; use
    :meth:`private` for fully isolated caches.

    ``store`` is the L2 disk tier beneath the fusion/retiming caches: a
    ``None`` store falls back to the ``REPRO_FUSE_STORE`` environment
    default (resolved by :func:`repro.store.active_store`).  Unlike the
    L1 caches it is *shared* state by design -- many sessions and many
    processes read and write the same file.
    """

    fusion: Optional[MemoCache] = None
    retiming: Optional[MemoCache] = None
    kernels: Optional[MemoCache] = None
    store: Optional["CompileStore"] = None

    @classmethod
    def private(
        cls,
        *,
        fusion_size: int = 256,
        retiming_size: int = 512,
        kernel_size: int = 128,
    ) -> "SessionCaches":
        """Fresh, session-owned caches (sized like the process defaults)."""
        return cls(
            fusion=MemoCache(maxsize=fusion_size),
            retiming=MemoCache(maxsize=retiming_size),
            kernels=MemoCache(maxsize=kernel_size),
        )


class Session:
    """All cross-cutting context for one compilation scope.

    >>> from repro.core import Session
    >>> from repro.gallery.paper import figure2_code
    >>> out = Session().fuse_program(figure2_code())
    >>> out.fusion.strategy.value
    'cyclic'
    """

    def __init__(
        self,
        *,
        options: Optional[SessionOptions] = None,
        budget: Optional[Budget] = None,
        tracer: Optional[obs.Tracer] = None,
        registry: Optional[obs.MetricsRegistry] = None,
        caches: Optional[SessionCaches] = None,
    ) -> None:
        self.options = options if options is not None else SessionOptions()
        self.budget = budget
        self.tracer = tracer
        self.registry = registry
        self.caches = caches if caches is not None else SessionCaches()
        if self.caches.store is None and self.options.store_path is not None:
            # one handle per path per process; the sqlite connection is
            # opened lazily, so constructing a session before forking a
            # worker pool never shares a connection across processes
            self.caches.store = open_store(self.options.store_path)
        self._diagnostics: List[Diagnostic] = []
        self._lock = threading.Lock()
        self._strict = PassManager(strict_passes(), name="strict")
        self._resilient = PassManager(resilient_passes(), name="resilient")
        self._planner: Optional[Any] = None

    @classmethod
    def isolated(
        cls,
        *,
        options: Optional[SessionOptions] = None,
        budget: Optional[Budget] = None,
        tracer: Optional[obs.Tracer] = None,
    ) -> "Session":
        """A session sharing *nothing* mutable with the process defaults:
        private memo caches and a private metrics registry (plus its own
        tracer when given)."""
        return cls(
            options=options,
            budget=budget,
            tracer=tracer,
            registry=obs.MetricsRegistry(),
            caches=SessionCaches.private(),
        )

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #

    @property
    def effective_budget(self) -> Optional[Budget]:
        """The budget consumers should honor *right now*: a context-local
        :func:`~repro.core.context.budget_scope` override when present
        (per-program deadlines on a shared session), else the session's
        own budget."""
        override = _context.current_budget_override()
        return override if override is not None else self.budget

    @property
    def diagnostics(self) -> List[Diagnostic]:
        """Every diagnostic the session's pipelines accumulated (a copy)."""
        with self._lock:
            return list(self._diagnostics)

    def extend_diagnostics(self, diagnostics: Sequence[Diagnostic]) -> None:
        with self._lock:
            self._diagnostics.extend(diagnostics)

    def clear_diagnostics(self) -> None:
        with self._lock:
            self._diagnostics.clear()

    def ladder_descent(self) -> Optional[Tuple[str, ...]]:
        """Rung labels for the resilient descent, or ``None`` for default."""
        return self.options.ladder_labels()

    @property
    def planner(self) -> Any:
        """This session's execution planner (:class:`repro.plan.Planner`).

        Bound to the session's L2 store when it has one; otherwise the
        planner resolves the ambient store (or the in-process profile
        table) at decision time.
        """
        if self._planner is None:
            from repro.plan import Planner

            self._planner = Planner(store=self.caches.store)
        return self._planner

    @property
    def pass_names(self) -> Tuple[str, ...]:
        """The strict pipeline's registered pass sequence."""
        return self._strict.pass_names

    # ------------------------------------------------------------------ #
    # activation
    # ------------------------------------------------------------------ #

    @contextmanager
    def activate(self) -> Iterator["Session"]:
        """Make this the ambient session for the block (re-entrant).

        While active, the memo-cache accessors and -- when this session
        carries its own -- the obs tracer/registry resolve through it.
        """
        if _context.current_session() is self:
            yield self
            return
        with ExitStack() as stack:
            stack.enter_context(_context.session_scope(self))
            if self.registry is not None:
                stack.enter_context(obs.overriding_registry(self.registry))
            if self.tracer is not None:
                stack.enter_context(obs.overriding_tracer(self.tracer))
            self._enter_injection(stack)
            yield self

    @contextmanager
    def _program_scope(self, tracer: Optional[obs.Tracer]) -> Iterator[None]:
        """Worker-thread scope for one batch program: the session plus an
        optional per-program tracer that wins over the session tracer."""
        with ExitStack() as stack:
            stack.enter_context(_context.session_scope(self))
            if self.registry is not None:
                stack.enter_context(obs.overriding_registry(self.registry))
            effective = tracer if tracer is not None else self.tracer
            if effective is not None:
                stack.enter_context(obs.overriding_tracer(effective))
            self._enter_injection(stack)
            yield

    def _enter_injection(self, stack: ExitStack) -> None:
        """Enter the session's fault injector, if any (thread-local)."""
        if self.options.injector is not None:
            from repro.resilience import faults

            stack.enter_context(
                faults.inject(self.options.injector, seed=self.options.fault_seed)
            )

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #

    def fuse(
        self,
        g: MLDG,
        *,
        strategy: Optional[Union[Strategy, str]] = None,
    ) -> FusionResult:
        """Graph-level fusion under this session's budget and caches."""
        with self.activate():
            return _fuse(
                g,
                strategy=strategy if strategy is not None else self.options.strategy,
                budget=self.effective_budget,
            )

    def fuse_program(
        self,
        source: Union[str, LoopNest],
        *,
        strategy: Optional[Union[Strategy, str]] = None,
    ) -> "PipelineResult":
        """The strict pipeline (parse -> ... -> codegen) for one program."""
        from repro.pipeline import PipelineResult

        artifact = self._artifact(source)
        artifact.strategy = (
            strategy if strategy is not None else self.options.strategy
        )
        with self.activate():
            with obs.trace_span("pipeline.fuse_program"):
                self._strict.run(artifact, self)
        assert artifact.nest is not None
        assert artifact.mldg is not None and artifact.fusion is not None
        return PipelineResult(
            nest=artifact.nest,
            mldg=artifact.mldg,
            fusion=artifact.fusion,
            fused=artifact.fused,
            notes=artifact.notes,
            diagnostics=artifact.diagnostics,
        )

    def fuse_program_resilient(
        self,
        source: Union[str, LoopNest],
        *,
        min_rung: Optional[Union[str, Any]] = None,
        verify_execution: Optional[bool] = None,
        bounds: Optional[Sequence[int]] = None,
    ) -> "ResilientPipelineResult":
        """The hardened pipeline: verified degradation instead of failure."""
        from repro.resilience.pipeline import ResilientPipelineResult

        artifact = self._artifact(source)
        artifact.min_rung = (
            min_rung if min_rung is not None else self.options.min_rung
        )
        artifact.verify_execution = (
            verify_execution
            if verify_execution is not None
            else self.options.verify_execution
        )
        artifact.bounds = bounds if bounds is not None else self.options.bounds
        with self.activate():
            with obs.trace_span("pipeline.fuse_program_resilient"):
                self._resilient.run(artifact, self)
        assert artifact.nest is not None
        assert artifact.mldg is not None and artifact.resilient is not None
        return ResilientPipelineResult(
            nest=artifact.nest,
            mldg=artifact.mldg,
            resilient=artifact.resilient,
            fused=artifact.fused,
            partitioned=artifact.partitioned,
            notes=artifact.notes,
            diagnostics=artifact.diagnostics,
        )

    def fuse_many(
        self,
        programs: Sequence[Any],
        *,
        jobs: Optional[int] = None,
        strategy: Optional[Union[Strategy, str]] = None,
        resilient: bool = False,
        names: Optional[Sequence[str]] = None,
        timeout_ms: Optional[float] = None,
        pool: str = "thread",
    ) -> "BatchReport":
        """Compile independent programs concurrently; see :mod:`repro.core.batch`.

        ``timeout_ms`` arms a per-program deadline
        :class:`~repro.resilience.budget.Budget` around each compile.
        ``pool="process"`` executes programs in worker *processes* via the
        ``repro-serve/1`` envelopes (crash isolation; requires DSL-text
        sources).
        """
        from repro.core.batch import run_batch

        return run_batch(
            self,
            programs,
            jobs=jobs if jobs is not None else self.options.jobs,
            strategy=strategy,
            resilient=resilient,
            names=names,
            timeout_ms=timeout_ms,
            pool=pool,
        )

    def execute_fused(
        self,
        fp: Any,
        n: int,
        m: int,
        *,
        store: Any,
        backend: Optional[str] = None,
        schedule: Optional[Any] = None,
        is_doall: bool = True,
        jobs: Optional[int] = None,
    ) -> Any:
        """Run a fused program through the session's execution backend.

        Every execution is resolved by the planner (:mod:`repro.plan`)
        under the precedence *explicit > session > profile > model*: an
        explicit ``backend`` argument wins, else the session's configured
        backend, and ``"auto"`` lets the planner pick from profile rows
        or the cost model.  Dispatch happens under this session's
        activation (backend kernels hit the session's kernel cache and
        metrics registry), and the observed wall time is fed back into
        the profile tier -- gated exactly like the memo caches, so probe
        budgets, fault injection and ``REPRO_FUSE_MEMO=0`` record nothing.
        """
        import time as _time

        from repro.core.backends import execute_fused as _execute

        with self.activate():
            plan = self.planner.plan_execution(
                fp, n, m,
                schedule=schedule, is_doall=is_doall,
                requested=backend, session_backend=self.options.backend,
                jobs=jobs if jobs is not None else self.options.jobs,
            )
            t0 = _time.perf_counter()
            result = _execute(
                plan.backend, fp, n, m,
                store=store, schedule=schedule, is_doall=is_doall,
                jobs=plan.jobs, tile=plan.tile,
            )
            self.planner.record(
                plan, _time.perf_counter() - t0, budget=self.effective_budget
            )
            return result

    # ------------------------------------------------------------------ #

    @staticmethod
    def _artifact(source: Union[str, LoopNest]) -> Artifact:
        if isinstance(source, str):
            return Artifact(source=source)
        return Artifact(nest=source)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = []
        if self.budget is not None:
            bits.append("budget")
        if self.tracer is not None:
            bits.append("tracer")
        if self.registry is not None:
            bits.append("registry")
        if any(
            c is not None
            for c in (self.caches.fusion, self.caches.retiming, self.caches.kernels)
        ):
            bits.append("private-caches")
        inner = ", ".join(bits) if bits else "defaults"
        return f"<Session {inner}; {len(self._diagnostics)} diagnostics>"
