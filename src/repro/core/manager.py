"""The pass manager: uniform execution envelope for pipeline passes.

A :class:`PassManager` runs a sequence of :class:`~repro.core.passes.Pass`
objects over one :class:`~repro.core.passes.Artifact`, giving every pass
the same treatment:

* a trace span (the pass's ``span_name``, so the historical ``pipeline.*``
  span tree is preserved),
* ``core.pass.<name>.runs`` / ``.errors`` counters and a
  ``core.pass.<name>.ms`` histogram in the active metrics registry,
* uniform error-to-diagnostic conversion: a raising pass still propagates
  its typed exception unchanged (the public API contract), but the
  failure is first recorded on the session as a structured
  :class:`~repro.lint.diagnostics.Diagnostic` -- the exception's own
  diagnostics/findings when it carries them, a generic ``PM001`` record
  otherwise.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable, List, Tuple

from repro import obs
from repro.core.passes import Artifact, Pass
from repro.lint.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.session import Session

__all__ = ["PassManager", "diagnostics_from_exception", "PM001"]

#: Diagnostic code for a pass failure with no structured diagnostics of
#: its own (see docs/DIAGNOSTICS.md).
PM001 = "PM001"


def diagnostics_from_exception(
    exc: BaseException, *, pass_name: str
) -> List[Diagnostic]:
    """The uniform error-to-diagnostic conversion used by the manager.

    Exceptions that already carry structured records --
    ``ValidationError.findings``, ``IllegalMLDGError.diagnostics``,
    ``ResilienceError.report`` diagnostics -- contribute those; anything
    else becomes one generic ``PM001`` error record naming the pass.
    """
    diags: List[Diagnostic] = list(getattr(exc, "diagnostics", None) or [])
    findings = getattr(exc, "findings", None)
    if findings:
        from repro.lint.engine import diagnostics_from_model_findings

        diags.extend(diagnostics_from_model_findings(list(findings)))
    if not diags:
        diags = [
            Diagnostic(
                code=PM001,
                severity=Severity.ERROR,
                message=f"pass {pass_name!r} failed: "
                f"{type(exc).__name__}: {exc}",
            )
        ]
    return diags


class PassManager:
    """Run registered passes over an artifact under one session."""

    def __init__(self, passes: Iterable[Pass], *, name: str = "pipeline") -> None:
        self.name = name
        self._passes: Tuple[Pass, ...] = tuple(passes)
        names = [p.name for p in self._passes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pass names in manager {name!r}: {names}")

    @property
    def passes(self) -> Tuple[Pass, ...]:
        return self._passes

    @property
    def pass_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self._passes)

    def replacing(self, **substitutions: Pass) -> "PassManager":
        """A manager with named passes substituted (pipeline variants)."""
        unknown = set(substitutions) - set(self.pass_names)
        if unknown:
            raise KeyError(f"no passes named {sorted(unknown)} in {self.name!r}")
        return PassManager(
            (substitutions.get(p.name, p) for p in self._passes), name=self.name
        )

    def run(self, artifact: Artifact, session: "Session") -> Artifact:
        """Run every pass in order; the first failing pass aborts the run.

        The failing pass's exception propagates unchanged (callers keep
        their typed-error contract); the failure is recorded on the
        session first.
        """
        for p in self._passes:
            self._run_pass(p, artifact, session)
        return artifact

    def _run_pass(self, p: Pass, artifact: Artifact, session: "Session") -> None:
        reg = obs.default_registry()
        t0 = time.perf_counter()
        with obs.trace_span(p.span_name):
            try:
                p.run(artifact, session)
            except Exception as exc:
                reg.counter(f"core.pass.{p.name}.errors").inc()
                session.extend_diagnostics(
                    diagnostics_from_exception(exc, pass_name=p.name)
                )
                raise
            finally:
                reg.counter(f"core.pass.{p.name}.runs").inc()
                reg.histogram(f"core.pass.{p.name}.ms").observe(
                    (time.perf_counter() - t0) * 1000.0
                )
