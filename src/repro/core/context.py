"""The ambient-session mechanism.

A :class:`~repro.core.session.Session` is *activated* for a dynamic scope
(:meth:`Session.activate`); while active, the cross-cutting services that
used to be module globals -- the fusion/retiming memo caches, the compiled
kernel cache -- resolve through the session first and fall back to the
process-wide defaults.  The low-level consumers (:mod:`repro.perf.memo`,
:mod:`repro.codegen.pycompile`, :mod:`repro.resilience.ladder`) import only
this module, which depends on nothing else in :mod:`repro`, so there are no
import cycles.

The scope is a :class:`contextvars.ContextVar`: nested activations restore
correctly and worker threads start *clean* (a fresh thread sees no active
session until it activates one), which is exactly the isolation
``Session.fuse_many`` workers need.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.session import Session

__all__ = ["current_session", "session_scope"]

_CURRENT: ContextVar[Optional["Session"]] = ContextVar(
    "repro_current_session", default=None
)


def current_session() -> Optional["Session"]:
    """The :class:`Session` active in this context, or ``None``."""
    return _CURRENT.get()


@contextmanager
def session_scope(session: "Session") -> Iterator["Session"]:
    """Make ``session`` the ambient session for the block (re-entrant)."""
    token = _CURRENT.set(session)
    try:
        yield session
    finally:
        _CURRENT.reset(token)
